"""Shim for environments without the `wheel` package (offline installs).

All metadata lives in pyproject.toml; setuptools >= 61 reads it natively.
"""

from setuptools import setup

setup()
