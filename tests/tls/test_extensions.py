"""Tests for the extension framework and typed payloads."""

import pytest

from repro.errors import DecodeError
from repro.tls.extensions import (
    KEM_GROUP_IDS,
    SIGNATURE_SCHEME_IDS,
    Extension,
    ExtensionType,
    KeyShareEntry,
    client_key_share_extension,
    decode_client_key_share,
    decode_extensions,
    decode_server_key_share,
    decode_server_name,
    encode_extensions,
    find_extension,
    kem_name_for_group,
    server_key_share_extension,
    server_name_extension,
    signature_algorithm_for_scheme,
    signature_algorithms_extension,
    supported_groups_extension,
    supported_versions_client,
)


class TestExtensionList:
    def test_roundtrip(self):
        exts = [
            Extension(1, b"a"),
            Extension(0xFE00, b"filter-bytes"),
            Extension(51, b""),
        ]
        decoded, end = decode_extensions(encode_extensions(exts))
        assert decoded == exts

    def test_empty_list(self):
        decoded, end = decode_extensions(encode_extensions([]))
        assert decoded == [] and end == 2

    def test_size_accounting(self):
        ext = Extension(5, b"12345")
        assert ext.size_bytes == 9
        assert len(ext.encode()) == 9

    def test_truncated_block(self):
        data = encode_extensions([Extension(1, b"abc")])
        with pytest.raises(DecodeError):
            decode_extensions(data[:-1])

    def test_truncated_header(self):
        with pytest.raises(DecodeError):
            decode_extensions(b"\x00")

    def test_find_extension(self):
        exts = [Extension(1, b"a"), Extension(2, b"b")]
        assert find_extension(exts, 2).data == b"b"
        assert find_extension(exts, 3) is None

    def test_offset_decoding(self):
        blob = b"PREFIX" + encode_extensions([Extension(7, b"x")])
        decoded, end = decode_extensions(blob, offset=6)
        assert decoded[0].extension_type == 7
        assert end == len(blob)


class TestKeyShare:
    def test_entry_roundtrip(self):
        entry = KeyShareEntry(KEM_GROUP_IDS["ntru-hps-509"], b"k" * 699)
        assert KeyShareEntry.decode(entry.encode()) == entry

    def test_client_extension_roundtrip(self):
        entry = KeyShareEntry(KEM_GROUP_IDS["x25519"], b"p" * 32)
        assert decode_client_key_share(client_key_share_extension(entry)) == entry

    def test_server_extension_roundtrip(self):
        entry = KeyShareEntry(KEM_GROUP_IDS["kyber512"], b"c" * 768)
        assert decode_server_key_share(server_key_share_extension(entry)) == entry

    def test_truncated_entry(self):
        with pytest.raises(DecodeError):
            KeyShareEntry.decode(b"\x00")

    def test_length_mismatch(self):
        entry = KeyShareEntry(29, b"abc").encode()
        with pytest.raises(DecodeError):
            KeyShareEntry.decode(entry + b"extra")

    def test_group_name_mapping(self):
        for name, gid in KEM_GROUP_IDS.items():
            assert kem_name_for_group(gid) == name

    def test_unknown_group(self):
        with pytest.raises(DecodeError):
            kem_name_for_group(0x9999)


class TestNamedPayloads:
    def test_server_name_roundtrip(self):
        ext = server_name_extension("www.example.com")
        assert decode_server_name(ext) == "www.example.com"

    def test_server_name_malformed(self):
        with pytest.raises(DecodeError):
            decode_server_name(Extension(ExtensionType.SERVER_NAME, b"\x00\x01"))

    def test_supported_versions(self):
        assert supported_versions_client().data == b"\x02\x03\x04"

    def test_signature_algorithms_size(self):
        ext = signature_algorithms_extension([1, 2, 3])
        assert len(ext.data) == 2 + 6

    def test_supported_groups_size(self):
        ext = supported_groups_extension(list(KEM_GROUP_IDS.values()))
        assert len(ext.data) == 2 + 2 * len(KEM_GROUP_IDS)

    def test_scheme_name_mapping(self):
        for name, sid in SIGNATURE_SCHEME_IDS.items():
            assert signature_algorithm_for_scheme(sid) == name

    def test_unknown_scheme(self):
        with pytest.raises(DecodeError):
            signature_algorithm_for_scheme(0x0000)
