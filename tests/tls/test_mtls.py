"""Mutual-TLS handshakes with bidirectional ICA suppression (§6).

The server advertises its known-ICA filter inside EncryptedExtensions —
encrypted on the wire, so unlike the ClientHello extension it leaks
nothing to passive observers — and the client suppresses its own chain
against it. The client-side false positive (server's filter wrongly
claims it knows one of the client's ICAs... i.e. the *client* wrongly
omits a cert the server lacks) is recovered by retrying with client-side
suppression disabled.
"""

import pytest

from repro.core import ClientSuppressor, ServerSuppressor
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import (
    ClientConfig,
    HandshakeOutcome,
    ServerConfig,
    run_handshake,
)


@pytest.fixture(scope="module")
def world():
    """Separate server-side and client-side PKIs (typical mTLS: a public
    web PKI for servers, a private one for client devices)."""
    server_pki = build_hierarchy("dilithium2", total_icas=12, num_roots=2, seed=71)
    client_pki = build_hierarchy("falcon-512", total_icas=8, num_roots=1, seed=72)
    return server_pki, client_pki


def mtls_configs(
    world,
    server_knows_client_icas=True,
    server_advertises_filter=True,
    client_uses_own_suppression=True,
    client_has_cache=True,
):
    server_pki, client_pki = world
    server_cred = server_pki.issue_credential(
        "api.example", server_pki.paths_by_depth(2)[0]
    )
    client_cred = client_pki.issue_credential(
        "device-7.fleet", client_pki.paths_by_depth(2)[0]
    )

    # Server side: trust anchors + ICA cache for client chains, and its
    # own known-ICA filter advertised in EncryptedExtensions.
    client_ica_cache = (
        {c.subject: c for c in client_pki.ica_certificates()}
        if server_knows_client_icas
        else {}
    )
    server_filter_payload = None
    if server_advertises_filter:
        server_side = ClientSuppressor(
            preload=IntermediatePreload(
                client_pki.ica_certificates()
                if server_knows_client_icas
                else server_pki.ica_certificates()  # wrong population
            ),
            budget_bytes=None,
        )
        server_filter_payload = server_side.extension_payload()

    server_config = ServerConfig(
        credential=server_cred,
        request_client_certificate=True,
        client_trust_store=client_pki.trust_store(),
        client_issuer_lookup=client_ica_cache.get,
        ica_filter_payload=server_filter_payload,
        at_time=50,
    )

    # Client side: verifies the server chain, authenticates with its own.
    client_cache = (
        {c.subject: c for c in server_pki.ica_certificates()}
        if client_has_cache
        else {}
    )
    client_config = ClientConfig(
        trust_store=server_pki.trust_store(),
        hostname="api.example",
        at_time=50,
        issuer_lookup=client_cache.get,
        credential=client_cred,
        own_suppression_handler=(
            ServerSuppressor() if client_uses_own_suppression else None
        ),
    )
    return client_config, server_config, server_cred, client_cred


class TestMutualAuthentication:
    def test_full_mtls_completes(self, world):
        cc, sc, _, _ = mtls_configs(world, server_advertises_filter=False,
                                    client_uses_own_suppression=False)
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.COMPLETED

    def test_client_without_credential_fails(self, world):
        cc, sc, _, _ = mtls_configs(world)
        cc.credential = None
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.FAILED
        assert "none is configured" in trace.final_attempt.failure_reason

    def test_untrusted_client_chain_rejected(self, world):
        server_pki, _ = world
        cc, sc, _, _ = mtls_configs(world, server_advertises_filter=False,
                                    client_uses_own_suppression=False)
        sc.client_trust_store = server_pki.trust_store()  # wrong anchors
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.FAILED
        assert "client-auth" in trace.final_attempt.failure_reason

    def test_client_flight_carries_chain(self, world):
        cc, sc, _, client_cred = mtls_configs(
            world, server_advertises_filter=False,
            client_uses_own_suppression=False,
        )
        trace = run_handshake(cc, sc)
        # The client flight includes its leaf + 2 ICAs + CV + Finished.
        assert trace.attempts[0].client_finished_bytes > (
            client_cred.chain.transmitted_bytes()
        )


class TestClientSideSuppression:
    def test_client_icas_suppressed_against_server_filter(self, world):
        cc, sc, _, client_cred = mtls_configs(world)
        plain_cc, plain_sc, _, _ = mtls_configs(
            world, server_advertises_filter=False,
            client_uses_own_suppression=False,
        )
        suppressed = run_handshake(cc, sc)
        plain = run_handshake(plain_cc, plain_sc)
        assert suppressed.outcome is HandshakeOutcome.COMPLETED
        assert plain.outcome is HandshakeOutcome.COMPLETED
        saved = (
            plain.attempts[0].client_finished_bytes
            - suppressed.attempts[0].client_finished_bytes
        )
        assert saved >= client_cred.chain.ica_bytes()

    def test_no_suppression_when_server_advertises_nothing(self, world):
        cc, sc, _, _ = mtls_configs(world, server_advertises_filter=False)
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.COMPLETED

    def test_client_side_false_positive_retries(self, world):
        """Server advertises a filter over the WRONG population but its
        issuer cache is empty: any (false-positive) suppression by the
        client leaves the server unable to build the path; the retry
        without client-side suppression must recover. With the wrong
        filter the common case is simply no suppression at all — both
        outcomes must end in a completed handshake."""
        cc, sc, _, _ = mtls_configs(
            world,
            server_knows_client_icas=False,
            server_advertises_filter=True,
        )
        trace = run_handshake(cc, sc)
        assert trace.succeeded

    def test_forced_client_fp_recovers_via_retry(self, world):
        """Force the FP: a handler that suppresses everything while the
        server has no client-ICA cache."""
        cc, sc, _, _ = mtls_configs(world, server_knows_client_icas=False)

        def suppress_all(payload, chain):
            return set(chain.ica_fingerprints())

        cc.own_suppression_handler = suppress_all
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY
        assert trace.attempts[0].failure_reason.startswith("client-auth:")

    def test_suppressed_client_chain_completes_from_server_cache(self, world):
        """The symmetric Fig. 2 pipeline: the server completes the
        suppressed client chain from its own ICA cache."""
        cc, sc, _, client_cred = mtls_configs(world)

        def suppress_all(payload, chain):
            return set(chain.ica_fingerprints())

        cc.own_suppression_handler = suppress_all
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.COMPLETED
        assert len(trace.attempts) == 1


class TestTranscriptBinding:
    def test_tampered_client_certificate_rejected(self, world):
        from repro.tls.client import TLSClient
        from repro.tls.server import TLSServer

        cc, sc, _, _ = mtls_configs(world, server_advertises_filter=False,
                                    client_uses_own_suppression=False)
        client = TLSClient(cc)
        server = TLSServer(sc)
        flight = server.process_client_hello(client.create_client_hello())
        result = client.process_server_flight(flight.flight)
        assert result.complete
        tampered = bytearray(result.client_finished)
        tampered[50] ^= 0x01
        verdict = server.process_client_flight(bytes(tampered))
        assert not verdict.ok


class TestTraceAccounting:
    def test_client_auth_ica_accounting(self, world):
        cc, sc, _, client_cred = mtls_configs(world)
        trace = run_handshake(cc, sc)
        attempt = trace.attempts[0]
        assert attempt.client_auth_suppressed_count == client_cred.chain.num_icas
        assert attempt.client_auth_ica_bytes_suppressed == (
            client_cred.chain.ica_bytes()
        )
        assert attempt.client_auth_ica_bytes_sent == 0

    def test_no_client_auth_fields_without_mtls(self, world):
        server_pki, _ = world
        from repro.tls import ClientConfig

        cred = server_pki.issue_credential("plain.example")
        trace = run_handshake(
            ClientConfig(server_pki.trust_store(), hostname="plain.example",
                         at_time=50),
            ServerConfig(credential=cred),
        )
        attempt = trace.attempts[0]
        assert attempt.client_auth_ica_bytes_sent == 0
        assert attempt.client_auth_suppressed_count == 0


class TestDoubleFalsePositive:
    """Regression: when the retry for a server-suppression FP then tripped
    a *client-auth* FP (or vice versa), ``run_handshake`` used to fail
    terminally even though one more attempt with both features disabled
    was guaranteed to avoid either filter. The bounded third attempt must
    recover under its own outcome label."""

    def double_fp_configs(self, world):
        """Attempt 1: client advertises a filter + has no ICA cache while
        the server suppresses everything -> SERVER_SUPPRESSION_FP.
        Attempt 2 (extension off): the client suppresses its own chain
        against the server's advertised filter while the server has no
        client-ICA cache -> CLIENT_AUTH_FP. Attempt 3 (everything off)
        completes."""
        cc, sc, _, _ = mtls_configs(world, server_knows_client_icas=False)

        def suppress_all(payload, chain):
            return set(chain.ica_fingerprints())

        cc.own_suppression_handler = suppress_all
        cc.ica_filter_payload = b"advertised"
        cc.issuer_lookup = lambda name: None
        sc.suppression_handler = suppress_all
        return cc, sc

    def test_fallback_completes_with_three_attempts(self, world):
        cc, sc = self.double_fp_configs(world)
        trace = run_handshake(cc, sc)
        assert trace.outcome is HandshakeOutcome.COMPLETED_AFTER_FALLBACK
        assert trace.succeeded
        assert trace.false_positive
        assert len(trace.attempts) == 3
        first, second, third = trace.attempts
        assert first.retry_cause is not None
        assert second.retry_cause is not None
        assert second.retry_cause is not first.retry_cause
        assert third.retry_cause is None
        assert third.succeeded

    def test_fallback_attempt_disables_both_features(self, world):
        cc, sc = self.double_fp_configs(world)
        trace = run_handshake(cc, sc)
        third = trace.attempts[-1]
        assert not third.used_suppression_extension
        assert third.client_auth_suppressed_count == 0

    def test_fallback_metrics_accounting(self, world):
        from repro import obs

        obs.disable()
        reg = obs.enable()
        try:
            cc, sc = self.double_fp_configs(world)
            run_handshake(cc, sc)
            assert reg.counter("tls.handshake.attempts") == 3
            assert reg.counter("tls.handshake.runs") == 1
            # One typed retry per non-final attempt: attempts == runs + retries.
            assert (
                reg.counter("tls.handshake.retries", (("cause", "server-fp"),))
                + reg.counter(
                    "tls.handshake.retries", (("cause", "client-auth-fp"),)
                )
                == 2
            )
            assert (
                reg.counter(
                    "tls.handshake.outcomes",
                    (("outcome", "completed-after-fallback"),),
                )
                == 1
            )
        finally:
            obs.disable()
