"""Tests for TLS record framing."""

import pytest

from repro.errors import DecodeError
from repro.tls.record import (
    MAX_FRAGMENT_BYTES,
    RECORD_HEADER_BYTES,
    ContentType,
    coalesce_handshake,
    fragment_payload,
    parse_records,
    wire_size,
)


class TestFragmentation:
    def test_empty_payload(self):
        assert fragment_payload(b"") == []

    def test_single_record(self):
        records = fragment_payload(b"hello")
        assert len(records) == 1
        assert records[0][0] == ContentType.HANDSHAKE
        assert records[0][-5:] == b"hello"

    def test_exact_boundary(self):
        records = fragment_payload(b"x" * MAX_FRAGMENT_BYTES)
        assert len(records) == 1

    def test_one_byte_over_boundary(self):
        records = fragment_payload(b"x" * (MAX_FRAGMENT_BYTES + 1))
        assert len(records) == 2
        assert len(records[1]) == RECORD_HEADER_BYTES + 1

    def test_large_payload_fragment_count(self):
        payload = b"x" * (3 * MAX_FRAGMENT_BYTES + 100)
        assert len(fragment_payload(payload)) == 4


class TestWireSize:
    def test_zero(self):
        assert wire_size(0) == 0

    def test_small(self):
        assert wire_size(100) == 105

    def test_multi_record(self):
        payload = 2 * MAX_FRAGMENT_BYTES + 1
        assert wire_size(payload) == payload + 3 * RECORD_HEADER_BYTES

    def test_matches_actual_framing(self):
        for size in (1, 1000, MAX_FRAGMENT_BYTES, MAX_FRAGMENT_BYTES * 2 + 7):
            payload = b"y" * size
            framed = b"".join(fragment_payload(payload))
            assert len(framed) == wire_size(size)


class TestParsing:
    def test_roundtrip(self):
        payload = bytes(range(256)) * 200
        framed = b"".join(fragment_payload(payload))
        assert coalesce_handshake(framed) == payload

    def test_content_types_preserved(self):
        framed = b"".join(fragment_payload(b"abc", ContentType.ALERT))
        [(ctype, frag)] = parse_records(framed)
        assert ctype == ContentType.ALERT and frag == b"abc"

    def test_truncated_header(self):
        with pytest.raises(DecodeError):
            parse_records(b"\x16\x03\x03")

    def test_truncated_fragment(self):
        framed = b"".join(fragment_payload(b"abcdef"))
        with pytest.raises(DecodeError):
            parse_records(framed[:-1])

    def test_bad_version(self):
        with pytest.raises(DecodeError):
            parse_records(b"\x16\x03\x09\x00\x01a")

    def test_coalesce_rejects_non_handshake(self):
        framed = b"".join(fragment_payload(b"abc", ContentType.ALERT))
        with pytest.raises(DecodeError):
            coalesce_handshake(framed)
