"""Fuzzing the TLS decoders: arbitrary bytes must raise DecodeError (or
parse), never escape with anything else.

The server feeds attacker-controlled bytes into these paths (ClientHello,
extensions, filter payloads), so 'crashes cleanly' is a security property
of the suppression deployment, not just hygiene.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amq.serialization import deserialize_filter
from repro.errors import DecodeError, FilterSerializationError, ReproError
from repro.tls.ech import ECHConfig, decrypt_client_hello
from repro.tls.extensions import KeyShareEntry, decode_extensions
from repro.tls.messages import (
    CertificateMessage,
    ClientHello,
    ServerHello,
    decode_handshake,
)
from repro.tls.record import parse_records

fuzz = settings(max_examples=150, deadline=None)


@fuzz
@given(blob=st.binary(max_size=256))
def test_decode_handshake_never_crashes(blob):
    try:
        decode_handshake(blob)
    except DecodeError:
        pass


@fuzz
@given(blob=st.binary(max_size=256))
def test_record_parser_never_crashes(blob):
    try:
        parse_records(blob)
    except DecodeError:
        pass


@fuzz
@given(blob=st.binary(max_size=128))
def test_extension_decoder_never_crashes(blob):
    try:
        decode_extensions(blob)
    except DecodeError:
        pass


@fuzz
@given(blob=st.binary(max_size=128))
def test_keyshare_decoder_never_crashes(blob):
    try:
        KeyShareEntry.decode(blob)
    except DecodeError:
        pass


@fuzz
@given(blob=st.binary(max_size=256))
def test_certificate_message_decoder_never_crashes(blob):
    try:
        CertificateMessage.decode_body(blob)
    except DecodeError:
        pass


@fuzz
@given(blob=st.binary(max_size=256))
def test_hello_decoders_never_crash(blob):
    for decoder in (ClientHello.decode_body, ServerHello.decode_body):
        try:
            decoder(blob)
        except DecodeError:
            pass


@fuzz
@given(blob=st.binary(max_size=256))
def test_filter_deserializer_never_crashes(blob):
    """The server-side entry point for attacker-controlled filter bytes."""
    try:
        deserialize_filter(blob)
    except (FilterSerializationError, ReproError):
        pass


@fuzz
@given(blob=st.binary(max_size=256))
def test_ech_decryptor_never_crashes(blob):
    try:
        decrypt_client_hello(blob, ECHConfig(1, "p.example"))
    except DecodeError:
        pass


@fuzz
@given(blob=st.binary(min_size=16, max_size=400))
def test_server_survives_arbitrary_client_hello_bytes(blob):
    """The full server path: any input either yields a flight or a clean
    DecodeError."""
    from repro.pki import build_hierarchy
    from repro.tls.server import ServerConfig, TLSServer

    server = TLSServer(
        ServerConfig(
            credential=_CREDENTIAL,
        )
    )
    try:
        server.process_client_hello(blob)
    except DecodeError:
        pass


from repro.pki import build_hierarchy as _bh  # noqa: E402

_CREDENTIAL = _bh("ecdsa-p256", total_icas=2, num_roots=1, seed=0xF22).issue_credential(
    "fuzz.example"
)
