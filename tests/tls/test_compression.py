"""Tests for RFC 8879 certificate compression."""

import pytest

from repro.errors import DecodeError
from repro.tls.compression import (
    ALGORITHM_ZLIB,
    COMPRESSED_CERTIFICATE_TYPE,
    CompressedCertificate,
    certificate_message_for,
    compare_mechanisms,
    compress_certificate_message,
    decompress_certificate_message,
)
from repro.tls.messages import split_handshake_stream


@pytest.fixture(scope="module")
def chains():
    from repro.webmodel.session_sim import _micro_credential

    conventional, _ = _micro_credential("ecdsa-p256", 2)
    pq, _ = _micro_credential("dilithium3", 2)
    return conventional.chain, pq.chain


class TestRoundTrip:
    def test_compress_decompress(self, chains):
        conventional, _ = chains
        msg = certificate_message_for(conventional)
        compressed = compress_certificate_message(msg)
        assert decompress_certificate_message(compressed) == msg

    def test_wire_framing(self, chains):
        conventional, _ = chains
        msg = certificate_message_for(conventional)
        wire = compress_certificate_message(msg).encode()
        [(msg_type, body)] = split_handshake_stream(wire)
        assert msg_type == COMPRESSED_CERTIFICATE_TYPE
        decoded = CompressedCertificate.decode_body(body)
        assert decompress_certificate_message(decoded) == msg

    def test_suppressed_message_roundtrip(self, chains):
        _, pq = chains
        msg = certificate_message_for(pq, set(pq.ica_fingerprints()))
        compressed = compress_certificate_message(msg)
        assert decompress_certificate_message(compressed) == msg
        assert len(msg.entries) == 1


class TestGuards:
    def test_unknown_algorithm(self, chains):
        conventional, _ = chains
        c = compress_certificate_message(certificate_message_for(conventional))
        bad = CompressedCertificate(2, c.uncompressed_length, c.compressed)
        with pytest.raises(DecodeError):
            decompress_certificate_message(bad)

    def test_bomb_guard(self, chains):
        conventional, _ = chains
        c = compress_certificate_message(certificate_message_for(conventional))
        bomb = CompressedCertificate(ALGORITHM_ZLIB, 1 << 25, c.compressed)
        with pytest.raises(DecodeError):
            decompress_certificate_message(bomb)

    def test_corrupt_stream(self, chains):
        conventional, _ = chains
        c = compress_certificate_message(certificate_message_for(conventional))
        corrupt = CompressedCertificate(
            ALGORITHM_ZLIB, c.uncompressed_length, c.compressed[:-3] + b"\x00\x00\x00"
        )
        with pytest.raises(DecodeError):
            decompress_certificate_message(corrupt)

    def test_length_lie_detected(self, chains):
        conventional, _ = chains
        c = compress_certificate_message(certificate_message_for(conventional))
        liar = CompressedCertificate(
            ALGORITHM_ZLIB, c.uncompressed_length - 1, c.compressed
        )
        with pytest.raises(DecodeError):
            decompress_certificate_message(liar)

    def test_truncated_body(self):
        with pytest.raises(DecodeError):
            CompressedCertificate.decode_body(b"\x00\x01\x00")


class TestAsymmetry:
    """The experiment's core claim at unit scale."""

    def test_conventional_compresses_pq_does_not(self, chains):
        conventional, pq = chains
        conv = compare_mechanisms(conventional)
        pq_acc = compare_mechanisms(pq)
        assert conv.compression_ratio < 0.6
        assert pq_acc.compression_ratio > 0.85

    def test_suppression_is_entropy_blind(self, chains):
        conventional, pq = chains
        conv = compare_mechanisms(conventional)
        pq_acc = compare_mechanisms(pq)
        assert abs(conv.suppression_ratio - pq_acc.suppression_ratio) < 0.05

    def test_composition_dominates(self, chains):
        for chain in chains:
            acc = compare_mechanisms(chain)
            assert acc.combined_ratio <= min(
                acc.compression_ratio, acc.suppression_ratio
            ) + 1e-9
