"""Tests for the KEM simulation, key schedule and alerts."""

import pytest

from repro.pki.algorithms import KEM_ALGORITHMS, get_kem_algorithm
from repro.tls.alerts import Alert, AlertDescription, AlertLevel
from repro.tls.kem import KEMKeyPair, decapsulate, encapsulate
from repro.tls.keyschedule import (
    KeySchedule,
    hkdf_expand,
    hkdf_expand_label,
    hkdf_extract,
)


class TestKEM:
    @pytest.mark.parametrize("name", sorted(KEM_ALGORITHMS))
    def test_sizes_exact(self, name):
        alg = get_kem_algorithm(name)
        kp = KEMKeyPair(alg, seed=1)
        assert len(kp.public_key) == alg.public_key_bytes
        ct, ss = encapsulate(alg, kp.public_key, entropy_seed=7)
        assert len(ct) == alg.ciphertext_bytes
        assert len(ss) == alg.shared_secret_bytes

    def test_correctness(self):
        alg = get_kem_algorithm("kyber512")
        kp = KEMKeyPair(alg, seed=5)
        ct, ss_enc = encapsulate(alg, kp.public_key, entropy_seed=9)
        assert decapsulate(kp, ct) == ss_enc

    def test_different_entropy_different_ct(self):
        alg = get_kem_algorithm("kyber512")
        kp = KEMKeyPair(alg, seed=5)
        ct1, _ = encapsulate(alg, kp.public_key, 1)
        ct2, _ = encapsulate(alg, kp.public_key, 2)
        assert ct1 != ct2

    def test_tampered_ciphertext_changes_secret(self):
        alg = get_kem_algorithm("x25519")
        kp = KEMKeyPair(alg, seed=5)
        ct, ss = encapsulate(alg, kp.public_key, 1)
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        assert decapsulate(kp, bad) != ss

    def test_wrong_key_size_rejected(self):
        alg = get_kem_algorithm("x25519")
        with pytest.raises(ValueError):
            encapsulate(alg, b"\x00" * 31, 1)

    def test_wrong_ct_size_rejected(self):
        alg = get_kem_algorithm("x25519")
        kp = KEMKeyPair(alg, seed=5)
        with pytest.raises(ValueError):
            decapsulate(kp, b"\x00" * 31)

    def test_string_algorithm_accepted(self):
        kp = KEMKeyPair("ntru-hps-509", seed=1)
        assert len(kp.public_key) == 699


class TestHKDF:
    def test_rfc5869_test_case_1(self):
        # RFC 5869 A.1 (SHA-256).
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_expand_label_length(self):
        secret = b"\x01" * 32
        assert len(hkdf_expand_label(secret, "finished", b"", 32)) == 32

    def test_label_separates(self):
        secret = b"\x01" * 32
        assert hkdf_expand_label(secret, "a", b"", 32) != hkdf_expand_label(
            secret, "b", b"", 32
        )


class TestKeySchedule:
    def _paired(self):
        a, b = KeySchedule(), KeySchedule()
        for ks in (a, b):
            ks.update_transcript(b"client-hello-bytes")
            ks.update_transcript(b"server-hello-bytes")
            ks.inject_shared_secret(b"\x42" * 32)
            ks.update_transcript(b"rest-of-flight")
        return a, b

    def test_same_transcript_same_finished(self):
        a, b = self._paired()
        assert a.finished_mac("server") == b.finished_mac("server")
        assert b.verify_finished("server", a.finished_mac("server"))

    def test_transcript_divergence_breaks_finished(self):
        a, b = self._paired()
        b.update_transcript(b"tampered")
        assert not b.verify_finished("server", a.finished_mac("server"))

    def test_roles_have_distinct_macs(self):
        a, _ = self._paired()
        assert a.finished_mac("client") != a.finished_mac("server")

    def test_secret_required(self):
        ks = KeySchedule()
        with pytest.raises(RuntimeError):
            ks.finished_mac("client")

    def test_exporter_requires_secret(self):
        ks = KeySchedule()
        with pytest.raises(RuntimeError):
            ks.exporter_secret()

    def test_exporter_derivable_after_injection(self):
        a, b = self._paired()
        assert a.exporter_secret() == b.exporter_secret()


class TestAlerts:
    def test_roundtrip(self):
        alert = Alert.fatal(AlertDescription.UNKNOWN_CA)
        assert Alert.decode(alert.encode()) == alert
        assert alert.is_fatal

    def test_warning_not_fatal(self):
        assert not Alert(AlertLevel.WARNING, 0).is_fatal

    def test_bad_length(self):
        from repro.errors import DecodeError

        with pytest.raises(DecodeError):
            Alert.decode(b"\x02")
