"""Unit tests for the session layer's trace accounting."""

import pytest

from repro.pki import build_hierarchy
from repro.tls import ClientConfig, HandshakeOutcome, ServerConfig, run_handshake
from repro.tls.record import wire_size
from repro.tls.session import AttemptTrace, HandshakeTrace


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("dilithium2", total_icas=10, num_roots=1, seed=131)
    return h, h.trust_store(), {c.subject: c for c in h.ica_certificates()}


def make_attempt(**overrides):
    base = dict(
        client_hello_bytes=900,
        server_flight_bytes=20_000,
        client_finished_bytes=40,
        certificate_payload_bytes=15_000,
        auth_data_bytes=18_000,
        ica_bytes_sent=8_000,
        ica_bytes_suppressed=4_000,
        suppressed_ica_count=1,
        used_suppression_extension=True,
        succeeded=True,
    )
    base.update(overrides)
    return AttemptTrace(**base)


class TestAttemptTrace:
    def test_total_bytes(self):
        attempt = make_attempt()
        assert attempt.total_bytes == 900 + 20_000 + 40

    def test_wire_bytes_include_record_framing(self):
        attempt = make_attempt()
        expected = wire_size(900) + wire_size(20_000) + wire_size(40)
        assert attempt.total_wire_bytes == expected
        assert attempt.total_wire_bytes > attempt.total_bytes

    def test_client_auth_defaults_zero(self):
        attempt = make_attempt()
        assert attempt.client_auth_ica_bytes_sent == 0
        assert attempt.client_auth_suppressed_count == 0


class TestHandshakeTraceAggregates:
    def test_false_positive_pays_for_both_attempts(self):
        # Per-attempt fields describe the attempt as executed: the failed
        # suppression attempt reports the (nonzero) count matching its
        # suppressed bytes; exclusion of failures happens in aggregation.
        failed = make_attempt(succeeded=False, suppressed_ica_count=3,
                              ica_bytes_suppressed=12_000, ica_bytes_sent=0)
        retry = make_attempt(used_suppression_extension=False,
                             ica_bytes_sent=12_000, ica_bytes_suppressed=0,
                             suppressed_ica_count=0)
        trace = HandshakeTrace(
            HandshakeOutcome.COMPLETED_AFTER_RETRY, [failed, retry]
        )
        assert trace.false_positive and trace.retried
        assert trace.total_bytes == failed.total_bytes + retry.total_bytes
        # Savings only count on the attempt that completed.
        assert trace.ica_bytes_suppressed == 0
        assert trace.ica_bytes_sent == 12_000
        assert trace.suppressed_ica_count == 0

    def test_single_attempt_aggregates(self):
        attempt = make_attempt()
        trace = HandshakeTrace(HandshakeOutcome.COMPLETED, [attempt])
        assert not trace.retried and not trace.false_positive
        assert trace.succeeded
        assert trace.ica_bytes_suppressed == 4_000
        assert trace.final_attempt is attempt

    def test_failed_trace(self):
        attempt = make_attempt(succeeded=False)
        trace = HandshakeTrace(HandshakeOutcome.FAILED, [attempt])
        assert not trace.succeeded


class TestLiveTraces:
    def test_auth_data_vs_flight_consistency(self, world):
        h, store, cache = world
        cred = h.issue_credential("s.example", h.paths_by_depth(2)[0])
        trace = run_handshake(
            ClientConfig(store, hostname="s.example", at_time=50),
            ServerConfig(credential=cred),
        )
        attempt = trace.attempts[0]
        # Auth data (certs + CV sig) is strictly inside the server flight.
        assert attempt.auth_data_bytes < attempt.server_flight_bytes
        assert attempt.certificate_payload_bytes == cred.chain.transmitted_bytes()

    def test_suppression_accounting_balances(self, world):
        h, store, cache = world
        cred = h.issue_credential("b.example", h.paths_by_depth(2)[0])
        trace = run_handshake(
            ClientConfig(
                store, hostname="b.example", at_time=50,
                ica_filter_payload=b"x", issuer_lookup=cache.get,
            ),
            ServerConfig(
                credential=cred,
                suppression_handler=lambda p, c: set(c.ica_fingerprints()),
            ),
        )
        attempt = trace.attempts[0]
        assert attempt.ica_bytes_sent + attempt.ica_bytes_suppressed == (
            cred.chain.ica_bytes()
        )
        assert attempt.ica_bytes_sent == 0
