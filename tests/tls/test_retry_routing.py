"""Typed false-positive retry routing and per-attempt accounting.

``run_handshake`` must route its single retry on the typed
``RetryCause`` the failing stage recorded — never by matching substrings
of the failure reason — and every attempt's suppression accounting
(bytes *and* count) must describe the attempt as the server executed it.
"""

import pytest

from repro import obs
from repro.pki import build_hierarchy
from repro.tls import ClientConfig, HandshakeOutcome, ServerConfig, run_handshake
from repro.tls.session import RetryCause


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("dilithium2", total_icas=10, num_roots=1, seed=977)
    return h, h.trust_store(), {c.subject: c for c in h.ica_certificates()}


@pytest.fixture
def metrics():
    obs.disable()
    reg = obs.enable()
    yield reg
    obs.disable()


def suppress_all(payload, chain):
    return set(chain.ica_fingerprints())


def server_fp_configs(world, at_time=50):
    """A guaranteed server-side suppression false positive: the server
    suppresses the whole path while the client's ICA cache is empty."""
    h, store, _ = world
    cred = h.issue_credential("fp.example", h.paths_by_depth(2)[0])
    client = ClientConfig(
        store,
        hostname="fp.example",
        at_time=at_time,
        ica_filter_payload=b"x",
        issuer_lookup=lambda name: None,
    )
    server = ServerConfig(credential=cred, suppression_handler=suppress_all)
    return client, server, cred


class TestServerFpPath:
    def test_retry_without_extension_recovers(self, world, metrics):
        client, server, _ = server_fp_configs(world)
        trace = run_handshake(client, server)
        assert trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY
        assert len(trace.attempts) == 2
        first, second = trace.attempts
        assert first.retry_cause is RetryCause.SERVER_SUPPRESSION_FP
        assert first.used_suppression_extension
        assert not second.used_suppression_extension
        assert second.retry_cause is None
        assert metrics.counter(
            "tls.handshake.retries", (("cause", "server-fp"),)
        ) == 1
        assert metrics.counter("tls.handshake.attempts") == 2
        assert metrics.counter(
            "tls.handshake.outcomes", (("outcome", "completed-after-retry"),)
        ) == 1

    def test_failed_attempt_accounting_is_consistent(self, world):
        """Regression: the failed suppression attempt used to report
        ``suppressed_ica_count == 0`` next to nonzero
        ``ica_bytes_suppressed``. Both must describe what the server sent."""
        client, server, cred = server_fp_configs(world)
        trace = run_handshake(client, server)
        first = trace.attempts[0]
        assert not first.succeeded
        assert first.ica_bytes_suppressed == cred.chain.ica_bytes() > 0
        assert first.suppressed_ica_count == cred.chain.num_icas > 0
        assert first.ica_bytes_sent == 0
        # A zero count may never accompany nonzero suppressed bytes.
        assert (first.suppressed_ica_count == 0) == (
            first.ica_bytes_suppressed == 0
        )
        # Aggregates still exclude the attempt that did not complete.
        assert trace.ica_bytes_suppressed == 0
        assert trace.suppressed_ica_count == 0
        # The retry transmitted the full chain.
        assert trace.attempts[1].ica_bytes_sent == cred.chain.ica_bytes()


class TestClientAuthFpPath:
    @pytest.fixture(scope="class")
    def pkis(self):
        server_pki = build_hierarchy(
            "dilithium2", total_icas=12, num_roots=2, seed=71
        )
        client_pki = build_hierarchy(
            "falcon-512", total_icas=8, num_roots=1, seed=72
        )
        return server_pki, client_pki

    def mtls_fp_configs(self, pkis):
        """mTLS where the client over-suppresses its own chain against a
        server that cannot complete it (empty client-ICA cache)."""
        server_pki, client_pki = pkis
        server_cred = server_pki.issue_credential(
            "api.example", server_pki.paths_by_depth(2)[0]
        )
        client_cred = client_pki.issue_credential(
            "device-7.fleet", client_pki.paths_by_depth(2)[0]
        )
        server = ServerConfig(
            credential=server_cred,
            request_client_certificate=True,
            client_trust_store=client_pki.trust_store(),
            client_issuer_lookup=lambda name: None,
            ica_filter_payload=b"advertised",
            at_time=50,
        )
        cache = {c.subject: c for c in server_pki.ica_certificates()}
        client = ClientConfig(
            trust_store=server_pki.trust_store(),
            hostname="api.example",
            at_time=50,
            issuer_lookup=cache.get,
            credential=client_cred,
            own_suppression_handler=suppress_all,
        )
        return client, server

    def test_retry_without_own_suppression_recovers(self, pkis, metrics):
        client, server = self.mtls_fp_configs(pkis)
        trace = run_handshake(client, server)
        assert trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY
        first, second = trace.attempts
        assert first.retry_cause is RetryCause.CLIENT_AUTH_FP
        assert first.failure_reason.startswith("client-auth:")
        assert first.client_auth_suppressed_count > 0
        assert second.client_auth_suppressed_count == 0
        assert metrics.counter(
            "tls.handshake.retries", (("cause", "client-auth-fp"),)
        ) == 1
        assert metrics.counter("tls.handshake.attempts") == 2

    def test_cause_survives_without_metrics(self, pkis):
        client, server = self.mtls_fp_configs(pkis)
        trace = run_handshake(client, server)
        assert trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY
        assert trace.attempts[0].retry_cause is RetryCause.CLIENT_AUTH_FP


class TestRetryAlsoFails:
    def test_failed_retry_reports_both_attempts(self, world, metrics):
        """First attempt: path incomplete (typed server-fp). Retry sends
        the full chain, which then fails *validation* (certificates long
        expired) — the handshake ends FAILED after exactly two attempts."""
        client, server, _ = server_fp_configs(world, at_time=10**9)
        trace = run_handshake(client, server)
        assert trace.outcome is HandshakeOutcome.FAILED
        assert len(trace.attempts) == 2
        assert trace.attempts[0].retry_cause is RetryCause.SERVER_SUPPRESSION_FP
        assert not trace.attempts[1].succeeded
        assert trace.attempts[1].retry_cause is None
        assert metrics.counter(
            "tls.handshake.outcomes", (("outcome", "failed"),)
        ) == 1
        assert metrics.counter(
            "tls.handshake.retries", (("cause", "server-fp"),)
        ) == 1
        assert metrics.counter("tls.handshake.attempts") == 2


class TestNoStringMatching:
    def test_reason_mentioning_phrase_does_not_trigger_retry(self, world, metrics):
        """Regression for the substring-routing bug: a hostname-mismatch
        failure whose reason merely *mentions* "cannot complete path"
        (the subject name contains it) must not be treated as a
        suppression false positive."""
        h, store, cache = world
        cred = h.issue_credential(
            "cannot complete path.example", h.paths_by_depth(2)[0]
        )
        client = ClientConfig(
            store,
            hostname="other.example",
            at_time=50,
            ica_filter_payload=b"x",
            issuer_lookup=cache.get,
        )
        trace = run_handshake(client, ServerConfig(credential=cred))
        assert "cannot complete path" in trace.final_attempt.failure_reason
        assert trace.outcome is HandshakeOutcome.FAILED
        assert len(trace.attempts) == 1  # the old router retried here
        assert trace.attempts[0].retry_cause is None
        assert metrics.counter("tls.handshake.retries", (("cause", "server-fp"),)) == 0
        assert metrics.counter(
            "tls.handshake.outcomes", (("outcome", "failed"),)
        ) == 1

    def test_validation_failure_on_complete_chain_does_not_retry(self, world):
        """A chain that reassembles but fails validation is not a
        suppression artifact, even with the extension advertised."""
        h, store, cache = world
        cred = h.issue_credential("expired.example", h.paths_by_depth(2)[0])
        client = ClientConfig(
            store,
            hostname="expired.example",
            at_time=10**9,  # far beyond every validity window
            ica_filter_payload=b"x",
            issuer_lookup=cache.get,
        )
        trace = run_handshake(client, ServerConfig(credential=cred))
        assert trace.outcome is HandshakeOutcome.FAILED
        assert len(trace.attempts) == 1
        assert trace.attempts[0].retry_cause is None
