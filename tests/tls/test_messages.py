"""Tests for handshake message codecs."""

import pytest

from repro.errors import DecodeError
from repro.tls.extensions import Extension
from repro.tls.messages import (
    CertificateEntry,
    CertificateMessage,
    CertificateVerify,
    ClientHello,
    EncryptedExtensions,
    Finished,
    HandshakeType,
    ServerHello,
    decode_handshake,
    encode_handshake,
    split_handshake_stream,
)


def sample_client_hello():
    return ClientHello(
        random=b"\x01" * 32,
        session_id=b"\x02" * 32,
        extensions=(Extension(43, b"\x02\x03\x04"), Extension(0xFE00, b"filt")),
    )


def sample_server_hello():
    return ServerHello(
        random=b"\x03" * 32,
        session_id=b"\x02" * 32,
        extensions=(Extension(51, b"\x00\x1d\x00\x02hi"),),
    )


class TestStreamFraming:
    def test_split_roundtrip(self):
        data = encode_handshake(1, b"aaa") + encode_handshake(2, b"bb")
        assert split_handshake_stream(data) == [(1, b"aaa"), (2, b"bb")]

    def test_truncated_header(self):
        with pytest.raises(DecodeError):
            split_handshake_stream(b"\x01\x00")

    def test_truncated_body(self):
        data = encode_handshake(1, b"aaaa")
        with pytest.raises(DecodeError):
            split_handshake_stream(data[:-1])

    def test_unknown_type_rejected_by_decoder(self):
        with pytest.raises(DecodeError):
            decode_handshake(encode_handshake(99, b""))


class TestClientHello:
    def test_roundtrip(self):
        hello = sample_client_hello()
        [decoded] = decode_handshake(hello.encode())
        assert decoded == hello

    def test_header_type(self):
        assert sample_client_hello().encode()[0] == HandshakeType.CLIENT_HELLO

    def test_too_short(self):
        with pytest.raises(DecodeError):
            ClientHello.decode_body(b"\x03\x03" + b"\x00" * 10)

    def test_trailing_garbage_rejected(self):
        body = sample_client_hello().encode()[4:]
        with pytest.raises(DecodeError):
            ClientHello.decode_body(body + b"\x00")


class TestServerHello:
    def test_roundtrip(self):
        hello = sample_server_hello()
        [decoded] = decode_handshake(hello.encode())
        assert decoded == hello

    def test_cipher_suite_preserved(self):
        hello = ServerHello(
            random=b"\x00" * 32, session_id=b"", extensions=(), cipher_suite=0x1302
        )
        [decoded] = decode_handshake(hello.encode())
        assert decoded.cipher_suite == 0x1302


class TestCertificateMessage:
    def test_roundtrip_with_staple_extensions(self):
        msg = CertificateMessage(
            entries=(
                CertificateEntry(b"LEAF" * 100, (Extension(5, b"ocsp"), Extension(18, b"sct"))),
                CertificateEntry(b"ICA" * 200),
            )
        )
        [decoded] = decode_handshake(msg.encode())
        assert decoded == msg

    def test_payload_accounting(self):
        msg = CertificateMessage(
            entries=(CertificateEntry(b"a" * 10), CertificateEntry(b"b" * 20))
        )
        assert msg.certificate_payload_bytes() == 30

    def test_suppression_shrinks_message(self):
        full = CertificateMessage(
            entries=(CertificateEntry(b"L" * 500), CertificateEntry(b"I" * 500))
        )
        suppressed = CertificateMessage(entries=(CertificateEntry(b"L" * 500),))
        assert len(suppressed.encode()) < len(full.encode())

    def test_empty_message_rejected(self):
        with pytest.raises(DecodeError):
            CertificateMessage.decode_body(b"")

    def test_length_mismatch_rejected(self):
        good = CertificateMessage(entries=(CertificateEntry(b"x" * 5),)).encode()[4:]
        with pytest.raises(DecodeError):
            CertificateMessage.decode_body(good + b"\x00")

    def test_context_preserved(self):
        msg = CertificateMessage(entries=(CertificateEntry(b"c"),), context=b"ctx")
        [decoded] = decode_handshake(msg.encode())
        assert decoded.context == b"ctx"


class TestCertificateVerifyAndFinished:
    def test_cv_roundtrip(self):
        cv = CertificateVerify(scheme_id=0xFE04, signature=b"s" * 3293)
        [decoded] = decode_handshake(cv.encode())
        assert decoded == cv

    def test_cv_length_mismatch(self):
        body = CertificateVerify(1, b"abc").encode()[4:]
        with pytest.raises(DecodeError):
            CertificateVerify.decode_body(body + b"x")

    def test_finished_roundtrip(self):
        fin = Finished(verify_data=b"\xaa" * 32)
        [decoded] = decode_handshake(fin.encode())
        assert decoded == fin

    def test_finished_wrong_length(self):
        with pytest.raises(DecodeError):
            Finished.decode_body(b"\x00" * 31)


class TestMultiMessageFlight:
    def test_full_server_flight_roundtrip(self):
        flight = (
            sample_server_hello().encode()
            + EncryptedExtensions().encode()
            + CertificateMessage(entries=(CertificateEntry(b"LEAF"),)).encode()
            + CertificateVerify(1, b"sig").encode()
            + Finished(b"\x00" * 32).encode()
        )
        messages = decode_handshake(flight)
        assert [type(m).__name__ for m in messages] == [
            "ServerHello",
            "EncryptedExtensions",
            "CertificateMessage",
            "CertificateVerify",
            "Finished",
        ]
