"""End-to-end handshake tests: client + server state machines.

These exercise the complete message flows of Fig. 1 plus the suppression
behaviours of Fig. 2, entirely through the public run_handshake API.
"""

import pytest

from repro.pki import (
    KeyPair,
    OCSPStaple,
    RevocationList,
    SignedCertificateTimestamp,
    build_hierarchy,
    get_signature_algorithm,
)
from repro.tls import (
    ClientConfig,
    HandshakeOutcome,
    ServerConfig,
    TLSClient,
    TLSServer,
    run_handshake,
)
from repro.errors import UnexpectedMessageError


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("dilithium2", total_icas=25, num_roots=2, seed=77)
    store = h.trust_store()
    cache = {c.subject: c for c in h.ica_certificates()}
    return h, store, cache


def credential(world, depth=2, host="www.test.example"):
    h, _, _ = world
    return h.issue_credential(host, h.paths_by_depth(depth)[0])


def suppress_all(payload, chain):
    return set(chain.ica_fingerprints())


def suppress_none(payload, chain):
    return set()


class TestPlainHandshake:
    @pytest.mark.parametrize("kem", ["x25519", "ntru-hps-509", "kyber768"])
    def test_completes_with_any_kem(self, world, kem):
        _, store, _ = world
        cred = credential(world)
        trace = run_handshake(
            ClientConfig(store, kem_name=kem, hostname="www.test.example", at_time=5),
            ServerConfig(credential=cred),
        )
        assert trace.outcome is HandshakeOutcome.COMPLETED

    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_all_chain_depths(self, world, depth):
        h, store, _ = world
        if not h.paths_by_depth(depth):
            pytest.skip(f"fixture hierarchy lacks depth {depth}")
        cred = credential(world, depth=depth, host=f"d{depth}.example")
        trace = run_handshake(
            ClientConfig(store, hostname=f"d{depth}.example", at_time=5),
            ServerConfig(credential=cred),
        )
        assert trace.succeeded
        assert trace.attempts[0].ica_bytes_sent == cred.chain.ica_bytes()

    def test_hostname_mismatch_fails(self, world):
        _, store, _ = world
        cred = credential(world)
        trace = run_handshake(
            ClientConfig(store, hostname="other.example", at_time=5),
            ServerConfig(credential=cred),
        )
        assert trace.outcome is HandshakeOutcome.FAILED
        assert "certificate is for" in trace.final_attempt.failure_reason

    def test_untrusted_root_fails(self, world):
        other = build_hierarchy("dilithium2", total_icas=3, num_roots=1, seed=1234)
        cred = credential(world)
        trace = run_handshake(
            ClientConfig(other.trust_store(), hostname="www.test.example", at_time=5),
            ServerConfig(credential=cred),
        )
        assert trace.outcome is HandshakeOutcome.FAILED

    def test_expired_leaf_fails(self, world):
        _, store, _ = world
        cred = credential(world)
        late = cred.chain.leaf.not_after + 10
        trace = run_handshake(
            ClientConfig(store, hostname="www.test.example", at_time=late),
            ServerConfig(credential=cred),
        )
        assert trace.outcome is HandshakeOutcome.FAILED

    def test_revoked_leaf_fails_without_retry(self, world):
        _, store, _ = world
        cred = credential(world)
        rl = RevocationList()
        rl.revoke(cred.chain.leaf)
        trace = run_handshake(
            ClientConfig(
                store, hostname="www.test.example", at_time=5, revocation=rl
            ),
            ServerConfig(credential=cred),
        )
        assert trace.outcome is HandshakeOutcome.FAILED
        assert len(trace.attempts) == 1

    def test_staples_counted_in_auth_data(self, world):
        _, store, _ = world
        cred = credential(world)
        alg = get_signature_algorithm("dilithium2")
        responder = KeyPair(alg, 5)
        ocsp = OCSPStaple.create(cred.chain.leaf, responder, 1)
        scts = [
            SignedCertificateTimestamp.create(cred.chain.leaf, responder, bytes([i]) * 32, 1)
            for i in (1, 2)
        ]
        plain = run_handshake(
            ClientConfig(store, hostname="www.test.example", at_time=5),
            ServerConfig(credential=cred),
        )
        stapled = run_handshake(
            ClientConfig(store, hostname="www.test.example", at_time=5),
            ServerConfig(credential=cred, ocsp_staple=ocsp, scts=scts),
        )
        extra = stapled.auth_data_bytes - plain.auth_data_bytes
        assert extra == ocsp.size_bytes() + sum(s.size_bytes() for s in scts)


class TestSuppression:
    def test_suppression_reduces_flight(self, world):
        _, store, cache = world
        cred = credential(world)
        plain = run_handshake(
            ClientConfig(store, hostname="www.test.example", at_time=5),
            ServerConfig(credential=cred, suppression_handler=suppress_all),
        )
        suppressed = run_handshake(
            ClientConfig(
                store,
                hostname="www.test.example",
                at_time=5,
                ica_filter_payload=b"any",
                issuer_lookup=cache.get,
            ),
            ServerConfig(credential=cred, suppression_handler=suppress_all),
        )
        assert suppressed.outcome is HandshakeOutcome.COMPLETED
        assert suppressed.suppressed_ica_count == cred.chain.num_icas
        assert (
            suppressed.attempts[0].server_flight_bytes
            < plain.attempts[0].server_flight_bytes
        )
        assert suppressed.ica_bytes_suppressed == cred.chain.ica_bytes()

    def test_extension_without_server_support_is_harmless(self, world):
        _, store, cache = world
        cred = credential(world)
        trace = run_handshake(
            ClientConfig(
                store,
                hostname="www.test.example",
                at_time=5,
                ica_filter_payload=b"any",
                issuer_lookup=cache.get,
            ),
            ServerConfig(credential=cred, suppression_handler=None),
        )
        assert trace.outcome is HandshakeOutcome.COMPLETED
        assert trace.suppressed_ica_count == 0

    def test_false_positive_triggers_retry(self, world):
        """Server suppresses, client cache is empty: the paper's false
        positive. The retry must complete without the extension and pay
        for both attempts."""
        _, store, _ = world
        cred = credential(world)
        trace = run_handshake(
            ClientConfig(
                store,
                hostname="www.test.example",
                at_time=5,
                ica_filter_payload=b"any",
            ),
            ServerConfig(credential=cred, suppression_handler=suppress_all),
        )
        assert trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY
        assert trace.false_positive
        assert len(trace.attempts) == 2
        assert not trace.attempts[1].used_suppression_extension
        assert trace.attempts[1].ica_bytes_sent == cred.chain.ica_bytes()
        assert trace.total_bytes > trace.attempts[1].total_bytes

    def test_partial_cache_partial_suppression(self, world):
        """Only ICAs actually in the client cache can be relied on; if the
        server suppresses all but the client knows all, path completes."""
        _, store, cache = world
        cred = credential(world, depth=3, host="deep.example")
        trace = run_handshake(
            ClientConfig(
                store,
                hostname="deep.example",
                at_time=5,
                ica_filter_payload=b"any",
                issuer_lookup=cache.get,
            ),
            ServerConfig(credential=cred, suppression_handler=suppress_all),
        )
        assert trace.succeeded
        assert trace.suppressed_ica_count == 3

    def test_suppress_none_equals_plain(self, world):
        _, store, cache = world
        cred = credential(world)
        a = run_handshake(
            ClientConfig(
                store,
                hostname="www.test.example",
                at_time=5,
                ica_filter_payload=b"any",
                issuer_lookup=cache.get,
            ),
            ServerConfig(credential=cred, suppression_handler=suppress_none),
        )
        assert a.succeeded
        assert a.attempts[0].ica_bytes_sent == cred.chain.ica_bytes()


class TestStateMachineGuards:
    def test_client_hello_only_once(self, world):
        _, store, _ = world
        client = TLSClient(ClientConfig(store))
        client.create_client_hello()
        with pytest.raises(UnexpectedMessageError):
            client.create_client_hello()

    def test_flight_requires_hello(self, world):
        _, store, _ = world
        client = TLSClient(ClientConfig(store))
        with pytest.raises(UnexpectedMessageError):
            client.process_server_flight(b"")

    def test_server_finished_requires_flight(self, world):
        cred = credential(world)
        server = TLSServer(ServerConfig(credential=cred))
        with pytest.raises(UnexpectedMessageError):
            server.process_client_finished(b"")

    def test_tampered_flight_rejected(self, world):
        _, store, _ = world
        cred = credential(world)
        client = TLSClient(ClientConfig(store, hostname="www.test.example", at_time=5))
        server = TLSServer(ServerConfig(credential=cred))
        flight = server.process_client_hello(client.create_client_hello()).flight
        tampered = bytearray(flight)
        tampered[len(tampered) // 2] ^= 0x01
        result = client.process_server_flight(bytes(tampered))
        assert not result.complete

    def test_mitm_flight_fails_finished(self, world):
        """A flight generated against a *different* ClientHello must fail
        (transcript binding)."""
        _, store, _ = world
        cred = credential(world)
        victim = TLSClient(ClientConfig(store, hostname="www.test.example", at_time=5, seed=1))
        other = TLSClient(ClientConfig(store, hostname="www.test.example", at_time=5, seed=2))
        server = TLSServer(ServerConfig(credential=cred))
        flight = server.process_client_hello(other.create_client_hello()).flight
        victim.create_client_hello()
        result = victim.process_server_flight(flight)
        assert not result.complete
