"""Tests for the Encrypted ClientHello simulation (§6 mitigation)."""

import pytest

from repro.core import ClientSuppressor
from repro.errors import DecodeError
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import extensions as ext
from repro.tls.client import ClientConfig, TLSClient
from repro.tls.ech import (
    ECH_EXTENSION_TYPE,
    ECHConfig,
    decrypt_client_hello,
    ech_overhead_bytes,
    encrypt_client_hello,
    observable_extension_types,
)


@pytest.fixture(scope="module")
def inner_hello():
    """A real inner ClientHello carrying the IC-filter extension."""
    h = build_hierarchy("ecdsa-p256", total_icas=15, num_roots=1, seed=61)
    cs = ClientSuppressor(
        preload=IntermediatePreload(h.ica_certificates()), budget_bytes=None
    )
    client = TLSClient(
        cs.client_config(h.trust_store(), "secret-site.example", kem_name="kyber512")
    )
    return client.create_client_hello()


@pytest.fixture(scope="module")
def config():
    return ECHConfig(config_id=7, public_name="cdn-frontend.example", seed=9)


class TestRoundTrip:
    def test_decrypt_inverts_encrypt(self, inner_hello, config):
        outer = encrypt_client_hello(inner_hello, config, client_seed=3)
        assert decrypt_client_hello(outer, config) == inner_hello

    def test_different_client_seeds_differ(self, inner_hello, config):
        a = encrypt_client_hello(inner_hello, config, client_seed=1)
        b = encrypt_client_hello(inner_hello, config, client_seed=2)
        assert a != b
        assert decrypt_client_hello(a, config) == decrypt_client_hello(b, config)

    def test_wrong_config_rejected(self, inner_hello, config):
        outer = encrypt_client_hello(inner_hello, config)
        other = ECHConfig(config_id=7, public_name=config.public_name, seed=10)
        with pytest.raises(DecodeError):
            decrypt_client_hello(outer, other)

    def test_wrong_config_id_rejected(self, inner_hello, config):
        outer = encrypt_client_hello(inner_hello, config)
        with pytest.raises(DecodeError):
            decrypt_client_hello(
                outer, ECHConfig(config_id=8, public_name="x", seed=9)
            )

    def test_tampered_ciphertext_rejected(self, inner_hello, config):
        outer = bytearray(encrypt_client_hello(inner_hello, config))
        outer[len(outer) // 2] ^= 0x01
        with pytest.raises(DecodeError):
            decrypt_client_hello(bytes(outer), config)

    def test_missing_ech_extension(self, inner_hello, config):
        with pytest.raises(DecodeError):
            decrypt_client_hello(inner_hello, config)  # plain CH, no ECH


class TestPrivacyProperties:
    def test_observer_sees_no_filter(self, inner_hello, config):
        """The §6 fix: the IC-filter extension is invisible on the wire."""
        outer = encrypt_client_hello(inner_hello, config)
        visible = observable_extension_types(outer)
        assert ext.ExtensionType.ICA_SUPPRESSION not in visible
        assert ECH_EXTENSION_TYPE in visible

    def test_observer_sees_public_name_only(self, inner_hello, config):
        from repro.tls.messages import decode_handshake

        outer = encrypt_client_hello(inner_hello, config)
        [hello] = decode_handshake(outer)
        sni = ext.find_extension(hello.extensions, ext.ExtensionType.SERVER_NAME)
        assert ext.decode_server_name(sni) == "cdn-frontend.example"
        assert b"secret-site" not in outer

    def test_distinct_filters_indistinguishable_sizes(self, config):
        """Two clients with different caches produce outer hellos of equal
        length when the inner hellos have equal length."""
        h = build_hierarchy("ecdsa-p256", total_icas=20, num_roots=1, seed=62)
        icas = h.ica_certificates()
        outers = []
        for subset in (icas[:10], icas[10:20]):
            cs = ClientSuppressor(
                preload=IntermediatePreload(subset), budget_bytes=None
            )
            client = TLSClient(
                cs.client_config(h.trust_store(), "site.example", kem_name="kyber512")
            )
            outers.append(
                encrypt_client_hello(client.create_client_hello(), config)
            )
        assert len(outers[0]) == len(outers[1])


class TestBudgetImpact:
    def test_overhead_is_modest_and_stable(self):
        small = ech_overhead_bytes(500)
        large = ech_overhead_bytes(2000)
        assert small == large  # framing is size-independent
        assert 100 <= small <= 350

    def test_pq_hello_with_ech_still_single_flight(self, inner_hello, config):
        from repro.netsim.tcp import flights_needed

        outer = encrypt_client_hello(inner_hello, config)
        assert flights_needed(len(outer)) == 1
