"""Tests for the deterministic process-pool runtime."""

import os

import pytest

from repro.runtime.parallel import (
    WorkerCrashError,
    default_jobs,
    derive_seed,
    parallel_map,
    resolve_jobs,
)


# ---------------------------------------------------------------------------
# Module-level workers (must be picklable by the pool)
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _die(x):
    os._exit(13)


_INIT_STATE = {}


def _remember_init(tag):
    _INIT_STATE["tag"] = tag
    _INIT_STATE.setdefault("calls", 0)
    _INIT_STATE["calls"] += 1


def _read_init(_):
    return _INIT_STATE.get("tag")


def _read_shipped(key):
    from repro.runtime import artifacts

    return artifacts.FLIGHT_SIZES.get(key)


# ---------------------------------------------------------------------------
# derive_seed
# ---------------------------------------------------------------------------


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed("ns", 1, 2) == derive_seed("ns", 1, 2)

    def test_namespaces_are_independent_streams(self):
        assert derive_seed("a", 1) != derive_seed("b", 1)

    def test_indices_are_independent(self):
        seeds = {derive_seed("ns", 0, i) for i in range(100)}
        assert len(seeds) == 100

    def test_typed_components_do_not_collide(self):
        # The classic framing bug: int 1, str "1", bytes b"1", True must
        # all hash differently.
        values = [1, "1", b"1", True, 1.0, None]
        seeds = {derive_seed("ns", v) for v in values}
        assert len(seeds) == len(values)

    def test_concatenation_does_not_collide(self):
        # ("ab", "c") vs ("a", "bc") — length framing must separate them.
        assert derive_seed("ns", "ab", "c") != derive_seed("ns", "a", "bc")

    def test_fits_bits(self):
        for i in range(50):
            assert 0 <= derive_seed("ns", i) < 2**63
        assert 0 <= derive_seed("ns", 7, bits=16) < 2**16

    def test_rejects_non_scalars(self):
        with pytest.raises(TypeError):
            derive_seed("ns", [1, 2])

    def test_not_linear(self):
        # Guard against regressing to seed * K + i arithmetic.
        a, b, c = (derive_seed("ns", 0, i) for i in range(3))
        assert b - a != c - b


# ---------------------------------------------------------------------------
# resolve_jobs
# ---------------------------------------------------------------------------


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) == default_jobs()
        assert resolve_jobs(0) == default_jobs()

    def test_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


# ---------------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------------


class TestParallelMap:
    def test_serial_path_ordered(self):
        assert parallel_map(_square, range(10), jobs=1) == [
            x * x for x in range(10)
        ]

    def test_parallel_path_ordered(self):
        assert parallel_map(_square, range(20), jobs=2) == [
            x * x for x in range(20)
        ]

    def test_parallel_matches_serial(self):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=2) == parallel_map(
            _square, items, jobs=1
        )

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_runs_serially(self):
        assert parallel_map(_square, [3], jobs=4) == [9]

    def test_exception_propagates_with_type_serial(self):
        with pytest.raises(ValueError, match="boom on 0"):
            parallel_map(_boom, range(5), jobs=1)

    def test_exception_propagates_with_type_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, range(5), jobs=2)

    def test_worker_crash_raises_worker_crash_error(self):
        with pytest.raises(WorkerCrashError):
            parallel_map(_die, range(4), jobs=2, chunksize=1)

    def test_initializer_runs_in_serial_path(self):
        _INIT_STATE.clear()
        out = parallel_map(
            _read_init, [0, 1], jobs=1, initializer=_remember_init,
            initargs=("tag-serial",),
        )
        assert out == ["tag-serial", "tag-serial"]
        assert _INIT_STATE["calls"] == 1  # once, not per item

    def test_initializer_runs_in_workers(self):
        out = parallel_map(
            _read_init, [0, 1, 2, 3], jobs=2, initializer=_remember_init,
            initargs=("tag-pool",),
        )
        assert out == ["tag-pool"] * 4

    def test_shipped_caches_reach_workers(self):
        from repro.runtime import artifacts

        key = ("__test_ship__", "kem", 0, True)
        shipped = {"flight_sizes": [(key, (111, 222))]}
        try:
            out = parallel_map(
                _read_shipped, [key] * 4, jobs=2, shipped_caches=shipped
            )
            assert out == [(111, 222)] * 4
        finally:
            artifacts.FLIGHT_SIZES._entries.pop(key, None)
