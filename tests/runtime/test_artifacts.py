"""Tests for the content-keyed artifact caches."""

import pytest

from repro.runtime import artifacts
from repro.runtime.artifacts import ContentCache, EventCounter


class TestContentCache:
    def test_hit_miss_counters(self):
        cache = ContentCache("t", max_entries=8)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.snapshot() == {"hits": 1, "misses": 1, "size": 1}

    def test_lru_bound(self):
        cache = ContentCache("t", max_entries=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.get(0) is None
        assert cache.get(9) == 9

    def test_lru_recency(self):
        cache = ContentCache("t", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes the eviction victim
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_export_import_roundtrip(self):
        src = ContentCache("src", max_entries=8)
        src.put("x", 1)
        src.put("y", 2)
        dst = ContentCache("dst", max_entries=8)
        assert dst.import_entries(src.export()) == 2
        assert dst.get("x") == 1 and dst.get("y") == 2

    def test_reset_stats_keeps_entries(self):
        cache = ContentCache("t", max_entries=8)
        cache.put("k", 1)
        cache.get("k")
        cache.reset_stats()
        assert cache.snapshot() == {"hits": 0, "misses": 0, "size": 1}
        assert cache.get("k") == 1


class TestEventCounter:
    def test_counts_and_reset(self):
        c = EventCounter("e")
        c.record_hit()
        c.record_miss()
        c.record_miss()
        assert c.snapshot() == {"hits": 1, "misses": 2}
        c.reset()
        assert c.snapshot() == {"hits": 0, "misses": 0}


class TestDisableSwitch:
    def test_disabled_cache_is_pass_through(self):
        cache = ContentCache("t", max_entries=8)
        cache.put("k", 1)
        with artifacts.disabled():
            assert not artifacts.enabled()
            assert cache.get("k") is None  # bypassed, not dropped
            cache.put("k2", 2)
            assert len(cache) == 1  # put ignored
        assert artifacts.enabled()
        assert cache.get("k") == 1

    def test_non_disableable_cache_stays_active(self):
        cache = ContentCache("t", max_entries=8, disableable=False)
        with artifacts.disabled():
            cache.put("k", 1)
            assert cache.get("k") == 1

    def test_disabled_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with artifacts.disabled():
                raise RuntimeError("x")
        assert artifacts.enabled()


class TestRegistry:
    def test_stats_covers_every_named_cache(self):
        snap = artifacts.stats()
        for name in (
            "cert_decode",
            "signature_bytes",
            "verified_chains",
            "filter_builds",
            "staples",
            "flight_sizes",
            "der_encode",
        ):
            assert name in snap
            assert {"hits", "misses"} <= set(snap[name])

    def test_export_shippable_only_ships_shippable(self):
        key = ("__test_export__", "kem", 1, False)
        artifacts.FLIGHT_SIZES.put(key, (1, 2))
        artifacts.CERT_DECODE.put(b"__test_export__", object())
        try:
            shipped = artifacts.export_shippable()
            assert "flight_sizes" in shipped
            assert "cert_decode" not in shipped
            assert (key, (1, 2)) in shipped["flight_sizes"]
        finally:
            artifacts.FLIGHT_SIZES._entries.pop(key, None)
            artifacts.CERT_DECODE._entries.pop(b"__test_export__", None)

    def test_import_entries_ignores_unknown_names(self):
        assert artifacts.import_entries({"no_such_cache": [("k", 1)]}) == 0
