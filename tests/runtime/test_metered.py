"""Metered fan-out: per-item metric capture and deterministic merging."""

import pytest

from repro import obs
from repro.obs.export import deterministic_counters
from repro.runtime import artifacts
from repro.runtime.parallel import parallel_map, run_metered


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    artifacts.clear()
    yield
    obs.disable()
    artifacts.clear()


def record_item(item: int) -> int:
    obs.inc("work.items")
    obs.inc("work.value", item)
    obs.observe("work.size", float(item))
    return item * 2


def touch_cache(item: int) -> int:
    key = ("metered-test", item % 2)
    cached = artifacts.STAPLES.get(key)
    if cached is None:
        artifacts.STAPLES.put(key, item)
    return item


class TestRunMetered:
    def test_returns_result_and_delta_snapshot(self):
        result, snap = run_metered(record_item, 3)
        assert result == 6
        assert snap["counters"][("work.items", ())] == 1
        assert snap["counters"][("work.value", ())] == 3

    def test_captures_even_when_disabled(self):
        assert not obs.enabled()
        _, snap = run_metered(record_item, 5)
        assert snap["counters"][("work.value", ())] == 5
        assert obs.registry() is None

    def test_does_not_leak_into_parent_registry(self):
        reg = obs.enable()
        run_metered(record_item, 4)
        assert reg.counter("work.items") == 0

    def test_records_artifact_cache_deltas(self):
        _, miss_snap = run_metered(touch_cache, 1)
        _, hit_snap = run_metered(touch_cache, 3)  # same key: 3 % 2 == 1
        labels = (("cache", "staples"),)
        assert miss_snap["counters"][("runtime.artifacts.misses", labels)] == 1
        assert ("runtime.artifacts.hits", labels) not in miss_snap["counters"]
        assert hit_snap["counters"][("runtime.artifacts.hits", labels)] == 1


class TestMeteredParallelMap:
    def _merged_counters(self, jobs):
        obs.disable()
        reg = obs.enable()
        results = parallel_map(record_item, range(8), jobs=jobs, metered=True)
        assert results == [i * 2 for i in range(8)]
        return deterministic_counters(reg.snapshot())

    def test_serial_and_parallel_merge_identically(self):
        serial = self._merged_counters(jobs=1)
        parallel = self._merged_counters(jobs=2)
        assert serial == parallel
        assert serial["work.items{}"] == 8
        assert serial["work.value{}"] == sum(range(8))

    def test_histograms_merge_in_item_order(self):
        reg = obs.enable()
        parallel_map(record_item, range(6), jobs=2, metered=True)
        count, total, minimum, maximum, samples = reg.histogram(
            "work.size"
        ).state()
        assert count == 6
        assert samples == [float(i) for i in range(6)]
        assert (minimum, maximum) == (0.0, 5.0)

    def test_unmetered_map_records_nothing(self):
        reg = obs.enable()
        parallel_map(record_item, range(4), jobs=1)
        # Items recorded into the parent registry directly (no scoping),
        # so the counters exist — but no snapshots were shipped/merged
        # twice. This guards against double-counting.
        assert reg.counter("work.items") == 4
