"""Tests for CAs and synthetic hierarchy generation."""

import pytest

from repro.errors import ConfigurationError
from repro.pki import CertificateAuthority, build_hierarchy
from repro.pki.algorithms import get_signature_algorithm


class TestCertificateAuthority:
    def test_root_is_self_signed_ca(self):
        root = CertificateAuthority.create_root("Root", "ecdsa-p256", seed=1)
        assert root.certificate.is_self_signed
        assert root.certificate.is_ca
        assert root.certificate.verify_signature(root.keypair.public_key)

    def test_subordinate_chains_to_parent(self):
        root = CertificateAuthority.create_root("Root", "ecdsa-p256", seed=1)
        ica = root.create_subordinate("ICA 1", seed=2)
        assert ica.certificate.issuer == "Root"
        assert ica.certificate.is_ca
        assert ica.certificate.verify_signature(root.keypair.public_key)

    def test_leaf_issued_by_ica(self):
        root = CertificateAuthority.create_root("Root", "ecdsa-p256", seed=1)
        ica = root.create_subordinate("ICA 1", seed=2)
        leaf = ica.issue_leaf("www.example.com", seed=3)
        assert not leaf.is_ca
        assert leaf.issuer == "ICA 1"
        assert leaf.verify_signature(ica.keypair.public_key)

    def test_serials_unique_per_issuer(self):
        root = CertificateAuthority.create_root("Root", "ecdsa-p256", seed=1)
        serials = {root.issue_leaf(f"h{i}", seed=10 + i).serial for i in range(20)}
        assert len(serials) == 20


class TestBuildHierarchy:
    def test_distinct_ica_count_exact(self):
        h = build_hierarchy("ecdsa-p256", total_icas=45, num_roots=4, seed=3)
        assert len(h.ica_certificates()) == 45

    def test_root_count(self):
        h = build_hierarchy("ecdsa-p256", total_icas=10, num_roots=4, seed=3)
        assert len(h.roots) == 4
        assert len(h.trust_store()) == 4

    def test_paths_cover_depths(self):
        h = build_hierarchy("ecdsa-p256", total_icas=60, num_roots=3, seed=3)
        depths = {p.depth for p in h.paths}
        assert {0, 1, 2}.issubset(depths)

    def test_every_issued_chain_validates(self):
        h = build_hierarchy("ecdsa-p256", total_icas=25, num_roots=3, seed=11)
        store = h.trust_store()
        for i, path in enumerate(h.paths):
            chain = h.issue_chain(f"host{i}.example", path)
            chain.validate(store, at_time=100)
            assert chain.num_icas == path.depth

    def test_deterministic_given_seed(self):
        h1 = build_hierarchy("ecdsa-p256", total_icas=12, num_roots=2, seed=5)
        h2 = build_hierarchy("ecdsa-p256", total_icas=12, num_roots=2, seed=5)
        fps1 = sorted(c.fingerprint() for c in h1.ica_certificates())
        fps2 = sorted(c.fingerprint() for c in h2.ica_certificates())
        assert fps1 == fps2

    def test_different_seeds_differ(self):
        h1 = build_hierarchy("ecdsa-p256", total_icas=12, num_roots=2, seed=5)
        h2 = build_hierarchy("ecdsa-p256", total_icas=12, num_roots=2, seed=6)
        fps1 = sorted(c.fingerprint() for c in h1.ica_certificates())
        fps2 = sorted(c.fingerprint() for c in h2.ica_certificates())
        assert fps1 != fps2

    def test_random_path_issuance(self):
        h = build_hierarchy("ecdsa-p256", total_icas=10, num_roots=2, seed=5)
        store = h.trust_store()
        for i in range(10):
            h.issue_chain(f"rand{i}.example").validate(store, at_time=100)

    def test_algorithm_object_accepted(self):
        alg = get_signature_algorithm("falcon-512")
        h = build_hierarchy(alg, total_icas=3, num_roots=1, seed=1)
        assert h.ica_certificates()[0].signature_algorithm.name == "falcon-512"

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_ica_count(self, bad):
        with pytest.raises(ConfigurationError):
            build_hierarchy("ecdsa-p256", total_icas=bad)

    def test_invalid_root_count(self):
        with pytest.raises(ConfigurationError):
            build_hierarchy("ecdsa-p256", total_icas=5, num_roots=0)


class TestMixedChains:
    """Mixed-algorithm chains (the [41]/[55] strategy the paper cites)."""

    def test_subordinate_algorithm_switch(self):
        root = CertificateAuthority.create_root("Root", "falcon-512", seed=1)
        ica = root.create_subordinate("ICA", seed=2, algorithm="dilithium2")
        # ICA cert is signed by the root's scheme...
        assert ica.certificate.signature_algorithm.name == "falcon-512"
        # ...but carries its own key and signs with its own scheme.
        assert ica.certificate.public_key.algorithm.name == "dilithium2"
        leaf = ica.issue_leaf("www.example", seed=3)
        assert leaf.signature_algorithm.name == "dilithium2"

    def test_mixed_chain_validates(self):
        from repro.pki.chain import CertificateChain
        from repro.pki.store import TrustStore

        root = CertificateAuthority.create_root("Root", "falcon-512", seed=4)
        ica = root.create_subordinate("ICA", seed=5, algorithm="dilithium2")
        leaf = ica.issue_leaf("www.example", seed=6)
        chain = CertificateChain(leaf, (ica.certificate,), root.certificate)
        chain.validate(TrustStore([root.certificate]), at_time=100)

    def test_mixed_chain_handshake_with_suppression(self):
        from repro.pki.authority import ServerCredential
        from repro.pki.chain import CertificateChain
        from repro.pki.keys import KeyPair
        from repro.pki.store import TrustStore
        from repro.tls import ClientConfig, HandshakeOutcome, ServerConfig, run_handshake

        root = CertificateAuthority.create_root("Root", "falcon-512", seed=7)
        ica = root.create_subordinate("ICA", seed=8, algorithm="dilithium2")
        keypair = KeyPair(get_signature_algorithm("dilithium2"), 9)
        leaf = ica.issue_leaf_with_key("mix.example", keypair)
        cred = ServerCredential(
            chain=CertificateChain(leaf, (ica.certificate,), root.certificate),
            keypair=keypair,
        )
        store = TrustStore([root.certificate])
        cache = {ica.certificate.subject: ica.certificate}
        trace = run_handshake(
            ClientConfig(
                store, hostname="mix.example", at_time=100,
                ica_filter_payload=b"any", issuer_lookup=cache.get,
            ),
            ServerConfig(
                credential=cred,
                suppression_handler=lambda p, c: set(c.ica_fingerprints()),
            ),
        )
        assert trace.outcome is HandshakeOutcome.COMPLETED
        assert trace.suppressed_ica_count == 1
