"""Tests for OCSP staples, SCTs, trust store, preload list, revocation."""

import pytest

from repro.errors import CertificateError
from repro.pki import (
    CertificateAuthority,
    IntermediatePreload,
    OCSPStaple,
    RevocationList,
    SignedCertificateTimestamp,
    TrustStore,
)
from repro.pki.algorithms import get_signature_algorithm
from repro.pki.keys import KeyPair
from repro.pki.ocsp import STATUS_GOOD, STATUS_REVOKED


@pytest.fixture(scope="module")
def setup():
    root = CertificateAuthority.create_root("Root", "dilithium2", seed=1)
    ica = root.create_subordinate("ICA", seed=2)
    leaf = ica.issue_leaf("www.example.com", seed=3)
    responder = KeyPair(get_signature_algorithm("dilithium2"), 50)
    return root, ica, leaf, responder


class TestOCSP:
    def test_good_staple_verifies(self, setup):
        _, _, leaf, responder = setup
        staple = OCSPStaple.create(leaf, responder, produced_at=100)
        assert staple.verify(responder.public_key)
        assert staple.is_good

    def test_revoked_status(self, setup):
        _, _, leaf, responder = setup
        staple = OCSPStaple.create(leaf, responder, 100, status=STATUS_REVOKED)
        assert not staple.is_good
        assert staple.verify(responder.public_key)

    def test_unknown_status_rejected(self, setup):
        _, _, leaf, responder = setup
        with pytest.raises(CertificateError):
            OCSPStaple.create(leaf, responder, 100, status=9)

    def test_tampered_staple_fails(self, setup):
        _, _, leaf, responder = setup
        staple = OCSPStaple.create(leaf, responder, 100)
        forged = OCSPStaple(
            serial=staple.serial,
            status=STATUS_REVOKED,  # flipped status, same signature
            produced_at=staple.produced_at,
            signature=staple.signature,
            responder_algorithm_name=staple.responder_algorithm_name,
        )
        assert not forged.verify(responder.public_key)

    def test_size_dominated_by_signature(self, setup):
        _, _, leaf, responder = setup
        staple = OCSPStaple.create(leaf, responder, 100)
        alg = get_signature_algorithm("dilithium2")
        overhead = staple.size_bytes() - alg.signature_bytes
        assert 0 < overhead < 64  # small DER body + framing


class TestSCT:
    def test_verifies(self, setup):
        _, _, leaf, responder = setup
        sct = SignedCertificateTimestamp.create(leaf, responder, b"\x05" * 32, 1_650_000_000_000)
        assert sct.verify(leaf, responder.public_key)

    def test_wrong_cert_rejected(self, setup):
        _, ica, leaf, responder = setup
        sct = SignedCertificateTimestamp.create(leaf, responder, b"\x05" * 32, 1)
        assert not sct.verify(ica.certificate, responder.public_key)

    def test_bad_log_id_length(self, setup):
        _, _, leaf, responder = setup
        with pytest.raises(ValueError):
            SignedCertificateTimestamp.create(leaf, responder, b"\x05" * 31, 1)

    def test_size_is_header_plus_signature(self, setup):
        _, _, leaf, responder = setup
        sct = SignedCertificateTimestamp.create(leaf, responder, b"\x05" * 32, 1)
        alg = get_signature_algorithm("dilithium2")
        assert sct.size_bytes() == 43 + alg.signature_bytes
        assert len(sct.to_bytes()) == sct.size_bytes()


class TestTrustStore:
    def test_roots_only(self, setup):
        root, ica, leaf, _ = setup
        store = TrustStore([root.certificate])
        with pytest.raises(CertificateError):
            store.add(ica.certificate)  # not self-signed
        with pytest.raises(CertificateError):
            store.add(leaf)  # not a CA

    def test_lookup(self, setup):
        root, _, _, _ = setup
        store = TrustStore([root.certificate])
        assert store.contains(root.certificate)
        assert store.get_by_subject("Root") is root.certificate
        assert store.get_by_subject("Nope") is None
        assert len(store) == 1
        assert list(store) == [root.certificate]


class TestIntermediatePreload:
    def test_accepts_icas_only(self, setup):
        root, ica, leaf, _ = setup
        preload = IntermediatePreload()
        preload.add(ica.certificate)
        with pytest.raises(CertificateError):
            preload.add(root.certificate)
        with pytest.raises(CertificateError):
            preload.add(leaf)
        assert ica.certificate in preload
        assert len(preload) == 1

    def test_remove_expired(self):
        root = CertificateAuthority.create_root("R", "ecdsa-p256", seed=9)
        fresh = root.create_subordinate("I-fresh", seed=10)
        stale = root.create_subordinate("I-stale", seed=11, not_before=0, not_after=50)
        preload = IntermediatePreload([fresh.certificate, stale.certificate])
        removed = preload.remove_expired(at_time=100)
        assert removed == 1
        assert fresh.certificate in preload
        assert stale.certificate not in preload

    def test_fingerprints_match_certs(self, setup):
        _, ica, _, _ = setup
        preload = IntermediatePreload([ica.certificate])
        assert preload.fingerprints() == [ica.certificate.fingerprint()]


class TestRevocationList:
    def test_revoke_and_query(self, setup):
        _, _, leaf, _ = setup
        rl = RevocationList()
        assert not rl.is_revoked(leaf)
        rl.revoke(leaf, at_time=42)
        assert rl.is_revoked(leaf)
        assert rl.revoked_at(leaf) == 42
        assert len(rl) == 1

    def test_unrevoke_missing(self, setup):
        _, _, leaf, _ = setup
        assert not RevocationList().unrevoke(leaf)

    def test_der_export_size_grows(self, setup):
        root, ica, leaf, responder = setup
        rl = RevocationList()
        empty = len(rl.to_der(responder, this_update=1))
        rl.revoke(leaf, 1)
        rl.revoke(ica.certificate, 2)
        assert len(rl.to_der(responder, this_update=1)) > empty
