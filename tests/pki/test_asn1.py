"""Unit tests for the DER codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ASN1Error
from repro.pki import asn1


class TestLength:
    @pytest.mark.parametrize(
        "n,encoded",
        [
            (0, b"\x00"),
            (0x7F, b"\x7f"),
            (0x80, b"\x81\x80"),
            (0xFF, b"\x81\xff"),
            (0x100, b"\x82\x01\x00"),
            (0xFFFF, b"\x82\xff\xff"),
        ],
    )
    def test_known_encodings(self, n, encoded):
        assert asn1.encode_length(n) == encoded

    @given(st.integers(min_value=0, max_value=2**24))
    def test_roundtrip(self, n):
        data = asn1.encode_length(n) + b"\x00" * min(n, 4)
        length, offset = asn1.decode_length(data, 0)
        assert length == n

    def test_negative_rejected(self):
        with pytest.raises(ASN1Error):
            asn1.encode_length(-1)

    def test_indefinite_rejected(self):
        with pytest.raises(ASN1Error):
            asn1.decode_length(b"\x80", 0)

    def test_non_minimal_rejected(self):
        with pytest.raises(ASN1Error):
            asn1.decode_length(b"\x81\x05", 0)  # 5 fits short form


class TestInteger:
    @pytest.mark.parametrize(
        "value,body",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x00\x80"),  # leading zero to keep it positive
            (256, b"\x01\x00"),
            (-1, b"\xff"),
            (-128, b"\x80"),
            (-129, b"\xff\x7f"),
        ],
    )
    def test_known_encodings(self, value, body):
        assert asn1.encode_integer(value) == bytes([0x02, len(body)]) + body

    @given(st.integers(min_value=-(2**127), max_value=2**127))
    def test_roundtrip(self, value):
        assert asn1.decode_integer(asn1.encode_integer(value)) == value

    def test_decode_rejects_wrong_tag(self):
        with pytest.raises(ASN1Error):
            asn1.decode_integer(asn1.encode_null())

    def test_decode_rejects_trailing(self):
        with pytest.raises(ASN1Error):
            asn1.decode_integer(asn1.encode_integer(5) + b"\x00")


class TestOID:
    @pytest.mark.parametrize(
        "dotted",
        [
            "2.5.4.3",
            "1.2.840.113549.1.1.11",
            "1.3.6.1.4.1.99999.1.1",
            "0.9.2342",
            "2.999.1",
        ],
    )
    def test_roundtrip(self, dotted):
        assert asn1.decode_oid(asn1.encode_oid(dotted)) == dotted

    def test_known_encoding(self):
        # id-at-commonName 2.5.4.3 -> 55 04 03
        assert asn1.encode_oid("2.5.4.3") == b"\x06\x03\x55\x04\x03"

    def test_large_arc(self):
        assert asn1.decode_oid(asn1.encode_oid("1.2.840")) == "1.2.840"

    def test_single_arc_rejected(self):
        with pytest.raises(ASN1Error):
            asn1.encode_oid("1")

    def test_bad_second_arc_rejected(self):
        with pytest.raises(ASN1Error):
            asn1.encode_oid("1.40.1")


class TestStringsAndMisc:
    def test_boolean(self):
        assert asn1.encode_boolean(True) == b"\x01\x01\xff"
        assert asn1.encode_boolean(False) == b"\x01\x01\x00"

    def test_null(self):
        assert asn1.encode_null() == b"\x05\x00"

    def test_octet_string_roundtrip(self):
        tag, content, _ = asn1.decode_tlv(asn1.encode_octet_string(b"abc"))
        assert tag == asn1.TAG_OCTET_STRING and content == b"abc"

    def test_bit_string_prefixes_unused_count(self):
        tag, content, _ = asn1.decode_tlv(asn1.encode_bit_string(b"\xaa", 3))
        assert content == b"\x03\xaa"

    def test_bit_string_rejects_bad_unused(self):
        with pytest.raises(ASN1Error):
            asn1.encode_bit_string(b"", 8)

    def test_generalized_time_format(self):
        tag, content, _ = asn1.decode_tlv(asn1.encode_generalized_time(0))
        assert content == b"19700101000000Z"

    def test_utf8(self):
        tag, content, _ = asn1.decode_tlv(asn1.encode_utf8_string("héllo"))
        assert content.decode("utf-8") == "héllo"

    def test_context_tag(self):
        node = asn1.parse(asn1.encode_context(3, asn1.encode_integer(1)))
        assert node.tag == 0xA3
        assert node.constructed


class TestStructure:
    def test_sequence_children(self):
        seq = asn1.encode_sequence(
            asn1.encode_integer(1), asn1.encode_utf8_string("x")
        )
        children = asn1.sequence_children(seq)
        assert len(children) == 2
        assert children[0].tag == asn1.TAG_INTEGER

    def test_nested_parse(self):
        inner = asn1.encode_sequence(asn1.encode_integer(42))
        outer = asn1.encode_sequence(inner, asn1.encode_null())
        node = asn1.parse(outer)
        assert node.children[0].children[0].content == b"\x2a"

    def test_parse_rejects_trailing_garbage(self):
        with pytest.raises(ASN1Error):
            asn1.parse(asn1.encode_null() + b"\x00")

    def test_parse_rejects_truncation(self):
        seq = asn1.encode_sequence(asn1.encode_octet_string(b"x" * 50))
        with pytest.raises(ASN1Error):
            asn1.parse(seq[:-1])

    def test_primitive_children_raises(self):
        node = asn1.parse(asn1.encode_integer(5))
        with pytest.raises(ASN1Error):
            node.children

    def test_parse_all(self):
        data = asn1.encode_integer(1) + asn1.encode_integer(2)
        nodes = asn1.parse_all(data)
        assert [asn1.decode_integer(n.encode()) for n in nodes] == [1, 2]

    def test_node_encode_roundtrip(self):
        seq = asn1.encode_sequence(asn1.encode_integer(9))
        assert asn1.parse(seq).encode() == seq

    @given(st.binary(max_size=64))
    def test_decoder_never_crashes_unhandled(self, blob):
        """Fuzz: arbitrary bytes either parse or raise ASN1Error, never
        anything else."""
        try:
            asn1.parse(blob)
        except ASN1Error:
            pass
