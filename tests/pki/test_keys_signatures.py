"""Tests for simulated keys and signatures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pki.algorithms import SIGNATURE_ALGORITHMS, get_signature_algorithm
from repro.pki.keys import KeyPair, PublicKey, expand_bytes
from repro.pki.signatures import sign_payload, verify_payload


class TestExpandBytes:
    def test_exact_length(self):
        for n in (0, 1, 31, 32, 33, 1000):
            assert len(expand_bytes(b"seed", n)) == n

    def test_deterministic(self):
        assert expand_bytes(b"s", 64) == expand_bytes(b"s", 64)

    def test_label_separates_domains(self):
        assert expand_bytes(b"s", 64, b"a") != expand_bytes(b"s", 64, b"b")

    def test_prefix_property(self):
        long = expand_bytes(b"s", 128)
        short = expand_bytes(b"s", 64)
        assert long[:64] == short


class TestKeyPair:
    @pytest.mark.parametrize("name", sorted(SIGNATURE_ALGORITHMS))
    def test_public_key_size(self, name):
        alg = get_signature_algorithm(name)
        kp = KeyPair(alg, seed=1)
        assert len(kp.public_key.key_bytes) == alg.public_key_bytes

    def test_same_seed_same_key(self):
        alg = get_signature_algorithm("dilithium2")
        assert KeyPair(alg, 7).public_key == KeyPair(alg, 7).public_key

    def test_different_seeds_differ(self):
        alg = get_signature_algorithm("dilithium2")
        assert KeyPair(alg, 7).public_key != KeyPair(alg, 8).public_key

    def test_different_algorithms_differ(self):
        a = KeyPair(get_signature_algorithm("sphincs-128s"), 7)
        b = KeyPair(get_signature_algorithm("sphincs-128f"), 7)
        assert a.public_key.key_bytes != b.public_key.key_bytes

    def test_public_key_validates_length(self):
        alg = get_signature_algorithm("ecdsa-p256")
        with pytest.raises(ValueError):
            PublicKey(alg, b"\x00" * 10)

    def test_fingerprint_is_sha256(self):
        kp = KeyPair(get_signature_algorithm("ecdsa-p256"), 3)
        assert len(kp.public_key.fingerprint()) == 32


class TestSignatures:
    @pytest.mark.parametrize("name", ["ecdsa-p256", "falcon-512", "dilithium5", "sphincs-128f"])
    def test_signature_size_exact(self, name):
        alg = get_signature_algorithm(name)
        kp = KeyPair(alg, 1)
        sig = sign_payload(kp, b"payload")
        assert len(sig) == alg.signature_bytes

    def test_verify_accepts_genuine(self):
        kp = KeyPair(get_signature_algorithm("dilithium3"), 5)
        sig = sign_payload(kp, b"hello")
        assert verify_payload(kp.public_key, b"hello", sig)

    def test_verify_rejects_tampered_payload(self):
        kp = KeyPair(get_signature_algorithm("dilithium3"), 5)
        sig = sign_payload(kp, b"hello")
        assert not verify_payload(kp.public_key, b"hellp", sig)

    def test_verify_rejects_tampered_signature(self):
        kp = KeyPair(get_signature_algorithm("dilithium3"), 5)
        sig = bytearray(sign_payload(kp, b"hello"))
        sig[0] ^= 1
        assert not verify_payload(kp.public_key, b"hello", bytes(sig))

    def test_verify_rejects_wrong_key(self):
        alg = get_signature_algorithm("dilithium3")
        sig = sign_payload(KeyPair(alg, 5), b"hello")
        assert not verify_payload(KeyPair(alg, 6).public_key, b"hello", sig)

    def test_verify_rejects_wrong_length(self):
        kp = KeyPair(get_signature_algorithm("dilithium3"), 5)
        sig = sign_payload(kp, b"hello")
        assert not verify_payload(kp.public_key, b"hello", sig[:-1])

    @given(st.binary(max_size=200))
    def test_sign_verify_roundtrip_property(self, payload):
        kp = KeyPair(get_signature_algorithm("falcon-512"), 11)
        assert verify_payload(kp.public_key, payload, sign_payload(kp, payload))
