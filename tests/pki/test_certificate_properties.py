"""Property-based tests over certificate encoding and chains."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pki.algorithms import get_signature_algorithm
from repro.pki.certificate import Certificate, CertificateBuilder
from repro.pki.keys import KeyPair

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

name_strategy = st.text(
    alphabet=string.ascii_letters + string.digits + " .-",
    min_size=1,
    max_size=48,
).filter(lambda s: s.strip() == s and s)


@relaxed
@given(
    subject=name_strategy,
    issuer=name_strategy,
    serial=st.integers(min_value=0, max_value=2**63 - 1),
    not_before=st.integers(min_value=0, max_value=2**31),
    lifetime=st.integers(min_value=1, max_value=2**31),
    is_ca=st.booleans(),
    attribute_bytes=st.integers(min_value=300, max_value=1200),
)
def test_der_roundtrip_property(
    subject, issuer, serial, not_before, lifetime, is_ca, attribute_bytes
):
    """from_der(to_der(cert)) preserves every field, for arbitrary
    well-formed inputs."""
    alg = get_signature_algorithm("ecdsa-p256")
    builder = CertificateBuilder(alg, attribute_bytes)
    cert = builder.build(
        subject=subject,
        issuer=issuer,
        subject_key=KeyPair(alg, 1),
        signer_key=KeyPair(alg, 2),
        serial=serial,
        is_ca=is_ca,
        not_before=not_before,
        not_after=not_before + lifetime,
    )
    parsed = Certificate.from_der(cert.to_der())
    assert parsed.subject == subject
    assert parsed.issuer == issuer
    assert parsed.serial == serial
    assert parsed.is_ca == is_ca
    assert parsed.not_before == not_before
    assert parsed.not_after == not_before + lifetime
    assert parsed.to_der() == cert.to_der()
    assert parsed.verify_signature(KeyPair(alg, 2).public_key)


@relaxed
@given(attribute_bytes=st.integers(min_value=250, max_value=2000))
def test_attribute_budget_hit_exactly(attribute_bytes):
    """The pad solver lands the non-crypto content on the requested
    budget, except at DER length-field quantization points (where adding
    one pad byte grows the encoding by two, making the exact target
    unreachable; the solver then lands one byte above)."""
    alg = get_signature_algorithm("falcon-512")
    builder = CertificateBuilder(alg, attribute_bytes)
    cert = builder.build(
        subject="S",
        issuer="I",
        subject_key=KeyPair(alg, 3),
        signer_key=KeyPair(alg, 4),
        serial=1,
        is_ca=True,
        not_before=0,
        not_after=10,
    )
    non_crypto = (
        cert.size_bytes() - alg.public_key_bytes - alg.signature_bytes
    )
    assert non_crypto in (attribute_bytes, attribute_bytes + 1)


def test_paper_budget_of_400_is_exact():
    """The paper's 400-byte assumption is hit exactly for every Table-1
    algorithm (asserted directly in tests/pki/test_certificate.py too)."""
    alg = get_signature_algorithm("falcon-512")
    cert = CertificateBuilder(alg, 400).build(
        subject="S", issuer="I", subject_key=KeyPair(alg, 3),
        signer_key=KeyPair(alg, 4), serial=1, is_ca=True,
        not_before=0, not_after=10,
    )
    assert cert.size_bytes() - alg.public_key_bytes - alg.signature_bytes == 400


@relaxed
@given(seeds=st.lists(st.integers(min_value=0, max_value=2**32), min_size=2,
                      max_size=6, unique=True))
def test_distinct_keys_distinct_fingerprints(seeds):
    alg = get_signature_algorithm("ecdsa-p256")
    builder = CertificateBuilder(alg)
    signer = KeyPair(alg, 999)
    fingerprints = set()
    for seed in seeds:
        cert = builder.build(
            subject="S",
            issuer="I",
            subject_key=KeyPair(alg, seed),
            signer_key=signer,
            serial=1,
            is_ca=False,
            not_before=0,
            not_after=10,
        )
        fingerprints.add(cert.fingerprint())
    assert len(fingerprints) == len(seeds)
