"""Tests for chain building, accounting, validation and path completion."""

import pytest

from repro.errors import ChainValidationError, RevocationError
from repro.pki import RevocationList, build_hierarchy
from repro.pki.chain import CertificateChain, complete_path


@pytest.fixture(scope="module")
def hierarchy():
    return build_hierarchy("dilithium2", total_icas=30, num_roots=3, seed=7)


@pytest.fixture(scope="module")
def store(hierarchy):
    return hierarchy.trust_store()


def chain_of_depth(hierarchy, depth):
    paths = hierarchy.paths_by_depth(depth)
    assert paths, f"no path of depth {depth} in fixture hierarchy"
    return hierarchy.issue_chain(f"host-d{depth}.example", paths[0])


class TestAccounting:
    def test_num_icas(self, hierarchy):
        for depth in (0, 1, 2):
            assert chain_of_depth(hierarchy, depth).num_icas == depth

    def test_transmitted_excludes_root(self, hierarchy):
        chain = chain_of_depth(hierarchy, 2)
        sent = chain.transmitted_certificates()
        assert chain.root not in sent
        assert len(sent) == 3

    def test_suppression_removes_matching_icas(self, hierarchy):
        chain = chain_of_depth(hierarchy, 2)
        fp = chain.intermediates[0].fingerprint()
        sent = chain.transmitted_certificates({fp})
        assert len(sent) == 2
        assert chain.intermediates[0] not in sent

    def test_full_suppression_sends_leaf_only(self, hierarchy):
        chain = chain_of_depth(hierarchy, 2)
        sent = chain.transmitted_certificates(set(chain.ica_fingerprints()))
        assert sent == [chain.leaf]

    def test_transmitted_bytes_consistent(self, hierarchy):
        chain = chain_of_depth(hierarchy, 2)
        assert chain.transmitted_bytes() == chain.leaf.size_bytes() + chain.ica_bytes()

    def test_ica_bytes_zero_for_direct_chain(self, hierarchy):
        assert chain_of_depth(hierarchy, 0).ica_bytes() == 0


class TestValidation:
    def test_valid_chain_passes(self, hierarchy, store):
        for depth in (0, 1, 2, 3):
            if hierarchy.paths_by_depth(depth):
                chain_of_depth(hierarchy, depth).validate(store, at_time=10)

    def test_untrusted_root_rejected(self, hierarchy):
        other = build_hierarchy("dilithium2", total_icas=2, num_roots=1, seed=99)
        chain = chain_of_depth(hierarchy, 1)
        with pytest.raises(ChainValidationError, match="trust anchor"):
            chain.validate(other.trust_store(), at_time=10)

    def test_expired_leaf_rejected(self, hierarchy, store):
        chain = chain_of_depth(hierarchy, 1)
        with pytest.raises(ChainValidationError, match="not valid at"):
            chain.validate(store, at_time=chain.leaf.not_after + 1)

    def test_wrong_issuer_order_rejected(self, hierarchy, store):
        chain = chain_of_depth(hierarchy, 2)
        scrambled = CertificateChain(
            leaf=chain.leaf,
            intermediates=tuple(reversed(chain.intermediates)),
            root=chain.root,
        )
        with pytest.raises(ChainValidationError):
            scrambled.validate(store, at_time=10)

    def test_leaf_as_issuer_rejected(self, hierarchy, store):
        donor = chain_of_depth(hierarchy, 0)
        chain = chain_of_depth(hierarchy, 1)
        bad = CertificateChain(
            leaf=chain.leaf,
            intermediates=(donor.leaf,),
            root=chain.root,
        )
        with pytest.raises(ChainValidationError):
            bad.validate(store, at_time=10)

    def test_revoked_intermediate_rejected(self, hierarchy, store):
        chain = chain_of_depth(hierarchy, 1)
        rl = RevocationList()
        rl.revoke(chain.intermediates[0], at_time=5)
        with pytest.raises(RevocationError):
            chain.validate(store, at_time=10, revocation=rl)

    def test_unrevoke_restores_validity(self, hierarchy, store):
        chain = chain_of_depth(hierarchy, 1)
        rl = RevocationList()
        rl.revoke(chain.leaf)
        assert rl.unrevoke(chain.leaf)
        chain.validate(store, at_time=10, revocation=rl)

    def test_cross_hierarchy_splice_rejected(self, store, hierarchy):
        """A leaf spliced onto an unrelated ICA must fail signature check."""
        chain_a = chain_of_depth(hierarchy, 1)
        chain_b = chain_of_depth(hierarchy, 2)
        spliced = CertificateChain(
            leaf=chain_a.leaf,
            intermediates=chain_b.intermediates,
            root=chain_b.root,
        )
        with pytest.raises(ChainValidationError):
            spliced.validate(store, at_time=10)


class TestPathCompletion:
    """Client-side rebuild of a suppressed chain (Fig. 2)."""

    def _cache(self, hierarchy):
        return {c.subject: c for c in hierarchy.ica_certificates()}

    def test_suppressed_chain_completes_from_cache(self, hierarchy, store):
        cache = self._cache(hierarchy)
        chain = chain_of_depth(hierarchy, 2)
        sent = chain.transmitted_certificates(set(chain.ica_fingerprints()))
        rebuilt = complete_path(sent, cache.get, store)
        rebuilt.validate(store, at_time=10)
        assert rebuilt.ica_fingerprints() == chain.ica_fingerprints()

    def test_partial_suppression_completes(self, hierarchy, store):
        cache = self._cache(hierarchy)
        chain = chain_of_depth(hierarchy, 2)
        suppressed = {chain.intermediates[1].fingerprint()}
        sent = chain.transmitted_certificates(suppressed)
        rebuilt = complete_path(sent, cache.get, store)
        rebuilt.validate(store, at_time=10)

    def test_unsuppressed_chain_completes_without_cache(self, hierarchy, store):
        chain = chain_of_depth(hierarchy, 2)
        rebuilt = complete_path(
            chain.transmitted_certificates(), lambda name: None, store
        )
        rebuilt.validate(store, at_time=10)

    def test_false_positive_suppression_fails_loudly(self, hierarchy, store):
        """A server suppressing an ICA the client does NOT have is the
        paper's false-positive case: completion must fail so the client
        can retry without the extension."""
        chain = chain_of_depth(hierarchy, 2)
        sent = chain.transmitted_certificates(set(chain.ica_fingerprints()))
        with pytest.raises(ChainValidationError, match="cannot complete path"):
            complete_path(sent, lambda name: None, store)

    def test_empty_message_rejected(self, hierarchy, store):
        with pytest.raises(ChainValidationError, match="empty"):
            complete_path([], lambda name: None, store)

    def test_direct_root_chain(self, hierarchy, store):
        chain = chain_of_depth(hierarchy, 0)
        rebuilt = complete_path([chain.leaf], lambda name: None, store)
        assert rebuilt.num_icas == 0
        rebuilt.validate(store, at_time=10)
