"""Tests for certificate building, encoding and parsing."""

import pytest

from repro.errors import CertificateError
from repro.pki.algorithms import get_signature_algorithm
from repro.pki.certificate import (
    Certificate,
    CertificateBuilder,
    DEFAULT_ATTRIBUTE_BYTES,
)
from repro.pki.keys import KeyPair

ALGS = ["ecdsa-p256", "rsa-2048", "falcon-512", "dilithium2", "dilithium5", "sphincs-128s"]


def make_cert(alg_name="dilithium3", is_ca=True, attribute_bytes=DEFAULT_ATTRIBUTE_BYTES,
              subject="Test ICA", issuer="Test Root", serial=7,
              not_before=0, not_after=10**10, signer_seed=1, subject_seed=2):
    alg = get_signature_algorithm(alg_name)
    builder = CertificateBuilder(alg, attribute_bytes)
    signer = KeyPair(alg, signer_seed)
    subject_key = KeyPair(alg, subject_seed)
    cert = builder.build(
        subject=subject, issuer=issuer, subject_key=subject_key,
        signer_key=signer, serial=serial, is_ca=is_ca,
        not_before=not_before, not_after=not_after,
    )
    return cert, signer, subject_key


class TestSizeAccounting:
    @pytest.mark.parametrize("alg_name", ALGS)
    def test_non_crypto_content_is_exactly_attribute_budget(self, alg_name):
        """The paper's Table-1 unit: DER size = attrs + pk + sig."""
        alg = get_signature_algorithm(alg_name)
        cert, _, _ = make_cert(alg_name)
        assert cert.size_bytes() == (
            DEFAULT_ATTRIBUTE_BYTES + alg.public_key_bytes + alg.signature_bytes
        )

    def test_custom_attribute_budget(self):
        cert, _, _ = make_cert("ecdsa-p256", attribute_bytes=700)
        alg = get_signature_algorithm("ecdsa-p256")
        assert cert.size_bytes() == 700 + alg.public_key_bytes + alg.signature_bytes

    def test_tiny_budget_clamps_to_structural_minimum(self):
        cert, _, _ = make_cert("ecdsa-p256", attribute_bytes=1)
        # Cannot go below the structural DER overhead; should still encode.
        assert cert.size_bytes() > 0
        assert Certificate.from_der(cert.to_der()).subject == "Test ICA"


class TestRoundTrip:
    @pytest.mark.parametrize("alg_name", ALGS)
    def test_from_der_inverts_to_der(self, alg_name):
        cert, _, _ = make_cert(alg_name)
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.to_der() == cert.to_der()
        assert parsed.subject == cert.subject
        assert parsed.issuer == cert.issuer
        assert parsed.serial == cert.serial
        assert parsed.is_ca == cert.is_ca
        assert parsed.not_before == cert.not_before
        assert parsed.not_after == cert.not_after
        assert parsed.public_key == cert.public_key
        assert parsed.signature == cert.signature

    def test_fingerprint_stable_through_parse(self):
        cert, _, _ = make_cert()
        assert Certificate.from_der(cert.to_der()).fingerprint() == cert.fingerprint()

    def test_leaf_roundtrip(self):
        cert, _, _ = make_cert(is_ca=False, subject="www.example.com")
        parsed = Certificate.from_der(cert.to_der())
        assert not parsed.is_ca

    def test_unicode_subject(self):
        cert, _, _ = make_cert(subject="Zertifizierungsstelle Münster")
        assert Certificate.from_der(cert.to_der()).subject == cert.subject


class TestVerification:
    def test_genuine_signature_verifies(self):
        cert, signer, _ = make_cert()
        assert cert.verify_signature(signer.public_key)

    def test_parsed_certificate_verifies(self):
        cert, signer, _ = make_cert()
        assert Certificate.from_der(cert.to_der()).verify_signature(signer.public_key)

    def test_wrong_key_rejected(self):
        cert, _, subject_key = make_cert()
        assert not cert.verify_signature(subject_key.public_key)

    def test_tampered_der_rejected(self):
        cert, signer, _ = make_cert()
        der = bytearray(cert.to_der())
        der[len(der) // 2] ^= 0x01
        try:
            tampered = Certificate.from_der(bytes(der))
        except CertificateError:
            return  # structurally broken is also a rejection
        assert not tampered.verify_signature(signer.public_key)


class TestValidity:
    def test_valid_at_window(self):
        cert, _, _ = make_cert(not_before=100, not_after=200)
        assert not cert.valid_at(99)
        assert cert.valid_at(100)
        assert cert.valid_at(200)
        assert not cert.valid_at(201)

    def test_reversed_window_rejected(self):
        with pytest.raises(CertificateError):
            make_cert(not_before=200, not_after=100)

    def test_self_signed_detection(self):
        cert, _, _ = make_cert(subject="Root X", issuer="Root X")
        assert cert.is_self_signed


class TestMalformedInput:
    def test_not_der(self):
        with pytest.raises(CertificateError):
            Certificate.from_der(b"this is not DER")

    def test_empty(self):
        with pytest.raises(CertificateError):
            Certificate.from_der(b"")

    def test_wrong_child_count(self):
        from repro.pki import asn1

        with pytest.raises(CertificateError):
            Certificate.from_der(asn1.encode_sequence(asn1.encode_null()))

    def test_truncated(self):
        cert, _, _ = make_cert()
        with pytest.raises(CertificateError):
            Certificate.from_der(cert.to_der()[:-10])
