"""Tests for the algorithm catalogue."""

import pytest

from repro.errors import UnknownAlgorithmError
from repro.pki.algorithms import (
    KEM_ALGORITHMS,
    SIGNATURE_ALGORITHMS,
    TABLE1_ALGORITHMS,
    algorithm_from_oid,
    algorithm_oid,
    conventional_algorithms,
    get_kem_algorithm,
    get_signature_algorithm,
    post_quantum_algorithms,
)


class TestCatalogueContents:
    def test_table1_algorithms_all_present(self):
        for name in TABLE1_ALGORITHMS:
            assert name in SIGNATURE_ALGORITHMS

    @pytest.mark.parametrize(
        "name,pk,sig",
        [
            ("ecdsa-p256", 64, 72),
            ("rsa-2048", 270, 256),
            ("falcon-512", 897, 666),
            ("falcon-1024", 1793, 1280),
            ("dilithium2", 1312, 2420),
            ("dilithium3", 1952, 3293),
            ("dilithium5", 2592, 4595),
            ("sphincs-128s", 32, 7856),
            ("sphincs-128f", 32, 17088),
        ],
    )
    def test_published_sizes(self, name, pk, sig):
        alg = get_signature_algorithm(name)
        assert alg.public_key_bytes == pk
        assert alg.signature_bytes == sig

    @pytest.mark.parametrize(
        "name,pk,ct",
        [
            ("x25519", 32, 32),
            ("ntru-hps-509", 699, 699),  # §5.2: "699 bytes for NTRU-HPS-509"
            ("lightsaber", 672, 736),  # §5.2: "672 bytes for Lightsaber"
            ("kyber512", 800, 768),
        ],
    )
    def test_kem_sizes(self, name, pk, ct):
        kem = get_kem_algorithm(name)
        assert kem.public_key_bytes == pk
        assert kem.ciphertext_bytes == ct

    def test_nist_levels(self):
        assert get_signature_algorithm("falcon-512").nist_level == 1
        assert get_signature_algorithm("dilithium3").nist_level == 3
        assert get_signature_algorithm("ecdsa-p256").nist_level == 0

    def test_post_quantum_flag(self):
        assert get_signature_algorithm("dilithium2").post_quantum
        assert not get_signature_algorithm("rsa-2048").post_quantum
        assert get_kem_algorithm("kyber512").post_quantum
        assert not get_kem_algorithm("x25519").post_quantum

    def test_partition(self):
        names = {a.name for a in conventional_algorithms()} | {
            a.name for a in post_quantum_algorithms()
        }
        assert names == set(SIGNATURE_ALGORITHMS)


class TestLookups:
    def test_unknown_signature(self):
        with pytest.raises(UnknownAlgorithmError):
            get_signature_algorithm("rsa-4096")

    def test_unknown_kem(self):
        with pytest.raises(UnknownAlgorithmError):
            get_kem_algorithm("sntrup761")

    def test_oid_roundtrip(self):
        for name in SIGNATURE_ALGORITHMS:
            assert algorithm_from_oid(algorithm_oid(name)).name == name

    def test_unknown_oid(self):
        with pytest.raises(UnknownAlgorithmError):
            algorithm_from_oid("1.2.3.4")


class TestAccountingHelpers:
    def test_auth_bytes_per_certificate(self):
        alg = get_signature_algorithm("dilithium3")
        assert alg.auth_bytes_per_certificate() == 400 + 1952 + 3293

    def test_auth_bytes_custom_attributes(self):
        alg = get_signature_algorithm("ecdsa-p256")
        assert alg.auth_bytes_per_certificate(100) == 100 + 64 + 72

    def test_paper_intro_rainbow_claim(self):
        """Intro sanity anchor: 'three Rainbow Ia certs amount to
        ~175.35 KB' — our catalogue reproduces the right magnitude."""
        alg = get_signature_algorithm("rainbow-ia")
        three_certs = 3 * alg.auth_bytes_per_certificate()
        assert 165_000 <= three_certs <= 190_000

    def test_paper_intro_ecdsa_claim(self):
        """'three ECDSA 384 certs are ~2.14 KB' — ECDSA-256 is slightly
        smaller; same magnitude."""
        alg = get_signature_algorithm("ecdsa-p256")
        assert 1_200 <= 3 * alg.auth_bytes_per_certificate() <= 2_500
