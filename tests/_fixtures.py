"""Single source of shared input data for tests *and* benchmarks.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both re-export from
here, so the two harnesses can never diverge on population/chain setup —
a cohort differential test and a cohort benchmark that claim to run "the
same workload" provably construct it from the same functions.

Everything here is deterministic and memoized where construction is
expensive (population builds take seconds at paper scale).
"""

from __future__ import annotations

import os
import random
from typing import Dict, Optional

from repro.amq import FilterParams, canonical_params
from repro.webmodel.population import ICAPopulation, PopulationConfig

#: Seed of the shared benchmark/test population (PR-1 era convention).
POPULATION_SEED = 1


def full_scale() -> bool:
    """True when ``REPRO_FULL`` asks for paper-scale experiment runs."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def benchmark_scale() -> Dict[str, int]:
    """The benchmark harness's workload knobs (reduced vs paper scale)."""
    if full_scale():
        return {"runs": 10, "domains": 200, "crawl": 10_000, "ops": 20_000}
    return {"runs": 3, "domains": 100, "crawl": 10_000, "ops": 5_000}


_POPULATIONS: Dict[PopulationConfig, ICAPopulation] = {}


def shared_population(
    config: Optional[PopulationConfig] = None,
) -> ICAPopulation:
    """A process-wide memoized population per config (rank assignment is
    a pure function of (seed, rank), so sharing one instance is safe and
    skips the multi-second hierarchy build on every use)."""
    if config is None:
        config = PopulationConfig(seed=POPULATION_SEED)
    population = _POPULATIONS.get(config)
    if population is None:
        population = ICAPopulation(config)
        _POPULATIONS[config] = population
    return population


def reduced_population_config(
    seed: int = 7, month: Optional[str] = None
) -> PopulationConfig:
    """A small PKI the cohort differential/golden tests and the cohort
    benchmark's equivalence smoke share: a 160-ICA universe with a tiny
    hot head, so tail destinations routinely present unknown ICAs (the
    negative probes whose false positives the suite must exercise)."""
    kwargs = dict(
        universe_icas=160, num_roots=3, hot_rank_threshold=40, seed=seed
    )
    if month is not None:
        kwargs["month"] = month
    return PopulationConfig(**kwargs)


def make_rng() -> random.Random:
    """Deterministic RNG; tests must not depend on global random state."""
    return random.Random(0xC0FFEE)


def make_items(rng: random.Random, count: int, size: int = 32):
    """Distinct random byte strings (distinctness enforced)."""
    items = set()
    while len(items) < count:
        items.add(rng.getrandbits(8 * size).to_bytes(size, "big"))
    return sorted(items)


def make_paper_params() -> FilterParams:
    """Canonical (wire-quantized) params matching §5.3: 245 ICAs,
    0.1% FPP, 0.9 load factor."""
    return canonical_params(
        FilterParams(capacity=245, fpp=1e-3, load_factor=0.9, seed=42)
    )
