"""Tests for the AMQ wire format."""

import pytest

from repro.amq import (
    FILTER_REGISTRY,
    BloomFilter,
    CuckooFilter,
    FilterParams,
    QuotientFilter,
    VacuumFilter,
    canonical_params,
    deserialize_filter,
    filter_class_for_name,
    filter_type_id,
    serialize_filter,
)
from repro.amq.serialization import (
    dequantize_fpp,
    dequantize_load_factor,
    quantize_fpp,
    quantize_load_factor,
    serialized_overhead_bytes,
)
from repro.errors import FilterSerializationError
from tests.conftest import make_items


class TestQuantizers:
    @pytest.mark.parametrize("fpp", [0.5, 0.1, 0.01, 1e-3, 1e-4, 1e-5])
    def test_fpp_roundtrip_stable(self, fpp):
        """Quantize(dequantize(quantize(x))) == quantize(x): canonical
        values survive the wire exactly."""
        e = quantize_fpp(fpp)
        assert quantize_fpp(dequantize_fpp(e)) == e

    @pytest.mark.parametrize("fpp", [0.1, 0.01, 1e-3, 1e-4])
    def test_fpp_quantization_error_small(self, fpp):
        assert abs(dequantize_fpp(quantize_fpp(fpp)) - fpp) / fpp < 0.01

    @pytest.mark.parametrize("lf", [0.5, 0.75, 0.9, 0.95, 1.0])
    def test_load_factor_roundtrip_stable(self, lf):
        e = quantize_load_factor(lf)
        assert quantize_load_factor(dequantize_load_factor(e)) == e


class TestRegistry:
    def test_all_types_registered(self):
        names = {cls.name for cls in FILTER_REGISTRY.values()}
        assert names == {
            "bloom", "counting-bloom", "cuckoo", "vacuum", "quotient", "xor"
        }

    def test_type_ids_stable(self):
        assert filter_type_id(CuckooFilter) == 3
        assert filter_type_id(VacuumFilter) == 4
        assert filter_type_id(QuotientFilter) == 5

    def test_type_id_of_instance(self, paper_params):
        assert filter_type_id(BloomFilter(paper_params)) == 1

    def test_unregistered_class_rejected(self):
        class Fake:  # not an AMQFilter subclass at all
            pass

        with pytest.raises(FilterSerializationError):
            filter_type_id(Fake)

    def test_class_for_name(self):
        assert filter_class_for_name("cuckoo") is CuckooFilter

    def test_class_for_unknown_name(self):
        with pytest.raises(FilterSerializationError):
            filter_class_for_name("ribbon")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name",
        ["bloom", "counting-bloom", "cuckoo", "vacuum", "quotient", "xor"],
    )
    def test_full_roundtrip(self, rng, name):
        cls = filter_class_for_name(name)
        params = canonical_params(
            FilterParams(capacity=245, fpp=1e-3, load_factor=0.9, seed=77)
        )
        f = cls(params)
        items = make_items(rng, 245)
        f.insert_all(items)
        g = deserialize_filter(serialize_filter(f))
        assert type(g) is cls
        assert all(g.contains(i) for i in items)
        assert g.params == params

    def test_header_overhead_is_modest(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        wire = serialize_filter(f)
        assert len(wire) - f.size_in_bytes() == serialized_overhead_bytes()
        assert serialized_overhead_bytes() <= 20

    @pytest.mark.parametrize(
        "name",
        ["bloom", "counting-bloom", "cuckoo", "vacuum", "quotient", "xor"],
    )
    def test_batch_load_serializes_byte_identically(self, rng, name):
        """A batch-loaded filter and a scalar-loaded twin are the same
        filter on the wire: ``to_bytes`` (and hence the full serialized
        image) must match byte for byte, so either endpoint may use the
        vectorized path without breaking payload memoization or filter
        dedup keyed on the wire image."""
        cls = filter_class_for_name(name)
        params = canonical_params(
            FilterParams(capacity=245, fpp=1e-3, load_factor=0.9, seed=77)
        )
        items = make_items(rng, 245)
        batch_loaded = cls(params)
        batch_loaded.insert_batch(items)
        scalar_loaded = cls(params)
        for item in items:
            scalar_loaded.insert(item)
        assert batch_loaded.to_bytes() == scalar_loaded.to_bytes()
        assert serialize_filter(batch_loaded) == serialize_filter(scalar_loaded)

    def test_seed_preserved(self, items_245):
        params = canonical_params(
            FilterParams(capacity=245, fpp=1e-3, load_factor=0.9, seed=123456)
        )
        f = CuckooFilter(params)
        f.insert_all(items_245)
        g = deserialize_filter(serialize_filter(f))
        assert g.params.seed == 123456


class TestRejection:
    def test_truncated_header(self):
        with pytest.raises(FilterSerializationError):
            deserialize_filter(b"\xa3\x01\x03")

    def test_bad_magic(self, paper_params):
        wire = bytearray(serialize_filter(CuckooFilter(paper_params)))
        wire[0] ^= 0xFF
        with pytest.raises(FilterSerializationError):
            deserialize_filter(bytes(wire))

    def test_unknown_type_id(self, paper_params):
        wire = bytearray(serialize_filter(CuckooFilter(paper_params)))
        wire[2] = 200
        with pytest.raises(FilterSerializationError):
            deserialize_filter(bytes(wire))

    def test_length_mismatch(self, paper_params):
        wire = serialize_filter(CuckooFilter(paper_params))
        with pytest.raises(FilterSerializationError):
            deserialize_filter(wire + b"\x00")

    def test_truncated_payload(self, paper_params):
        wire = serialize_filter(CuckooFilter(paper_params))
        with pytest.raises(FilterSerializationError):
            deserialize_filter(wire[:-4])

    @staticmethod
    def _with_payload_len(wire: bytes, payload: bytes) -> bytes:
        """Swap in ``payload`` and fix the header's length field, producing
        a *self-consistent* image (header length matches the bytes present)
        that only the params-derived geometry check can reject."""
        header = bytearray(wire[: serialized_overhead_bytes()])
        header[14:16] = len(payload).to_bytes(2, "big")
        return bytes(header) + payload

    @pytest.mark.parametrize("name", sorted(cls.name for cls in FILTER_REGISTRY.values()))
    def test_self_consistent_truncation_rejected(self, rng, name):
        # A peer that trusts the header's payload_len alone would build a
        # mis-sized table from this image; the decoded params pin the
        # true geometry.
        cls = filter_class_for_name(name)
        params = canonical_params(FilterParams(capacity=64, fpp=1e-3, load_factor=0.9))
        filt = cls(params)
        filt.insert_all(make_items(rng, 32))
        wire = serialize_filter(filt)
        payload = wire[serialized_overhead_bytes():]
        truncated = self._with_payload_len(wire, payload[:-1])
        with pytest.raises(FilterSerializationError, match="geometry"):
            deserialize_filter(truncated)

    def test_self_consistent_padding_rejected(self, paper_params):
        wire = serialize_filter(CuckooFilter(paper_params))
        payload = wire[serialized_overhead_bytes():]
        padded = self._with_payload_len(wire, payload + b"\x00\x00")
        with pytest.raises(FilterSerializationError, match="geometry"):
            deserialize_filter(padded)

    def test_empty_payload_with_zeroed_length_rejected(self, paper_params):
        wire = serialize_filter(CuckooFilter(paper_params))
        stripped = self._with_payload_len(wire, b"")
        with pytest.raises(FilterSerializationError, match="geometry"):
            deserialize_filter(stripped)

    def test_invalid_decoded_capacity_rejected(self, paper_params):
        # capacity=0 fails FilterParams validation; the wire layer must
        # surface that as a serialization error, not a config error.
        wire = bytearray(serialize_filter(CuckooFilter(paper_params)))
        wire[3:7] = (0).to_bytes(4, "big")
        with pytest.raises(FilterSerializationError, match="invalid filter params"):
            deserialize_filter(bytes(wire))

    def test_zero_fpp_exponent_rejected(self, paper_params):
        # The quantizer clamps to >= 1, so a zero exponent (fpp = 1.0)
        # can only come from corruption or a foreign encoder; decoding
        # it would build a filter with degenerate hash geometry.
        wire = bytearray(serialize_filter(CuckooFilter(paper_params)))
        wire[7:9] = (0).to_bytes(2, "big")
        with pytest.raises(FilterSerializationError, match="fpp"):
            deserialize_filter(bytes(wire))

    def test_zero_load_factor_rejected(self, paper_params):
        # Likewise lf_enc = 0 would dequantize to a zero load factor and
        # an infinite table; reject at the wire layer, explicitly.
        wire = bytearray(serialize_filter(CuckooFilter(paper_params)))
        wire[9] = 0
        with pytest.raises(FilterSerializationError, match="load factor"):
            deserialize_filter(bytes(wire))

    def test_geometry_error_names_expectation(self, paper_params):
        wire = serialize_filter(CuckooFilter(paper_params))
        payload = wire[serialized_overhead_bytes():]
        expected = len(payload)
        bad = self._with_payload_len(wire, payload[: expected // 2])
        with pytest.raises(FilterSerializationError, match=str(expected)):
            deserialize_filter(bad)


class TestSeedWidth:
    """Regression: the wire header's seed field is 32 bits, and
    ``serialize_filter`` used to truncate wider seeds silently — the peer
    then rebuilt the filter with a *different* hash function and every
    stored item became a false negative on the remote side."""

    WIDE_SEED = 2343948629979923722  # a real derive_seed() output

    def test_serialize_refuses_lossy_seed(self):
        params = FilterParams(
            capacity=64, fpp=1e-3, load_factor=0.9, seed=self.WIDE_SEED
        )
        with pytest.raises(FilterSerializationError, match="seed"):
            serialize_filter(CuckooFilter(params))

    def test_canonical_params_fold_seed_into_wire_width(self):
        params = canonical_params(
            FilterParams(
                capacity=64, fpp=1e-3, load_factor=0.9, seed=self.WIDE_SEED
            )
        )
        assert params.seed == self.WIDE_SEED & 0xFFFFFFFF
        assert canonical_params(params) == params

    def test_canonical_wide_seed_roundtrips_membership(self):
        params = canonical_params(
            FilterParams(
                capacity=64, fpp=1e-3, load_factor=0.9, seed=self.WIDE_SEED
            )
        )
        filt = CuckooFilter(params)
        items = make_items(__import__("random").Random(5), 40)
        for item in items:
            filt.insert(item)
        restored = deserialize_filter(serialize_filter(filt))
        assert restored.params.seed == params.seed
        assert all(restored.contains(item) for item in items)
