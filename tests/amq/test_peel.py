"""XOR-family build engine: peel edge geometry, spec differential,
seed-retry paths and construction-attempt metering.

The array-native engine (:mod:`repro.amq.peel`) must replay the scalar
specification's exact LIFO peel order — the order fixes the slot->item
matching and with it the wire image. These tests pin the engine against
:func:`repro.amq.peel.peel_spec`, against the frozen reference model,
and across the degenerate geometries the vectorized paths skip past.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.amq import FilterParams, canonical_params, peel
from repro.amq import xor as xor_module
from repro.amq.hashing import VECTOR_MIN_BATCH, np, xor_hashes_np
from repro.amq.xor import XorFilter
from repro.errors import FilterFullError

from tests.amq._reference import ReferenceXorFilter

pytestmark = pytest.mark.skipif(np is None, reason="engine tests need numpy")

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.differing_executors],
)


def make_params(capacity, fpp=1e-3, seed=0):
    return canonical_params(
        FilterParams(capacity=capacity, fpp=fpp, load_factor=0.9, seed=seed)
    )


def items_for(n, tag=b"peel"):
    return [b"%s-%06d" % (tag, i) for i in range(n)]


def engine_vs_spec_tables(items, params):
    """Build the same instance through both peel paths."""
    filt = XorFilter(params)
    triples = [filt._hashes(item, 0) for item in items]
    spec = peel.peel_spec(triples, filt._slots)
    h0, h1, h2, fp = xor_hashes_np(
        items, params.seed, filt._slots // 3, filt._fp_bits
    )
    engine = peel.peel_arrays(h0, h1, h2, fp, filt._slots, filt._fp_bits)
    return spec, engine


# ---------------------------------------------------------------------------
# Edge geometry
# ---------------------------------------------------------------------------


class TestEdgeGeometry:
    def test_empty_filter(self):
        filt = XorFilter(make_params(4))
        assert not filt.contains(b"absent")
        assert not any(filt.contains_batch([b"a", b"b", b"c"]))
        image = filt.to_bytes()
        twin = XorFilter.from_bytes(make_params(4), image)
        assert twin.to_bytes() == image

    def test_single_item(self):
        filt = XorFilter(make_params(4))
        filt.insert(b"only-item")
        assert filt.contains(b"only-item")
        ref = ReferenceXorFilter(make_params(4))
        ref.insert(b"only-item")
        assert filt.to_bytes() == ref.to_bytes()

    def test_duplicate_items_dedup(self):
        """Duplicates would leave identical triples stuck above degree 1;
        the ``dict.fromkeys`` dedup keeps the hypergraph peelable and the
        wire image must match the reference fed the same sequence."""
        params = make_params(64)
        items = [b"dup-%d" % (i % 7) for i in range(40)]
        filt = XorFilter(params)
        ref = ReferenceXorFilter(params)
        filt.insert_batch(items)
        ref.insert_batch(items)
        assert len(filt) == len(ref) == 40
        assert filt.contains(b"dup-3")
        assert filt.to_bytes() == ref.to_bytes()

    def test_capacity_boundary_prefix_contract(self):
        params = make_params(50)
        items = items_for(60, b"cap")
        filt = XorFilter(params)
        with pytest.raises(FilterFullError) as exc_info:
            filt.insert_batch(items)
        assert exc_info.value.inserted_count == 50
        assert len(filt) == 50
        # The accepted prefix must be fully queryable after the overflow.
        assert all(filt.contains_batch(items[:50]))

    def test_attach_source_items_restores_mutability(self):
        """Regression: a ``from_bytes`` copy has no item buffer, so its
        first insert used to rebuild over nothing and silently drop the
        advertised set. Reattaching the source items keeps every old
        item queryable through the post-insert reconstruction."""
        params = make_params(100, seed=4)
        items = items_for(60, b"att")
        original = XorFilter.build_from_fingerprints(params, items)
        copy = XorFilter.from_bytes(params, original.to_bytes())
        with pytest.raises(Exception):
            copy.attach_source_items(items[:10])  # count mismatch
        copy.attach_source_items(items)
        copy.insert(b"att-extra")
        assert copy.contains(b"att-extra")
        assert all(copy.contains_batch(items))

    def test_bulk_build_is_eager(self):
        """``build_from_fingerprints`` returns a constructed filter: the
        peel has already run (inside the ``amq.build`` span), so the
        first probe does not pay a hidden rebuild."""
        items = items_for(VECTOR_MIN_BATCH * 4)
        filt = XorFilter.build_from_fingerprints(make_params(200), items)
        assert not filt._dirty
        assert all(filt.contains_batch(items))


# ---------------------------------------------------------------------------
# Engine vs specification
# ---------------------------------------------------------------------------


class TestEngineMatchesSpec:
    @relaxed
    @given(
        n=st.integers(min_value=0, max_value=300),
        fpp_exp=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_packed_engine_equals_spec(self, n, fpp_exp, seed):
        params = make_params(max(n, 1), fpp=10.0**-fpp_exp, seed=seed)
        items = items_for(n)
        spec, engine = engine_vs_spec_tables(items, params)
        assert (spec is None) == (engine is None)
        assert spec == engine

    def test_wide_record_falls_back_to_spec(self):
        """3 * index_bits + fp_bits > 62 cannot pack one int64 record;
        the engine must route through the spec loops, same table out."""
        params = make_params(2000, fpp=2.0**-32)
        filt = XorFilter(params)
        assert 3 * (filt._slots - 1).bit_length() + filt._fp_bits > 62
        items = items_for(1500, b"wide")
        spec, engine = engine_vs_spec_tables(items, params)
        assert spec == engine is not None
        filt.insert_batch(items)
        assert all(filt.contains_batch(items))

    def test_production_build_uses_engine_table(self):
        items = items_for(VECTOR_MIN_BATCH * 8)
        params = make_params(300, seed=11)
        filt = XorFilter(params)
        filt.insert_batch(items)
        filt.contains(items[0])
        spec, engine = engine_vs_spec_tables(items, params)
        assert [int(v) for v in filt._table] == engine == spec

    @relaxed
    @given(
        n=st.integers(min_value=0, max_value=250),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_scalar_spec_mode_produces_identical_wire_image(self, n, seed):
        params = make_params(max(n, 1), seed=seed)
        items = items_for(n, b"mode")
        filt = XorFilter(params)
        spec_filt = XorFilter(params)
        if items:
            filt.insert_batch(items)
            spec_filt.insert_batch(items)
        image = filt.to_bytes()
        with peel.scalar_spec_mode():
            assert spec_filt.to_bytes() == image
        assert not peel.scalar_spec_active()


# ---------------------------------------------------------------------------
# numpy-absent fallback
# ---------------------------------------------------------------------------


class TestPurePythonFallback:
    @relaxed
    @given(
        n=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_numpy_absent_matches_reference(self, n, seed):
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(xor_module, "np", None)
            mp.setattr(peel, "np", None)
            params = make_params(max(n, 1), seed=seed)
            items = items_for(n, b"nonp")
            filt = XorFilter(params)
            ref = ReferenceXorFilter(params)
            if items:
                filt.insert_batch(items)
                ref.insert_batch(items)
            assert isinstance(filt._table, list)  # no array allocation
            probes = items[:50] + [b"missing-%d" % i for i in range(50)]
            assert filt.contains_batch(probes) == ref.contains_batch(probes)
            assert filt.to_bytes() == ref.to_bytes()


# ---------------------------------------------------------------------------
# Seed retries and construction-attempt metering
# ---------------------------------------------------------------------------


def force_prod_retries(monkeypatch, failures):
    """Make the first ``failures`` engine peels report a 2-core."""
    state = {"calls": 0}
    real_arrays, real_spec = peel.peel_arrays, peel.peel_spec

    def flaky_arrays(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] <= failures:
            return None
        return real_arrays(*args, **kwargs)

    def flaky_spec(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] <= failures:
            return None
        return real_spec(*args, **kwargs)

    monkeypatch.setattr(peel, "peel_arrays", flaky_arrays)
    monkeypatch.setattr(peel, "peel_spec", flaky_spec)
    return state


def force_ref_retries(monkeypatch, failures):
    real = ReferenceXorFilter._try_build

    def flaky(self, build_items, construction_seed):
        if construction_seed < failures:
            return False
        return real(self, build_items, construction_seed)

    monkeypatch.setattr(ReferenceXorFilter, "_try_build", flaky)


class TestSeedRetries:
    @pytest.mark.parametrize("failures", [1, 3])
    def test_retried_build_matches_reference_wire_image(
        self, failures, monkeypatch
    ):
        """A non-peelable first attempt bumps the construction seed in
        both implementations; table bytes and the wire header must agree."""
        params = make_params(150, seed=9)
        items = items_for(140, b"retry")
        force_prod_retries(monkeypatch, failures)
        force_ref_retries(monkeypatch, failures)
        filt = XorFilter(params)
        ref = ReferenceXorFilter(params)
        filt.insert_batch(items)
        ref.insert_batch(items)
        assert filt.to_bytes() == ref.to_bytes()
        assert filt._construction_seed == failures
        assert all(filt.contains_batch(items))

    def test_attempt_counter_and_histogram(self, monkeypatch):
        """Satellite: a seed-retry storm must be visible in
        ``--metrics-out`` — total attempts counter plus a per-rebuild
        attempts histogram."""
        params = make_params(100, seed=5)
        items = items_for(90, b"meter")
        force_prod_retries(monkeypatch, 2)
        filt = XorFilter(params)
        filt.insert_batch(items)
        with obs.scoped() as reg:
            filt.contains(items[0])  # first probe pays the build: 3 attempts
            filt.contains(items[1])  # clean filter: no further attempts
        assert filt._construction_seed == 2
        assert reg.counter("amq.xor.construction_attempts") == 3
        hist = reg.histogram("amq.xor.attempts_per_rebuild")
        assert hist is not None and hist.count == 1 and hist.total == 3

    def test_single_attempt_build_meters_one(self):
        params = make_params(80, seed=2)
        items = items_for(60, b"one")
        with obs.scoped() as reg:
            XorFilter.build_from_fingerprints(params, items)
        assert reg.counter("amq.xor.construction_attempts") == 1
        hist = reg.histogram("amq.xor.attempts_per_rebuild")
        assert hist is not None and hist.count == 1 and hist.total == 1
        # The eager producer path also lands the build span.
        span = reg.histogram("amq.build.seconds", (("backend", "xor"),))
        assert span is not None and span.count == 1

    def test_exhausted_attempts_meter_and_raise(self, monkeypatch):
        monkeypatch.setattr(peel, "peel_arrays", lambda *a, **k: None)
        monkeypatch.setattr(peel, "peel_spec", lambda *a, **k: None)
        params = make_params(60, seed=3)
        filt = XorFilter(params)
        filt.insert_batch(items_for(50, b"fail"))
        with obs.scoped() as reg:
            with pytest.raises(FilterFullError):
                filt.contains(b"anything")
        assert (
            reg.counter("amq.xor.construction_attempts")
            == xor_module._MAX_CONSTRUCTION_ATTEMPTS
        )
