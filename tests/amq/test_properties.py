"""Property-based tests (hypothesis) for the AMQ invariants.

Three invariants matter for the paper's correctness argument (§4.2):

1.  **No false negatives** — a suppressed ICA is always genuinely known to
    the client, otherwise validation would break rather than fall back.
2.  **Deletions are exact** — removing an expired/revoked ICA never
    removes evidence for other cached ICAs.
3.  **Wire transparency** — server-side lookups against the deserialized
    filter answer exactly like client-side lookups against the original.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.amq import (
    CuckooFilter,
    FilterParams,
    QuotientFilter,
    VacuumFilter,
    canonical_params,
    deserialize_filter,
    serialize_filter,
)

DYNAMIC_FILTERS = [CuckooFilter, VacuumFilter, QuotientFilter]

items_strategy = st.lists(
    st.binary(min_size=4, max_size=40), min_size=1, max_size=120, unique=True
)

params_strategy = st.builds(
    lambda cap, fpp_exp, lf, seed: canonical_params(
        FilterParams(
            capacity=cap, fpp=10.0**-fpp_exp, load_factor=lf, seed=seed
        )
    ),
    cap=st.integers(min_value=150, max_value=600),
    fpp_exp=st.integers(min_value=2, max_value=4),
    lf=st.sampled_from([0.7, 0.8, 0.9]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.differing_executors],
)


@pytest.mark.parametrize("filter_cls", DYNAMIC_FILTERS)
@relaxed
@given(items=items_strategy, params=params_strategy)
def test_no_false_negatives(filter_cls, items, params):
    f = filter_cls(params)
    f.insert_all(items)
    assert all(f.contains(i) for i in items)


@pytest.mark.parametrize("filter_cls", DYNAMIC_FILTERS)
@relaxed
@given(items=items_strategy, params=params_strategy, data=st.data())
def test_deletion_preserves_survivors(filter_cls, items, params, data):
    f = filter_cls(params)
    f.insert_all(items)
    n_delete = data.draw(st.integers(min_value=0, max_value=len(items)))
    for item in items[:n_delete]:
        assert f.delete(item)
    assert all(f.contains(i) for i in items[n_delete:])
    assert len(f) == len(items) - n_delete


@pytest.mark.parametrize("filter_cls", DYNAMIC_FILTERS)
@relaxed
@given(items=items_strategy, params=params_strategy, probes=items_strategy)
def test_wire_transparency(filter_cls, items, params, probes):
    f = filter_cls(params)
    f.insert_all(items)
    g = deserialize_filter(serialize_filter(f))
    for probe in items + probes:
        assert f.contains(probe) == g.contains(probe)


@pytest.mark.parametrize("filter_cls", DYNAMIC_FILTERS)
@relaxed
@given(items=items_strategy, params=params_strategy)
def test_double_roundtrip_stable(filter_cls, items, params):
    f = filter_cls(params)
    f.insert_all(items)
    once = serialize_filter(f)
    twice = serialize_filter(deserialize_filter(once))
    assert once == twice
