"""Tests for FilterParams validation and AMQFilter shared behaviour."""

import pytest

from repro.amq import BloomFilter, CuckooFilter, FilterParams
from repro.errors import ConfigurationError


class TestFilterParams:
    def test_defaults(self):
        p = FilterParams(capacity=100)
        assert p.fpp == 1e-3
        assert p.load_factor == 0.95
        assert p.seed == 0

    def test_frozen(self):
        p = FilterParams(capacity=100)
        with pytest.raises(AttributeError):
            p.capacity = 5

    @pytest.mark.parametrize("capacity", [0, -1, -100])
    def test_bad_capacity(self, capacity):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=capacity)

    @pytest.mark.parametrize("fpp", [0.0, 1.0, -0.5, 2.0])
    def test_bad_fpp(self, fpp):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=10, fpp=fpp)

    @pytest.mark.parametrize("lf", [0.0, 1.5, -0.1])
    def test_bad_load_factor(self, lf):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=10, load_factor=lf)

    def test_bad_seed(self):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=10, seed=-1)

    def test_load_factor_of_one_allowed(self):
        assert FilterParams(capacity=10, load_factor=1.0).load_factor == 1.0


class TestSharedBehaviour:
    def test_len_tracks_insertions(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        assert len(f) == 0
        f.insert_all(items_245[:10])
        assert len(f) == 10

    def test_in_operator(self, paper_params):
        f = CuckooFilter(paper_params)
        f.insert(b"cert-a")
        assert b"cert-a" in f

    def test_insert_all_returns_count(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        assert f.insert_all(items_245) == 245

    def test_bits_per_item_infinite_when_empty(self, paper_params):
        f = CuckooFilter(paper_params)
        assert f.bits_per_item() == float("inf")

    def test_bits_per_item_finite_when_loaded(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        bpi = f.bits_per_item()
        # 13-bit fingerprints at <=50% table fill: between 13 and ~60.
        assert 13 <= bpi <= 120

    def test_params_property_round_trip(self, paper_params):
        assert CuckooFilter(paper_params).params == paper_params

    def test_bloom_rejects_delete(self, paper_params):
        f = BloomFilter(paper_params)
        f.insert(b"x")
        with pytest.raises(Exception):
            f.delete(b"x")
