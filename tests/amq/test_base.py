"""Tests for FilterParams validation and AMQFilter shared behaviour."""

import pytest

from repro import obs
from repro.amq import (
    FILTER_REGISTRY,
    BloomFilter,
    CuckooFilter,
    FilterParams,
    canonical_params,
    filter_class_for_name,
)
from repro.errors import ConfigurationError
from tests.conftest import make_items


class TestFilterParams:
    def test_defaults(self):
        p = FilterParams(capacity=100)
        assert p.fpp == 1e-3
        assert p.load_factor == 0.95
        assert p.seed == 0

    def test_frozen(self):
        p = FilterParams(capacity=100)
        with pytest.raises(AttributeError):
            p.capacity = 5

    @pytest.mark.parametrize("capacity", [0, -1, -100])
    def test_bad_capacity(self, capacity):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=capacity)

    @pytest.mark.parametrize("fpp", [0.0, 1.0, -0.5, 2.0])
    def test_bad_fpp(self, fpp):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=10, fpp=fpp)

    @pytest.mark.parametrize("lf", [0.0, 1.5, -0.1])
    def test_bad_load_factor(self, lf):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=10, load_factor=lf)

    def test_bad_seed(self):
        with pytest.raises(ConfigurationError):
            FilterParams(capacity=10, seed=-1)

    def test_load_factor_of_one_allowed(self):
        assert FilterParams(capacity=10, load_factor=1.0).load_factor == 1.0


class TestSharedBehaviour:
    def test_len_tracks_insertions(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        assert len(f) == 0
        f.insert_all(items_245[:10])
        assert len(f) == 10

    def test_in_operator(self, paper_params):
        f = CuckooFilter(paper_params)
        f.insert(b"cert-a")
        assert b"cert-a" in f

    def test_insert_all_returns_count(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        assert f.insert_all(items_245) == 245

    def test_bits_per_item_infinite_when_empty(self, paper_params):
        f = CuckooFilter(paper_params)
        assert f.bits_per_item() == float("inf")

    def test_bits_per_item_finite_when_loaded(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        bpi = f.bits_per_item()
        # 13-bit fingerprints at <=50% table fill: between 13 and ~60.
        assert 13 <= bpi <= 120

    def test_params_property_round_trip(self, paper_params):
        assert CuckooFilter(paper_params).params == paper_params

    def test_bloom_rejects_delete(self, paper_params):
        f = BloomFilter(paper_params)
        f.insert(b"x")
        with pytest.raises(Exception):
            f.delete(b"x")


ALL_KINDS = sorted(cls.name for cls in FILTER_REGISTRY.values())


class TestBuildFromFingerprints:
    """The bulk-build producer path every construction site funnels
    through (filter plans, manager rebuilds, targeted builds)."""

    @pytest.mark.parametrize("name", ALL_KINDS)
    def test_matches_scalar_built_filter(self, rng, name):
        cls = filter_class_for_name(name)
        params = canonical_params(
            FilterParams(capacity=128, fpp=1e-3, load_factor=0.9, seed=3)
        )
        items = make_items(rng, 100)
        bulk = cls.build_from_fingerprints(params, items)
        scalar = cls(params)
        for item in items:
            scalar.insert(item)
        assert bulk.to_bytes() == scalar.to_bytes()
        assert len(bulk) == len(scalar)
        assert all(bulk.contains_batch(items))

    def test_accepts_set_input(self, rng, paper_params):
        # AdaptiveSuppressor hands over a Set[bytes] history.
        items = set(make_items(rng, 50))
        filt = CuckooFilter.build_from_fingerprints(paper_params, items)
        assert len(filt) == 50
        assert all(filt.contains(item) for item in items)

    def test_empty_items_builds_empty_filter(self, paper_params):
        filt = CuckooFilter.build_from_fingerprints(paper_params, [])
        assert len(filt) == 0

    @pytest.mark.parametrize("name", ["cuckoo", "bloom"])
    def test_records_build_span_histogram(self, rng, name):
        cls = filter_class_for_name(name)
        params = canonical_params(
            FilterParams(capacity=64, fpp=1e-3, load_factor=0.9)
        )
        with obs.scoped() as reg:
            cls.build_from_fingerprints(params, make_items(rng, 40))
        hist = reg.histogram("amq.build.seconds", (("backend", name),))
        assert hist is not None and hist.count == 1
        assert hist.total >= 0.0
