"""Tests for the ``repro.delta/v1`` versioned update protocol.

The load-bearing property is byte-identity: for every filter family,
applying the patch chain v0 -> vN (stepwise or epoch-merged) must yield
the same wire image as a fresh build at vN (:func:`build_filter_at`).
The Hypothesis suite drives random add/remove trajectories through the
publisher/applier pair and checks exactly that; the deterministic tests
pin the wire format, its rejection paths, and the all-or-nothing
application guarantees.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.amq import (
    FILTER_REGISTRY,
    NATIVE_DELTA_FAMILIES,
    DeltaApplier,
    DeltaPublisher,
    FilterDelta,
    FilterSnapshot,
    build_filter_at,
    delta_seed,
    deserialize_delta,
    deserialize_filter,
    filter_class_for_name,
    serialize_delta,
    serialize_filter,
)
from repro.amq.delta import (
    _DELTA_HEADER,
    _DELTA_MAGIC,
    _KIND_FULL,
    _KIND_PATCH,
    _PATCH_HEADER,
    apply_diff,
    delta_overhead_bytes,
    diff_items,
    params_at,
    snapshot_overhead_bytes,
)
from repro.errors import ConfigurationError, FilterSerializationError

FAMILIES = sorted(cls.name for cls in FILTER_REGISTRY.values())
REBUILD_FAMILIES = sorted(set(FAMILIES) - NATIVE_DELTA_FAMILIES)


def _item(i: int, length: int = 32) -> bytes:
    """Deterministic unique fingerprint ``i`` (length <= 32)."""
    return hashlib.sha256(i.to_bytes(8, "big")).digest()[:length]


_UNIVERSE = [_item(i) for i in range(128)]


def _patch(**overrides) -> FilterDelta:
    base = dict(
        filter_kind="bloom",
        from_version=0,
        to_version=1,
        capacity=8,
        fpp=1e-3,
        load_factor=0.9,
        seed=7,
        added=(),
        removed_indices=(),
    )
    base.update(overrides)
    return FilterDelta(**base)


def _forge(kind: int, type_id: int, to_version: int, body: bytes) -> bytes:
    """Frame an arbitrary body with a *valid* integrity check, so the
    semantic rejection paths (not the checksum) are what gets exercised."""
    head = _DELTA_HEADER.pack(_DELTA_MAGIC, kind, type_id, to_version, b"\0\0\0\0")
    check = hashlib.sha256(head + body).digest()[:4]
    return _DELTA_HEADER.pack(_DELTA_MAGIC, kind, type_id, to_version, check) + body


def _forge_patch_body(
    from_version=0,
    capacity=8,
    fpp_enc=30,
    lf_enc=230,
    seed=7,
    item_len=32,
    added=(),
    removed=(),
) -> bytes:
    body = _PATCH_HEADER.pack(
        from_version, capacity, fpp_enc, lf_enc, seed, item_len,
        len(added), len(removed),
    )
    body += b"".join(added)
    body += b"".join(i.to_bytes(2, "big") for i in removed)
    return body


class TestDeltaSeed:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_version_zero_is_base_seed(self, name):
        assert delta_seed(name, 12345, 0) == 12345

    @pytest.mark.parametrize("name", FAMILIES)
    def test_wide_base_seed_masked_to_wire_width(self, name):
        wide = 2343948629979923722
        assert delta_seed(name, wide, 0) == wide & 0xFFFFFFFF

    @pytest.mark.parametrize("name", sorted(NATIVE_DELTA_FAMILIES))
    def test_native_families_keep_base_seed(self, name):
        # In-place patching requires stable hashing across versions.
        assert delta_seed(name, 99, 7) == 99
        assert delta_seed(name, 99, 1 << 40) == 99

    @pytest.mark.parametrize("name", REBUILD_FAMILIES)
    def test_rebuild_families_rotate_seed_per_version(self, name):
        seeds = {delta_seed(name, 99, v) for v in range(6)}
        assert len(seeds) == 6  # distinct per version, incl. the base
        assert all(0 <= s <= 0xFFFFFFFF for s in seeds)

    def test_params_at_folds_version_into_seed(self):
        p = params_at("cuckoo", 64, 1e-3, 0.9, 42, 3)
        assert p.seed == delta_seed("cuckoo", 42, 3)
        assert p.capacity == 64


class TestDiffAlgebra:
    def test_pure_addition(self):
        old = _UNIVERSE[:3]
        new = old + [_UNIVERSE[5]]
        assert diff_items(old, new) == ((), (_UNIVERSE[5],))

    def test_pure_removal(self):
        old = _UNIVERSE[:4]
        new = [old[0], old[2]]
        assert diff_items(old, new) == ((1, 3), ())

    def test_remove_then_readd_ships_as_both(self):
        # An item that left and re-entered sits at the *end* of the new
        # list; the index encoding can only express that as remove+add.
        old = _UNIVERSE[:3]
        new = [old[1], old[2], old[0]]
        removed, added = diff_items(old, new)
        assert removed == (0,)
        assert added == (old[0],)
        assert apply_diff(old, removed, added) == new

    @given(
        st.lists(st.integers(0, 127), unique=True, max_size=24),
        st.lists(st.integers(0, 127), unique=True, max_size=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_diff_inverts_diff_items(self, old_ids, new_ids):
        """diff/apply round-trip for *arbitrary* unique item lists — not
        just trajectories the publisher would produce."""
        old = [_UNIVERSE[i] for i in old_ids]
        new = [_UNIVERSE[i] for i in new_ids]
        removed, added = diff_items(old, new)
        assert apply_diff(old, removed, added) == new
        assert all(0 <= i < len(old) for i in removed)
        assert all(a <= b for a, b in zip(removed, removed[1:]))


class TestWireRoundTrip:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_patch_roundtrip(self, name):
        patch = _patch(
            filter_kind=name,
            from_version=2,
            to_version=5,
            capacity=32,
            added=tuple(_UNIVERSE[:3]),
            removed_indices=(0, 4, 9),
        )
        wire = serialize_delta(patch)
        decoded = deserialize_delta(wire)
        assert isinstance(decoded, FilterDelta)
        assert decoded.filter_kind == name
        assert decoded.from_version == 2
        assert decoded.to_version == 5
        assert decoded.capacity == 32
        assert decoded.seed == patch.seed
        assert decoded.added == patch.added
        assert decoded.removed_indices == (0, 4, 9)
        assert decoded.spans_epochs
        assert len(wire) == delta_overhead_bytes() + _PATCH_HEADER.size + 3 * 32 + 3 * 2

    def test_empty_patch_roundtrip(self):
        decoded = deserialize_delta(serialize_delta(_patch()))
        assert decoded.added == ()
        assert decoded.removed_indices == ()
        assert not decoded.spans_epochs

    @pytest.mark.parametrize("name", FAMILIES)
    def test_snapshot_roundtrip(self, name):
        filt = build_filter_at(name, 16, 1e-3, 0.9, 7, 3, _UNIVERSE[:8])
        image = serialize_filter(filt)
        wire = serialize_delta(
            FilterSnapshot(filter_kind=name, version=3, image=image)
        )
        decoded = deserialize_delta(wire)
        assert isinstance(decoded, FilterSnapshot)
        assert decoded.filter_kind == name
        assert decoded.version == 3
        assert decoded.image == image
        assert len(wire) == len(image) + delta_overhead_bytes()

    def test_overheads_agree(self):
        assert delta_overhead_bytes() == _DELTA_HEADER.size == 16
        assert snapshot_overhead_bytes() == delta_overhead_bytes()


class TestSerializeRejection:
    def test_non_monotonic_versions(self):
        with pytest.raises(FilterSerializationError, match="monotonic"):
            serialize_delta(_patch(from_version=3, to_version=3))

    def test_version_overflow(self):
        with pytest.raises(FilterSerializationError, match="uint64"):
            serialize_delta(_patch(to_version=1 << 64))

    @pytest.mark.parametrize("capacity", [0, 1 << 32])
    def test_capacity_out_of_range(self, capacity):
        with pytest.raises(FilterSerializationError, match="capacity"):
            serialize_delta(_patch(capacity=capacity))

    def test_remove_count_overflow(self):
        with pytest.raises(FilterSerializationError, match="uint16 counts"):
            serialize_delta(_patch(removed_indices=tuple(range(0x10001))))

    def test_removed_index_overflow(self):
        with pytest.raises(FilterSerializationError, match="uint16"):
            serialize_delta(_patch(removed_indices=(0x10000,)))

    @pytest.mark.parametrize("bad", [b"", b"x" * 256])
    def test_item_length_out_of_range(self, bad):
        with pytest.raises(FilterSerializationError, match="item length"):
            serialize_delta(_patch(added=(bad,)))

    def test_mixed_item_lengths(self):
        with pytest.raises(FilterSerializationError, match="one length"):
            serialize_delta(_patch(added=(b"aa", b"bbb")))

    def test_duplicate_adds(self):
        with pytest.raises(FilterSerializationError, match="duplicates"):
            serialize_delta(_patch(added=(b"aa", b"aa")))

    def test_non_increasing_removes(self):
        with pytest.raises(FilterSerializationError, match="increasing"):
            serialize_delta(_patch(removed_indices=(4, 4)))

    def test_snapshot_version_overflow(self):
        with pytest.raises(FilterSerializationError, match="uint64"):
            serialize_delta(
                FilterSnapshot(filter_kind="bloom", version=1 << 64, image=b"xxx")
            )

    def test_snapshot_image_too_short_for_type(self):
        with pytest.raises(FilterSerializationError, match="type id"):
            serialize_delta(
                FilterSnapshot(filter_kind="bloom", version=1, image=b"\xa3")
            )

    def test_snapshot_image_type_mismatch(self):
        image = serialize_filter(
            build_filter_at("cuckoo", 8, 1e-3, 0.9, 7, 0, _UNIVERSE[:4])
        )
        with pytest.raises(FilterSerializationError, match="type"):
            serialize_delta(
                FilterSnapshot(filter_kind="bloom", version=1, image=image)
            )


class TestDeserializeRejection:
    def test_short_header(self):
        with pytest.raises(FilterSerializationError, match="header"):
            deserialize_delta(b"\xd5\x01\x02")

    def test_bad_magic(self):
        wire = bytearray(serialize_delta(_patch()))
        wire[0] ^= 0xFF
        with pytest.raises(FilterSerializationError, match="magic"):
            deserialize_delta(bytes(wire))

    @pytest.mark.parametrize("offset", [2, 8, 20, -1])
    def test_bit_flip_fails_integrity_check(self, offset):
        wire = bytearray(serialize_delta(_patch(added=tuple(_UNIVERSE[:2]))))
        wire[offset] ^= 0x01
        with pytest.raises(FilterSerializationError):
            deserialize_delta(bytes(wire))

    def test_truncation_fails_integrity_check(self):
        wire = serialize_delta(_patch(added=tuple(_UNIVERSE[:2])))
        with pytest.raises(FilterSerializationError):
            deserialize_delta(wire[:-1])

    def test_extension_fails_integrity_check(self):
        wire = serialize_delta(_patch())
        with pytest.raises(FilterSerializationError):
            deserialize_delta(wire + b"\x00")

    def test_unknown_type_id(self):
        wire = _forge(_KIND_PATCH, 200, 1, _forge_patch_body())
        with pytest.raises(FilterSerializationError, match="type id"):
            deserialize_delta(wire)

    def test_unknown_kind(self):
        wire = _forge(3, 1, 1, _forge_patch_body())
        with pytest.raises(FilterSerializationError, match="kind"):
            deserialize_delta(wire)

    def test_short_patch_body(self):
        wire = _forge(_KIND_PATCH, 1, 1, b"\x00" * 8)
        with pytest.raises(FilterSerializationError, match="header"):
            deserialize_delta(wire)

    def test_zero_fpp_exponent(self):
        wire = _forge(_KIND_PATCH, 1, 1, _forge_patch_body(fpp_enc=0))
        with pytest.raises(FilterSerializationError, match="fpp"):
            deserialize_delta(wire)

    def test_zero_load_factor(self):
        wire = _forge(_KIND_PATCH, 1, 1, _forge_patch_body(lf_enc=0))
        with pytest.raises(FilterSerializationError, match="load factor"):
            deserialize_delta(wire)

    def test_zero_capacity(self):
        wire = _forge(_KIND_PATCH, 1, 1, _forge_patch_body(capacity=0))
        with pytest.raises(FilterSerializationError, match="capacity"):
            deserialize_delta(wire)

    def test_zero_item_length(self):
        wire = _forge(_KIND_PATCH, 1, 1, _forge_patch_body(item_len=0))
        with pytest.raises(FilterSerializationError, match="item length"):
            deserialize_delta(wire)

    def test_body_length_count_mismatch(self):
        body = _forge_patch_body(added=(_UNIVERSE[0],)) + b"\x00"
        wire = _forge(_KIND_PATCH, 1, 1, body)
        with pytest.raises(FilterSerializationError, match="counts imply"):
            deserialize_delta(wire)

    def test_decoded_versions_must_be_monotonic(self):
        wire = _forge(_KIND_PATCH, 1, 3, _forge_patch_body(from_version=5))
        with pytest.raises(FilterSerializationError, match="monotonic"):
            deserialize_delta(wire)

    def test_decoded_duplicate_adds(self):
        body = _forge_patch_body(added=(_UNIVERSE[0], _UNIVERSE[0]))
        wire = _forge(_KIND_PATCH, 1, 1, body)
        with pytest.raises(FilterSerializationError, match="duplicates"):
            deserialize_delta(wire)

    def test_decoded_non_increasing_removes(self):
        body = _forge_patch_body(removed=(9, 3))
        wire = _forge(_KIND_PATCH, 1, 1, body)
        with pytest.raises(FilterSerializationError, match="increasing"):
            deserialize_delta(wire)

    def test_snapshot_with_garbage_image(self):
        wire = _forge(_KIND_FULL, 1, 1, b"\x00" * 40)
        with pytest.raises(FilterSerializationError):
            deserialize_delta(wire)

    def test_snapshot_header_image_type_disagreement(self):
        image = serialize_filter(
            build_filter_at("cuckoo", 8, 1e-3, 0.9, 7, 0, _UNIVERSE[:4])
        )
        # Header claims bloom (type 1) while the image decodes as cuckoo.
        wire = _forge(_KIND_FULL, 1, 1, image)
        with pytest.raises(FilterSerializationError, match="decodes as"):
            deserialize_delta(wire)


class TestPublisher:
    def test_publish_bumps_version_monotonically(self):
        pub = DeltaPublisher("bloom", _UNIVERSE[:4], seed=7)
        assert pub.version == 0
        assert pub.publish(_UNIVERSE[:5]) == 1
        assert pub.publish(_UNIVERSE[:5]) == 2  # unchanged set still bumps
        assert pub.items_at(1) == pub.items_at(2)

    def test_items_are_canonicalized(self):
        pub = DeltaPublisher(
            "bloom", [_UNIVERSE[1], _UNIVERSE[0], _UNIVERSE[1]], seed=7
        )
        assert pub.items == (_UNIVERSE[1], _UNIVERSE[0])

    def test_capacity_grows_only_on_overflow(self):
        pub = DeltaPublisher("bloom", _UNIVERSE[:4], seed=7, headroom=2.0)
        assert pub.capacity_at(0) == 8
        pub.publish(_UNIVERSE[:6])  # fits the standing table
        assert pub.capacity_at(1) == 8
        pub.publish(_UNIVERSE[:9])  # overflows: re-planned with headroom
        assert pub.capacity_at(2) == 18
        pub.publish(_UNIVERSE[:2])  # shrink never reclaims
        assert pub.capacity_at(3) == 18

    def test_mixed_item_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="uniform"):
            DeltaPublisher("bloom", [b"aa", b"bbb"], seed=7)

    def test_unknown_family_rejected(self):
        with pytest.raises(FilterSerializationError):
            DeltaPublisher("ribbon", [], seed=7)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ConfigurationError, match="headroom"):
            DeltaPublisher("bloom", [], headroom=0.5)

    def test_patch_message_range_checks(self):
        pub = DeltaPublisher("bloom", _UNIVERSE[:4], seed=7)
        pub.publish(_UNIVERSE[:5])
        with pytest.raises(ConfigurationError, match="cannot patch"):
            pub.patch_message(1, 1)
        with pytest.raises(ConfigurationError, match="cannot patch"):
            pub.patch_message(0, 2)

    def test_update_since_requires_stale_client(self):
        pub = DeltaPublisher("bloom", _UNIVERSE[:4], seed=7)
        with pytest.raises(ConfigurationError, match="not behind"):
            pub.update_since(0)

    def test_image_memoized(self):
        pub = DeltaPublisher("bloom", _UNIVERSE[:4], seed=7)
        assert pub.image_at(0) is pub.image_at(0)

    def test_snapshot_message_frames_head_image(self):
        pub = DeltaPublisher("cuckoo", _UNIVERSE[:4], seed=7)
        pub.publish(_UNIVERSE[:5])
        decoded = deserialize_delta(pub.snapshot_message())
        assert isinstance(decoded, FilterSnapshot)
        assert decoded.version == 1
        assert decoded.image == pub.image_at(1)

    def test_update_since_prefers_smaller_message(self):
        # Large filter, one-item change: the patch must win...
        pub = DeltaPublisher("bloom", _UNIVERSE[:100], seed=7)
        pub.publish(list(pub.items) + [_UNIVERSE[100]])
        with obs.scoped() as reg:
            update = pub.update_since(0)
        assert isinstance(deserialize_delta(update), FilterDelta)
        assert len(update) < len(pub.snapshot_message())
        assert reg.counter("amq.delta.patch_messages") == 1
        assert reg.counter("amq.delta.bytes_saved") == (
            len(pub.snapshot_message()) - len(update)
        )
        # ...while a full turnover of a tiny filter ships the snapshot.
        pub2 = DeltaPublisher("bloom", _UNIVERSE[:2], fpp=1e-2, seed=7)
        pub2.publish(_UNIVERSE[64:72])
        with obs.scoped() as reg:
            update2 = pub2.update_since(0)
        assert isinstance(deserialize_delta(update2), FilterSnapshot)
        assert reg.counter("amq.delta.full_messages") == 1


class TestApplier:
    def _pair(self, name="counting-bloom", count=6, **kw):
        items = _UNIVERSE[:count]
        pub = DeltaPublisher(name, items, seed=7, **kw)
        app = DeltaApplier(
            name, items, capacity=pub.capacity_at(0), seed=7, **kw
        )
        return pub, app

    def test_patch_advances_version_and_items(self):
        pub, app = self._pair()
        pub.publish(list(pub.items[1:]) + [_UNIVERSE[10]])
        app.apply(pub.patch_message(0, 1))
        assert app.version == 1
        assert app.items == pub.items
        assert app.image() == pub.image_at(1)

    def test_image_memoized_between_updates(self):
        _, app = self._pair()
        assert app.image() is app.image()

    def test_wrong_family_rejected(self):
        _, app = self._pair()
        patch = _patch(filter_kind="bloom", seed=7)
        with pytest.raises(FilterSerializationError, match="targets"):
            app.apply(patch)

    def test_wrong_base_version_rejected(self):
        _, app = self._pair()
        patch = _patch(filter_kind="counting-bloom", from_version=2,
                       to_version=3, seed=7)
        with pytest.raises(FilterSerializationError, match="base version"):
            app.apply(patch)
        assert app.version == 0

    def test_wrong_base_params_rejected(self):
        _, app = self._pair()
        patch = _patch(filter_kind="counting-bloom", seed=8)
        with pytest.raises(FilterSerializationError, match="parameters"):
            app.apply(patch)

    def test_out_of_range_removal_rejected(self):
        _, app = self._pair(count=4)
        patch = _patch(filter_kind="counting-bloom", seed=7,
                       capacity=8, removed_indices=(4,))
        with pytest.raises(FilterSerializationError, match="4-item list"):
            app.apply(patch)

    def test_adding_present_item_rejected(self):
        _, app = self._pair(count=4)
        patch = _patch(filter_kind="counting-bloom", seed=7, capacity=8,
                       added=(_UNIVERSE[2],))
        with pytest.raises(FilterSerializationError, match="already holds"):
            app.apply(patch)

    def test_remove_and_readd_in_one_patch_is_legal(self):
        pub, app = self._pair(count=4)
        # v1 drops item 0; v2 re-learns it. The merged patch 0 -> 2 both
        # removes index 0 and re-adds the item — not a duplicate add.
        pub.publish(_UNIVERSE[1:4])
        pub.publish(_UNIVERSE[1:4] + [_UNIVERSE[0]])
        app.apply(pub.patch_message(0, 2))
        assert app.items == pub.items
        assert app.image() == pub.image_at(2)

    def test_wrong_add_length_rejected(self):
        _, app = self._pair(count=4)
        patch = _patch(filter_kind="counting-bloom", seed=7, capacity=8,
                       added=(b"\x01\x02",))
        with pytest.raises(FilterSerializationError, match="byte"):
            app.apply(patch)

    def test_snapshot_requires_items(self):
        pub, app = self._pair()
        pub.publish(_UNIVERSE[10:20])
        with pytest.raises(FilterSerializationError, match="snapshot_items"):
            app.apply(
                deserialize_delta(pub.snapshot_message()), snapshot_items=None
            )
        assert app.version == 0

    def test_snapshot_must_advance_version(self):
        pub, app = self._pair()
        with pytest.raises(FilterSerializationError, match="advance"):
            app.apply(
                deserialize_delta(pub.snapshot_message(0)),
                snapshot_items=pub.items_at(0),
            )

    def test_snapshot_wrong_family_rejected(self):
        _, app = self._pair()
        other = DeltaPublisher("bloom", _UNIVERSE[:6], seed=7)
        other.publish(_UNIVERSE[:7])
        with pytest.raises(FilterSerializationError, match="targets"):
            app.apply(
                deserialize_delta(other.snapshot_message()),
                snapshot_items=other.items,
            )

    def test_snapshot_with_misderived_seed_rejected(self):
        # A v3 cuckoo image must carry delta_seed(seed, 3); an image
        # built at the base seed is a replay/confusion and is refused.
        pub, app = self._pair("cuckoo")
        stale = serialize_filter(
            build_filter_at("cuckoo", 12, 1e-3, 0.9, 7, 0, _UNIVERSE[:6])
        )
        snap = FilterSnapshot(filter_kind="cuckoo", version=3, image=stale)
        with pytest.raises(FilterSerializationError, match="derivation"):
            app.apply(snap, snapshot_items=_UNIVERSE[:6])
        assert app.version == 0

    def test_snapshot_resync_applies(self):
        pub, app = self._pair("cuckoo")
        pub.publish(_UNIVERSE[20:30])
        pub.publish(_UNIVERSE[30:44])
        snap = deserialize_delta(pub.snapshot_message())
        app.apply(snap, snapshot_items=pub.items_at(snap.version))
        assert app.version == pub.version
        assert app.items == pub.items
        assert app.image() == pub.image_at(pub.version)

    def test_failed_patch_leaves_filter_untouched(self):
        pub, app = self._pair("bloom")
        before = app.image()
        patch = _patch(filter_kind="bloom", seed=8)  # param mismatch
        with pytest.raises(FilterSerializationError):
            app.apply(patch)
        assert app.version == 0
        assert serialize_filter(app.filter) == before

    def test_native_overflow_restores_byte_identically(self):
        # A patch claiming the standing capacity but adding past it makes
        # insert_batch overflow mid-way; the applier must restore the
        # exact pre-patch table, not leave the added prefix behind.
        app = DeltaApplier("counting-bloom", _UNIVERSE[:3], capacity=4, seed=7)
        before = app.image()
        patch = _patch(
            filter_kind="counting-bloom", seed=7, capacity=4,
            added=tuple(_UNIVERSE[50:55]),
        )
        with pytest.raises(FilterSerializationError, match="capacity"):
            app.apply(patch)
        assert app.version == 0
        assert app.items == tuple(_UNIVERSE[:3])
        assert serialize_filter(app.filter) == before

    def test_native_missing_removal_restores_byte_identically(self):
        # White-box: knock one item out of the table behind the applier's
        # back so a well-formed patch names a fingerprint the filter no
        # longer holds; strict delete must unwind and surface the
        # malformation without corrupting the table further.
        app = DeltaApplier("counting-bloom", _UNIVERSE[:4], capacity=8, seed=7)
        app._filter.delete(_UNIVERSE[2])
        before = serialize_filter(app._filter)
        patch = _patch(
            filter_kind="counting-bloom", seed=7, capacity=8,
            removed_indices=(0, 2),
        )
        with pytest.raises(FilterSerializationError, match="does not hold"):
            app.apply(patch)
        assert app.version == 0
        assert serialize_filter(app._filter) == before

    def test_explicit_start_version_builds_folded_seed(self):
        app = DeltaApplier(
            "cuckoo", _UNIVERSE[:5], capacity=10, seed=7, version=4
        )
        fresh = build_filter_at("cuckoo", 10, 1e-3, 0.9, 7, 4, _UNIVERSE[:5])
        assert app.image() == serialize_filter(fresh)
        assert deserialize_filter(app.image()).params.seed == delta_seed(
            "cuckoo", 7, 4
        )


def _run_trajectory(name, n0, steps, *, stepwise=True):
    """Drive a publisher through ``steps`` and an applier through the
    matching patch chain; returns (publisher, applier)."""
    items = _UNIVERSE[:n0]
    pub = DeltaPublisher(name, items, seed=9)
    app = DeltaApplier(name, items, capacity=pub.capacity_at(0), seed=9)
    fresh_cursor = n0
    for removes, adds in steps:
        cur = list(pub.items)
        dropped = {r % len(cur) for r in removes} if cur else set()
        survivors = [it for j, it in enumerate(cur) if j not in dropped]
        new = survivors + _UNIVERSE[fresh_cursor : fresh_cursor + adds]
        fresh_cursor += adds
        pub.publish(new)
        if stepwise:
            app.apply(pub.patch_message(app.version, pub.version))
    if not stepwise:
        update = deserialize_delta(pub.update_since(app.version))
        if isinstance(update, FilterSnapshot):
            app.apply(update, snapshot_items=pub.items_at(update.version))
        else:
            app.apply(update)
    return pub, app


@st.composite
def _trajectories(draw):
    n0 = draw(st.integers(min_value=1, max_value=8))
    steps = draw(
        st.lists(
            st.tuples(
                st.lists(st.integers(0, 31), max_size=4),  # removal picks
                st.integers(0, 3),  # fresh adds
            ),
            min_size=1,
            max_size=4,
        )
    )
    return n0, steps


class TestEquivalence:
    """The guarantee the module is named for: patches v0 -> vN land on
    the byte-identical wire image of a fresh build at vN."""

    @pytest.mark.parametrize("name", FAMILIES)
    @given(trajectory=_trajectories())
    @settings(max_examples=12, deadline=None)
    def test_stepwise_chain_matches_fresh_build(self, name, trajectory):
        n0, steps = trajectory
        pub, app = _run_trajectory(name, n0, steps, stepwise=True)
        head = pub.version
        fresh = build_filter_at(
            name, pub.capacity_at(head), pub.fpp, pub.load_factor,
            pub.seed, head, list(pub.items),
        )
        assert app.version == head
        assert app.items == pub.items
        assert app.image() == serialize_filter(fresh) == pub.image_at(head)

    @pytest.mark.parametrize("name", FAMILIES)
    @given(trajectory=_trajectories())
    @settings(max_examples=12, deadline=None)
    def test_merged_update_matches_stepwise_chain(self, name, trajectory):
        n0, steps = trajectory
        _, stepwise = _run_trajectory(name, n0, steps, stepwise=True)
        pub, merged = _run_trajectory(name, n0, steps, stepwise=False)
        assert merged.version == stepwise.version == pub.version
        assert merged.items == stepwise.items
        assert merged.image() == stepwise.image()

    @pytest.mark.parametrize("name", FAMILIES)
    def test_readd_trajectory_pinned(self, name):
        # The remove-then-re-add shape, deterministically, per family.
        steps = [([0], 1), ([], 0), ([1], 2)]
        pub, app = _run_trajectory(name, 4, steps, stepwise=True)
        fresh = build_filter_at(
            name, pub.capacity_at(3), pub.fpp, pub.load_factor,
            pub.seed, 3, list(pub.items),
        )
        assert app.image() == serialize_filter(fresh)


class TestBuilderHook:
    def test_both_sides_route_through_custom_builder(self):
        # The cohort engines pass a memoizing builder; publisher images
        # and applier rebuilds must both go through it and still land on
        # the canonical bytes.
        calls = []

        def builder(kind, params, items):
            calls.append((kind, params.capacity, len(items)))
            return filter_class_for_name(kind).build_from_fingerprints(
                params, items
            )

        pub = DeltaPublisher("bloom", _UNIVERSE[:4], seed=7, builder=builder)
        app = DeltaApplier(
            "bloom", _UNIVERSE[:4], capacity=pub.capacity_at(0), seed=7,
            builder=builder,
        )
        pub.publish(_UNIVERSE[:5])
        app.apply(pub.patch_message(0, 1))
        assert app.image() == pub.image_at(1)
        # Applier base build, applier patch rebuild, publisher image.
        assert len(calls) >= 3


class TestObsCounters:
    def test_patch_flow_counters(self):
        with obs.scoped() as reg:
            pub, app = TestApplier()._pair("counting-bloom", count=6)
            pub.publish(list(pub.items[1:]) + [_UNIVERSE[40]])
            pub.publish(list(pub.items) + [_UNIVERSE[41]])
            app.apply(pub.patch_message(0, 2))  # one epoch-merged patch
        assert reg.counter("amq.delta.publishes") == 2
        assert reg.counter("amq.delta.patches_applied") == 1
        assert reg.counter("amq.delta.epoch_merges") == 1
        assert reg.counter("amq.delta.native_applies") == 1
        assert reg.counter("amq.delta.items_added") == 2
        assert reg.counter("amq.delta.items_removed") == 1
        assert reg.counter("amq.delta.rebuilds") == 0

    def test_rebuild_and_resync_counters(self):
        with obs.scoped() as reg:
            pub, app = TestApplier()._pair("bloom", count=6)
            pub.publish(list(pub.items[2:]))
            app.apply(pub.patch_message(0, 1))
            pub.publish(_UNIVERSE[60:80])
            snap = deserialize_delta(pub.snapshot_message())
            app.apply(snap, snapshot_items=pub.items_at(snap.version))
        assert reg.counter("amq.delta.rebuilds") == 1
        assert reg.counter("amq.delta.native_applies") == 0
        assert reg.counter("amq.delta.resyncs") == 1
