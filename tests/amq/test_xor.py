"""Unit tests for the XOR filter (static baseline)."""

import pytest

from repro.amq import FilterParams, VacuumFilter, XorFilter, canonical_params
from repro.amq.xor import xor_fingerprint_bits, xor_slot_count
from repro.errors import (
    DeletionUnsupportedError,
    FilterFullError,
    FilterSerializationError,
)
from tests.conftest import make_items


class TestGeometry:
    def test_slot_count_formula(self):
        assert xor_slot_count(245) % 3 == 0
        assert xor_slot_count(245) >= int(1.23 * 245)

    def test_fingerprint_bits_exact_fpp(self):
        assert xor_fingerprint_bits(1e-3) == 10
        assert xor_fingerprint_bits(0.5) >= 2

    def test_smallest_structure_at_paper_point(self, paper_params):
        """The static lower bound: smaller than even the vacuum filter."""
        assert (
            XorFilter(paper_params).size_in_bytes()
            < VacuumFilter(paper_params).size_in_bytes()
        )


class TestMembership:
    def test_no_false_negatives(self, paper_params, items_245):
        f = XorFilter(paper_params)
        f.insert_all(items_245)
        assert all(f.contains(i) for i in items_245)

    def test_fpp_near_two_to_minus_f(self, rng, paper_params, items_245):
        f = XorFilter(paper_params)
        f.insert_all(items_245)
        probes = make_items(rng, 30000, size=24)
        fp = sum(f.contains(p) for p in probes) / len(probes)
        assert fp <= 2 * 2 ** -f.fingerprint_bits

    def test_incremental_inserts_rebuild_transparently(self, paper_params, items_245):
        f = XorFilter(paper_params)
        f.insert_all(items_245[:100])
        assert all(f.contains(i) for i in items_245[:100])
        f.insert_all(items_245[100:])
        assert all(f.contains(i) for i in items_245)

    def test_duplicates_tolerated(self, paper_params):
        f = XorFilter(paper_params)
        for _ in range(6):
            f.insert(b"dup")
        assert f.contains(b"dup")
        assert len(f) == 6

    def test_empty_filter(self, rng, paper_params):
        f = XorFilter(paper_params)
        assert not any(f.contains(p) for p in make_items(rng, 500))


class TestLimits:
    def test_capacity_enforced(self, rng):
        f = XorFilter(FilterParams(capacity=10, fpp=0.01))
        with pytest.raises(FilterFullError):
            f.insert_all(make_items(rng, 11))

    def test_deletion_unsupported(self, paper_params):
        f = XorFilter(paper_params)
        f.insert(b"x")
        with pytest.raises(DeletionUnsupportedError):
            f.delete(b"x")


class TestSerialization:
    def test_roundtrip(self, paper_params, items_245):
        from repro.amq import deserialize_filter, serialize_filter

        f = XorFilter(paper_params)
        f.insert_all(items_245)
        g = deserialize_filter(serialize_filter(f))
        assert type(g) is XorFilter
        assert all(g.contains(i) for i in items_245)
        assert len(g) == 245

    def test_queries_identical_after_roundtrip(self, rng, paper_params, items_245):
        from repro.amq import deserialize_filter, serialize_filter

        f = XorFilter(paper_params)
        f.insert_all(items_245)
        g = deserialize_filter(serialize_filter(f))
        for probe in make_items(rng, 2000, size=20):
            assert f.contains(probe) == g.contains(probe)

    def test_bad_length_rejected(self, paper_params):
        with pytest.raises(FilterSerializationError):
            XorFilter.from_bytes(paper_params, b"\x00" * 3)


class TestManagerIntegration:
    def test_deletion_forces_metered_rebuild(self):
        """Plugging the static structure into the dynamic pipeline makes
        every revocation a rebuild — the cost the paper's candidates avoid
        and the FilterManager counts."""
        from repro.core.cache import ICACache
        from repro.core.filter_config import plan_filter
        from repro.core.manager import FilterManager
        from repro.pki import build_hierarchy

        h = build_hierarchy("ecdsa-p256", total_icas=12, num_roots=1, seed=81)
        icas = h.ica_certificates()
        cache = ICACache()
        for cert in icas:
            cache.add(cert)
        manager = FilterManager(cache, plan_filter(20, filter_kind="xor",
                                                   budget_bytes=None))
        assert manager.consistent_with_cache()
        cache.remove(icas[0])
        assert manager.rebuilds == 1
        assert manager.consistent_with_cache()
