"""Frozen pure-Python reference models of every AMQ backend.

These are verbatim copies of the list-backed scalar implementations as
they stood **before** the array-native storage engine rewrite (PR 4).
They define the semantics the vectorized engine must reproduce exactly:

* insert / contains / delete answers and exceptions,
* batch operations via the generic scalar loops of ``AMQFilter``,
* overflow prefix semantics and transactional kick-chain rollback,
* eviction-rng determinism (same seeds, same draw sequence),
* wire images byte-for-byte (``to_bytes`` including the semi-sort
  encoding, which is re-implemented here rather than imported so the
  production codec cannot silently drift together with the engine).

Do not "improve" this module. It is an executable specification; the
differential suite (``test_array_vs_reference.py``) runs it against the
production backends on identical operation sequences.
"""

from __future__ import annotations

import math
import random
from itertools import combinations_with_replacement
from typing import List, Sequence

from repro.amq.base import AMQFilter, FilterParams
from repro.amq.hashing import double_hashes, fingerprint, hash64, hash_int, splitmix64
from repro.amq.sizing import (
    cuckoo_geometry,
    fingerprint_bits_for_fpp,
    quotient_geometry,
    remainder_bits_for_fpp,
    vacuum_geometry,
)
from repro.errors import FilterFullError

# ---------------------------------------------------------------------------
# Frozen semi-sort codec (scalar; copied from repro.amq.semisort @ PR 3)
# ---------------------------------------------------------------------------

_SS_BUCKET_SIZE = 4
_SS_INDEX_BITS = 12
_SS_MIN_FP_BITS = 5
_SS_TUPLES = sorted(combinations_with_replacement(range(16), _SS_BUCKET_SIZE))
_SS_TUPLE_TO_INDEX = {t: i for i, t in enumerate(_SS_TUPLES)}


def _ss_encoded_bucket_bits(fp_bits: int) -> int:
    return _SS_INDEX_BITS + _SS_BUCKET_SIZE * (fp_bits - 4)


def _ss_packed_size_bytes(num_buckets: int, fp_bits: int) -> int:
    return (num_buckets * _ss_encoded_bucket_bits(fp_bits) + 7) // 8


def _ss_pack_table(table: Sequence[int], fp_bits: int) -> bytes:
    high_bits = fp_bits - 4
    acc = 0
    acc_bits = 0
    out = bytearray()

    def emit(value: int, bits: int) -> None:
        nonlocal acc, acc_bits
        acc |= value << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8

    for start in range(0, len(table), _SS_BUCKET_SIZE):
        pairs = sorted(
            (fp & 0xF, fp >> 4) for fp in table[start : start + _SS_BUCKET_SIZE]
        )
        emit(_SS_TUPLE_TO_INDEX[tuple(p[0] for p in pairs)], _SS_INDEX_BITS)
        for _, high in pairs:
            emit(high, high_bits)
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def _pack_slots(table: Sequence[int], bits: int) -> bytes:
    """Flat LSB-first slot packing (the non-semi-sort wire layout)."""
    acc = 0
    acc_bits = 0
    out = bytearray()
    for fp in table:
        acc |= fp << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


# ---------------------------------------------------------------------------
# Bloom / counting-Bloom references
# ---------------------------------------------------------------------------


def _optimal_geometry(capacity: int, fpp: float) -> "tuple[int, int]":
    m = math.ceil(-capacity * math.log(fpp) / (math.log(2) ** 2))
    k = max(1, round(m / capacity * math.log(2)))
    return m, k


class ReferenceBloomFilter(AMQFilter):
    name = "bloom"
    supports_deletion = False

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._bits, self._k = _optimal_geometry(params.capacity, params.fpp)
        self._array = bytearray((self._bits + 7) // 8)

    def _positions(self, item: bytes):
        for h in double_hashes(item, self._k, self._params.seed):
            yield h % self._bits

    def _insert(self, item: bytes) -> None:
        if self._count >= self.capacity:
            raise FilterFullError(
                f"bloom filter at provisioned capacity {self.capacity}"
            )
        for pos in self._positions(item):
            self._array[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def _contains(self, item: bytes) -> bool:
        return all(
            self._array[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(item)
        )

    def _delete(self, item: bytes) -> bool:
        raise self._deletion_unsupported()

    def slot_count(self) -> int:
        return self._bits

    def size_in_bytes(self) -> int:
        return len(self._array)

    def to_bytes(self) -> bytes:
        return bytes(self._array)

    @classmethod
    def from_bytes(cls, params, payload):  # pragma: no cover - not needed
        raise NotImplementedError("reference models only serialize")


class ReferenceCountingBloomFilter(AMQFilter):
    name = "counting-bloom"
    supports_deletion = True

    _COUNTER_MAX = 0xF

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._cells, self._k = _optimal_geometry(params.capacity, params.fpp)
        self._array = bytearray((self._cells + 1) // 2)

    def _positions(self, item: bytes):
        for h in double_hashes(item, self._k, self._params.seed):
            yield h % self._cells

    def _get(self, pos: int) -> int:
        byte = self._array[pos >> 1]
        return (byte >> 4) if pos & 1 else (byte & 0xF)

    def _set(self, pos: int, value: int) -> None:
        idx = pos >> 1
        if pos & 1:
            self._array[idx] = (self._array[idx] & 0x0F) | (value << 4)
        else:
            self._array[idx] = (self._array[idx] & 0xF0) | value

    def _insert(self, item: bytes) -> None:
        if self._count >= self.capacity:
            raise FilterFullError(
                f"counting bloom filter at provisioned capacity {self.capacity}"
            )
        for pos in self._positions(item):
            current = self._get(pos)
            if current < self._COUNTER_MAX:
                self._set(pos, current + 1)
        self._count += 1

    def _contains(self, item: bytes) -> bool:
        return all(self._get(pos) > 0 for pos in self._positions(item))

    def _delete(self, item: bytes) -> bool:
        positions = list(self._positions(item))
        if not all(self._get(pos) > 0 for pos in positions):
            return False
        for pos in positions:
            current = self._get(pos)
            if 0 < current < self._COUNTER_MAX:
                self._set(pos, current - 1)
        self._count = max(0, self._count - 1)
        return True

    def slot_count(self) -> int:
        return self._cells

    def size_in_bytes(self) -> int:
        return len(self._array)

    def to_bytes(self) -> bytes:
        return self._count.to_bytes(4, "big") + bytes(self._array)

    @classmethod
    def from_bytes(cls, params, payload):  # pragma: no cover
        raise NotImplementedError("reference models only serialize")


# ---------------------------------------------------------------------------
# Cuckoo / vacuum references (list-backed two-choice bucket tables)
# ---------------------------------------------------------------------------


class _ReferenceBucketTable(AMQFilter):
    """Shared scalar core of the cuckoo/vacuum references."""

    _BUCKET_SIZE = 4
    _MAX_KICKS = 500
    _RNG_SALT = 0

    supports_deletion = True

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._bucket_size = self._BUCKET_SIZE
        self._max_kicks = self._MAX_KICKS
        self._fp_bits = fingerprint_bits_for_fpp(params.fpp, self._bucket_size)
        self._semi_sort = self._fp_bits >= _SS_MIN_FP_BITS
        self._num_buckets = self._geometry(params)
        self._table = [0] * (self._num_buckets * self._bucket_size)
        self._rng = random.Random(params.seed ^ self._RNG_SALT)

    def _geometry(self, params: FilterParams) -> int:
        raise NotImplementedError

    def _alt_index(self, index: int, fp: int) -> int:
        raise NotImplementedError

    def _fingerprint(self, item: bytes) -> int:
        return fingerprint(item, self._fp_bits, self._params.seed)

    def _index1(self, item: bytes) -> int:
        return hash64(item, self._params.seed) % self._num_buckets

    def _bucket_insert(self, index: int, fp: int) -> bool:
        start = index * self._bucket_size
        for slot in range(start, start + self._bucket_size):
            if self._table[slot] == 0:
                self._table[slot] = fp
                return True
        return False

    def _insert(self, item: bytes) -> None:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        i2 = self._alt_index(i1, fp)
        if self._bucket_insert(i1, fp) or self._bucket_insert(i2, fp):
            self._count += 1
            return
        self._kick(fp, i1, i2)

    def _kick(self, fp: int, i1: int, i2: int) -> None:
        index = self._rng.choice((i1, i2))
        path: List[int] = []
        for _ in range(self._max_kicks):
            start = index * self._bucket_size
            victim_slot = start + self._rng.randrange(self._bucket_size)
            path.append(victim_slot)
            fp, self._table[victim_slot] = self._table[victim_slot], fp
            index = self._alt_index(index, fp)
            if self._bucket_insert(index, fp):
                self._count += 1
                return
        for slot in reversed(path):
            fp, self._table[slot] = self._table[slot], fp
        raise FilterFullError(
            f"{self.name} reference insert failed after {self._max_kicks} kicks"
        )

    def _contains(self, item: bytes) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        start = i1 * self._bucket_size
        if fp in self._table[start : start + self._bucket_size]:
            return True
        i2 = self._alt_index(i1, fp)
        start = i2 * self._bucket_size
        return fp in self._table[start : start + self._bucket_size]

    def _delete(self, item: bytes) -> bool:
        fp = self._fingerprint(item)
        i1 = self._index1(item)
        for index in (i1, self._alt_index(i1, fp)):
            start = index * self._bucket_size
            for slot in range(start, start + self._bucket_size):
                if self._table[slot] == fp:
                    self._table[slot] = 0
                    self._count -= 1
                    return True
        return False

    def slot_count(self) -> int:
        return self._num_buckets * self._bucket_size

    def size_in_bytes(self) -> int:
        if self._semi_sort:
            return _ss_packed_size_bytes(self._num_buckets, self._fp_bits)
        return (self.slot_count() * self._fp_bits + 7) // 8

    def to_bytes(self) -> bytes:
        if self._semi_sort:
            return _ss_pack_table(self._table, self._fp_bits)
        return _pack_slots(self._table, self._fp_bits)

    @classmethod
    def from_bytes(cls, params, payload):  # pragma: no cover
        raise NotImplementedError("reference models only serialize")


class ReferenceCuckooFilter(_ReferenceBucketTable):
    name = "cuckoo"
    _RNG_SALT = 0xC0C0

    def _geometry(self, params: FilterParams) -> int:
        return cuckoo_geometry(params.capacity, params.load_factor, self._bucket_size)

    def _alt_index(self, index: int, fp: int) -> int:
        return (index ^ hash_int(fp, self._params.seed)) % self._num_buckets


class ReferenceVacuumFilter(_ReferenceBucketTable):
    name = "vacuum"
    _RNG_SALT = 0x7ACC

    def _geometry(self, params: FilterParams) -> int:
        num_buckets, self._chunk_len = vacuum_geometry(
            params.capacity, params.load_factor, self._bucket_size
        )
        return num_buckets

    def _alt_index(self, index: int, fp: int) -> int:
        h = hash_int(fp, self._params.seed)
        if fp & 1 == 0:
            return (h - index) % self._num_buckets
        base = index - (index % self._chunk_len)
        return base + ((index - base) ^ (h % self._chunk_len))


# ---------------------------------------------------------------------------
# Quotient reference
# ---------------------------------------------------------------------------


class ReferenceQuotientFilter(AMQFilter):
    name = "quotient"
    supports_deletion = True

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._slots = quotient_geometry(params.capacity, params.load_factor)
        self._r_bits = remainder_bits_for_fpp(params.fpp)
        self._occ = [False] * self._slots
        self._cont = [False] * self._slots
        self._shift = [False] * self._slots
        self._rem = [0] * self._slots

    def _qr(self, item: bytes) -> "tuple[int, int]":
        h = hash64(item, self._params.seed)
        rem = h & ((1 << self._r_bits) - 1)
        quo = (h >> self._r_bits) & (self._slots - 1)
        return quo, rem

    def _slot_empty(self, pos: int) -> bool:
        return not (self._occ[pos] or self._cont[pos] or self._shift[pos])

    def _cluster_start(self, q: int) -> int:
        b = q
        while self._shift[b]:
            b = (b - 1) % self._slots
        return b

    def _run_start(self, q: int) -> int:
        b = self._cluster_start(q)
        s = b
        while b != q:
            s = (s + 1) % self._slots
            while self._cont[s]:
                s = (s + 1) % self._slots
            b = (b + 1) % self._slots
            while not self._occ[b]:
                b = (b + 1) % self._slots
        return s

    def _insert(self, item: bytes) -> None:
        if self._count >= self._slots - 1:
            raise FilterFullError(
                f"quotient reference full ({self._count}/{self._slots} slots)"
            )
        q, rem = self._qr(item)
        self._insert_qr(q, rem)
        self._count += 1

    def _insert_qr(self, q: int, rem: int) -> None:
        was_occupied = self._occ[q]
        if self._slot_empty(q) and not was_occupied:
            self._occ[q] = True
            self._rem[q] = rem
            return
        self._occ[q] = True
        start = self._run_start(q)
        pos = start
        at_run_start = True
        if was_occupied:
            while True:
                if rem <= self._rem[pos]:
                    break
                nxt = (pos + 1) % self._slots
                if not self._cont[nxt]:
                    pos = nxt
                    at_run_start = False
                    break
                pos = nxt
                at_run_start = False
        new_cont = was_occupied and not at_run_start
        displaced_start = was_occupied and at_run_start
        carry_rem = rem
        carry_cont = new_cont
        shifted_flag = pos != q
        first = True
        while True:
            if self._slot_empty(pos):
                self._rem[pos] = carry_rem
                self._cont[pos] = carry_cont
                self._shift[pos] = shifted_flag
                return
            occ_rem = self._rem[pos]
            occ_cont = self._cont[pos]
            self._rem[pos] = carry_rem
            self._cont[pos] = carry_cont
            self._shift[pos] = shifted_flag
            carry_rem = occ_rem
            carry_cont = occ_cont
            if first and displaced_start:
                carry_cont = True
            first = False
            pos = (pos + 1) % self._slots
            shifted_flag = True

    def _contains(self, item: bytes) -> bool:
        q, rem = self._qr(item)
        if not self._occ[q]:
            return False
        pos = self._run_start(q)
        while True:
            if self._rem[pos] == rem:
                return True
            if self._rem[pos] > rem:
                return False
            pos = (pos + 1) % self._slots
            if not self._cont[pos]:
                return False

    def _delete(self, item: bytes) -> bool:
        q, rem = self._qr(item)
        if not self._occ[q] or not self._contains(item):
            return False
        cs = self._cluster_start(q)
        cells = self._decode_cluster(cs)
        cells.remove((q, rem))
        self._clear_range(cs, len(cells) + 1)
        for cell_q, cell_rem in cells:
            self._insert_qr(cell_q, cell_rem)
        self._count -= 1
        return True

    def _decode_cluster(self, cs: int) -> "list[tuple[int, int]]":
        from collections import deque

        cells: "list[tuple[int, int]]" = []
        pending: "deque[int]" = deque()
        pos = cs
        cur_q = cs
        while True:
            if self._slot_empty(pos):
                break
            if pos != cs and not self._shift[pos]:
                break
            if self._occ[pos]:
                pending.append(pos)
            if not self._cont[pos]:
                cur_q = pending.popleft()
            cells.append((cur_q, self._rem[pos]))
            pos = (pos + 1) % self._slots
            if pos == cs:
                break
        return cells

    def _clear_range(self, start: int, length: int) -> None:
        for i in range(length):
            pos = (start + i) % self._slots
            self._occ[pos] = False
            self._cont[pos] = False
            self._shift[pos] = False
            self._rem[pos] = 0

    def slot_count(self) -> int:
        return self._slots

    def size_in_bytes(self) -> int:
        return self._slots * (self._r_bits + 3) // 8

    @staticmethod
    def _pack_bits(flags: "list[bool]") -> bytes:
        out = bytearray(len(flags) // 8)
        for i, flag in enumerate(flags):
            if flag:
                out[i >> 3] |= 1 << (i & 7)
        return bytes(out)

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += self._pack_bits(self._occ)
        out += self._pack_bits(self._cont)
        out += self._pack_bits(self._shift)
        out += _pack_slots(self._rem, self._r_bits)
        return bytes(out)

    @classmethod
    def from_bytes(cls, params, payload):  # pragma: no cover
        raise NotImplementedError("reference models only serialize")


# ---------------------------------------------------------------------------
# XOR reference
# ---------------------------------------------------------------------------

_XOR_MAX_ATTEMPTS = 64


class ReferenceXorFilter(AMQFilter):
    name = "xor"
    supports_deletion = False

    def __init__(self, params: FilterParams) -> None:
        super().__init__(params)
        self._fp_bits = max(2, min(32, math.ceil(-math.log2(params.fpp))))
        slots = int(1.23 * max(1, params.capacity)) + 32
        self._slots = slots + (-slots) % 3
        self._table: List[int] = [0] * self._slots
        self._items: List[bytes] = []
        self._dirty = False
        self._construction_seed = 0

    def _hashes(self, item: bytes, construction_seed: int):
        base = hash64(item, self._params.seed ^ (construction_seed * 0x9E37))
        third = self._slots // 3
        h0 = base % third
        h1 = third + (splitmix64(base ^ 0xA5A5) % third)
        h2 = 2 * third + (splitmix64(base ^ 0x5A5A) % third)
        fp = splitmix64(base ^ 0xF0F0) & ((1 << self._fp_bits) - 1)
        return h0, h1, h2, fp

    def _rebuild(self) -> None:
        build_items = list(dict.fromkeys(self._items))
        for attempt in range(_XOR_MAX_ATTEMPTS):
            if self._try_build(build_items, attempt):
                self._construction_seed = attempt
                self._dirty = False
                return
        raise FilterFullError("xor reference construction failed")

    def _try_build(self, build_items: List[bytes], construction_seed: int) -> bool:
        slots = self._slots
        xor_of_items = [0] * slots
        degree = [0] * slots
        triples = []
        for idx, item in enumerate(build_items):
            h0, h1, h2, fp = self._hashes(item, construction_seed)
            triples.append((h0, h1, h2, fp))
            for h in (h0, h1, h2):
                xor_of_items[h] ^= idx
                degree[h] += 1
        stack = []
        queue = [s for s in range(slots) if degree[s] == 1]
        while queue:
            slot = queue.pop()
            if degree[slot] != 1:
                continue
            idx = xor_of_items[slot]
            stack.append((slot, idx))
            for h in triples[idx][:3]:
                xor_of_items[h] ^= idx
                degree[h] -= 1
                if degree[h] == 1:
                    queue.append(h)
        if len(stack) != len(build_items):
            return False
        table = [0] * slots
        for slot, idx in reversed(stack):
            h0, h1, h2, fp = triples[idx]
            table[slot] = fp ^ table[h0] ^ table[h1] ^ table[h2] ^ table[slot]
        self._table = table
        return True

    def _insert(self, item: bytes) -> None:
        if len(self._items) >= self.capacity:
            raise FilterFullError(
                f"xor reference at provisioned capacity {self.capacity}"
            )
        self._items.append(item)
        self._count += 1
        self._dirty = True

    def _contains(self, item: bytes) -> bool:
        if self._dirty:
            self._rebuild()
        h0, h1, h2, fp = self._hashes(item, self._construction_seed)
        return (self._table[h0] ^ self._table[h1] ^ self._table[h2]) == fp

    def _delete(self, item: bytes) -> bool:
        raise self._deletion_unsupported()

    def load_factor(self) -> float:
        return self._count / self.capacity if self.capacity else 0.0

    def slot_count(self) -> int:
        return self._slots

    def size_in_bytes(self) -> int:
        return (self._slots * self._fp_bits + 7) // 8

    def to_bytes(self) -> bytes:
        if self._dirty:
            self._rebuild()
        header = self._construction_seed.to_bytes(1, "big") + self._count.to_bytes(
            4, "big"
        )
        return bytes(header) + _pack_slots(self._table, self._fp_bits)

    @classmethod
    def from_bytes(cls, params, payload):  # pragma: no cover
        raise NotImplementedError("reference models only serialize")


#: Production name -> frozen reference model.
REFERENCE_MODELS = {
    cls.name: cls
    for cls in (
        ReferenceBloomFilter,
        ReferenceCountingBloomFilter,
        ReferenceCuckooFilter,
        ReferenceVacuumFilter,
        ReferenceQuotientFilter,
        ReferenceXorFilter,
    )
}
