"""Stateful (rule-based) property testing of the dynamic filters.

Hypothesis drives arbitrary interleavings of insert/delete/lookup — both
the scalar operations and their ``*_batch`` counterparts, freely mixed —
against a reference multiset, checking after every step:

* no false negatives for currently-inserted items;
* deletions only succeed for plausible members and keep counts exact;
* serialization round-trips preserve answers mid-sequence.

This is the strongest correctness net over the quotient filter's
metadata-bit machinery and the vacuum filter's dual alternate maps.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.amq import (
    CuckooFilter,
    FilterParams,
    QuotientFilter,
    VacuumFilter,
    canonical_params,
    deserialize_filter,
    serialize_filter,
)
from repro.errors import FilterFullError


class FilterMachine(RuleBasedStateMachine):
    """Shared behaviour; subclasses pick the structure."""

    filter_cls = None

    #: Stay well under the 2*bucket_size copies a cuckoo bucket pair can
    #: hold, so kick-chain failures stay rare and the machine exercises
    #: mostly-successful traffic. Failed inserts are transactional (see
    #: test_insert_failure_rollback), so an occasional ``FilterFullError``
    #: from *distinct* items colliding on one bucket pair is harmless:
    #: it stores nothing and the reference stays in sync.
    MAX_MULTIPLICITY = 4

    items = Bundle("items")

    @initialize(
        capacity=st.integers(min_value=64, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def setup(self, capacity, seed):
        params = canonical_params(
            FilterParams(capacity=capacity, fpp=1e-2, load_factor=0.8, seed=seed)
        )
        self.filt = self.filter_cls(params)
        self.reference = {}  # item -> multiplicity

    @rule(target=items, raw=st.binary(min_size=1, max_size=24))
    def make_item(self, raw):
        return raw

    @rule(item=items)
    def insert(self, item):
        if len(self.filt) >= int(0.8 * self.filt.slot_count()):
            return  # stay under the reliable operating load
        if self.reference.get(item, 0) >= self.MAX_MULTIPLICITY:
            return
        try:
            self.filt.insert(item)
        except FilterFullError:
            return
        self.reference[item] = self.reference.get(item, 0) + 1

    @rule(item=items)
    def delete(self, item):
        present = self.reference.get(item, 0) > 0
        deleted = self.filt.delete(item)
        if present:
            assert deleted, "delete lost a present item"
            self.reference[item] -= 1
            if not self.reference[item]:
                del self.reference[item]
        elif deleted:
            # A fingerprint collision can satisfy a delete for an absent
            # item; that removes evidence for some other member, which
            # would surface as a false negative below. With 24-byte items
            # in a tiny universe this is overwhelmingly a bug — fail.
            raise AssertionError("deleted an item that was never inserted")

    @rule(batch=st.lists(items, max_size=12))
    def insert_batch(self, batch):
        if len(self.filt) + len(batch) >= int(0.8 * self.filt.slot_count()):
            return  # stay under the reliable operating load
        # Enforce the multiplicity envelope across the whole batch,
        # counting duplicates inside the batch itself.
        pending = {}
        capped = []
        for item in batch:
            copies = self.reference.get(item, 0) + pending.get(item, 0)
            if copies >= self.MAX_MULTIPLICITY:
                continue
            pending[item] = pending.get(item, 0) + 1
            capped.append(item)
        try:
            self.filt.insert_batch(capped)
        except FilterFullError as exc:
            # Prefix-insert contract: the leading inserted_count items
            # landed, the rest did not.
            for item in capped[: exc.inserted_count]:
                self.reference[item] = self.reference.get(item, 0) + 1
            return
        for item in capped:
            self.reference[item] = self.reference.get(item, 0) + 1

    @rule(batch=st.lists(items, max_size=12))
    def contains_batch(self, batch):
        assert self.filt.contains_batch(batch) == [
            self.filt.contains(item) for item in batch
        ]

    @rule(batch=st.lists(items, max_size=12))
    def delete_batch(self, batch):
        flags = self.filt.delete_batch(batch)
        assert len(flags) == len(batch)
        for item, deleted in zip(batch, flags):
            present = self.reference.get(item, 0) > 0
            if present:
                assert deleted, "delete_batch lost a present item"
                self.reference[item] -= 1
                if not self.reference[item]:
                    del self.reference[item]
            elif deleted:
                raise AssertionError(
                    "delete_batch removed an item that was never inserted"
                )

    @rule()
    def roundtrip(self):
        restored = deserialize_filter(serialize_filter(self.filt))
        for item in self.reference:
            assert restored.contains(item)
        assert len(restored) == len(self.filt)

    @invariant()
    def no_false_negatives(self):
        if not hasattr(self, "filt"):
            return
        for item, count in self.reference.items():
            assert count < 1 or self.filt.contains(item)

    @invariant()
    def count_matches_reference(self):
        if not hasattr(self, "filt"):
            return
        assert len(self.filt) == sum(self.reference.values())


class CuckooMachine(FilterMachine):
    filter_cls = CuckooFilter


class VacuumMachine(FilterMachine):
    filter_cls = VacuumFilter


class QuotientMachine(FilterMachine):
    filter_cls = QuotientFilter

    @invariant()
    def structural_invariants(self):
        if not hasattr(self, "filt"):
            return
        f = self.filt
        runs = sum(
            1
            for pos in range(f.slot_count())
            if not f._slot_empty(pos) and not f._cont[pos]
        )
        assert runs == sum(f._occ), "run count != occupied count"
        for pos in range(f.slot_count()):
            if f._cont[pos]:
                assert f._shift[pos], f"continuation without shift at {pos}"


_settings = settings(
    max_examples=20,
    stateful_step_count=40,
    deadline=None,
    # Timing-based health checks misfire on loaded CI runners sharing
    # cores with the benchmark jobs; correctness is load-independent.
    suppress_health_check=[HealthCheck.too_slow],
)

TestCuckooStateful = CuckooMachine.TestCase
TestCuckooStateful.settings = _settings
TestVacuumStateful = VacuumMachine.TestCase
TestVacuumStateful.settings = _settings
TestQuotientStateful = QuotientMachine.TestCase
TestQuotientStateful.settings = _settings
