"""Unit tests for the vacuum filter."""

import pytest

from repro.amq import CuckooFilter, FilterParams, VacuumFilter
from repro.errors import FilterFullError, FilterSerializationError
from tests.conftest import make_items


class TestGeometry:
    def test_table_not_forced_to_power_of_two(self, paper_params):
        f = VacuumFilter(paper_params)
        # 245 items / (4 * 0.9) needs 69 buckets; vacuum rounds to a chunk
        # multiple (96), well below the cuckoo power-of-two table (128).
        assert f.num_buckets % f.chunk_len == 0
        assert f.num_buckets < CuckooFilter(paper_params).num_buckets

    def test_chunk_is_power_of_two(self, paper_params):
        f = VacuumFilter(paper_params)
        assert f.chunk_len & (f.chunk_len - 1) == 0

    def test_smaller_than_cuckoo_for_paper_capacity(self, paper_params):
        assert (
            VacuumFilter(paper_params).size_in_bytes()
            < CuckooFilter(paper_params).size_in_bytes()
        )

    def test_alt_index_is_involution(self, paper_params):
        f = VacuumFilter(paper_params)
        for raw in range(200):
            item = raw.to_bytes(4, "big")
            fp = f._fingerprint(item)
            i1 = f._index1(item)
            i2 = f._alt_index(i1, fp)
            assert f._alt_index(i2, fp) == i1

    def test_local_class_stays_in_chunk(self, paper_params):
        f = VacuumFilter(paper_params)
        for raw in range(400):
            item = raw.to_bytes(4, "big")
            fp = f._fingerprint(item)
            if fp & 1 == 0:
                continue  # global class, tested separately
            i1 = f._index1(item)
            i2 = f._alt_index(i1, fp)
            assert i1 // f.chunk_len == i2 // f.chunk_len

    def test_global_class_roams_table(self, paper_params):
        f = VacuumFilter(paper_params)
        escaped = 0
        for raw in range(400):
            item = raw.to_bytes(4, "big")
            fp = f._fingerprint(item)
            if fp & 1:
                continue
            i1 = f._index1(item)
            i2 = f._alt_index(i1, fp)
            assert 0 <= i2 < f.num_buckets
            if i1 // f.chunk_len != i2 // f.chunk_len:
                escaped += 1
        assert escaped > 0  # the safety-valve class does leave its chunk


class TestMembership:
    def test_no_false_negatives(self, paper_params, items_245):
        f = VacuumFilter(paper_params)
        f.insert_all(items_245)
        assert all(f.contains(i) for i in items_245)

    def test_fpp_near_target(self, rng, paper_params, items_245):
        f = VacuumFilter(paper_params)
        f.insert_all(items_245)
        probes = make_items(rng, 30000, size=24)
        fp = sum(f.contains(p) for p in probes) / len(probes)
        assert fp <= paper_params.fpp * 3

    def test_large_population(self, rng):
        params = FilterParams(capacity=3000, fpp=1e-3, load_factor=0.9, seed=2)
        f = VacuumFilter(params)
        items = make_items(rng, 3000, size=16)
        f.insert_all(items)
        assert all(f.contains(i) for i in items)


class TestDeletion:
    def test_delete_and_reinsert_cycle(self, rng, paper_params, items_245):
        f = VacuumFilter(paper_params)
        f.insert_all(items_245)
        for item in items_245[:60]:
            assert f.delete(item)
        replacements = make_items(rng, 60, size=20)
        f.insert_all(replacements)
        assert all(f.contains(i) for i in replacements)
        assert all(f.contains(i) for i in items_245[60:])

    def test_delete_absent_returns_false(self, paper_params):
        f = VacuumFilter(paper_params)
        f.insert(b"present")
        assert not f.delete(b"absent-item")


class TestOverflow:
    def test_raises_when_truly_full(self, rng):
        params = FilterParams(capacity=32, fpp=0.01, load_factor=1.0, seed=3)
        f = VacuumFilter(params)
        with pytest.raises(FilterFullError):
            f.insert_all(make_items(rng, 8 * f.slot_count()))


class TestSerialization:
    def test_roundtrip(self, paper_params, items_245):
        f = VacuumFilter(paper_params)
        f.insert_all(items_245)
        g = VacuumFilter.from_bytes(paper_params, f.to_bytes())
        assert g.to_bytes() == f.to_bytes()
        assert all(g.contains(i) for i in items_245)
        assert len(g) == len(f)

    def test_wire_length_equals_size(self, paper_params):
        f = VacuumFilter(paper_params)
        assert len(f.to_bytes()) == f.size_in_bytes()

    def test_bad_length_rejected(self, paper_params):
        with pytest.raises(FilterSerializationError):
            VacuumFilter.from_bytes(paper_params, b"")
