"""Unit tests for the Bloom and counting-Bloom filters."""

import math

import pytest

from repro.amq import BloomFilter, CountingBloomFilter, FilterParams
from repro.amq.bloom import _optimal_geometry
from repro.errors import (
    DeletionUnsupportedError,
    FilterFullError,
    FilterSerializationError,
)
from tests.conftest import make_items


class TestOptimalGeometry:
    def test_textbook_values(self):
        # n=1000, eps=1%: m ~= 9585 bits, k ~= 7.
        m, k = _optimal_geometry(1000, 0.01)
        assert abs(m - 9586) <= 2
        assert k == 7

    def test_lower_fpp_means_more_bits(self):
        m_hi, _ = _optimal_geometry(500, 0.01)
        m_lo, _ = _optimal_geometry(500, 0.0001)
        assert m_lo > m_hi

    def test_k_at_least_one(self):
        _, k = _optimal_geometry(10, 0.5)
        assert k >= 1


class TestBloomFilter:
    def test_no_false_negatives(self, paper_params, items_245):
        f = BloomFilter(paper_params)
        f.insert_all(items_245)
        assert all(f.contains(i) for i in items_245)

    def test_fpp_near_target(self, rng, paper_params, items_245):
        f = BloomFilter(paper_params)
        f.insert_all(items_245)
        probes = make_items(rng, 30000, size=24)
        fp = sum(f.contains(p) for p in probes) / len(probes)
        assert fp <= paper_params.fpp * 3

    def test_capacity_enforced(self):
        f = BloomFilter(FilterParams(capacity=5))
        for i in range(5):
            f.insert(bytes([i]))
        with pytest.raises(FilterFullError):
            f.insert(b"overflow")

    def test_delete_unsupported(self, paper_params):
        f = BloomFilter(paper_params)
        with pytest.raises(DeletionUnsupportedError):
            f.delete(b"x")

    def test_size_matches_geometry(self, paper_params):
        f = BloomFilter(paper_params)
        m, _ = _optimal_geometry(paper_params.capacity, paper_params.fpp)
        assert f.size_in_bytes() == (m + 7) // 8

    def test_serialization_roundtrip(self, paper_params, items_245):
        f = BloomFilter(paper_params)
        f.insert_all(items_245)
        g = BloomFilter.from_bytes(paper_params, f.to_bytes())
        assert all(g.contains(i) for i in items_245)

    def test_cardinality_estimate_close(self, paper_params, items_245):
        f = BloomFilter(paper_params)
        f.insert_all(items_245)
        g = BloomFilter.from_bytes(paper_params, f.to_bytes())
        assert abs(len(g) - 245) <= 25

    def test_from_bytes_rejects_wrong_length(self, paper_params):
        with pytest.raises(FilterSerializationError):
            BloomFilter.from_bytes(paper_params, b"\x00" * 3)

    def test_current_fpp_grows_with_fill(self, paper_params, items_245):
        f = BloomFilter(paper_params)
        f.insert_all(items_245[:50])
        early = f.current_fpp()
        f.insert_all(items_245[50:])
        assert f.current_fpp() > early

    def test_empty_filter_contains_nothing(self, rng, paper_params):
        f = BloomFilter(paper_params)
        assert not any(f.contains(p) for p in make_items(rng, 1000))


class TestCountingBloomFilter:
    def test_insert_delete_reinstates_absence(self, rng, paper_params, items_245):
        f = CountingBloomFilter(paper_params)
        f.insert_all(items_245)
        for item in items_245[:120]:
            assert f.delete(item)
        # Remaining items must still be present (no false negatives).
        assert all(f.contains(i) for i in items_245[120:])

    def test_delete_absent_returns_false(self, paper_params):
        f = CountingBloomFilter(paper_params)
        f.insert(b"present")
        assert not f.delete(b"definitely-absent")

    def test_delete_on_empty_filter(self, paper_params):
        f = CountingBloomFilter(paper_params)
        assert not f.delete(b"anything")

    def test_double_insert_needs_double_delete(self, paper_params):
        f = CountingBloomFilter(paper_params)
        f.insert(b"dup")
        f.insert(b"dup")
        assert f.delete(b"dup")
        assert f.contains(b"dup")
        assert f.delete(b"dup")

    def test_four_times_bloom_size(self, paper_params):
        bloom = BloomFilter(paper_params)
        counting = CountingBloomFilter(paper_params)
        ratio = counting.size_in_bytes() / bloom.size_in_bytes()
        assert 3.5 <= ratio <= 4.5

    def test_capacity_enforced(self):
        f = CountingBloomFilter(FilterParams(capacity=3))
        for i in range(3):
            f.insert(bytes([i]))
        with pytest.raises(FilterFullError):
            f.insert(b"overflow")

    def test_counter_saturation_preserves_membership(self):
        # Hammer a single item far past the 4-bit counter maximum; deleting
        # the same number of times must never produce a false negative for
        # a still-present co-resident item.
        f = CountingBloomFilter(FilterParams(capacity=200, fpp=0.01))
        f.insert(b"resident")
        for _ in range(40):
            f.insert(b"hammer")
        for _ in range(40):
            f.delete(b"hammer")
        assert f.contains(b"resident")

    def test_serialization_roundtrip_preserves_count(self, paper_params, items_245):
        f = CountingBloomFilter(paper_params)
        f.insert_all(items_245)
        g = CountingBloomFilter.from_bytes(paper_params, f.to_bytes())
        assert len(g) == 245
        assert all(g.contains(i) for i in items_245)

    def test_from_bytes_rejects_truncated(self, paper_params):
        with pytest.raises(FilterSerializationError):
            CountingBloomFilter.from_bytes(paper_params, b"\x00\x01")

    def test_fpp_near_target(self, rng, paper_params, items_245):
        f = CountingBloomFilter(paper_params)
        f.insert_all(items_245)
        probes = make_items(rng, 30000, size=24)
        fp = sum(f.contains(p) for p in probes) / len(probes)
        assert fp <= paper_params.fpp * 3
