"""Tests for the analytic sizing models (they drive Figs. 3 and 4)."""

import pytest

from repro.amq import (
    BloomFilter,
    CuckooFilter,
    FilterParams,
    QuotientFilter,
    VacuumFilter,
    bloom_size_bits,
    cuckoo_size_bits,
    fingerprint_bits_for_fpp,
    max_capacity_within,
    quotient_size_bits,
    size_bytes_for,
    vacuum_size_bits,
)
from repro.amq.sizing import next_power_of_two, remainder_bits_for_fpp
from repro.errors import ConfigurationError


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (128, 128), (129, 256)]
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            next_power_of_two(0)


class TestFingerprintBits:
    def test_paper_config(self):
        assert fingerprint_bits_for_fpp(1e-3, 4) == 13

    def test_monotone_in_fpp(self):
        widths = [fingerprint_bits_for_fpp(10**-e) for e in range(1, 7)]
        assert widths == sorted(widths)

    def test_bounds(self):
        assert fingerprint_bits_for_fpp(0.9) >= 2
        assert fingerprint_bits_for_fpp(1e-12) <= 32

    def test_rejects_bad_fpp(self):
        with pytest.raises(ConfigurationError):
            fingerprint_bits_for_fpp(0.0)


class TestRemainderBits:
    def test_paper_config(self):
        assert remainder_bits_for_fpp(1e-3) == 10

    def test_rejects_bad_fpp(self):
        with pytest.raises(ConfigurationError):
            remainder_bits_for_fpp(1.5)


class TestAnalyticSizesMatchImplementations:
    """The whole point of sizing.py: predictions == measured sizes."""

    def test_bloom(self, paper_params):
        predicted = (bloom_size_bits(245, paper_params.fpp) + 7) // 8
        assert BloomFilter(paper_params).size_in_bytes() == predicted

    def test_cuckoo(self, paper_params):
        bits = cuckoo_size_bits(245, paper_params.fpp, paper_params.load_factor)
        assert CuckooFilter(paper_params).size_in_bytes() == (bits + 7) // 8

    def test_vacuum(self, paper_params):
        bits = vacuum_size_bits(245, paper_params.fpp, paper_params.load_factor)
        assert VacuumFilter(paper_params).size_in_bytes() == (bits + 7) // 8

    def test_quotient(self, paper_params):
        bits = quotient_size_bits(245, paper_params.fpp, paper_params.load_factor)
        assert QuotientFilter(paper_params).size_in_bytes() == (bits + 7) // 8


class TestSizeBytesFor:
    def test_dispatch(self):
        for kind in ("bloom", "cuckoo", "vacuum", "quotient"):
            assert size_bytes_for(kind, 245, 1e-3, 0.9) > 0

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            size_bytes_for("ribbon", 100, 0.01)

    def test_size_decreases_with_looser_fpp(self):
        for kind in ("bloom", "cuckoo", "vacuum", "quotient"):
            tight = size_bytes_for(kind, 245, 1e-4, 0.9)
            loose = size_bytes_for(kind, 245, 1e-1, 0.9)
            assert loose < tight, kind

    def test_size_grows_with_capacity(self):
        for kind in ("bloom", "cuckoo", "vacuum", "quotient"):
            small = size_bytes_for(kind, 100, 1e-3, 0.9)
            large = size_bytes_for(kind, 1400, 1e-3, 0.9)
            assert large > small, kind

    def test_lower_load_factor_costs_space(self):
        for kind in ("cuckoo", "vacuum", "quotient"):
            dense = size_bytes_for(kind, 245, 1e-3, 0.9)
            sparse = size_bytes_for(kind, 245, 1e-3, 0.3)
            assert sparse >= dense, kind


class TestMaxCapacityWithin:
    def test_paper_budget_holds_300_ics(self):
        """§5.2: within ~550 bytes the structures hold over 300 ICs at
        FPP 0.1%. Our vacuum filter meets this; the power-of-two cuckoo
        needs the budget's upper range."""
        cap = max_capacity_within("vacuum", 550, 1e-3, 0.95)
        assert cap >= 300

    def test_result_is_tight(self):
        budget = 550
        for kind in ("bloom", "cuckoo", "vacuum", "quotient"):
            cap = max_capacity_within(kind, budget, 1e-3, 0.9)
            assert size_bytes_for(kind, cap, 1e-3, 0.9) <= budget
            assert size_bytes_for(kind, cap + 1, 1e-3, 0.9) > budget or cap >= 1

    def test_zero_budget(self):
        assert max_capacity_within("cuckoo", 0, 1e-3) == 0

    def test_tiny_budget_returns_zero_or_one(self):
        assert max_capacity_within("cuckoo", 1, 1e-6) in (0, 1)

    def test_filter_built_at_max_capacity_fits(self, rng):
        from tests.conftest import make_items

        cap = max_capacity_within("vacuum", 550, 1e-3, 0.9)
        params = FilterParams(capacity=cap, fpp=1e-3, load_factor=0.9, seed=2)
        f = VacuumFilter(params)
        f.insert_all(make_items(rng, cap, size=16))
        assert f.size_in_bytes() <= 550
