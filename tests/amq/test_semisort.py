"""Unit tests for semi-sorting bucket compression (Fan et al. §5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amq import semisort


def fp_strategy(bits):
    # 0 = empty slot; nonzero fingerprints up to the width.
    return st.integers(min_value=0, max_value=(1 << bits) - 1)


class TestBucketCodec:
    def test_encoded_bits_formula(self):
        assert semisort.encoded_bucket_bits(13) == 4 * 13 - 4

    def test_min_width_enforced(self):
        with pytest.raises(ValueError):
            semisort.encoded_bucket_bits(4)

    def test_wrong_bucket_size_rejected(self):
        with pytest.raises(ValueError):
            semisort.encode_bucket([1, 2, 3], 13)

    def test_roundtrip_preserves_multiset(self):
        bucket = [0x1ABC, 0, 0x0003, 0x1ABC]
        index, highs = semisort.encode_bucket(bucket, 13)
        decoded = semisort.decode_bucket(index, highs, 13)
        assert sorted(decoded) == sorted(bucket)

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            semisort.decode_bucket(5000, [0, 0, 0, 0], 13)

    @given(st.lists(fp_strategy(13), min_size=4, max_size=4))
    def test_roundtrip_property(self, bucket):
        index, highs = semisort.encode_bucket(bucket, 13)
        assert sorted(semisort.decode_bucket(index, highs, 13)) == sorted(bucket)

    def test_deterministic_encoding(self):
        # Same multiset in any order encodes identically (buckets are sets).
        a = semisort.encode_bucket([7, 9, 0, 3], 13)
        b = semisort.encode_bucket([3, 0, 9, 7], 13)
        assert a == b


class TestTableCodec:
    @given(
        st.lists(fp_strategy(13), min_size=8, max_size=32).filter(
            lambda t: len(t) % 4 == 0
        )
    )
    def test_table_roundtrip(self, table):
        packed = semisort.pack_table(table, 13)
        unpacked = semisort.unpack_table(packed, len(table) // 4, 13)
        for start in range(0, len(table), 4):
            assert sorted(unpacked[start : start + 4]) == sorted(
                table[start : start + 4]
            )

    def test_packed_size_formula(self):
        table = [0] * 40  # 10 buckets
        assert len(semisort.pack_table(table, 13)) == semisort.packed_size_bytes(
            10, 13
        )

    def test_truncated_payload_rejected(self):
        packed = semisort.pack_table([1, 2, 3, 4] * 4, 13)
        with pytest.raises(ValueError):
            semisort.unpack_table(packed[:-2], 4, 13)

    def test_one_bit_per_item_saving(self):
        # 10 buckets of 4 slots at f=13: plain 520 bits, semi-sorted 480.
        plain_bits = 40 * 13
        packed_bits = 10 * semisort.encoded_bucket_bits(13)
        assert plain_bits - packed_bits == 40  # one bit per slot
