"""Tests for the occupancy-aware effective-FPP estimators.

These estimators explain the FP-count divergence documented in
EXPERIMENTS.md (observed false positives track the *effective* FPP at the
filter's actual occupancy, not the construction-time target), so they
must themselves track measured rates.
"""

import pytest

from repro.amq import (
    BloomFilter,
    CountingBloomFilter,
    CuckooFilter,
    FilterParams,
    QuotientFilter,
    VacuumFilter,
    XorFilter,
    canonical_params,
)
from tests.conftest import make_items

ALL_FILTERS = [
    BloomFilter,
    CountingBloomFilter,
    CuckooFilter,
    VacuumFilter,
    QuotientFilter,
    XorFilter,
]


@pytest.mark.parametrize("filter_cls", ALL_FILTERS)
def test_estimate_tracks_measured_rate(rng, filter_cls):
    params = canonical_params(
        FilterParams(capacity=400, fpp=0.02, load_factor=0.9, seed=3)
    )
    filt = filter_cls(params)
    filt.insert_all(make_items(rng, 400))
    probes = make_items(rng, 40_000, size=20)
    measured = sum(filt.contains(p) for p in probes) / len(probes)
    estimate = filt.effective_fpp()
    assert estimate > 0
    # Within a factor of ~2.5 either way (these are first-order models).
    assert measured <= 2.5 * estimate + 1e-4
    assert measured >= estimate / 2.5 - 1e-4


@pytest.mark.parametrize("filter_cls", [CuckooFilter, VacuumFilter, QuotientFilter])
def test_effective_fpp_grows_with_occupancy(rng, filter_cls):
    params = canonical_params(
        FilterParams(capacity=400, fpp=1e-3, load_factor=0.9, seed=5)
    )
    filt = filter_cls(params)
    empty = filt.effective_fpp()
    filt.insert_all(make_items(rng, 400))
    assert filt.effective_fpp() > empty
    assert empty == 0  # nothing stored, nothing to falsely match


def test_xor_fpp_independent_of_occupancy(rng):
    params = canonical_params(FilterParams(capacity=300, fpp=1e-3, seed=7))
    filt = XorFilter(params)
    before = filt.effective_fpp()
    filt.insert_all(make_items(rng, 150))
    assert filt.effective_fpp() == before


def test_explains_fig5_divergence(rng):
    """The EXPERIMENTS.md story in one assertion: the paper-configured
    cuckoo filter (245 items at nominal 0.1%) actually operates around
    0.05% effective FPP because of fingerprint-width ceiling and table
    under-fill."""
    params = canonical_params(
        FilterParams(capacity=245, fpp=1e-3, load_factor=0.9, seed=1)
    )
    filt = CuckooFilter(params)
    filt.insert_all(make_items(rng, 245))
    assert filt.effective_fpp() < 1e-3 / 1.5
