"""Unit tests for the cuckoo filter."""

import pytest

from repro.amq import CuckooFilter, FilterParams
from repro.errors import FilterFullError, FilterSerializationError
from tests.conftest import make_items


class TestGeometry:
    def test_power_of_two_buckets(self, paper_params):
        f = CuckooFilter(paper_params)
        assert f.num_buckets & (f.num_buckets - 1) == 0

    def test_fingerprint_bits_for_paper_config(self, paper_params):
        # fpp 0.1%, b=4: f = ceil(log2(8/0.001)) = 13 bits.
        assert CuckooFilter(paper_params).fingerprint_bits == 13

    def test_capacity_fits_at_target_load(self, paper_params):
        f = CuckooFilter(paper_params)
        assert f.slot_count() * paper_params.load_factor >= paper_params.capacity

    def test_size_uses_semi_sorted_buckets(self, paper_params):
        f = CuckooFilter(paper_params)
        assert f.semi_sort
        expected = (f.num_buckets * (4 * f.fingerprint_bits - 4) + 7) // 8
        assert f.size_in_bytes() == expected

    def test_semi_sort_saves_one_bit_per_item(self, paper_params):
        compact = CuckooFilter(paper_params)
        plain = CuckooFilter(paper_params, semi_sort=False)
        saved_bits = plain.size_in_bytes() * 8 - compact.size_in_bytes() * 8
        assert saved_bits == plain.slot_count()

    def test_plain_and_semi_sorted_answer_identically(
        self, paper_params, items_245
    ):
        compact = CuckooFilter(paper_params)
        plain = CuckooFilter(paper_params, semi_sort=False)
        compact.insert_all(items_245)
        plain.insert_all(items_245)
        for item in items_245:
            assert compact.contains(item) and plain.contains(item)


class TestMembership:
    def test_no_false_negatives(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        assert all(f.contains(i) for i in items_245)

    def test_fpp_near_target(self, rng, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        probes = make_items(rng, 30000, size=24)
        fp = sum(f.contains(p) for p in probes) / len(probes)
        assert fp <= paper_params.fpp * 3

    def test_empty_filter_contains_nothing(self, rng, paper_params):
        f = CuckooFilter(paper_params)
        assert not any(f.contains(p) for p in make_items(rng, 2000))

    def test_duplicate_inserts_supported(self, paper_params):
        f = CuckooFilter(paper_params)
        for _ in range(4):
            f.insert(b"dup")
        assert len(f) == 4
        assert f.contains(b"dup")


class TestDeletion:
    def test_delete_present(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        assert f.delete(items_245[0])
        assert len(f) == 244

    def test_delete_absent_returns_false(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245[:10])
        assert not f.delete(items_245[-1])

    def test_delete_then_others_still_present(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        for item in items_245[:100]:
            f.delete(item)
        assert all(f.contains(i) for i in items_245[100:])

    def test_delete_reopens_capacity(self, rng):
        """The dynamic-update property the paper needs: expired ICAs can be
        deleted and new ones inserted without rebuilding (§4.2)."""
        params = FilterParams(capacity=240, fpp=1e-3, load_factor=0.9, seed=1)
        f = CuckooFilter(params)
        gen_a = make_items(rng, 240)
        f.insert_all(gen_a)
        for item in gen_a[:50]:
            assert f.delete(item)
        gen_b = make_items(rng, 50, size=20)
        f.insert_all(gen_b)
        assert all(f.contains(i) for i in gen_b)
        assert all(f.contains(i) for i in gen_a[50:])

    def test_duplicate_delete_counts_down(self, paper_params):
        f = CuckooFilter(paper_params)
        f.insert(b"dup")
        f.insert(b"dup")
        assert f.delete(b"dup")
        assert f.contains(b"dup")
        assert f.delete(b"dup")
        assert not f.contains(b"dup")


class TestOverflow:
    def test_insert_beyond_physical_capacity_raises(self, rng):
        params = FilterParams(capacity=64, fpp=0.01, load_factor=1.0, seed=5)
        f = CuckooFilter(params)
        items = make_items(rng, 4 * f.slot_count())
        with pytest.raises(FilterFullError):
            f.insert_all(items)

    def test_fills_to_high_load_factor(self, rng):
        """A size-4-bucket cuckoo table should comfortably exceed 90%
        occupancy before the first failure (Fan et al. report ~95%)."""
        params = FilterParams(capacity=1024, fpp=0.01, load_factor=1.0, seed=9)
        f = CuckooFilter(params)
        items = make_items(rng, f.slot_count() + 100, size=16)
        inserted = 0
        try:
            for item in items:
                f.insert(item)
                inserted += 1
        except FilterFullError:
            pass
        assert inserted / f.slot_count() > 0.9


class TestSerialization:
    def test_roundtrip_identical_table(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        g = CuckooFilter.from_bytes(paper_params, f.to_bytes())
        assert g.to_bytes() == f.to_bytes()
        assert len(g) == len(f)

    def test_roundtrip_membership(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        g = CuckooFilter.from_bytes(paper_params, f.to_bytes())
        assert all(g.contains(i) for i in items_245)

    def test_wire_length_equals_size_in_bytes(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        assert len(f.to_bytes()) == f.size_in_bytes()

    def test_from_bytes_rejects_bad_length(self, paper_params):
        with pytest.raises(FilterSerializationError):
            CuckooFilter.from_bytes(paper_params, b"\x01\x02\x03")

    def test_deserialized_filter_supports_deletion(self, paper_params, items_245):
        f = CuckooFilter(paper_params)
        f.insert_all(items_245)
        g = CuckooFilter.from_bytes(paper_params, f.to_bytes())
        assert g.delete(items_245[3])
        assert not g.contains(items_245[3]) or True  # fp possible; count is exact
        assert len(g) == 244
