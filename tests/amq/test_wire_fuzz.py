"""Fuzzing the wire layers: AMQ images and ``repro.delta/v1`` messages.

Two different hardness contracts, tested separately:

* **Delta messages carry an integrity check**, so the contract is total:
  *any* truncation, extension or single-bit flip anywhere in the message
  raises :class:`~repro.errors.FilterSerializationError`. The corpus
  walks every bit of a patch and a snapshot for every filter family.
* **AMQ images are checksum-free** (the format is frozen by the golden
  images), so a flip in a don't-care region — the seed field, payload
  bits — can decode into a *different but well-formed* filter. The
  contract is therefore: every corruption either raises
  ``FilterSerializationError`` or yields a filter whose declared
  geometry matches its payload; no foreign exception, no crash, ever.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amq import (
    FILTER_REGISTRY,
    DeltaPublisher,
    FilterDelta,
    FilterSnapshot,
    build_filter_at,
    deserialize_delta,
    deserialize_filter,
    serialize_delta,
    serialize_filter,
)
from repro.amq.serialization import serialized_overhead_bytes
from repro.errors import FilterSerializationError
from tests.conftest import make_items

FAMILIES = sorted(cls.name for cls in FILTER_REGISTRY.values())


def _image(rng, name: str) -> bytes:
    filt = build_filter_at(name, 32, 1e-2, 0.9, 17, 0, make_items(rng, 20))
    return serialize_filter(filt)


def _delta_messages(rng, name: str):
    items = make_items(rng, 12)
    pub = DeltaPublisher(name, items, fpp=1e-2, seed=17)
    pub.publish(items[3:] + make_items(rng, 2))
    patch = pub.patch_message(0, 1)
    snapshot = pub.snapshot_message()
    return patch, snapshot


class TestDeltaMessageHardness:
    """Total rejection: the checksum makes every corruption loud."""

    @pytest.mark.parametrize("name", FAMILIES)
    def test_every_bit_flip_rejected(self, rng, name):
        for wire in _delta_messages(rng, name):
            for byte_index in range(len(wire)):
                for bit in range(8):
                    corrupt = bytearray(wire)
                    corrupt[byte_index] ^= 1 << bit
                    with pytest.raises(FilterSerializationError):
                        deserialize_delta(bytes(corrupt))

    @pytest.mark.parametrize("name", FAMILIES)
    def test_every_truncation_rejected(self, rng, name):
        for wire in _delta_messages(rng, name):
            for length in range(len(wire)):
                with pytest.raises(FilterSerializationError):
                    deserialize_delta(wire[:length])

    def test_every_extension_rejected(self, rng):
        patch, snapshot = _delta_messages(rng, "cuckoo")
        for wire in (patch, snapshot):
            for tail in (b"\x00", b"\xff" * 3):
                with pytest.raises(FilterSerializationError):
                    deserialize_delta(wire + tail)

    @given(blob=st.binary(max_size=160))
    @settings(max_examples=120, deadline=None)
    def test_random_blobs_never_raise_foreign_exceptions(self, blob):
        try:
            deserialize_delta(blob)
        except FilterSerializationError:
            pass

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_survives_for_arbitrary_patches(self, data):
        """Property round-trip: any *valid* patch serializes and decodes
        back to itself, whatever its field values."""
        name = data.draw(st.sampled_from(FAMILIES))
        item_len = data.draw(st.integers(1, 48))
        added = data.draw(
            st.lists(st.binary(min_size=item_len, max_size=item_len),
                     unique=True, max_size=6)
        )
        removed = data.draw(
            st.lists(st.integers(0, 0xFFFF), unique=True, max_size=6)
        )
        from_version = data.draw(st.integers(0, 2**40))
        patch = FilterDelta(
            filter_kind=name,
            from_version=from_version,
            to_version=from_version + data.draw(st.integers(1, 2**20)),
            capacity=data.draw(st.integers(1, 0xFFFFFFFF)),
            fpp=data.draw(st.sampled_from([0.1, 1e-2, 1e-3, 1e-5])),
            load_factor=data.draw(st.sampled_from([0.5, 0.9, 1.0])),
            seed=data.draw(st.integers(0, 0xFFFFFFFF)),
            added=tuple(added),
            removed_indices=tuple(sorted(removed)),
        )
        decoded = deserialize_delta(serialize_delta(patch))
        assert decoded.filter_kind == patch.filter_kind
        assert decoded.from_version == patch.from_version
        assert decoded.to_version == patch.to_version
        assert decoded.capacity == patch.capacity
        assert decoded.seed == patch.seed
        assert decoded.added == patch.added
        assert decoded.removed_indices == patch.removed_indices


class TestAMQImageHardness:
    """No foreign exceptions: a corrupt image either fails loudly as a
    serialization error or decodes into a geometry-consistent filter."""

    @pytest.mark.parametrize("name", FAMILIES)
    def test_header_bit_flips_contained(self, rng, name):
        wire = _image(rng, name)
        for byte_index in range(serialized_overhead_bytes()):
            for bit in range(8):
                corrupt = bytearray(wire)
                corrupt[byte_index] ^= 1 << bit
                try:
                    filt = deserialize_filter(bytes(corrupt))
                except FilterSerializationError:
                    continue
                # A surviving decode (seed bits, tolerated header slack)
                # must still be internally consistent.
                assert serialize_filter(filt)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_payload_bit_flips_contained(self, rng, name):
        wire = _image(rng, name)
        payload_start = serialized_overhead_bytes()
        step = max(1, (len(wire) - payload_start) // 32)
        for byte_index in range(payload_start, len(wire), step):
            corrupt = bytearray(wire)
            corrupt[byte_index] ^= 0x80
            try:
                filt = deserialize_filter(bytes(corrupt))
            except FilterSerializationError:
                continue
            assert serialize_filter(filt)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_truncations_rejected(self, rng, name):
        wire = _image(rng, name)
        for length in range(0, len(wire), max(1, len(wire) // 48)):
            with pytest.raises(FilterSerializationError):
                deserialize_filter(wire[:length])

    @given(blob=st.binary(max_size=96))
    @settings(max_examples=120, deadline=None)
    def test_random_blobs_never_raise_foreign_exceptions(self, blob):
        try:
            deserialize_filter(blob)
        except FilterSerializationError:
            pass

    @pytest.mark.parametrize("name", FAMILIES)
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_mutated_real_images_contained(self, name, data):
        # A fresh Random per example: @given re-runs the body, and a
        # function-scoped fixture would leak state across examples.
        wire = bytearray(_image(__import__("random").Random(23), name))
        for _ in range(data.draw(st.integers(1, 4))):
            index = data.draw(st.integers(0, len(wire) - 1))
            wire[index] = data.draw(st.integers(0, 255))
        try:
            filt = deserialize_filter(bytes(wire))
        except FilterSerializationError:
            return
        assert serialize_filter(filt)
