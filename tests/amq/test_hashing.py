"""Unit tests for the 64-bit hashing primitives."""

import pytest

from repro.amq.hashing import (
    MASK64,
    double_hashes,
    fingerprint,
    fnv1a64,
    hash64,
    hash_int,
    splitmix64,
)


class TestHash64:
    def test_stable_across_calls(self):
        assert hash64(b"ica-cert") == hash64(b"ica-cert")

    def test_in_64_bit_range(self):
        for data in (b"", b"\x00", b"x" * 1000):
            assert 0 <= hash64(data) <= MASK64

    def test_seed_changes_value(self):
        assert hash64(b"cert", seed=0) != hash64(b"cert", seed=1)

    def test_distinct_inputs_differ(self):
        values = {hash64(bytes([i, j])) for i in range(64) for j in range(64)}
        assert len(values) == 64 * 64

    def test_empty_input_ok(self):
        assert isinstance(hash64(b""), int)

    def test_single_bit_flip_avalanche(self):
        """Flipping one input bit should flip a substantial share of
        output bits (weak avalanche check over many trials)."""
        total_flips = 0
        trials = 200
        for i in range(trials):
            base = i.to_bytes(4, "big")
            flipped = (i ^ 1).to_bytes(4, "big")
            diff = hash64(base) ^ hash64(flipped)
            total_flips += bin(diff).count("1")
        avg = total_flips / trials
        assert 24 <= avg <= 40  # ideal is 32


class TestSplitmix64:
    def test_bijective_on_samples(self):
        outs = {splitmix64(x) for x in range(10000)}
        assert len(outs) == 10000

    def test_range(self):
        assert 0 <= splitmix64(MASK64) <= MASK64


class TestFnv1a64:
    def test_known_offset_basis(self):
        # FNV-1a of empty input with seed 0 is the offset basis.
        assert fnv1a64(b"") == 0xCBF29CE484222325

    def test_order_sensitivity(self):
        assert fnv1a64(b"ab") != fnv1a64(b"ba")


class TestHashInt:
    def test_matches_on_same_input(self):
        assert hash_int(12345) == hash_int(12345)

    def test_seed_sensitivity(self):
        assert hash_int(7, seed=1) != hash_int(7, seed=2)


class TestDoubleHashes:
    def test_count(self):
        assert len(list(double_hashes(b"x", 7))) == 7

    def test_zero_count(self):
        assert list(double_hashes(b"x", 0)) == []

    def test_derived_values_distinct(self):
        hs = list(double_hashes(b"payload", 16))
        assert len(set(hs)) == 16

    def test_first_is_h1(self):
        assert next(iter(double_hashes(b"p", 3))) == hash64(b"p")


class TestFingerprint:
    def test_never_zero(self):
        # Scan many inputs at a tiny width where truncation to zero is
        # frequent; the remap must always yield a non-zero value.
        for i in range(5000):
            assert fingerprint(i.to_bytes(4, "big"), 2) != 0

    def test_width_respected(self):
        for bits in (1, 4, 8, 13, 16, 32):
            fp = fingerprint(b"some-cert", bits)
            assert 1 <= fp < (1 << bits)

    @pytest.mark.parametrize("bits", [0, -1, 33])
    def test_invalid_width_rejected(self, bits):
        with pytest.raises(ValueError):
            fingerprint(b"x", bits)

    def test_seed_sensitivity(self):
        fps = {fingerprint(b"cert", 16, seed=s) for s in range(32)}
        assert len(fps) > 16
