"""Golden wire-image tests: the array-native storage engine must emit the
exact bytes the original list-backed implementations produced.

The fixture (``golden_wire_images.json``) was generated on main *before*
the storage rewrite and is never regenerated: these tests pin the wire
format itself, not the current implementation's self-consistency. Each
entry rebuilds a filter from its recorded parameters and deterministic
item set and compares full serialized images hex-for-hex; ``*/flat``
entries pin the non-semi-sorted payload codec of the bucket filters.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.amq.base import FilterParams
from repro.amq.serialization import (
    canonical_params,
    deserialize_filter,
    filter_class_for_name,
    serialize_filter,
)

_FIXTURE = Path(__file__).parent / "golden_wire_images.json"

with _FIXTURE.open() as fh:
    GOLDEN = json.load(fh)


def _items(item_seed: int, n_items: int) -> "list[bytes]":
    rng = random.Random(item_seed)
    return [rng.getrandbits(256).to_bytes(32, "big") for _ in range(n_items)]


def _build(entry):
    # The fixture was generated through the wire-canonical param path
    # (quantized fpp/load factor), the same params every real producer
    # (FilterPlan, FilterManager) builds with.
    params = canonical_params(
        FilterParams(
            capacity=entry["capacity"],
            fpp=entry["fpp"],
            load_factor=entry["load_factor"],
            seed=entry["seed"],
        )
    )
    return params, _items(entry["item_seed"], entry["n_items"])


@pytest.mark.parametrize("key", sorted(k for k in GOLDEN if not k.endswith("/flat")))
def test_wire_image_matches_golden(key):
    entry = GOLDEN[key]
    name = key.split("/")[0]
    cls = filter_class_for_name(name)
    params, items = _build(entry)
    filt = cls(params)
    filt.insert_batch(items)
    assert serialize_filter(filt).hex() == entry["wire_hex"]


@pytest.mark.parametrize("key", sorted(k for k in GOLDEN if not k.endswith("/flat")))
def test_golden_image_roundtrips(key):
    entry = GOLDEN[key]
    wire = bytes.fromhex(entry["wire_hex"])
    filt = deserialize_filter(wire)
    assert filt.name == key.split("/")[0]
    # Deserialize → reserialize is the identity on the golden images.
    assert serialize_filter(filt).hex() == entry["wire_hex"]


@pytest.mark.parametrize("key", sorted(k for k in GOLDEN if k.endswith("/flat")))
def test_flat_payload_matches_golden(key):
    entry = GOLDEN[key]
    name = key.split("/")[0]
    cls = filter_class_for_name(name)
    params, items = _build(entry)
    filt = cls(params, semi_sort=entry["semi_sort"])
    filt.insert_batch(items)
    assert filt.to_bytes().hex() == entry["payload_hex"]
    # And the flat codec round-trips through from_bytes.
    clone = cls.from_bytes(params, filt.to_bytes(), semi_sort=entry["semi_sort"])
    assert clone.to_bytes().hex() == entry["payload_hex"]
    assert len(clone) == len(filt)


@pytest.mark.parametrize("key", sorted(k for k in GOLDEN if not k.endswith("/flat")))
def test_scalar_insert_loop_matches_golden(key):
    """The batch path is pinned above; the scalar loop must produce the
    same bytes (rng-determinism: same seeds, same kick sequences)."""
    entry = GOLDEN[key]
    name = key.split("/")[0]
    cls = filter_class_for_name(name)
    params, items = _build(entry)
    filt = cls(params)
    for item in items:
        filt.insert(item)
    assert serialize_filter(filt).hex() == entry["wire_hex"]
