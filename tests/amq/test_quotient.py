"""Unit tests for the (counting) quotient filter.

The quotient filter's metadata-bit bookkeeping is intricate, so beyond the
behavioural tests we validate structural invariants of the slot encoding
after randomized insert/delete workloads.
"""

import random

import pytest

from repro.amq import FilterParams, QuotientFilter
from repro.errors import FilterFullError, FilterSerializationError
from tests.conftest import make_items


def structural_invariants(f: QuotientFilter):
    """Check the three-metadata-bit invariants of a quotient filter."""
    n = f.slot_count()
    for pos in range(n):
        # A continuation slot is always shifted (a run head is either at
        # its canonical slot or displaced; continuations never start runs).
        if f._cont[pos]:
            assert f._shift[pos], f"cont without shift at {pos}"
        # A non-shifted, non-continuation slot holding data is canonical,
        # so its occupied bit must be set.
        if not f._shift[pos] and not f._cont[pos] and f._rem[pos] != 0:
            # rem==0 is also a legal stored remainder, so only assert in
            # the unambiguous direction:
            pass
        # occupied[q] implies slot q is non-empty.
        if f._occ[pos]:
            assert not f._slot_empty(pos), f"occupied but empty at {pos}"
    # Global: number of runs equals number of occupied canonical slots.
    runs = sum(
        1
        for pos in range(n)
        if not f._slot_empty(pos) and not f._cont[pos]
    )
    occupied = sum(f._occ)
    assert runs == occupied, f"runs={runs} occupied={occupied}"


class TestGeometry:
    def test_slots_power_of_two(self, paper_params):
        f = QuotientFilter(paper_params)
        assert f.slot_count() & (f.slot_count() - 1) == 0
        assert f.slot_count() >= 8

    def test_remainder_bits_for_paper_fpp(self, paper_params):
        # 0.1% -> r = ceil(log2(1000)) = 10.
        assert QuotientFilter(paper_params).remainder_bits == 10

    def test_size_formula(self, paper_params):
        f = QuotientFilter(paper_params)
        assert f.size_in_bytes() == f.slot_count() * (f.remainder_bits + 3) // 8


class TestMembership:
    def test_no_false_negatives(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        assert all(f.contains(i) for i in items_245)

    def test_fpp_near_target(self, rng, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        probes = make_items(rng, 30000, size=24)
        fp = sum(f.contains(p) for p in probes) / len(probes)
        assert fp <= paper_params.fpp * 3

    def test_invariants_after_bulk_insert(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        structural_invariants(f)

    def test_high_load_factor(self, rng):
        params = FilterParams(capacity=512, fpp=0.01, load_factor=0.93, seed=6)
        f = QuotientFilter(params)
        items = make_items(rng, 512, size=16)
        f.insert_all(items)
        structural_invariants(f)
        assert all(f.contains(i) for i in items)


class TestCounting:
    def test_count_of_duplicates(self, paper_params):
        f = QuotientFilter(paper_params)
        for _ in range(5):
            f.insert(b"dup")
        assert f.count_of(b"dup") == 5
        assert f.count_of(b"never") == 0

    def test_k_inserts_need_k_deletes(self, paper_params):
        f = QuotientFilter(paper_params)
        f.insert(b"dup")
        f.insert(b"dup")
        f.insert(b"dup")
        assert f.delete(b"dup")
        assert f.contains(b"dup")
        assert f.delete(b"dup")
        assert f.contains(b"dup")
        assert f.delete(b"dup")
        assert not f.contains(b"dup")


class TestDeletion:
    def test_delete_preserves_other_members(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        for item in items_245[:123]:
            assert f.delete(item)
        structural_invariants(f)
        assert all(f.contains(i) for i in items_245[123:])

    def test_delete_absent_returns_false(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245[:50])
        # An item whose canonical slot is unoccupied.
        assert not f.delete(b"\xff" * 32) or True  # may fp; check count instead
        count_before = len(f)
        f.delete(b"\xfe" * 32)
        assert len(f) in (count_before, count_before - 1)

    def test_delete_everything_leaves_empty_table(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        for item in items_245:
            assert f.delete(item)
        assert len(f) == 0
        assert all(f._slot_empty(p) for p in range(f.slot_count()))

    def test_randomized_insert_delete_churn(self, rng):
        """Fuzz the cluster-rebuild deletion against a reference multiset."""
        params = FilterParams(capacity=256, fpp=0.01, load_factor=0.9, seed=8)
        f = QuotientFilter(params)
        universe = make_items(rng, 120, size=8)
        reference = []
        op_rng = random.Random(999)
        for _ in range(2000):
            item = op_rng.choice(universe)
            if op_rng.random() < 0.55 and len(reference) < 220:
                f.insert(item)
                reference.append(item)
            else:
                expected = item in reference
                got = f.delete(item)
                if expected:
                    assert got, "delete lost a present item"
                    reference.remove(item)
                elif got:  # false-positive delete cannot happen for absent
                    # remainders unless a genuine hash collision exists;
                    # with 8-byte items and 10+ bit remainders in a tiny
                    # universe this is negligible, treat as failure.
                    raise AssertionError("deleted an absent item")
        assert len(f) == len(reference)
        for item in set(reference):
            assert f.contains(item)
        structural_invariants(f)


class TestOverflow:
    def test_full_table_raises(self, rng):
        params = FilterParams(capacity=16, fpp=0.1, load_factor=1.0, seed=4)
        f = QuotientFilter(params)
        with pytest.raises(FilterFullError):
            f.insert_all(make_items(rng, 4 * f.slot_count()))


class TestSerialization:
    def test_roundtrip_bit_identical(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        g = QuotientFilter.from_bytes(paper_params, f.to_bytes())
        assert g.to_bytes() == f.to_bytes()
        assert len(g) == len(f)
        assert all(g.contains(i) for i in items_245)

    def test_deserialized_supports_delete(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        g = QuotientFilter.from_bytes(paper_params, f.to_bytes())
        for item in items_245[:30]:
            assert g.delete(item)
        assert all(g.contains(i) for i in items_245[30:])

    def test_wire_length_equals_size(self, paper_params, items_245):
        f = QuotientFilter(paper_params)
        f.insert_all(items_245)
        assert len(f.to_bytes()) == f.size_in_bytes()

    def test_bad_length_rejected(self, paper_params):
        with pytest.raises(FilterSerializationError):
            QuotientFilter.from_bytes(paper_params, b"\x00" * 5)
