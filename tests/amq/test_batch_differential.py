"""Differential batch-vs-scalar testing of every AMQ backend.

The batch API's contract (``AMQFilter.insert_batch`` docstring) is that
every ``*_batch`` operation is observationally identical to running the
scalar loop in batch order. This suite enforces that for all registered
structures at once:

* any interleaving of ``insert_batch``/``contains_batch``/``delete_batch``
  produces the same answers and the same exceptions as the scalar loop on
  a twin filter (Hypothesis-driven);
* after every operation the twins are *bit-identical* (``to_bytes``
  equality), so the vectorized overrides cannot drift from the reference
  even in ways membership queries would not notice;
* overflow follows prefix-insert semantics: ``FilterFullError.inserted_count``
  equals the index at which the equivalent scalar loop failed, and the
  failed twins remain bit-identical.

Batches above ``VECTOR_MIN_BATCH`` exercise the numpy kernels when numpy
is available; smaller ones exercise the generic fallback, so both code
paths are pinned to the same specification.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amq import (
    FILTER_REGISTRY,
    VECTOR_MIN_BATCH,
    FilterParams,
    canonical_params,
)
from repro.errors import (
    DeletionUnsupportedError,
    FilterFullError,
    FilterSerializationError,
)

ALL_CLASSES = sorted(FILTER_REGISTRY.values(), key=lambda cls: cls.name)
ALL_IDS = [cls.name for cls in ALL_CLASSES]

CAPACITY = 128
POOL_SIZE = 96  # small universe => plenty of duplicates within batches


def build_twins(cls, seed=9):
    """Two independent filters with identical canonical params."""
    params = canonical_params(
        FilterParams(capacity=CAPACITY, fpp=1e-2, load_factor=0.85, seed=seed)
    )
    return cls(params), cls(params)


def pool_items(pool_seed):
    rng = random.Random(pool_seed)
    return [rng.getrandbits(192).to_bytes(24, "big") for _ in range(POOL_SIZE)]


def scalar_outcome(filt, opcode, items):
    """The reference: run the op as a per-item scalar loop, normalizing
    results and exceptions into a comparable tuple."""
    if opcode == "insert":
        for index, item in enumerate(items):
            try:
                filt.insert(item)
            except FilterFullError:
                return ("full", index)
        return ("ok", None)
    if opcode == "contains":
        return ("ok", [filt.contains(item) for item in items])
    flags = []
    for item in items:
        try:
            flags.append(filt.delete(item))
        except DeletionUnsupportedError:
            return ("nodelete", None)
    return ("ok", flags)


def batch_outcome(filt, opcode, items):
    try:
        if opcode == "insert":
            filt.insert_batch(items)
            return ("ok", None)
        if opcode == "contains":
            return ("ok", filt.contains_batch(items))
        return ("ok", filt.delete_batch(items))
    except FilterFullError as exc:
        return ("full", exc.inserted_count)
    except DeletionUnsupportedError:
        return ("nodelete", None)


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "contains", "delete"]),
        st.lists(
            st.integers(min_value=0, max_value=POOL_SIZE - 1),
            max_size=2 * VECTOR_MIN_BATCH + 16,  # straddles the numpy gate
        ),
    ),
    max_size=8,
)


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=ALL_IDS)
@given(pool_seed=st.integers(min_value=0, max_value=2**16), ops=operations)
@settings(max_examples=25, deadline=None)
def test_any_interleaving_matches_scalar_twin(cls, pool_seed, ops):
    pool = pool_items(pool_seed)
    batch_filt, scalar_filt = build_twins(cls)
    for opcode, indices in ops:
        items = [pool[i] for i in indices]
        assert batch_outcome(batch_filt, opcode, items) == scalar_outcome(
            scalar_filt, opcode, items
        )
        assert len(batch_filt) == len(scalar_filt)
        assert batch_filt.to_bytes() == scalar_filt.to_bytes()


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=ALL_IDS)
def test_vectorized_bulk_load_matches_scalar(cls):
    """Deterministic large-batch check: well above VECTOR_MIN_BATCH so the
    numpy kernels (when installed) are definitely on the hot path."""
    rng = random.Random(0xBA7C4)
    items = [rng.getrandbits(192).to_bytes(24, "big") for _ in range(100)]
    absent = [rng.getrandbits(192).to_bytes(24, "big") for _ in range(100)]
    batch_filt, scalar_filt = build_twins(cls)

    batch_filt.insert_batch(items)
    for item in items:
        scalar_filt.insert(item)
    assert len(batch_filt) == len(scalar_filt) == len(items)
    assert batch_filt.to_bytes() == scalar_filt.to_bytes()

    probes = absent + items
    assert batch_filt.contains_batch(probes) == [
        scalar_filt.contains(p) for p in probes
    ]
    # No false negatives through the batch path.
    assert all(batch_filt.contains_batch(items))

    if cls.supports_deletion:
        assert batch_filt.delete_batch(items) == [
            scalar_filt.delete(item) for item in items
        ]
        assert batch_filt.to_bytes() == scalar_filt.to_bytes()


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=ALL_IDS)
def test_overflow_prefix_semantics(cls):
    """Overflowing insert_batch raises FilterFullError whose
    ``inserted_count`` is the scalar loop's failure index, and leaves the
    filter in exactly the scalar loop's post-failure state."""
    rng = random.Random(0xF111)
    items = [rng.getrandbits(192).to_bytes(24, "big") for _ in range(20 * CAPACITY)]
    batch_filt, scalar_filt = build_twins(cls)

    with pytest.raises(FilterFullError) as excinfo:
        batch_filt.insert_batch(items)
    inserted = excinfo.value.inserted_count
    assert inserted is not None and 0 <= inserted < len(items)

    failed_at = None
    for index, item in enumerate(items):
        try:
            scalar_filt.insert(item)
        except FilterFullError:
            failed_at = index
            break
    assert failed_at == inserted
    assert len(batch_filt) == len(scalar_filt)
    assert batch_filt.to_bytes() == scalar_filt.to_bytes()
    # Twins keep answering identically after the shared failure.
    prefix = items[:inserted]
    assert batch_filt.contains_batch(prefix) == [
        scalar_filt.contains(item) for item in prefix
    ]


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=ALL_IDS)
def test_empty_batches_are_noops(cls):
    filt, _ = build_twins(cls)
    before = filt.to_bytes()
    filt.insert_batch([])
    assert filt.contains_batch([]) == []
    assert filt.delete_batch([]) == []  # no raise even when non-deletable
    assert filt.to_bytes() == before
    assert len(filt) == 0


@pytest.mark.parametrize(
    "cls", [FILTER_REGISTRY[3], FILTER_REGISTRY[4]], ids=["cuckoo", "vacuum"]
)
def test_flat_encoding_variant_matches_scalar(cls):
    """The semi-sort toggle changes the wire encoding, not the table, so
    the batch path must stay bit-faithful in flat mode too — including a
    full ``from_bytes`` roundtrip of the flat payload."""
    params = canonical_params(
        FilterParams(capacity=CAPACITY, fpp=1e-2, load_factor=0.85, seed=9)
    )
    rng = random.Random(0xF1A7)
    items = [rng.getrandbits(192).to_bytes(24, "big") for _ in range(100)]
    batch_filt = cls(params, semi_sort=False)
    scalar_filt = cls(params, semi_sort=False)
    batch_filt.insert_batch(items)
    for item in items:
        scalar_filt.insert(item)
    payload = batch_filt.to_bytes()
    assert payload == scalar_filt.to_bytes()
    restored = cls.from_bytes(params, payload, semi_sort=False)
    assert len(restored) == len(batch_filt)
    assert restored.contains_batch(items) == [True] * len(items)
    with pytest.raises(FilterSerializationError):
        cls.from_bytes(params, payload + b"\x00", semi_sort=False)


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=ALL_IDS)
def test_duplicate_multiplicity_matches_scalar(cls):
    """Duplicates inside one batch carry scalar multiplicity semantics."""
    item = b"\x07" * 24
    batch_filt, scalar_filt = build_twins(cls)
    batch_filt.insert_batch([item] * 5)
    for _ in range(5):
        scalar_filt.insert(item)
    assert len(batch_filt) == len(scalar_filt)
    assert batch_filt.to_bytes() == scalar_filt.to_bytes()
    if cls.supports_deletion:
        # Earlier deletions in a batch are visible to later ones: exactly
        # five of six succeed, in order.
        assert batch_filt.delete_batch([item] * 6) == [True] * 5 + [False]


@pytest.mark.parametrize(
    "cls", [FILTER_REGISTRY[3], FILTER_REGISTRY[4]], ids=["cuckoo", "vacuum"]
)
def test_sparse_batch_over_large_table_matches_scalar(cls):
    """A just-above-threshold batch into a table with thousands of
    buckets drives the sort-based duplicate detection (a bincount over
    the whole table would dominate) — same bytes as the scalar loop."""
    params = canonical_params(
        FilterParams(capacity=16384, fpp=1e-3, load_factor=0.9, seed=4)
    )
    batch_filt, scalar_filt = cls(params), cls(params)
    rng = random.Random(0x5BA5)
    items = [
        rng.getrandbits(192).to_bytes(24, "big")
        for _ in range(VECTOR_MIN_BATCH + 8)
    ]
    batch_filt.insert_batch(items)
    for item in items:
        scalar_filt.insert(item)
    assert batch_filt.to_bytes() == scalar_filt.to_bytes()
    assert all(batch_filt.contains_batch(items))
