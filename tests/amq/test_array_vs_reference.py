"""Differential suite: array-native engine vs the frozen list-backed
reference models (``tests/amq/_reference.py``).

The reference models are verbatim copies of the pre-rewrite scalar
implementations; the production engine must match them on every
observable — membership answers, stored counts, overflow behaviour
(including ``inserted_count`` prefix semantics and post-failure state),
deletion flags, and the serialized payload bytes. Hypothesis drives
randomized workloads through both and compares everything.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.amq import FilterParams, canonical_params
from repro.amq.serialization import FILTER_REGISTRY
from repro.errors import FilterFullError

from tests.amq._reference import REFERENCE_MODELS

PRODUCTION_MODELS = {cls.name: cls for cls in FILTER_REGISTRY.values()}
BACKENDS = sorted(PRODUCTION_MODELS)

items_strategy = st.lists(
    st.binary(min_size=4, max_size=40), min_size=1, max_size=150, unique=True
)

params_strategy = st.builds(
    lambda cap, fpp_exp, lf, seed: canonical_params(
        FilterParams(
            capacity=cap, fpp=10.0**-fpp_exp, load_factor=lf, seed=seed
        )
    ),
    cap=st.integers(min_value=40, max_value=400),
    fpp_exp=st.integers(min_value=2, max_value=4),
    lf=st.sampled_from([0.7, 0.85, 0.95]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.differing_executors],
)


def _insert_both(prod, ref, items):
    """Batch-insert into production, scalar-loop into the reference;
    overflow must strike at the same item with the same prefix count."""
    prod_exc = ref_exc = None
    try:
        prod.insert_batch(items)
    except FilterFullError as exc:
        prod_exc = exc
    try:
        ref.insert_batch(items)
    except FilterFullError as exc:
        ref_exc = exc
    assert (prod_exc is None) == (ref_exc is None)
    if prod_exc is not None:
        assert prod_exc.inserted_count == ref_exc.inserted_count
    return prod_exc is None


@pytest.mark.parametrize("backend", BACKENDS)
@relaxed
@given(items=items_strategy, params=params_strategy)
def test_insert_contains_and_payload_match_reference(backend, items, params):
    prod = PRODUCTION_MODELS[backend](params)
    ref = REFERENCE_MODELS[backend](params)
    _insert_both(prod, ref, items)
    assert len(prod) == len(ref)
    probes = items + [b"absent-" + item for item in items[:40]]
    assert prod.contains_batch(probes) == ref.contains_batch(probes)
    assert [prod.contains(p) for p in probes] == [
        ref.contains(p) for p in probes
    ]
    assert prod.to_bytes() == ref.to_bytes()


@pytest.mark.parametrize(
    "backend", [b for b in BACKENDS if PRODUCTION_MODELS[b].supports_deletion]
)
@relaxed
@given(items=items_strategy, params=params_strategy)
def test_delete_matches_reference(backend, items, params):
    prod = PRODUCTION_MODELS[backend](params)
    ref = REFERENCE_MODELS[backend](params)
    if not _insert_both(prod, ref, items):
        return  # overflow path already compared
    victims = items[::2] + [b"never-" + item for item in items[:20]]
    assert prod.delete_batch(victims) == ref.delete_batch(victims)
    assert len(prod) == len(ref)
    survivors = items[1::2]
    assert prod.contains_batch(survivors) == ref.contains_batch(survivors)
    assert prod.to_bytes() == ref.to_bytes()


@pytest.mark.parametrize("backend", BACKENDS)
@relaxed
@given(items=items_strategy, params=params_strategy)
def test_incremental_then_batch_matches_reference(backend, items, params):
    """Interleave scalar inserts with a batch tail — exercises the
    non-empty-table batch paths (no bulk-build shortcut)."""
    prod = PRODUCTION_MODELS[backend](params)
    ref = REFERENCE_MODELS[backend](params)
    head, tail = items[: len(items) // 3], items[len(items) // 3 :]
    if not _insert_both(prod, ref, head):
        return
    if not _insert_both(prod, ref, tail):
        return
    assert len(prod) == len(ref)
    assert prod.contains_batch(items) == ref.contains_batch(items)
    assert prod.to_bytes() == ref.to_bytes()


@pytest.mark.parametrize("backend", BACKENDS)
def test_large_batch_matches_reference(backend):
    """Deterministic large workload well past every vectorization gate."""
    params = canonical_params(
        FilterParams(capacity=3000, fpp=1e-3, load_factor=0.9, seed=1234)
    )
    items = [b"bulk-item-%06d" % i for i in range(2700)]
    prod = PRODUCTION_MODELS[backend](params)
    ref = REFERENCE_MODELS[backend](params)
    _insert_both(prod, ref, items)
    assert len(prod) == len(ref)
    probes = items[::3] + [b"missing-%06d" % i for i in range(1000)]
    assert prod.contains_batch(probes) == ref.contains_batch(probes)
    assert prod.to_bytes() == ref.to_bytes()
