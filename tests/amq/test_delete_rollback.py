"""Strict batch deletion: all-or-nothing with byte-identical unwind.

``delete_batch_strict`` is the delta applier's removal path: a patch
naming an item the table does not hold is malformed, and a malformed
patch must leave the filter exactly as it found it. For the
history-independent families (counting bloom, quotient) the generic
re-insert unwind suffices; bucket tables (cuckoo, vacuum) remember
*which* bucket stored each fingerprint, so they carry a slot-exact undo
— these tests pin both, including the displaced-fingerprint case where
a naive re-insert would land in the wrong bucket.
"""

import pytest

from repro.amq import (
    BloomFilter,
    CountingBloomFilter,
    CuckooFilter,
    FilterParams,
    QuotientFilter,
    VacuumFilter,
    XorFilter,
    canonical_params,
)
from repro.errors import DeletionUnsupportedError, FilterDeleteError
from tests.conftest import make_items

PARAMS = canonical_params(
    FilterParams(capacity=64, fpp=1e-2, load_factor=0.8, seed=221453161)
)

DELETING = [CountingBloomFilter, CuckooFilter, VacuumFilter, QuotientFilter]
DELETING_IDS = ["counting-bloom", "cuckoo", "vacuum", "quotient"]


@pytest.fixture(params=DELETING, ids=DELETING_IDS)
def loaded(request, rng):
    filt = request.param(PARAMS)
    items = make_items(rng, 40)
    filt.insert_batch(items)
    return filt, items


@pytest.fixture(params=[CuckooFilter, VacuumFilter], ids=["cuckoo", "vacuum"])
def bucket_loaded(request, rng):
    filt = request.param(PARAMS)
    items = make_items(rng, 48)  # enough load to force kick chains
    filt.insert_batch(items)
    return filt, items


def _displaced_item(filt, items, rng):
    """An item stored in its *alternate* bucket (overflowed or kicked
    there) — the case where a generic re-insert unwind would restore it
    to the wrong slot. Tops the table up until one exists."""
    items = list(items)
    for _ in range(512):
        for item in items:
            fp = filt._fingerprint(item)
            i1 = filt._index1(item)
            if filt._bucket_find_slot(i1, fp) is None and (
                filt._bucket_find_slot(filt._alt_index(i1, fp), fp)
                is not None
            ):
                return item
        extra = make_items(rng, 1)[0]
        filt.insert(extra)
        items.append(extra)
    raise AssertionError("no displaced item at this load; raise the fill")


class TestStrictDeleteSuccess:
    def test_deletes_all_items(self, loaded):
        filt, items = loaded
        before = len(filt)
        filt.delete_batch_strict(items[:5])
        assert len(filt) == before - 5
        # Survivors must still answer true (no false negatives).
        assert all(filt.contains(i) for i in items[5:])

    @pytest.mark.parametrize(
        "cls", [CountingBloomFilter, QuotientFilter],
        ids=["counting-bloom", "quotient"],
    )
    def test_history_independent_families_land_on_fresh_bytes(self, rng, cls):
        filt = cls(PARAMS)
        items = make_items(rng, 30)
        filt.insert_batch(items)
        filt.delete_batch_strict(items[10:20])
        fresh = cls.build_from_fingerprints(
            PARAMS, items[:10] + items[20:]
        )
        assert filt.to_bytes() == fresh.to_bytes()

    def test_empty_batch_is_a_noop(self, loaded):
        filt, _ = loaded
        before = filt.to_bytes()
        filt.delete_batch_strict([])
        assert filt.to_bytes() == before


class TestStrictDeleteUnwind:
    def test_missing_item_unwinds_byte_identically(self, loaded, rng):
        filt, items = loaded
        before = filt.to_bytes()
        count = len(filt)
        absent = make_items(rng, 1)[0]
        with pytest.raises(FilterDeleteError) as exc:
            filt.delete_batch_strict([items[0], items[1], absent])
        assert exc.value.missing_index == 2
        assert filt.to_bytes() == before
        assert len(filt) == count

    def test_first_item_missing_reports_index_zero(self, loaded, rng):
        filt, items = loaded
        before = filt.to_bytes()
        absent = make_items(rng, 1)[0]
        with pytest.raises(FilterDeleteError) as exc:
            filt.delete_batch_strict([absent, items[0]])
        assert exc.value.missing_index == 0
        assert filt.to_bytes() == before
        assert filt.contains(items[0])

    def test_duplicate_batch_rejected_up_front(self, loaded):
        filt, items = loaded
        before = filt.to_bytes()
        with pytest.raises(FilterDeleteError) as exc:
            filt.delete_batch_strict([items[0], items[1], items[0]])
        assert exc.value.missing_index is None
        assert filt.to_bytes() == before

    def test_displaced_fingerprint_restored_to_alternate_bucket(
        self, bucket_loaded, rng
    ):
        # Regression for the slot-exact undo: delete a fingerprint that
        # lives in its alternate bucket, then fail the batch. A generic
        # re-insert would put it back in the *primary* bucket — the
        # table would answer queries correctly but its bytes (and hence
        # the advertised wire image) would differ from the pre-patch
        # state, breaking payload dedup and the delta byte-identity.
        filt, items = bucket_loaded
        displaced = _displaced_item(filt, items, rng)
        before = filt.to_bytes()
        absent = make_items(rng, 1)[0]
        with pytest.raises(FilterDeleteError):
            filt.delete_batch_strict([displaced, absent])
        assert filt.to_bytes() == before

    def test_unwind_draws_no_rng(self, bucket_loaded, rng):
        # The undo path writes slots directly; it must not advance the
        # eviction rng, or a later insert would diverge from a filter
        # that never saw the failed batch.
        filt, items = bucket_loaded
        absent = make_items(rng, 1)[0]
        state = filt._rng.getstate()
        with pytest.raises(FilterDeleteError):
            filt.delete_batch_strict([items[3], items[7], absent])
        assert filt._rng.getstate() == state


class TestNonStrictUnchanged:
    def test_delete_batch_reports_per_item_flags(self, loaded, rng):
        filt, items = loaded
        absent = make_items(rng, 1)[0]
        flags = filt.delete_batch([items[0], absent, items[1]])
        assert flags == [True, False, True]

    def test_counting_bloom_never_underflows(self, rng):
        # Deleting from an empty filter must not wrap any counter.
        filt = CountingBloomFilter(PARAMS)
        empty = filt.to_bytes()
        for item in make_items(rng, 8):
            assert not filt.delete(item)
        assert filt.to_bytes() == empty

    def test_counting_bloom_partial_overlap_no_underflow(self, rng):
        # An absent item whose cells partially overlap stored items must
        # not decrement the shared cells: a failed delete is a strict
        # no-op at the byte level, however many of its positions are hot.
        filt = CountingBloomFilter(PARAMS)
        items = make_items(rng, 20)
        filt.insert_batch(items)
        for item in make_items(rng, 40):
            before = filt.to_bytes()
            if not filt.delete(item):
                assert filt.to_bytes() == before

    @pytest.mark.parametrize("cls", [BloomFilter, XorFilter], ids=["bloom", "xor"])
    def test_non_deleting_families_refuse_strict_deletes(self, rng, cls):
        filt = cls(PARAMS)
        items = make_items(rng, 8)
        filt.insert_batch(items)
        with pytest.raises(DeletionUnsupportedError):
            filt.delete_batch_strict(items[:2])
