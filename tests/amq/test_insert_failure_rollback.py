"""A failed kick-chain insert must leave the table byte-identical.

Regression for a lossy-eviction bug the stateful suite caught
intermittently: when two *distinct* items land on the same bucket pair
and jointly saturate it, the next insert exhausts its kick budget and
raises ``FilterFullError`` — but the old code dropped the in-hand
fingerprint mid-chain, silently deleting a stored copy of some other
item. Every later lookup of that item was a false negative, and the
reference implementations' documented "lossy on failure" behaviour
leaked into experiment results. The kick chain is a sequence of swaps,
so the fix replays it in reverse: a failed insert now stores nothing
and loses nothing.
"""

import pytest

from repro.amq import CuckooFilter, FilterParams, VacuumFilter, canonical_params
from repro.errors import FilterFullError

PARAMS = canonical_params(
    FilterParams(capacity=64, fpp=1e-2, load_factor=0.8, seed=221453161)
)


def _colliding_pair(filt):
    """Two distinct items that hash to the same candidate bucket pair of
    ``filt`` (with different fingerprints), found by deterministic scan."""
    seen = {}
    for i in range(200_000):
        item = b"probe-%d" % i
        fp = filt._fingerprint(item)
        i1 = filt._index1(item)
        pair = frozenset((i1, filt._alt_index(i1, fp)))
        if len(pair) == 1:
            continue  # self-partnered bucket: saturates at 4, not 8
        prior = seen.get(pair)
        if prior is not None and prior[1] != fp:
            return prior[0], item
        seen[pair] = (item, fp)
    raise AssertionError("no colliding pair found (hashing changed?)")


@pytest.fixture(params=[CuckooFilter, VacuumFilter], ids=["cuckoo", "vacuum"])
def saturated(request):
    """A filter whose next insert of ``x`` must exhaust its kick budget:
    the bucket pair shared by ``x`` and ``y`` holds 4 copies of each."""
    filt = request.param(PARAMS)
    x, y = _colliding_pair(filt)
    for item in (x, x, x, x, y, y, y, y):
        filt.insert(item)
    return filt, x, y


class TestFailedInsertIsTransactional:
    def test_raises_without_mutating_the_table(self, saturated):
        filt, x, y = saturated
        before_bytes = filt.to_bytes()
        before_len = len(filt)
        with pytest.raises(FilterFullError):
            filt.insert(x)
        assert filt.to_bytes() == before_bytes
        assert len(filt) == before_len

    def test_no_false_negative_after_failure(self, saturated):
        filt, x, y = saturated
        with pytest.raises(FilterFullError):
            filt.insert(x)
        # Every stored copy survives: delete each exactly as many times
        # as it was inserted, with the item still present throughout.
        for item in (x, y):
            for _ in range(4):
                assert filt.contains(item)
                assert filt.delete(item)
        assert len(filt) == 0

    def test_batch_prefix_contract_after_mid_batch_failure(self, saturated):
        filt, x, y = saturated
        before_bytes = filt.to_bytes()
        with pytest.raises(FilterFullError) as excinfo:
            filt.insert_batch([x, x])
        # The failing element inserted nothing and rolled back cleanly.
        assert excinfo.value.inserted_count == 0
        assert filt.to_bytes() == before_bytes
        assert filt.contains(x) and filt.contains(y)
