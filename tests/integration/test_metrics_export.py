"""End-to-end observability: session metrics, export, determinism.

These tests drive the real browsing-session engine with the registry
enabled and check the three contracts the metrics layer promises:

* merged counters are identical for serial and sharded runs;
* the export validates against the checked-in ``repro.obs/v1`` schema
  (both in-process and through the CLI's ``--metrics-out``);
* the numbers are *true*: the FP-retry rate tracks the configured filter
  eps, cache hit ratios are nonzero on warm paths, and the byte-savings
  counters reproduce what the Fig. 5 result objects report.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.experiments import fig5
from repro.obs.export import deterministic_counters, to_json_doc
from repro.obs.schema import validation_errors
from repro.runtime import artifacts
from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig

RUNS = 2
CONFIG = SessionConfig(seed=3, num_domains=40)


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    yield
    obs.disable()


def _run_arm(jobs):
    """One metered experiment arm on a fresh registry; returns
    (session results, registry snapshot).

    The simulator is built *before* the registry turns on and with a
    pinned lookup time: construction cost depends on process-global
    artifact-cache state (a warm ``filter_builds`` entry skips the
    preload's inserts) and on the wall clock, neither of which is part
    of the serial-vs-parallel determinism contract the run-phase
    metrics promise.
    """
    obs.disable()
    sim = BrowsingSessionSimulator(CONFIG, lookup_seconds=1e-7)
    obs.enable()
    results = sim.run_many(RUNS, jobs=jobs)
    return results, obs.snapshot()


@pytest.fixture(scope="module")
def arms():
    obs.disable()
    artifacts.clear()
    serial = _run_arm(jobs=1)
    parallel = _run_arm(jobs=2)
    obs.disable()
    return {"serial": serial, "parallel": parallel}


class TestSerialParallelDeterminism:
    def test_results_identical(self, arms):
        serial_results, _ = arms["serial"]
        parallel_results, _ = arms["parallel"]
        assert serial_results == parallel_results

    def test_merged_deterministic_counters_identical(self, arms):
        serial = deterministic_counters(arms["serial"][1])
        parallel = deterministic_counters(arms["parallel"][1])
        assert serial == parallel
        assert serial["tls.handshake.runs{}"] > 0

    def test_histogram_counts_match_across_arms(self, arms):
        # Span histograms carry nondeterministic *timings* but the event
        # counts they accumulated must match exactly.
        counts = {}
        for arm, (_, snap) in arms.items():
            counts[arm] = {
                key: state[0] for key, state in snap["histograms"].items()
            }
        assert counts["serial"] == counts["parallel"]


class TestMetricsTellTheTruth:
    def test_export_is_schema_valid(self, arms):
        assert validation_errors(to_json_doc(arms["serial"][1])) == []

    def test_fp_retry_rate_tracks_configured_eps(self, arms):
        results, snap = arms["serial"]
        flat = deterministic_counters(snap)
        fp_retries = flat.get("tls.handshake.retries{cause=server-fp}", 0)
        probes = flat["webmodel.session.unknown_ica_probes{}"]
        assert probes > 0
        # Every observed FP retry is a session-level false positive.
        assert fp_retries == sum(r.false_positives for r in results)
        # The observed rate stays within a generous binomial envelope of
        # the configured lookup fpp (small-sample slack of 5 events).
        assert fp_retries / probes <= CONFIG.fpp * 10 + 5 / probes

    def test_byte_savings_counters_match_results(self, arms):
        results, snap = arms["serial"]
        flat = deterministic_counters(snap)
        assert flat["webmodel.session.icas_encountered{}"] == sum(
            r.total_icas for r in results
        )
        assert flat["webmodel.session.icas_sent_total{}"] == sum(
            sum(o.icas_sent_total for o in r.outcomes) for r in results
        )
        suppressed_first = flat["webmodel.session.icas_suppressed_first{}"]
        assert suppressed_first == sum(
            sum(o.suppressed_count for o in r.outcomes) for r in results
        )
        # The paper's headline: most encountered ICAs get suppressed.
        assert suppressed_first / flat["webmodel.session.icas_encountered{}"] > 0.5

    def test_handshake_accounting_is_closed(self, arms):
        _, snap = arms["serial"]
        flat = deterministic_counters(snap)
        runs = flat["tls.handshake.runs{}"]
        attempts = flat["tls.handshake.attempts{}"]
        retries = sum(
            v for k, v in flat.items() if k.startswith("tls.handshake.retries{")
        )
        outcomes = sum(
            v for k, v in flat.items() if k.startswith("tls.handshake.outcomes{")
        )
        assert outcomes == runs
        assert attempts == runs + retries

    def test_fig5_gauges_match_result_rows(self, arms):
        results, _ = arms["serial"]
        obs.disable()
        reg = obs.enable()
        volume = fig5.data_volume(results)
        for row in volume.rows:
            labels = (("algorithm", row.algorithm),)
            assert reg.gauge("experiments.fig5.mb_saved", labels) == pytest.approx(
                row.mb_saved
            )
        assert reg.gauge("experiments.fig5.mean_reduction") == pytest.approx(
            volume.mean_reduction
        )

    def test_warm_artifact_caches_have_nonzero_hit_ratio(self, arms):
        # The arms fixture ran four sessions over the same population, so
        # the content-keyed caches must be warm by the end.
        stats = artifacts.stats()
        for cache in (
            "signature_bytes", "verified_chains", "tbs_pads", "der_fragments"
        ):
            hits = stats[cache]["hits"]
            total = hits + stats[cache]["misses"]
            assert total > 0
            assert hits / total > 0.2, f"{cache} hit ratio too low"


class TestCliMetricsOut:
    def test_json_export_schema_valid(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(
            ["fig5-left", "--runs", "1", "--domains", "15",
             "--jobs", "1", "--metrics-out", str(out)]
        ) == 0
        assert not obs.enabled()  # CLI restores the disabled default
        doc = json.loads(out.read_text())
        assert validation_errors(doc) == []
        names = {entry["name"] for entry in doc["counters"]}
        assert "tls.handshake.runs" in names
        assert "amq.ops" in names
        gauge_names = {entry["name"] for entry in doc["gauges"]}
        assert "runtime.artifacts.cache_hits" in gauge_names
        assert "[metrics: json export written to" in capsys.readouterr().err

    def test_prometheus_export_by_extension(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        assert main(
            ["fig5-left", "--runs", "1", "--domains", "15",
             "--jobs", "1", "--metrics-out", str(out)]
        ) == 0
        text = out.read_text()
        assert "# TYPE tls_handshake_runs_total counter" in text
        assert "[metrics: prometheus export written to" in capsys.readouterr().err
