"""Smoke tests: every example script must run cleanly end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "suppressed 2 ICA certificates" in proc.stdout
        assert "round trip(s)" in proc.stdout

    def test_browsing_session(self):
        proc = run_example("browsing_session.py", "25")
        assert proc.returncode == 0, proc.stderr
        assert "reduction" in proc.stdout
        assert "sphincs-128f" in proc.stdout

    def test_service_mesh(self):
        proc = run_example("service_mesh.py")
        assert proc.returncode == 0, proc.stderr
        assert "0 false positives" in proc.stdout

    def test_iot_fleet(self):
        proc = run_example("iot_fleet.py")
        assert proc.returncode == 0, proc.stderr
        assert "no rebuild" in proc.stdout

    def test_mutual_tls(self):
        proc = run_example("mutual_tls.py")
        assert proc.returncode == 0, proc.stderr
        assert "bidirectional suppression saved" in proc.stdout

    def test_private_browsing(self):
        proc = run_example("private_browsing.py")
        assert proc.returncode == 0, proc.stderr
        assert "IC filter visible to observer: False" in proc.stdout
        assert "real SNI visible to observer: False" in proc.stdout
