"""Tests for the CLI artifact runner."""

import subprocess
import sys

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_every_artifact_is_a_choice(self):
        parser = build_parser()
        for name in ARTIFACTS:
            args = parser.parse_args([name])
            assert args.artifact == name

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.runs == 3
        assert args.domains == 100

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_table1_inprocess(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "sphincs-128s" in out

    def test_fig4_inprocess(self, capsys):
        assert main(["fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_quic_inprocess(self, capsys):
        assert main(["quic"]) == 0
        assert "QUIC" in capsys.readouterr().out

    def test_estimator_inprocess(self, capsys):
        assert main(["estimator"]) == 0
        assert "expected handshake duration" in capsys.readouterr().out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "repro" in proc.stdout

    def test_fig5_left_with_small_scale(self, capsys):
        assert main(["fig5-left", "--runs", "1", "--domains", "15"]) == 0
        assert "reduction" in capsys.readouterr().out

    def test_churn_with_json_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "churn.json"
        assert main(
            ["churn", "--steps", "4", "--runs", "1", "--json-out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Filter staleness vs false-positive retries" in out
        assert "refresh every" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.churn/v1"
        assert doc["steps"] == 4
        assert doc["trials"] == 1
        assert len(doc["cells"]) == len(doc["staleness_levels"])

    def test_churn_json_out_is_jobs_invariant(self, tmp_path, capsys):
        serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
        assert main(
            ["churn", "--steps", "4", "--runs", "2",
             "--jobs", "1", "--json-out", str(serial)]
        ) == 0
        assert main(
            ["churn", "--steps", "4", "--runs", "2",
             "--jobs", "2", "--json-out", str(parallel)]
        ) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()


class TestReport:
    def test_report_generates_all_sections(self, capsys):
        assert main(["report", "--runs", "1", "--domains", "20",
                     "--crawl", "800", "--ops", "800"]) == 0
        out = capsys.readouterr().out
        for heading in (
            "# Reproduction report",
            "Table 1", "Table 2", "Figure 1", "Figure 3", "Figure 4",
            "Figure 5", "Ablations and extensions",
        ):
            assert heading in out
