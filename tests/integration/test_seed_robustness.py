"""Seed robustness: the calibrated workload is not a single-seed fluke.

The population/browsing calibration targets (Table-2 distinct-ICA band,
§5.3 known-ICA rate and destination count) must hold across independent
seeds, otherwise the headline reproduction would be curve-fitting one
random draw.
"""

import pytest

from repro.webmodel.browsing import BrowsingConfig, BrowsingModel
from repro.webmodel.population import ICAPopulation, PopulationConfig

SEEDS = (11, 23, 47)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_population(request):
    return ICAPopulation(PopulationConfig(seed=request.param))


class TestAcrossSeeds:
    def test_hot_set_band(self, seeded_population):
        hot = seeded_population.hot_ica_certificates()
        assert 200 <= len(hot) <= 280

    def test_known_rate_band(self, seeded_population):
        pop = seeded_population
        hot_fps = {c.fingerprint() for c in pop.hot_ica_certificates()}
        model = BrowsingModel(
            BrowsingConfig(seed=pop.config.seed + 1), ranking=pop.ranking
        )
        uniq = model.unique_destination_ranks(model.session(120))
        known = total = 0
        for rank in uniq:
            for cert in pop.path_for_rank(rank).ica_certificates():
                total += 1
                known += cert.fingerprint() in hot_fps
        assert total > 200
        assert 0.6 <= known / total <= 0.85

    def test_destination_count_band(self, seeded_population):
        pop = seeded_population
        model = BrowsingModel(
            BrowsingConfig(seed=pop.config.seed + 2), ranking=pop.ranking
        )
        uniq = model.unique_destination_ranks(model.session(200))
        assert 1300 <= len(uniq) <= 2800

    def test_chain_mix_band(self, seeded_population):
        from repro.webmodel.chains import table2_mix

        pop = seeded_population
        mix = table2_mix(pop.config.month)
        n = 3000
        zero_share = sum(
            1 for rank in range(1, n + 1) if pop.depth_for_rank(rank) == 0
        ) / n
        assert zero_share == pytest.approx(mix.p0, abs=0.04)
