"""Unit-level tests for the extension-study experiment drivers
(warm-up, QUIC comparison, expected-duration table)."""

import pytest

from repro.experiments.estimator_model import (
    expected_duration_table,
    format_expected_durations,
)
from repro.experiments.quic import (
    format_transport_comparison,
    transport_comparison,
)
from repro.experiments.warmup import (
    WarmupCurve,
    format_warmup,
    handshakes_to_reach,
    warmup_curves,
)
from repro.webmodel.population import ICAPopulation, PopulationConfig


@pytest.fixture(scope="module")
def population():
    return ICAPopulation(PopulationConfig(seed=2))


class TestWarmup:
    @pytest.fixture(scope="class")
    def curves(self, population):
        return warmup_curves(
            num_destinations=300, checkpoint_every=100, population=population
        )

    def test_three_strategies(self, curves):
        assert {c.strategy for c in curves} == {
            "preload-hot", "cold-learning", "preload+learning"
        }

    def test_checkpoints_align(self, curves):
        for curve in curves:
            assert curve.checkpoints == [100, 200, 300]
            assert len(curve.suppression_rates) == 3

    def test_cold_learning_improves(self, curves):
        cold = next(c for c in curves if c.strategy == "cold-learning")
        assert cold.suppression_rates[-1] > cold.suppression_rates[0]

    def test_learning_grows_cache(self, curves):
        by_strategy = {c.strategy: c for c in curves}
        assert (
            by_strategy["preload+learning"].final_cache_size
            >= by_strategy["preload-hot"].final_cache_size
        )
        assert by_strategy["cold-learning"].final_cache_size > 0

    def test_handshakes_to_reach(self):
        curve = WarmupCurve("x", [100, 200, 300], [0.2, 0.5, 0.8], 10)
        assert handshakes_to_reach(curve, 0.5) == 200
        assert handshakes_to_reach(curve, 0.9) is None

    def test_format(self, curves):
        out = format_warmup(curves)
        assert "preload-hot" in out and "@100" in out


class TestQuicDriver:
    def test_rows_cover_algorithms(self):
        rows = transport_comparison(algorithms=("rsa-2048", "dilithium3"))
        assert [r.algorithm for r in rows] == ["rsa-2048", "dilithium3"]

    def test_gains_never_negative(self):
        for row in transport_comparison():
            assert row.tcp_gain >= 0
            assert row.quic_gain >= 0

    def test_quic_at_least_as_many_flights_as_tcp(self):
        """The 3.6 KB amplification budget is always tighter than the
        14.6 KB initcwnd for the first flight."""
        for row in transport_comparison():
            assert row.quic_flights_full >= row.tcp_flights_full

    def test_format(self):
        rows = transport_comparison(algorithms=("rsa-2048",))
        assert "QUIC" in format_transport_comparison(rows)


class TestExpectedDurationDriver:
    def test_grid_dimensions(self):
        rows = expected_duration_table(
            algorithms=("dilithium3",), rtts_s=(0.02, 0.05), epsilons=(1e-3,)
        )
        assert len(rows) == 2

    def test_expected_monotone_in_eps(self):
        rows = expected_duration_table(
            algorithms=("sphincs-128f",), rtts_s=(0.05,),
            epsilons=(1e-4, 1e-3, 1e-2),
        )
        values = [r.expected_ms for r in rows]
        assert values == sorted(values)

    def test_format(self):
        rows = expected_duration_table(algorithms=("dilithium3",))
        assert "expected handshake duration" in format_expected_durations(rows)
