"""The churn staleness sweep: parallel equality, reporting, JSON doc."""

import dataclasses
import json

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.experiments.churn import (
    ChurnCellResult,
    ChurnExperimentConfig,
    _cell_config,
    churn_cache_stats,
    churn_json_doc,
    format_churn,
    run_churn_experiment,
)
from repro.webmodel.churn import ChurnConfig

_SMALL = ChurnExperimentConfig(
    staleness_levels=(1, 4),
    trials=2,
    base=ChurnConfig(steps=6, num_sites=6, num_clients=2, handshakes_per_step=4),
    clients=12,
    handshakes_per_client=2,
)


@pytest.fixture(scope="module")
def results():
    return run_churn_experiment(_SMALL, jobs=1)


class TestParallelEquality:
    def test_jobs_two_matches_serial(self, results):
        parallel = run_churn_experiment(_SMALL, jobs=2)
        assert parallel == results

    def test_metered_serial_matches_metered_parallel(self):
        obs.disable()
        try:
            obs.enable()
            serial = run_churn_experiment(_SMALL, jobs=1)
            serial_counters = {
                k: v
                for k, v in obs.snapshot()["counters"].items()
                if not k[0].startswith("runtime.artifacts.")
            }
            obs.disable()
            obs.enable()
            parallel = run_churn_experiment(_SMALL, jobs=2)
            parallel_counters = {
                k: v
                for k, v in obs.snapshot()["counters"].items()
                if not k[0].startswith("runtime.artifacts.")
            }
            assert parallel == serial
            assert parallel_counters == serial_counters
        finally:
            obs.disable()

    def test_json_doc_is_jobs_invariant(self, results):
        parallel = run_churn_experiment(_SMALL, jobs=2)
        serial_doc = json.dumps(churn_json_doc(_SMALL, results), sort_keys=True)
        parallel_doc = json.dumps(churn_json_doc(_SMALL, parallel), sort_keys=True)
        assert serial_doc == parallel_doc


class TestSweepShape:
    def test_cells_ordered_by_level_then_trial(self, results):
        assert [(c.level, c.trial) for c in results] == [
            (level, trial)
            for level in _SMALL.staleness_levels
            for trial in range(_SMALL.trials)
        ]

    def test_trials_reseed_but_levels_share_the_event_stream(self):
        base = _SMALL.base
        assert (
            _cell_config(_SMALL, 1, 0).seed == _cell_config(_SMALL, 4, 0).seed
        )
        assert _cell_config(_SMALL, 1, 0).seed != _cell_config(_SMALL, 1, 1).seed
        assert _cell_config(_SMALL, 4, 1).payload_refresh_every == 4
        assert _cell_config(_SMALL, 4, 1).steps == base.steps

    def test_staleness_degrades_fp_retry_rate(self, results):
        by_level = {}
        for c in results:
            by_level.setdefault(c.level, []).append(c)
        rate = {
            level: sum(c.fp_retries + c.fallbacks for c in cells)
            / sum(c.handshakes for c in cells)
            for level, cells in by_level.items()
        }
        assert rate[4] > rate[1]

    def test_rejects_zero_trials(self):
        with pytest.raises(SimulationError):
            run_churn_experiment(
                ChurnExperimentConfig(trials=0, base=_SMALL.base)
            )

    def test_rejects_unknown_engine(self):
        with pytest.raises(SimulationError):
            run_churn_experiment(
                dataclasses.replace(_SMALL, engine="quantum")
            )


class TestEngineEquality:
    def test_scalar_engine_matches_columnar(self, results):
        scalar = run_churn_experiment(
            dataclasses.replace(_SMALL, engine="scalar"), jobs=1
        )
        assert scalar == results

    def test_json_doc_is_engine_invariant(self, results):
        scalar = run_churn_experiment(
            dataclasses.replace(_SMALL, engine="scalar"), jobs=1
        )
        columnar_doc = json.dumps(churn_json_doc(_SMALL, results), sort_keys=True)
        scalar_doc = json.dumps(
            churn_json_doc(dataclasses.replace(_SMALL, engine="scalar"), scalar),
            sort_keys=True,
        )
        assert columnar_doc == scalar_doc


class TestDegenerateSweep:
    """Zero-epoch cells must report, not crash (the --steps 0 regression:
    rate denominators and the reporting table are all zero-handshake)."""

    _EMPTY = dataclasses.replace(
        _SMALL, base=dataclasses.replace(_SMALL.base, steps=0)
    )

    @pytest.fixture(scope="class")
    def empty_results(self):
        return run_churn_experiment(self._EMPTY, jobs=1)

    def test_cells_report_zero_rates(self, empty_results):
        assert len(empty_results) == 4
        for cell in empty_results:
            assert cell.handshakes == 0
            assert cell.fp_retry_rate == 0.0
            assert cell.suppression_rate == 0.0
            assert cell.stale_rate == 0.0

    def test_format_and_doc_survive_zero_handshakes(self, empty_results):
        text = format_churn(empty_results)
        assert len(text.splitlines()) == 2 + len(self._EMPTY.staleness_levels)
        doc = churn_json_doc(self._EMPTY, empty_results)
        for level in self._EMPTY.staleness_levels:
            curve = doc["curves"][str(level)]
            assert curve["fp_retry_rate"] == 0.0
            assert curve["per_step_fp_retry_rate"] == []


class TestCacheStats:
    def test_doc_excludes_cache_stats_by_default(self, results):
        assert "cache_stats" not in churn_json_doc(_SMALL, results)

    def test_opt_in_cache_stats_report_churn_caches(self, results):
        stats = churn_cache_stats()
        assert set(stats) == {"churn_images", "churn_probes", "filter_builds"}
        # The sweep shares wire images across trials and levels; a warm
        # run must have rehydrated at least one build from the cache.
        assert stats["churn_images"]["hits"] > 0
        doc = churn_json_doc(_SMALL, results, cache_stats=stats)
        assert doc["cache_stats"] == stats


class TestReporting:
    def test_format_has_one_row_per_level(self, results):
        text = format_churn(results)
        lines = text.splitlines()
        assert "FP-retry %" in lines[1]
        assert len(lines) == 2 + len(_SMALL.staleness_levels)

    def test_json_doc_schema_and_curves(self, results):
        doc = churn_json_doc(_SMALL, results)
        assert doc["schema"] == "repro.churn/v1"
        assert doc["staleness_levels"] == list(_SMALL.staleness_levels)
        assert len(doc["cells"]) == len(results)
        for level in _SMALL.staleness_levels:
            curve = doc["curves"][str(level)]
            assert len(curve["per_step_fp_retry_rate"]) == _SMALL.base.steps
            assert 0.0 <= curve["fp_retry_rate"] <= 1.0

    def test_cell_rate_properties(self):
        cell = ChurnCellResult(
            level=1,
            trial=0,
            handshakes=10,
            completed=9,
            fp_retries=2,
            fallbacks=1,
            failures=1,
            stale_advertised=5,
            icas_encountered=8,
            icas_suppressed=6,
            wire_bytes=100,
            distribution_bytes=64,
            events=3,
            fp_retry_curve=(0.0, 0.5),
        )
        assert cell.fp_retry_rate == pytest.approx(0.3)
        assert cell.suppression_rate == pytest.approx(0.75)
        assert cell.stale_rate == pytest.approx(0.5)
