"""False positives at scale.

At the paper's 0.1% FPP, false positives are rare enough that a test-sized
session may see none. This test raises the FPP to 5% so the
false-positive machinery — wrongful suppression, failed path completion,
retry without the extension — is exercised many times in one browsing
session, and checks the observed rate against the filter's nominal FPP.
"""

import pytest

from repro.webmodel.population import ICAPopulation, PopulationConfig
from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig


@pytest.fixture(scope="module")
def noisy_result():
    population = ICAPopulation(PopulationConfig(seed=6))
    sim = BrowsingSessionSimulator(
        SessionConfig(seed=6, num_domains=80, fpp=0.05, filter_kind="cuckoo"),
        population=population,
    )
    return sim.run(0)


class TestFalsePositivesAtScale:
    def test_false_positives_occur(self, noisy_result):
        assert noisy_result.false_positives > 0

    def test_every_handshake_still_succeeded(self, noisy_result):
        # run() raises on any failed handshake; reaching here with FPs > 0
        # means every false positive was absorbed by the retry.
        assert noisy_result.unique_destinations > 200

    def test_fp_rate_tracks_nominal_fpp(self, noisy_result):
        """Observed FP destinations / unknown-ICA destinations should be
        within a small factor of the nominal FPP (5%)."""
        unknown_icas = sum(
            o.num_icas - o.suppressed_count - (o.num_icas if o.false_positive else 0)
            for o in noisy_result.outcomes
            if not o.false_positive
        )
        # Count per-lookup opportunities conservatively: every non-FP
        # destination's unsuppressed ICAs were unknown-lookup misses.
        opportunities = unknown_icas + noisy_result.false_positives
        if opportunities < 50:
            pytest.skip("too few unknown lookups for a rate check")
        rate = noisy_result.false_positives / opportunities
        assert 0.005 <= rate <= 0.25  # 5% nominal, wide tolerance

    def test_fp_destinations_paid_double(self, noisy_result):
        """A false positive's TTFB is doubled (the paper's method)."""
        samples = noisy_result.ttfb_samples("dilithium3", True)
        fp_indices = [
            i for i, o in enumerate(noisy_result.outcomes) if o.false_positive
        ]
        plain = noisy_result.ttfb_samples("dilithium3", False)
        for i in fp_indices:
            assert samples[i] > plain[i]

    def test_reduction_still_positive_despite_fps(self, noisy_result):
        assert noisy_result.ica_reduction_ratio() > 0.4
