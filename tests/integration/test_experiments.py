"""Integration tests over the experiment drivers.

These assert the *shape claims* of the paper — who wins, by what rough
factor, where the crossovers fall — at reduced scale so the suite stays
fast; the benchmarks run the full-scale versions.
"""

import pytest

from repro.experiments import ablations, fig1, fig3, fig4, fig5, table1, table2
from repro.webmodel.population import ICAPopulation, PopulationConfig


@pytest.fixture(scope="module")
def population():
    return ICAPopulation(PopulationConfig(seed=1))


class TestTable1:
    @pytest.fixture(scope="class")
    def cells(self):
        return table1.compute_table1()

    def test_calibrated_matches_paper_pq_rows(self, cells):
        """PQ rows of the calibrated accounting within 3% of print."""
        for cell in cells:
            if cell.algorithm in ("ecdsa-p256", "rsa-2048"):
                continue
            assert cell.calibrated_kb == pytest.approx(
                cell.paper_kb, rel=0.03
            ), (cell.algorithm, cell.num_icas)

    def test_ordering_matches_paper(self, cells):
        """Within each chain length, algorithm ordering by size must match
        the paper's rows exactly (for DER and calibrated accounting)."""
        for n in (1, 2, 3):
            group = [c for c in cells if c.num_icas == n]
            by_der = [c.algorithm for c in sorted(group, key=lambda c: c.der_bytes)]
            by_paper = [
                c.algorithm for c in sorted(group, key=lambda c: c.paper_kb)
            ]
            assert by_der == by_paper

    def test_initcwnd_crossings(self, cells):
        """The paper's takeaway: Falcon-512 fits up to 3 ICAs; Dilithium-2
        is marginal at one ICA; everything bigger overflows."""
        verdict = table1.initcwnd_conclusions(cells)
        assert verdict["falcon-512/3"] is True
        assert verdict["dilithium2/1"] is True
        assert verdict["dilithium2/2"] is False
        assert verdict["dilithium5/1"] is False
        assert verdict["sphincs-128s/1"] is False

    def test_der_exceeds_calibrated(self, cells):
        assert all(c.der_bytes > c.calibrated_bytes for c in cells)

    def test_format_contains_all_algorithms(self, cells):
        text = table1.format_table1(cells)
        for name in table1.PAPER_KB:
            assert name in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self, population):
        return table2.compute_table2(population=population, num_domains=4000)

    def test_all_months_present(self, rows):
        assert len(rows) == 6

    def test_chain_mix_tracks_paper(self, rows):
        for row in rows:
            for depth in range(4):
                assert row.measured.share(depth) == pytest.approx(
                    row.paper_shares[depth], abs=0.04
                ), (row.measured.month, depth)

    def test_format_renders(self, rows):
        text = table2.format_table2(rows)
        assert "Jun. '22" in text


class TestFig1:
    def test_flow_messages_in_order(self):
        flow = fig1.trace_handshake("dilithium2", "kyber512", 1)
        names = [m.name for m in flow.messages]
        assert names == [
            "ClientHello",
            "ServerHello",
            "EncryptedExtensions",
            "Certificate",
            "CertificateVerify",
            "Finished",
            "Finished",
        ]

    def test_certificate_dominates_pq_flight(self):
        flow = fig1.trace_handshake("dilithium5", "ntru-hps-509", 2)
        cert = next(m for m in flow.messages if m.name == "Certificate")
        assert cert.handshake_bytes > 0.6 * flow.server_flight_bytes

    def test_pq_needs_more_flights_than_conventional(self):
        rsa = fig1.trace_handshake("rsa-2048", "ntru-hps-509", 2)
        sphincs = fig1.trace_handshake("sphincs-128f", "ntru-hps-509", 2)
        assert rsa.server_flight_rtts == 1
        assert sphincs.server_flight_rtts >= 3

    def test_format_flow(self):
        flow = fig1.trace_handshake("rsa-2048", "x25519", 1)
        assert "ClientHello" in fig1.format_flow(flow)
        assert "rsa-2048" in fig1.format_flow_summary([flow])


class TestFig3:
    def test_low_load_factor_costs_space(self):
        sweep = fig3.load_factor_sweep(load_factors=(0.1, 0.5, 0.9))
        for kind, series in sweep.items():
            sizes = [s for _, s in series]
            assert sizes[0] > sizes[-1], kind

    def test_vacuum_smallest_at_paper_point(self):
        sweep = fig3.load_factor_sweep(load_factors=(0.9,))
        sizes = {kind: series[0][1] for kind, series in sweep.items()}
        assert sizes["vacuum"] <= min(sizes.values())

    def test_throughput_positive_and_fast(self):
        results = fig3.throughput(num_items=1500)
        for r in results:
            assert r.insert_ops_per_s > 1_000
            assert r.query_ops_per_s > 5_000
            assert r.delete_ops_per_s > 500

    def test_capacity_sweep_monotone(self):
        sweep = fig3.capacity_sweep(capacities=(100, 245, 700, 1400))
        for kind, series in sweep.items():
            sizes = [s for _, s in series]
            assert sizes == sorted(sizes), kind

    def test_budget_holds_over_300_ics(self):
        """Fig. 3-right's claim, achieved by the vacuum structure."""
        budgets = fig3.budget_capacities()
        assert budgets["vacuum"] >= 300
        assert all(b >= 200 for b in budgets.values())

    def test_formatters(self):
        assert "Fig. 3-left" in fig3.format_load_factor_sweep(
            fig3.load_factor_sweep(load_factors=(0.5, 0.9))
        )
        assert "insert/s" in fig3.format_throughput(
            fig3.throughput(num_items=300)
        )
        assert "max ICs" in fig3.format_capacity_sweep(
            fig3.capacity_sweep(capacities=(100,)), fig3.budget_capacities()
        )


class TestFig4:
    def test_monotone_claim(self):
        sweep = fig4.fpp_sweep()
        assert fig4.monotone_decreasing_in_fpp(sweep)

    def test_order_of_magnitude_span(self):
        """1e-1 -> 1e-4 FPP should roughly double-to-triple the size."""
        sweep = fig4.fpp_sweep(kinds=("cuckoo",))
        series = sweep["cuckoo"]
        loosest, tightest = series[0][1], series[-1][1]
        assert 1.5 <= tightest / loosest <= 5


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self, population):
        from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig

        sim = BrowsingSessionSimulator(
            SessionConfig(seed=1, num_domains=50), population=population
        )
        return sim.run_many(2)

    def test_reduction_in_paper_band(self, results):
        dv = fig5.data_volume(results)
        assert 0.6 <= dv.mean_reduction <= 0.85  # paper: ~0.73

    def test_savings_ordering(self, results):
        dv = fig5.data_volume(results)
        by_alg = {r.algorithm: r.mb_saved for r in dv.rows}
        assert by_alg["rsa-2048"] < by_alg["dilithium3"] < by_alg["dilithium5"]
        assert by_alg["dilithium5"] < by_alg["sphincs-128f"]

    def test_latency_fit_is_linear_with_flight_slope(self):
        models = fig5.latency_models(algorithms=("sphincs-128f",))
        fit = models[0].fit
        assert fit.r_squared > 0.98
        assert fit.slope >= 1.0  # at least one extra round trip per RTT

    def test_ttfb_suppression_helps_big_algorithms(self, results):
        scenarios = {
            (s.algorithm, s.suppressed): s.summary
            for s in fig5.ttfb_scenarios(results, algorithms=("sphincs-128f",))
        }
        assert (
            scenarios[("sphincs-128f", True)].mean
            < scenarios[("sphincs-128f", False)].mean
        )

    def test_formatters(self, results):
        assert "reduction" in fig5.format_data_volume(fig5.data_volume(results))
        assert "slope" in fig5.format_latency_models(fig5.latency_models())
        assert "median ms" in fig5.format_ttfb(fig5.ttfb_scenarios(results))

    def test_run_sessions_rejects_conflicting_num_domains(self, population):
        from repro.errors import ConfigurationError
        from repro.webmodel.session_sim import SessionConfig

        config = SessionConfig(seed=1, num_domains=50)
        with pytest.raises(ConfigurationError, match="conflicting session sizes"):
            fig5.run_sessions(
                runs=1, num_domains=25, config=config, population=population
            )

    def test_run_sessions_accepts_matching_num_domains(self, population):
        from repro.webmodel.session_sim import SessionConfig

        config = SessionConfig(seed=1, num_domains=20)
        results = fig5.run_sessions(
            runs=1, num_domains=20, config=config, population=population
        )
        assert len(results) == 1


class TestAblations:
    def test_initcwnd_large_window_removes_penalty(self):
        rows = ablations.initcwnd_sweep(
            algorithms=("dilithium3",), windows=(10, 64)
        )
        wide = next(r for r in rows if r.initcwnd_segments == 64)
        assert wide.full_extra_rtts == 0
        assert not wide.suppression_useful

    def test_initcwnd_small_window_increases_rtts(self):
        rows = ablations.initcwnd_sweep(
            algorithms=("sphincs-128f",), windows=(4, 10)
        )
        tiny = next(r for r in rows if r.initcwnd_segments == 4)
        default = next(r for r in rows if r.initcwnd_segments == 10)
        assert tiny.full_extra_rtts > default.full_extra_rtts

    def test_filter_choice_rows(self, population):
        rows = ablations.filter_choice(
            kinds=("cuckoo", "vacuum"),
            num_domains=15,
            runs=1,
            population=population,
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.5 <= row.reduction <= 0.9
            assert row.extension_bytes > 0

    def test_format_functions(self, population):
        assert "initcwnd" in ablations.format_initcwnd(
            ablations.initcwnd_sweep(algorithms=("dilithium3",), windows=(10,))
        )
        rows = ablations.filter_choice(
            kinds=("vacuum",), num_domains=10, runs=1, population=population
        )
        assert "vacuum" in ablations.format_filter_choice(rows)
