"""Shared fixtures for the repro test suite."""

import random

import pytest

from repro.amq import FilterParams, canonical_params


@pytest.fixture
def rng():
    """Deterministic RNG; tests must not depend on global random state."""
    return random.Random(0xC0FFEE)


def make_items(rng, count, size=32):
    """Distinct random byte strings (distinctness enforced)."""
    items = set()
    while len(items) < count:
        items.add(rng.getrandbits(8 * size).to_bytes(size, "big"))
    return sorted(items)


@pytest.fixture
def items_245(rng):
    """The paper's working-set size: 245 distinct ICA identifiers."""
    return make_items(rng, 245)


@pytest.fixture
def paper_params():
    """Canonical (wire-quantized) params matching §5.3: 245 ICAs,
    0.1% FPP, 0.9 load factor."""
    return canonical_params(
        FilterParams(capacity=245, fpp=1e-3, load_factor=0.9, seed=42)
    )
