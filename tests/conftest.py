"""Shared fixtures for the repro test suite.

Fixture *source* lives in ``tests/_fixtures.py`` and is shared with
``benchmarks/conftest.py``, so tests and benchmarks can never diverge on
population/chain input data; this file only adapts it to pytest.
"""

import pytest

from tests._fixtures import (
    make_items as _make_items,
    make_paper_params,
    make_rng,
    reduced_population_config,
    shared_population,
)

make_items = _make_items  # re-export (historical helper import site)


@pytest.fixture
def rng():
    """Deterministic RNG; tests must not depend on global random state."""
    return make_rng()


@pytest.fixture
def items_245(rng):
    """The paper's working-set size: 245 distinct ICA identifiers."""
    return make_items(rng, 245)


@pytest.fixture
def paper_params():
    """Canonical (wire-quantized) params matching §5.3: 245 ICAs,
    0.1% FPP, 0.9 load factor."""
    return make_paper_params()


@pytest.fixture(scope="session")
def reduced_population():
    """The small shared PKI the cohort tests (and the cohort benchmark's
    equivalence smoke) run against; memoized process-wide."""
    return shared_population(reduced_population_config())
