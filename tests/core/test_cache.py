"""Tests for the ICA cache."""

import pytest

from repro.core.cache import ICACache
from repro.errors import CertificateError
from repro.pki import IntermediatePreload, RevocationList, build_hierarchy
from repro.pki.authority import CertificateAuthority


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("ecdsa-p256", total_icas=20, num_roots=2, seed=4)
    return h, h.ica_certificates()


@pytest.fixture(scope="module")
def cross_signed():
    """One subordinate CA under root A, cross-signed by root B: two
    distinct certificates sharing a subject and key pair."""
    root_a = CertificateAuthority.create_root("XS Root A", "ecdsa-p256", seed=31)
    root_b = CertificateAuthority.create_root("XS Root B", "ecdsa-p256", seed=32)
    sub = root_a.create_subordinate("XS Intermediate", seed=33)
    original = sub.certificate
    cross = root_b.cross_sign(sub)
    assert original.subject == cross.subject
    assert original.fingerprint() != cross.fingerprint()
    return original, cross


class TestMutation:
    def test_add_and_contains(self, world):
        _, icas = world
        cache = ICACache()
        assert cache.add(icas[0])
        assert icas[0] in cache
        assert len(cache) == 1

    def test_duplicate_add_returns_false(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        assert not cache.add(icas[0])
        assert len(cache) == 1

    def test_remove(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        assert cache.remove(icas[0])
        assert icas[0] not in cache
        assert not cache.remove(icas[0])

    def test_rejects_leaves_and_roots(self, world):
        h, _ = world
        cache = ICACache()
        with pytest.raises(CertificateError):
            cache.add(h.roots[0].certificate)
        leaf = h.issue_chain("x.example").leaf
        with pytest.raises(CertificateError):
            cache.add(leaf)

    def test_load_preload(self, world):
        _, icas = world
        cache = ICACache()
        added = cache.load_preload(IntermediatePreload(icas))
        assert added == len(icas)
        assert cache.load_preload(IntermediatePreload(icas)) == 0

    def test_observe_chain(self, world):
        h, _ = world
        chain = h.issue_chain("y.example", h.paths_by_depth(2)[0])
        cache = ICACache()
        assert cache.observe_chain(chain) == 2
        assert cache.observe_chain(chain) == 0


class TestMaintenance:
    def test_sweep_expired(self):
        h = build_hierarchy("ecdsa-p256", total_icas=4, num_roots=1, seed=9)
        root = h.roots[0]
        fresh = root.create_subordinate("fresh-ica", seed=100)
        stale = root.create_subordinate("stale-ica", seed=101, not_before=0, not_after=10)
        cache = ICACache()
        cache.add(fresh.certificate)
        cache.add(stale.certificate)
        assert cache.sweep_expired(at_time=100) == 1
        assert fresh.certificate in cache
        assert stale.certificate not in cache

    def test_apply_revocations(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        cache.add(icas[1])
        rl = RevocationList()
        rl.revoke(icas[0])
        assert cache.apply_revocations(rl) == 1
        assert icas[0] not in cache


class TestQueriesAndListeners:
    def test_lookup_issuer(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[3])
        assert cache.lookup_issuer(icas[3].subject) is icas[3]
        assert cache.lookup_issuer("unknown") is None

    def test_fingerprints_match_certificates(self, world):
        _, icas = world
        cache = ICACache()
        for cert in icas[:5]:
            cache.add(cert)
        assert sorted(cache.fingerprints()) == sorted(
            c.fingerprint() for c in cache.certificates()
        )

    def test_listeners_fire(self, world):
        _, icas = world
        cache = ICACache()
        added, removed = [], []
        cache.subscribe(on_add=added.append, on_remove=removed.append)
        cache.add(icas[0])
        cache.add(icas[1])
        cache.remove(icas[0])
        assert [c.fingerprint() for c in added] == [
            icas[0].fingerprint(),
            icas[1].fingerprint(),
        ]
        assert removed == [icas[0]]

    def test_listener_not_fired_on_duplicate(self, world):
        _, icas = world
        cache = ICACache()
        added = []
        cache.subscribe(on_add=added.append)
        cache.add(icas[0])
        cache.add(icas[0])
        assert len(added) == 1


class TestCrossSignedVariants:
    """Regression: the subject index used to hold one cert per subject, so
    a cross-signed variant silently clobbered its sibling and removing the
    surviving entry orphaned the other (unreachable via lookup, yet still
    counted and filtered)."""

    def test_both_variants_stored(self, cross_signed):
        original, cross = cross_signed
        cache = ICACache()
        assert cache.add(original)
        assert cache.add(cross)
        assert len(cache) == 2
        assert original in cache and cross in cache
        assert sorted(cache.fingerprints()) == sorted(
            [original.fingerprint(), cross.fingerprint()]
        )

    def test_lookup_issuer_prefers_newest_variant(self, cross_signed):
        original, cross = cross_signed
        cache = ICACache()
        cache.add(original)
        cache.add(cross)
        assert cache.lookup_issuer(original.subject) is cross
        assert cache.lookup_issuers(original.subject) == [original, cross]

    def test_removing_newer_variant_keeps_older_reachable(self, cross_signed):
        original, cross = cross_signed
        cache = ICACache()
        cache.add(original)
        cache.add(cross)
        assert cache.remove(cross)
        assert cache.lookup_issuer(original.subject) is original
        assert original in cache

    def test_removing_older_variant_keeps_newer_reachable(self, cross_signed):
        original, cross = cross_signed
        cache = ICACache()
        cache.add(original)
        cache.add(cross)
        assert cache.remove(original)
        assert cache.lookup_issuer(original.subject) is cross

    def test_removing_last_variant_clears_subject(self, cross_signed):
        original, cross = cross_signed
        cache = ICACache()
        cache.add(original)
        cache.add(cross)
        cache.remove(original)
        cache.remove(cross)
        assert cache.lookup_issuer(original.subject) is None
        assert cache.lookup_issuers(original.subject) == []


class TestAtomicAddMany:
    """Regression: ``add_many`` used to index eagerly, so a mid-batch
    validation error left a half-applied batch in the cache (and, once
    listeners fired, a filter diverging from it)."""

    def test_invalid_item_leaves_cache_untouched(self, world):
        h, icas = world
        cache = ICACache()
        added, batches = [], []
        cache.subscribe(on_add=added.append, on_add_batch=batches.append)
        with pytest.raises(CertificateError):
            cache.add_many([icas[0], h.roots[0].certificate, icas[1]])
        assert len(cache) == 0
        assert icas[0] not in cache
        assert added == [] and batches == []

    def test_valid_batch_still_lands_as_one_batch(self, world):
        _, icas = world
        cache = ICACache()
        batches = []
        cache.subscribe(on_add_batch=batches.append)
        assert cache.add_many(icas[:4]) == 4
        assert [len(b) for b in batches] == [4]


class TestBatchRemoval:
    def test_remove_many_counts_present_only(self, world):
        _, icas = world
        cache = ICACache()
        cache.add_many(icas[:3])
        assert cache.remove_many([icas[0], icas[5], icas[2]]) == 2
        assert len(cache) == 1

    def test_remove_batch_listener_sees_one_batch(self, world):
        _, icas = world
        cache = ICACache()
        cache.add_many(icas[:4])
        scalar, batches = [], []
        cache.subscribe(on_remove=scalar.append, on_remove_batch=batches.append)
        cache.remove_many(icas[:3])
        assert scalar == list(icas[:3])
        assert [len(b) for b in batches] == [3]

    def test_single_remove_delivers_one_element_batch(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        batches = []
        cache.subscribe(on_remove_batch=batches.append)
        cache.remove(icas[0])
        assert batches == [[icas[0]]]

    def test_sweep_and_revocation_batch_once(self, world):
        h = build_hierarchy("ecdsa-p256", total_icas=6, num_roots=1, seed=19)
        icas = h.ica_certificates()
        root = h.roots[0]
        stale = root.create_subordinate(
            "stale-a", seed=301, not_before=0, not_after=10
        )
        stale2 = root.create_subordinate(
            "stale-b", seed=302, not_before=0, not_after=10
        )
        cache = ICACache()
        cache.add_many([stale.certificate, stale2.certificate, icas[0], icas[1]])
        batches = []
        cache.subscribe(on_remove_batch=batches.append)
        assert cache.sweep_expired(at_time=100) == 2
        rl = RevocationList()
        rl.revoke(icas[0])
        rl.revoke(icas[1])
        assert cache.apply_revocations(rl) == 2
        assert [len(b) for b in batches] == [2, 2]
        assert len(cache) == 0
