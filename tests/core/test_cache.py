"""Tests for the ICA cache."""

import pytest

from repro.core.cache import ICACache
from repro.errors import CertificateError
from repro.pki import IntermediatePreload, RevocationList, build_hierarchy


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("ecdsa-p256", total_icas=20, num_roots=2, seed=4)
    return h, h.ica_certificates()


class TestMutation:
    def test_add_and_contains(self, world):
        _, icas = world
        cache = ICACache()
        assert cache.add(icas[0])
        assert icas[0] in cache
        assert len(cache) == 1

    def test_duplicate_add_returns_false(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        assert not cache.add(icas[0])
        assert len(cache) == 1

    def test_remove(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        assert cache.remove(icas[0])
        assert icas[0] not in cache
        assert not cache.remove(icas[0])

    def test_rejects_leaves_and_roots(self, world):
        h, _ = world
        cache = ICACache()
        with pytest.raises(CertificateError):
            cache.add(h.roots[0].certificate)
        leaf = h.issue_chain("x.example").leaf
        with pytest.raises(CertificateError):
            cache.add(leaf)

    def test_load_preload(self, world):
        _, icas = world
        cache = ICACache()
        added = cache.load_preload(IntermediatePreload(icas))
        assert added == len(icas)
        assert cache.load_preload(IntermediatePreload(icas)) == 0

    def test_observe_chain(self, world):
        h, _ = world
        chain = h.issue_chain("y.example", h.paths_by_depth(2)[0])
        cache = ICACache()
        assert cache.observe_chain(chain) == 2
        assert cache.observe_chain(chain) == 0


class TestMaintenance:
    def test_sweep_expired(self):
        h = build_hierarchy("ecdsa-p256", total_icas=4, num_roots=1, seed=9)
        root = h.roots[0]
        fresh = root.create_subordinate("fresh-ica", seed=100)
        stale = root.create_subordinate("stale-ica", seed=101, not_before=0, not_after=10)
        cache = ICACache()
        cache.add(fresh.certificate)
        cache.add(stale.certificate)
        assert cache.sweep_expired(at_time=100) == 1
        assert fresh.certificate in cache
        assert stale.certificate not in cache

    def test_apply_revocations(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[0])
        cache.add(icas[1])
        rl = RevocationList()
        rl.revoke(icas[0])
        assert cache.apply_revocations(rl) == 1
        assert icas[0] not in cache


class TestQueriesAndListeners:
    def test_lookup_issuer(self, world):
        _, icas = world
        cache = ICACache()
        cache.add(icas[3])
        assert cache.lookup_issuer(icas[3].subject) is icas[3]
        assert cache.lookup_issuer("unknown") is None

    def test_fingerprints_match_certificates(self, world):
        _, icas = world
        cache = ICACache()
        for cert in icas[:5]:
            cache.add(cert)
        assert sorted(cache.fingerprints()) == sorted(
            c.fingerprint() for c in cache.certificates()
        )

    def test_listeners_fire(self, world):
        _, icas = world
        cache = ICACache()
        added, removed = [], []
        cache.subscribe(on_add=added.append, on_remove=removed.append)
        cache.add(icas[0])
        cache.add(icas[1])
        cache.remove(icas[0])
        assert [c.fingerprint() for c in added] == [
            icas[0].fingerprint(),
            icas[1].fingerprint(),
        ]
        assert removed == [icas[0]]

    def test_listener_not_fired_on_duplicate(self, world):
        _, icas = world
        cache = ICACache()
        added = []
        cache.subscribe(on_add=added.append)
        cache.add(icas[0])
        cache.add(icas[0])
        assert len(added) == 1
