"""Tests for adaptive (targeted per-peer) filter construction."""

import pytest

from repro.core import ClientSuppressor, ServerSuppressor
from repro.core.adaptive import AdaptiveSuppressor
from repro.errors import ConfigurationError
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import ServerConfig, run_handshake


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("dilithium2", total_icas=30, num_roots=2, seed=31)
    return h, h.trust_store()


def make_adaptive(world, fallback=True):
    h, _ = world
    universal = ClientSuppressor(
        preload=IntermediatePreload(h.ica_certificates()), budget_bytes=None
    )
    return AdaptiveSuppressor(universal, fallback_universal=fallback)


class TestObservation:
    def test_first_contact_uses_universal(self, world):
        adaptive = make_adaptive(world)
        payload = adaptive.extension_payload_for("new-peer.example")
        assert payload == adaptive.universal.extension_payload()

    def test_first_contact_privacy_mode_omits_extension(self, world):
        adaptive = make_adaptive(world, fallback=False)
        assert adaptive.extension_payload_for("new-peer.example") is None

    def test_observation_builds_targeted_payload(self, world):
        h, _ = world
        adaptive = make_adaptive(world)
        chain = h.issue_chain("peer.example", h.paths_by_depth(2)[0])
        adaptive.observe("peer.example", chain)
        payload = adaptive.extension_payload_for("peer.example")
        assert payload is not None
        assert payload != adaptive.universal.extension_payload()

    def test_targeted_payload_much_smaller(self, world):
        h, _ = world
        adaptive = make_adaptive(world)
        chain = h.issue_chain("peer.example", h.paths_by_depth(2)[0])
        adaptive.observe("peer.example", chain)
        targeted = adaptive.extension_payload_for("peer.example")
        universal = adaptive.universal.extension_payload()
        assert len(targeted) < len(universal) / 2

    def test_history_tracking(self, world):
        h, _ = world
        adaptive = make_adaptive(world)
        chain = h.issue_chain("p.example", h.paths_by_depth(2)[0])
        adaptive.observe("p.example", chain)
        adaptive.observe("p.example", chain)
        history = adaptive.history_for("p.example")
        assert history.handshakes == 2
        assert len(history.fingerprints) == 2
        assert adaptive.known_peers() == ["p.example"]

    def test_payload_memoized_until_new_ica(self, world):
        h, _ = world
        adaptive = make_adaptive(world)
        chain = h.issue_chain("p.example", h.paths_by_depth(1)[0])
        adaptive.observe("p.example", chain)
        first = adaptive.extension_payload_for("p.example")
        adaptive.observe("p.example", chain)  # same ICA set
        assert adaptive.extension_payload_for("p.example") is first
        other = h.issue_chain("p.example", h.paths_by_depth(3)[0])
        adaptive.observe("p.example", other)
        assert adaptive.extension_payload_for("p.example") != first

    def test_min_capacity_validated(self, world):
        with pytest.raises(ConfigurationError):
            AdaptiveSuppressor(make_adaptive(world).universal, min_capacity=0)


class TestEndToEnd:
    def test_repeat_peer_suppression_with_tiny_filter(self, world):
        h, store = world
        adaptive = make_adaptive(world, fallback=False)
        ss = ServerSuppressor()
        cred = h.issue_credential("svc.example", h.paths_by_depth(2)[0])
        server = ServerConfig(credential=cred, suppression_handler=ss)

        # First contact: no extension, full chain, learn.
        first = run_handshake(
            adaptive.client_config(store, "svc.example", at_time=50), server
        )
        assert first.succeeded
        assert first.suppressed_ica_count == 0
        adaptive.observe("svc.example", cred.chain)

        # Second contact: targeted filter suppresses the whole chain.
        second = run_handshake(
            adaptive.client_config(store, "svc.example", at_time=50, seed=1),
            server,
        )
        assert second.succeeded
        assert second.suppressed_ica_count == 2
        assert second.ica_bytes_suppressed == cred.chain.ica_bytes()

    def test_payload_sizes_report(self, world):
        h, _ = world
        adaptive = make_adaptive(world)
        for i, path in enumerate(h.paths_by_depth(1)[:3]):
            chain = h.issue_chain(f"peer{i}.example", path)
            adaptive.observe(f"peer{i}.example", chain)
        sizes = adaptive.payload_sizes()
        assert len(sizes) == 3
        assert all(size > 0 for size in sizes.values())
