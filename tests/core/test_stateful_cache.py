"""Stateful (rule-based) testing of the cache→filter mirror.

Hypothesis drives arbitrary interleavings of the ICA cache's mutation
surface — scalar adds/removes, bulk ``add_many``/``remove_many``, expiry
sweeps and CRL revocations — over a certificate pool that includes
cross-signed variants (distinct certificates sharing one subject), and
checks after every step that the :class:`FilterManager`'s live filter is
exactly the multiset of the cache's fingerprints. This is the net that
catches subject-index clobbering, non-atomic bulk adds, and lost or
double-counted removal notifications.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.cache import ICACache
from repro.core.filter_config import plan_filter
from repro.core.manager import FilterManager
from repro.pki.authority import CertificateAuthority
from repro.pki.revocation import RevocationList

#: Certificates valid on [0, 1000]; sweeps at 2000 expire everything.
_VALID_UNTIL = 1000


def _build_pool():
    """A fixed pool: 8 plain ICAs plus cross-signed variants for the first
    3 subjects (so subject collisions are guaranteed, not incidental)."""
    root_a = CertificateAuthority.create_root(
        "Stateful Root A", "ecdsa-p256", seed=91
    )
    root_b = CertificateAuthority.create_root(
        "Stateful Root B", "ecdsa-p256", seed=92
    )
    pool = []
    subs = []
    for i in range(8):
        sub = root_a.create_subordinate(
            f"Stateful ICA {i}", seed=100 + i,
            not_before=0, not_after=_VALID_UNTIL,
        )
        subs.append(sub)
        pool.append(sub.certificate)
    for sub in subs[:3]:
        pool.append(
            root_b.cross_sign(sub, not_before=0, not_after=_VALID_UNTIL)
        )
    return pool


_POOL = _build_pool()


class CacheFilterMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def setup(self, seed):
        self.cache = ICACache()
        self.manager = FilterManager(
            self.cache,
            plan_filter(
                num_icas=len(_POOL),
                filter_kind="cuckoo",
                fpp=1e-3,
                budget_bytes=None,
                seed=seed,
                headroom=2.0,
            ),
        )
        # Spy on the batch listener path: apply_delta must fire each
        # batch notification exactly once per patch application.
        self._add_notifications = []
        self._remove_notifications = []
        self._delta_version = 0
        self.cache.subscribe(
            on_add_batch=lambda certs: self._add_notifications.append(
                len(certs)
            ),
            on_remove_batch=lambda certs: self._remove_notifications.append(
                len(certs)
            ),
        )

    @rule(index=st.integers(min_value=0, max_value=len(_POOL) - 1))
    def add_one(self, index):
        self.cache.add(_POOL[index])

    @rule(indices=st.lists(
        st.integers(min_value=0, max_value=len(_POOL) - 1), max_size=6
    ))
    def add_many(self, indices):
        self.cache.add_many([_POOL[i] for i in indices])

    @rule(index=st.integers(min_value=0, max_value=len(_POOL) - 1))
    def remove_one(self, index):
        cert = _POOL[index]
        present = cert in self.cache
        assert self.cache.remove(cert) == present

    @rule(indices=st.lists(
        st.integers(min_value=0, max_value=len(_POOL) - 1), max_size=6
    ))
    def remove_many(self, indices):
        certs = [_POOL[i] for i in indices]
        expected = len({c.fingerprint() for c in certs if c in self.cache})
        assert self.cache.remove_many(certs) == expected

    @rule(indices=st.lists(
        st.integers(min_value=0, max_value=len(_POOL) - 1),
        min_size=1, max_size=3,
    ))
    def revoke(self, indices):
        rl = RevocationList()
        for i in indices:
            rl.revoke(_POOL[i])
        expected = sum(
            1 for c in self.cache.certificates() if rl.is_revoked(c)
        )
        assert self.cache.apply_revocations(rl) == expected

    @rule(
        add_indices=st.lists(
            st.integers(min_value=0, max_value=len(_POOL) - 1),
            unique=True, max_size=4,
        ),
        remove_indices=st.lists(
            st.integers(min_value=0, max_value=len(_POOL) - 1),
            unique=True, max_size=4,
        ),
    )
    def apply_delta(self, add_indices, remove_indices):
        """A versioned patch through the listener path: exactly one
        ``on_remove_batch`` and one ``on_add_batch`` per application
        (never zero, never doubled), at most one rebuild."""
        removed = [
            _POOL[i] for i in remove_indices if _POOL[i] in self.cache
        ]
        removed_fps = {c.fingerprint() for c in removed}
        added = [
            _POOL[i]
            for i in add_indices
            if _POOL[i] not in self.cache
            or _POOL[i].fingerprint() in removed_fps
        ]
        self._delta_version += 1
        adds_before = len(self._add_notifications)
        removes_before = len(self._remove_notifications)
        rebuilds_before = self.manager.rebuilds
        self.manager.apply_delta(
            added=added, removed=removed, version=self._delta_version
        )
        assert len(self._remove_notifications) - removes_before == (
            1 if removed else 0
        )
        assert len(self._add_notifications) - adds_before == (
            1 if added else 0
        )
        if removed:
            assert self._remove_notifications[-1] == len(removed)
        assert self.manager.rebuilds - rebuilds_before <= 1

    @rule()
    def sweep_everything(self):
        expected = len(self.cache)
        assert self.cache.sweep_expired(at_time=_VALID_UNTIL + 1000) == expected
        assert len(self.cache) == 0

    @rule()
    def sweep_nothing(self):
        assert self.cache.sweep_expired(at_time=10) == 0

    @invariant()
    def filter_mirrors_cache(self):
        if not hasattr(self, "manager"):
            return
        assert len(self.manager.filter) == len(self.cache)
        assert self.manager.consistent_with_cache()

    @invariant()
    def subject_index_complete(self):
        if not hasattr(self, "cache"):
            return
        # Every stored cert must be reachable through its subject, and the
        # preferred variant must be the most recently added survivor.
        by_subject = {}
        for cert in self.cache.certificates():
            by_subject.setdefault(cert.subject, []).append(cert)
        for subject, variants in by_subject.items():
            found = self.cache.lookup_issuers(subject)
            assert {c.fingerprint() for c in found} == {
                c.fingerprint() for c in variants
            }
            assert self.cache.lookup_issuer(subject) is found[-1]

    @invariant()
    def counters_advance_per_item(self):
        if not hasattr(self, "manager"):
            return
        assert self.manager.version == (
            self.manager.inserts + self.manager.deletes + self.manager.rebuilds
        )


TestCacheFilterStateful = CacheFilterMachine.TestCase
TestCacheFilterStateful.settings = settings(
    max_examples=20,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
