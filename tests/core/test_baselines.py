"""Tests for the related-work baseline designs."""

import pytest

from repro.core.baselines import (
    DICTIONARY_ID_BYTES,
    CTLSClient,
    CTLSDictionary,
    PeerCacheFlags,
)
from repro.pki import build_hierarchy


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("ecdsa-p256", total_icas=20, num_roots=2, seed=51)
    return h, h.ica_certificates()


class TestCTLSDictionary:
    def test_publish_assigns_ids(self, world):
        _, icas = world
        d = CTLSDictionary()
        assert d.publish(icas[:5]) == 5
        assert len(d) == 5
        assert d.epoch == 1

    def test_republish_is_idempotent(self, world):
        _, icas = world
        d = CTLSDictionary()
        d.publish(icas[:5])
        assert d.publish(icas[:5]) == 0
        assert d.epoch == 1

    def test_revocation_bumps_epoch(self, world):
        _, icas = world
        d = CTLSDictionary()
        d.publish(icas[:5])
        assert d.revoke(icas[0])
        assert d.epoch == 2
        assert len(d) == 4
        assert not d.revoke(icas[0])

    def test_sync_costs_metered(self, world):
        _, icas = world
        d = CTLSDictionary()
        d.publish(icas[:10])
        client = CTLSClient(d)
        full = client.sync()
        assert full == d.full_sync_bytes()
        assert d.ledger.full_transfers == 1
        # No change -> no cost.
        assert client.sync() == 0
        # A delta costs proportionally to the change.
        d.publish(icas[10:12])
        delta = client.sync()
        assert 0 < delta < full
        assert d.ledger.delta_transfers == 1

    def test_stale_client_cannot_suppress(self, world):
        h, icas = world
        d = CTLSDictionary()
        d.publish(icas)
        client = CTLSClient(d)
        client.sync()
        chain = h.issue_chain("a.example", h.paths_by_depth(2)[0])
        assert client.suppressed("a.example", chain) == set(chain.ica_fingerprints())
        d.revoke(icas[0])  # epoch bump
        assert client.suppressed("a.example", chain) == set()
        assert client.stale_handshakes == 1
        client.sync()
        assert client.suppressed("a.example", chain)

    def test_wire_cost_constant(self, world):
        _, icas = world
        d = CTLSDictionary()
        d.publish(icas)
        assert CTLSClient(d).advertisement_bytes("x") == DICTIONARY_ID_BYTES


class TestPeerCacheFlags:
    def test_first_contact_never_suppresses(self, world):
        h, _ = world
        flags = PeerCacheFlags()
        chain = h.issue_chain("b.example", h.paths_by_depth(2)[0])
        assert flags.suppressed("b.example", chain) == set()
        assert flags.cold_contacts == 1

    def test_revisit_suppresses(self, world):
        h, _ = world
        flags = PeerCacheFlags()
        chain = h.issue_chain("c.example", h.paths_by_depth(2)[0])
        flags.observe("c.example", chain)
        assert flags.suppressed("c.example", chain) == set(chain.ica_fingerprints())
        assert flags.flag_hits == 1

    def test_rotated_chain_not_suppressed(self, world):
        h, _ = world
        flags = PeerCacheFlags()
        old = h.issue_chain("d.example", h.paths_by_depth(1)[0])
        new = h.issue_chain("d.example", h.paths_by_depth(2)[0])
        flags.observe("d.example", old)
        assert flags.suppressed("d.example", new) == set()

    def test_state_grows_per_peer(self, world):
        h, _ = world
        flags = PeerCacheFlags()
        assert flags.state_bytes() == 0
        for i, path in enumerate(h.paths_by_depth(1)[:4]):
            flags.observe(f"peer{i}.example", h.issue_chain(f"peer{i}.example", path))
        assert flags.peers_tracked() == 4
        assert flags.state_bytes() >= 4 * (len("peer0.example") + 32)

    def test_wire_cost_is_one_byte(self):
        assert PeerCacheFlags().advertisement_bytes("x") == 1


class TestComparisonDriver:
    def test_compare_designs_shapes(self):
        from repro.experiments.baselines import compare_designs, format_baselines

        rows = compare_designs(num_domains=20, repeat_visits=2)
        by_design = {r.design.split(" ")[0]: r for r in rows}
        amq = by_design["amq-filter"]
        ctls = by_design["ctls-dictionary"]
        flags = by_design["peer-cache-flags"]
        # Wire: flag < dictionary id < filter.
        assert flags.wire_bytes_per_handshake < ctls.wire_bytes_per_handshake
        assert ctls.wire_bytes_per_handshake < amq.wire_bytes_per_handshake
        # Only cTLS pays out-of-band sync.
        assert ctls.oob_sync_bytes > 0 == amq.oob_sync_bytes
        # The filter suppresses at the hot-set rate on first contact;
        # flags only on revisits (here: half the contacts).
        assert amq.ica_suppression_rate > flags.ica_suppression_rate
        assert amq.first_contact_suppression and not flags.first_contact_suppression
        assert "amq-filter" in format_baselines(rows)
