"""Tests for the client/server suppression pipelines (Fig. 2)."""

import pytest

from repro.amq import CuckooFilter, FilterParams, canonical_params, serialize_filter
from repro.core import (
    ClientSuppressor,
    ServerSuppressor,
    build_extension_payload,
    parse_extension_payload,
    plan_filter,
)
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls import HandshakeOutcome, ServerConfig, run_handshake


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("dilithium2", total_icas=30, num_roots=2, seed=21)
    return h, h.trust_store(), IntermediatePreload(h.ica_certificates())


class TestExtensionCodec:
    def test_payload_roundtrip(self, rng):
        from tests.conftest import make_items

        params = canonical_params(FilterParams(capacity=50, seed=1))
        filt = CuckooFilter(params)
        filt.insert_all(make_items(rng, 50))
        rebuilt = parse_extension_payload(build_extension_payload(filt))
        assert type(rebuilt) is CuckooFilter
        assert rebuilt.to_bytes() == filt.to_bytes()

    def test_malformed_payload_raises(self):
        from repro.errors import FilterSerializationError

        with pytest.raises(FilterSerializationError):
            parse_extension_payload(b"junk")


class TestClientSuppressor:
    def test_preload_seeds_cache_and_filter(self, world):
        _, _, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None)
        assert len(cs.cache) == len(preload)
        assert cs.manager.consistent_with_cache()

    def test_extension_payload_memoized(self, world):
        _, _, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None)
        assert cs.extension_payload() is cs.extension_payload()

    def test_payload_refreshes_after_learning(self, world):
        h, _, _ = world
        icas = h.ica_certificates()
        cs = ClientSuppressor(
            preload=IntermediatePreload(icas[:10]),
            plan=plan_filter(40, budget_bytes=None),
        )
        before = cs.extension_payload()
        chain = h.issue_chain("learn.example", h.paths_by_depth(2)[0])
        learned = cs.learn_from(chain)
        after = cs.extension_payload()
        if learned:
            assert after != before

    def test_maintain_drops_expired(self):
        h = build_hierarchy("ecdsa-p256", total_icas=2, num_roots=1, seed=5)
        root = h.roots[0]
        stale = root.create_subordinate("stale", seed=77, not_before=0, not_after=10)
        cs = ClientSuppressor(
            preload=IntermediatePreload(h.ica_certificates()),
            budget_bytes=None,
        )
        cs.cache.add(stale.certificate)
        expired, revoked = cs.maintain(at_time=100)
        assert expired == 1 and revoked == 0
        assert cs.manager.consistent_with_cache()

    def test_client_config_wiring(self, world):
        _, store, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None)
        cfg = cs.client_config(store, "host.example", kem_name="kyber512")
        assert cfg.ica_filter_payload == cs.extension_payload()
        assert cfg.issuer_lookup("no-such-issuer") is None
        plain = cs.client_config(store, "host.example", use_suppression=False)
        assert plain.ica_filter_payload is None


class TestServerSuppressor:
    def test_suppresses_known_icas(self, world):
        h, _, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None)
        ss = ServerSuppressor()
        chain = h.issue_chain("s.example", h.paths_by_depth(2)[0])
        suppressed = ss(cs.extension_payload(), chain)
        assert suppressed == set(chain.ica_fingerprints())
        assert ss.hits == 2 and ss.lookups == 2

    def test_unknown_icas_not_suppressed(self, world):
        h, _, _ = world
        cs = ClientSuppressor(
            preload=None, plan=plan_filter(10, budget_bytes=None)
        )
        ss = ServerSuppressor()
        chain = h.issue_chain("s2.example", h.paths_by_depth(2)[0])
        assert ss(cs.extension_payload(), chain) == set()

    def test_malformed_payload_means_no_suppression(self, world):
        h, _, _ = world
        ss = ServerSuppressor()
        chain = h.issue_chain("s3.example", h.paths_by_depth(1)[0])
        assert ss(b"\xff\xff garbage", chain) == set()
        assert ss.malformed_payloads == 1

    def test_lookup_counters_count_per_path_ica(self, world):
        """Regression: the server queries the whole verification path in
        one ``contains_batch``, but ``lookups``/``hits`` must still
        advance once per path ICA (Table 2 / Fig. 5 accounting)."""
        h, _, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None)
        ss = ServerSuppressor()
        payload = cs.extension_payload()
        expected = 0
        for depth in (1, 2):
            for i, path in enumerate(h.paths_by_depth(depth)[:2]):
                chain = h.issue_chain(f"cnt{depth}{i}.example", path)
                ss(payload, chain)
                expected += depth
        assert ss.lookups == expected
        # Every path ICA is preloaded, so each lookup is also a hit.
        assert ss.hits == expected

    def test_filter_deserialization_memoized(self, world):
        h, _, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None)
        ss = ServerSuppressor()
        payload = cs.extension_payload()
        chain = h.issue_chain("s4.example", h.paths_by_depth(1)[0])
        ss(payload, chain)
        filters_before = dict(ss._filters)
        ss(payload, chain)
        assert dict(ss._filters) == filters_before

    def test_lru_bound(self, world):
        h, _, _ = world
        ss = ServerSuppressor(max_cached_filters=2)
        chain = h.issue_chain("s5.example", h.paths_by_depth(1)[0])
        for i in range(5):
            ss(bytes([i]) * 20, chain)  # all malformed, all cached as None
        assert len(ss._filters) <= 2


class TestEndToEnd:
    def test_full_pipeline_over_handshakes(self, world):
        h, store, preload = world
        cs = ClientSuppressor(preload=preload, budget_bytes=None, seed=5)
        ss = ServerSuppressor()
        total_icas = sent_icas = 0
        for i, path in enumerate(h.paths):
            cred = h.issue_credential(f"e2e{i}.example", path)
            trace = run_handshake(
                cs.client_config(
                    store, f"e2e{i}.example", kem_name="ntru-hps-509",
                    at_time=50, seed=i,
                ),
                ServerConfig(credential=cred, suppression_handler=ss, seed=i),
            )
            assert trace.succeeded
            total_icas += cred.chain.num_icas
            sent_icas += trace.ica_bytes_sent
        # Every ICA was in the preload, so all must have been suppressed.
        assert total_icas > 0
        assert sent_icas == 0

    def test_unknown_population_falls_back_gracefully(self, world):
        """A filter of unrelated ICAs: almost every handshake completes as
        plain (no suppression), modulo rare real false positives that the
        retry absorbs — either way every handshake succeeds."""
        h, store, _ = world
        other = build_hierarchy("dilithium2", total_icas=40, num_roots=2, seed=99)
        cs = ClientSuppressor(
            preload=IntermediatePreload(other.ica_certificates()),
            budget_bytes=None,
        )
        ss = ServerSuppressor()
        for i, path in enumerate(h.paths[:10]):
            cred = h.issue_credential(f"fb{i}.example", path)
            trace = run_handshake(
                cs.client_config(store, f"fb{i}.example", at_time=50, seed=i),
                ServerConfig(credential=cred, suppression_handler=ss, seed=i),
            )
            assert trace.succeeded


class TestPayloadFreshness:
    def test_equal_count_churn_refreshes_payload(self, world):
        """Regression: one delete plus one insert leaves the item count
        unchanged but must still refresh the advertised payload."""
        h, _, _ = world
        icas = h.ica_certificates()
        cs = ClientSuppressor(
            preload=IntermediatePreload(icas[:10]),
            plan=plan_filter(40, budget_bytes=None),
        )
        before = cs.extension_payload()
        cs.cache.remove(icas[0])
        cs.cache.add(icas[15])
        after = cs.extension_payload()
        assert before != after
        # And the new payload must answer correctly server-side.
        rebuilt = parse_extension_payload(after)
        assert rebuilt.contains(icas[15].fingerprint())
