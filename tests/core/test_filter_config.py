"""Tests for filter planning against the ClientHello budget (§5.2)."""

import pytest

from repro.core.filter_config import (
    DEFAULT_FILTER_BUDGET_BYTES,
    clienthello_base_bytes,
    clienthello_filter_budget,
    plan_filter,
)
from repro.errors import ConfigurationError
from repro.tls.client import ClientConfig, TLSClient


class TestClientHelloBaseSizes:
    def test_base_constant_matches_real_encoder(self):
        """The planner's base-size constant must track the actual TLS
        encoder (same assert the module docstring promises)."""
        from repro.pki import build_hierarchy

        store = build_hierarchy("ecdsa-p256", total_icas=1, seed=0).trust_store()
        for kem in ("x25519", "ntru-hps-509", "lightsaber"):
            client = TLSClient(
                ClientConfig(store, kem_name=kem, hostname="example.com")
            )
            measured = len(client.create_client_hello())
            assert measured == clienthello_base_bytes(kem)

    def test_paper_pq_clienthello_range(self):
        """§5.2: PQ ClientHello ~ 890-917 bytes (NTRU / LightSaber)."""
        assert 820 <= clienthello_base_bytes("ntru-hps-509") <= 920
        assert 790 <= clienthello_base_bytes("lightsaber") <= 900


class TestBudget:
    def test_pq_budget_is_papers_550(self):
        assert clienthello_filter_budget("ntru-hps-509") == 550
        assert clienthello_filter_budget("kyber512") == 550

    def test_conventional_budget_is_roughly_12kb(self):
        budget = clienthello_filter_budget("x25519")
        assert 11_000 <= budget <= 13_000

    def test_budget_scales_with_window(self):
        small = clienthello_filter_budget("kyber512", initcwnd_bytes=7300)
        large = clienthello_filter_budget("kyber512", initcwnd_bytes=29200)
        assert small < 550 < large


class TestPlanFilter:
    def test_paper_headline_plan_fits_for_vacuum(self):
        """245 ICAs, FPP 0.1%, LF 0.9 under 550 bytes — feasible with the
        vacuum filter (semi-sorted buckets)."""
        plan = plan_filter(245, filter_kind="vacuum", fpp=1e-3, load_factor=0.9)
        assert plan.predicted_payload_bytes <= DEFAULT_FILTER_BUDGET_BYTES

    def test_oversized_plan_rejected_with_guidance(self):
        with pytest.raises(ConfigurationError, match="max capacity within budget"):
            plan_filter(1400, filter_kind="cuckoo", fpp=1e-4, load_factor=0.9)

    def test_budget_none_always_allowed(self):
        plan = plan_filter(1400, filter_kind="cuckoo", fpp=1e-4, budget_bytes=None)
        assert plan.predicted_payload_bytes > DEFAULT_FILTER_BUDGET_BYTES

    def test_built_filter_matches_prediction(self, rng):
        from tests.conftest import make_items

        plan = plan_filter(245, filter_kind="vacuum", fpp=1e-3, load_factor=0.9)
        filt = plan.build(make_items(rng, 245))
        assert filt.size_in_bytes() == plan.predicted_payload_bytes
        assert len(filt) == 245

    def test_headroom_provisions_extra_capacity(self):
        tight = plan_filter(200, budget_bytes=None, headroom=1.0)
        loose = plan_filter(200, budget_bytes=None, headroom=1.5)
        assert loose.params.capacity == 300
        assert tight.params.capacity == 200

    def test_canonical_params_survive_wire(self):
        from repro.amq import canonical_params

        plan = plan_filter(245, budget_bytes=None)
        assert canonical_params(plan.params) == plan.params

    def test_extension_bytes_include_framing(self):
        plan = plan_filter(100, filter_kind="vacuum")
        assert plan.predicted_extension_bytes > plan.predicted_payload_bytes

    @pytest.mark.parametrize("bad_icas", [0, -5])
    def test_invalid_ica_count(self, bad_icas):
        with pytest.raises(ConfigurationError):
            plan_filter(bad_icas)

    def test_invalid_headroom(self):
        with pytest.raises(ConfigurationError):
            plan_filter(10, headroom=0.5)


class TestMemoizedBuilds:
    """``FilterPlan.build`` memoizes serialized images in a per-process
    cache; regression coverage for the two ways that used to leak."""

    WIDE_SEED = 2343948629979923722

    def test_wide_seed_is_canonicalized_at_plan_time(self):
        plan = plan_filter(10, budget_bytes=None, seed=self.WIDE_SEED)
        assert plan.params.seed == self.WIDE_SEED & 0xFFFFFFFF

    def test_cold_and_warm_builds_identical(self):
        """The first build of a key must equal every later one — including
        hash behaviour, table bytes and eviction-rng state."""
        from repro.runtime import artifacts

        items = [bytes([i]) * 32 for i in range(10)]
        plan = plan_filter(10, budget_bytes=None, seed=self.WIDE_SEED,
                           headroom=2.0)
        artifacts.FILTER_BUILDS.clear()
        cold = plan.build(items)
        warm = plan.build(items)
        assert cold.params == warm.params
        assert cold.to_bytes() == warm.to_bytes()
        assert all(cold.contains(i) for i in items)
        assert all(warm.contains(i) for i in items)
        assert cold.delete(items[0]) and warm.delete(items[0])

    def test_builds_are_independent_copies(self):
        items = [bytes([i]) * 32 for i in range(6)]
        plan = plan_filter(6, budget_bytes=None, seed=3, headroom=2.0)
        a = plan.build(items)
        b = plan.build(items)
        assert a is not b
        a.delete(items[0])
        assert b.contains(items[0])

    def test_cache_hits_replay_build_metrics(self):
        """amq.* counters must be a pure function of build() calls, not of
        which process warmed the cache first (the serial-vs-parallel
        metrics contract)."""
        from repro import obs
        from repro.runtime import artifacts

        items = [bytes([200 + i]) * 32 for i in range(8)]
        plan = plan_filter(8, budget_bytes=None, seed=41, headroom=2.0)
        artifacts.FILTER_BUILDS.clear()
        obs.disable()
        try:
            with obs.scoped() as cold_scope:
                plan.build(items)
            with obs.scoped() as warm_scope:
                plan.build(items)
            cold = {
                k: v
                for k, v in cold_scope.snapshot()["counters"].items()
                if not k[0].startswith("runtime.artifacts.")
            }
            warm = {
                k: v
                for k, v in warm_scope.snapshot()["counters"].items()
                if not k[0].startswith("runtime.artifacts.")
            }
            assert cold == warm
            assert any(k[0] == "amq.ops" for k in cold)
        finally:
            obs.disable()
