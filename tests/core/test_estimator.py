"""Tests for the expected-handshake-time models (§4.2)."""

import pytest

from repro.core.estimator import (
    HandshakeTimeModel,
    crypto_cpu_seconds,
    expected_duration_paper_model,
    expected_duration_refined,
)
from repro.errors import ConfigurationError
from repro.netsim.tcp import TCPConfig
from repro.pki.algorithms import get_signature_algorithm


class TestClosedForms:
    def test_paper_model_extremes(self):
        assert expected_duration_paper_model(0.1, 0.5, 0.0) == 0.1
        assert expected_duration_paper_model(0.1, 0.5, 1.0) == 0.5

    def test_refined_model_extremes(self):
        assert expected_duration_refined(0.1, 0.5, 0.0) == 0.1
        assert expected_duration_refined(0.1, 0.5, 1.0) == pytest.approx(0.6)

    def test_models_differ_by_eps_dc(self):
        d_c, d_pq, eps = 0.1, 0.5, 0.01
        diff = expected_duration_refined(d_c, d_pq, eps) - (
            expected_duration_paper_model(d_c, d_pq, eps)
        )
        assert diff == pytest.approx(eps * d_c)

    def test_negligible_at_paper_fpp(self):
        """At 0.1% FPP the two formulations differ by 0.01% of d_c."""
        d_c, d_pq = 0.1, 0.5
        a = expected_duration_paper_model(d_c, d_pq, 1e-3)
        b = expected_duration_refined(d_c, d_pq, 1e-3)
        assert abs(a - b) / a < 1e-3

    @pytest.mark.parametrize("eps", [-0.1, 1.1])
    def test_eps_validation(self, eps):
        with pytest.raises(ConfigurationError):
            expected_duration_paper_model(0.1, 0.5, eps)
        with pytest.raises(ConfigurationError):
            expected_duration_refined(0.1, 0.5, eps)


class TestHandshakeTimeModel:
    def model(self):
        # Suppressed flight fits the window; full flight needs 2 extra RTTs.
        return HandshakeTimeModel(
            client_hello_bytes=900,
            suppressed_flight_bytes=9_000,
            full_flight_bytes=50_000,
        )

    def test_suppressed_faster_than_full(self):
        m = self.model()
        assert m.d_suppressed(0.05) < m.d_full(0.05)

    def test_flight_grounding(self):
        m = self.model()
        # 50_000 B needs 3 flights -> 2 extra RTTs over the suppressed case.
        assert m.d_full(0.1) - m.d_suppressed(0.1) == pytest.approx(0.2)

    def test_expected_between_extremes(self):
        m = self.model()
        exp = m.expected(0.05, eps=1e-3)
        assert m.d_suppressed(0.05) < exp < m.d_full(0.05)

    def test_expected_close_to_suppressed_at_low_eps(self):
        m = self.model()
        assert m.expected(0.05, eps=1e-4) == pytest.approx(
            m.d_suppressed(0.05), rel=1e-3
        )

    def test_speedup_above_one(self):
        m = self.model()
        assert m.speedup(0.05, eps=1e-3) > 1.3

    def test_custom_tcp_config(self):
        wide = HandshakeTimeModel(
            client_hello_bytes=900,
            suppressed_flight_bytes=9_000,
            full_flight_bytes=50_000,
            tcp=TCPConfig(initcwnd_segments=64),
        )
        # With a 93 KB window nothing overflows: suppression gains nothing,
        # exactly the §5.2 initcwnd observation.
        assert wide.d_full(0.05) == wide.d_suppressed(0.05)

    def test_paper_vs_refined_switch(self):
        m = self.model()
        assert m.expected(0.05, 0.5, refined=True) > m.expected(
            0.05, 0.5, refined=False
        )


class TestCryptoCPU:
    def test_positive_and_ordered(self):
        fast = crypto_cpu_seconds(get_signature_algorithm("dilithium2"))
        slow = crypto_cpu_seconds(get_signature_algorithm("sphincs-128s"))
        assert 0 < fast < slow

    def test_verify_count_scales(self):
        alg = get_signature_algorithm("dilithium3")
        few = crypto_cpu_seconds(alg, num_verifies=1)
        many = crypto_cpu_seconds(alg, num_verifies=10)
        assert many > few
        assert many - few == pytest.approx(9 * alg.verify_ms / 1000)
