"""Tests for dynamic filter maintenance (the §4.2 requirement)."""

import pytest

from repro.core.cache import ICACache
from repro.core.filter_config import plan_filter
from repro.core.manager import FilterManager
from repro.pki import build_hierarchy


@pytest.fixture(scope="module")
def icas():
    h = build_hierarchy("ecdsa-p256", total_icas=60, num_roots=3, seed=12)
    return h.ica_certificates()


def make_manager(icas, kind="cuckoo", capacity=80, preloaded=40):
    cache = ICACache()
    for cert in icas[:preloaded]:
        cache.add(cert)
    plan = plan_filter(capacity, filter_kind=kind, budget_bytes=None, seed=3)
    return cache, FilterManager(cache, plan)


class TestMirroring:
    def test_initial_filter_holds_cache(self, icas):
        cache, mgr = make_manager(icas)
        assert len(mgr.filter) == len(cache) == 40
        assert mgr.consistent_with_cache()

    def test_add_mirrors_into_filter(self, icas):
        cache, mgr = make_manager(icas)
        cache.add(icas[50])
        assert mgr.filter.contains(icas[50].fingerprint())
        assert mgr.inserts == 1

    def test_remove_mirrors_into_filter(self, icas):
        cache, mgr = make_manager(icas)
        target = icas[5]
        cache.remove(target)
        assert mgr.deletes == 1
        assert len(mgr.filter) == 39
        assert mgr.consistent_with_cache()

    def test_churn_stays_consistent(self, icas):
        cache, mgr = make_manager(icas, preloaded=30)
        for cert in icas[30:60]:
            cache.add(cert)
        for cert in icas[:30]:
            cache.remove(cert)
        assert len(mgr.filter) == 30
        assert mgr.consistent_with_cache()
        assert mgr.rebuilds == 0


class TestBatchCounters:
    """Regression: batch mutations must advance ``inserts``/``version``
    item-by-item, never per call, so Table 2 / Fig. 5 tallies do not
    depend on whether the cache was fed one cert at a time or in bulk."""

    def test_bulk_load_counts_per_item(self, icas):
        cache, mgr = make_manager(icas, preloaded=0)
        assert mgr.version == 0
        assert cache.add_many(icas[:30]) == 30
        assert mgr.inserts == 30
        assert mgr.version == 30
        assert len(mgr.filter) == 30
        assert mgr.consistent_with_cache()

    def test_batch_and_scalar_adds_count_identically(self, icas):
        _, mgr_batch = make_manager(icas, preloaded=0)
        cache_scalar, mgr_scalar = make_manager(icas, preloaded=0)
        mgr_batch._cache.add_many(icas[:25])
        for cert in icas[:25]:
            cache_scalar.add(cert)
        assert mgr_batch.inserts == mgr_scalar.inserts == 25
        assert mgr_batch.version == mgr_scalar.version
        # Same filter on the wire, whichever path performed the update.
        assert mgr_batch.filter.to_bytes() == mgr_scalar.filter.to_bytes()

    def test_duplicate_bulk_adds_do_not_count(self, icas):
        cache, mgr = make_manager(icas, preloaded=0)
        cache.add_many(icas[:20])
        assert cache.add_many(icas[:20]) == 0
        assert mgr.inserts == 20
        assert mgr.version == 20

    def test_bulk_overflow_rebuilds_consistently(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        cache.add_many(icas)  # 60 certs into a 10-capacity plan
        assert mgr.rebuilds >= 1
        assert mgr.inserts == len(icas)
        assert len(mgr.filter) == len(icas)
        assert mgr.consistent_with_cache()


class TestRebuilds:
    def test_overflow_triggers_rebuild(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        for cert in icas:
            cache.add(cert)
        assert mgr.rebuilds >= 1
        assert mgr.consistent_with_cache()
        assert len(mgr.filter) == len(icas)

    def test_bloom_delete_forces_rebuild(self, icas):
        cache, mgr = make_manager(icas, kind="bloom", preloaded=20)
        cache.remove(icas[0])
        assert mgr.rebuilds == 1
        assert mgr.consistent_with_cache()
        assert not any(
            mgr.filter.contains(icas[0].fingerprint())
            for _ in range(1)
        ) or True  # fp possible; consistency is the contract

    def test_force_rebuild_restores_plan_capacity(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        for cert in icas:
            cache.add(cert)
        for cert in icas[10:]:
            cache.remove(cert)
        mgr.force_rebuild()
        assert mgr.filter.params.capacity == mgr.plan.params.capacity
        assert mgr.consistent_with_cache()

    def test_rebuild_records_span_histogram(self, icas):
        # The rebuild duration must land in the metrics export (the
        # fig5 metered arm's --metrics-out) as a labeled histogram.
        from repro import obs

        cache, mgr = make_manager(icas, preloaded=20)
        with obs.scoped() as reg:
            mgr.force_rebuild()
        hist = reg.histogram(
            "core.filter_manager.rebuild.seconds", (("backend", "cuckoo"),)
        )
        assert hist is not None and hist.count == 1
        # The nested bulk-build span records under the same registry.
        build = reg.histogram("amq.build.seconds", (("backend", "cuckoo"),))
        assert build is not None and build.count == 1


class TestXorBufferedMutations:
    """Regression: the static xor backend buffers mirrored inserts and
    reconstructs once, on the next probe — an add->probe->add->probe
    sequence must cost exactly one internal construction per dirty
    transition, never one per insert (rebuild thrash). The internal
    construction count is observable as the ``amq.xor.attempts_per_rebuild``
    histogram's sample count; ``mgr.rebuilds`` stays 0 throughout because
    these are in-place reconstructions, not manager-level replans."""

    def test_add_probe_cycles_rebuild_once_per_dirty_transition(self, icas):
        from repro import obs

        cache, mgr = make_manager(icas, kind="xor", preloaded=20)
        probe = icas[0].fingerprint()
        with obs.scoped() as reg:
            hist = lambda: reg.histogram("amq.xor.attempts_per_rebuild")

            cache.add(icas[21])  # buffered: no construction yet
            assert hist() is None

            assert mgr.filter.contains(icas[21].fingerprint())
            assert hist().count == 1  # first probe pays the build

            for _ in range(5):
                mgr.filter.contains(probe)
            assert hist().count == 1  # clean filter: probes are free

            cache.add(icas[22])
            cache.add(icas[23])  # both buffer into the same dirty window
            assert hist().count == 1

            assert mgr.filter.contains(icas[23].fingerprint())
            for _ in range(5):
                mgr.filter.contains(probe)
            assert hist().count == 2  # one more build, not one per add

        assert mgr.rebuilds == 0
        assert mgr.consistent_with_cache()
