"""Tests for dynamic filter maintenance (the §4.2 requirement)."""

import pytest

from repro.core.cache import ICACache
from repro.core.filter_config import plan_filter
from repro.core.manager import FilterManager
from repro.pki import build_hierarchy


@pytest.fixture(scope="module")
def icas():
    h = build_hierarchy("ecdsa-p256", total_icas=60, num_roots=3, seed=12)
    return h.ica_certificates()


def make_manager(icas, kind="cuckoo", capacity=80, preloaded=40):
    cache = ICACache()
    for cert in icas[:preloaded]:
        cache.add(cert)
    plan = plan_filter(capacity, filter_kind=kind, budget_bytes=None, seed=3)
    return cache, FilterManager(cache, plan)


class TestMirroring:
    def test_initial_filter_holds_cache(self, icas):
        cache, mgr = make_manager(icas)
        assert len(mgr.filter) == len(cache) == 40
        assert mgr.consistent_with_cache()

    def test_add_mirrors_into_filter(self, icas):
        cache, mgr = make_manager(icas)
        cache.add(icas[50])
        assert mgr.filter.contains(icas[50].fingerprint())
        assert mgr.inserts == 1

    def test_remove_mirrors_into_filter(self, icas):
        cache, mgr = make_manager(icas)
        target = icas[5]
        cache.remove(target)
        assert mgr.deletes == 1
        assert len(mgr.filter) == 39
        assert mgr.consistent_with_cache()

    def test_churn_stays_consistent(self, icas):
        cache, mgr = make_manager(icas, preloaded=30)
        for cert in icas[30:60]:
            cache.add(cert)
        for cert in icas[:30]:
            cache.remove(cert)
        assert len(mgr.filter) == 30
        assert mgr.consistent_with_cache()
        assert mgr.rebuilds == 0


class TestBatchCounters:
    """Regression: batch mutations must advance ``inserts``/``version``
    item-by-item, never per call, so Table 2 / Fig. 5 tallies do not
    depend on whether the cache was fed one cert at a time or in bulk."""

    def test_bulk_load_counts_per_item(self, icas):
        cache, mgr = make_manager(icas, preloaded=0)
        assert mgr.version == 0
        assert cache.add_many(icas[:30]) == 30
        assert mgr.inserts == 30
        assert mgr.version == 30
        assert len(mgr.filter) == 30
        assert mgr.consistent_with_cache()

    def test_batch_and_scalar_adds_count_identically(self, icas):
        _, mgr_batch = make_manager(icas, preloaded=0)
        cache_scalar, mgr_scalar = make_manager(icas, preloaded=0)
        mgr_batch._cache.add_many(icas[:25])
        for cert in icas[:25]:
            cache_scalar.add(cert)
        assert mgr_batch.inserts == mgr_scalar.inserts == 25
        assert mgr_batch.version == mgr_scalar.version
        # Same filter on the wire, whichever path performed the update.
        assert mgr_batch.filter.to_bytes() == mgr_scalar.filter.to_bytes()

    def test_duplicate_bulk_adds_do_not_count(self, icas):
        cache, mgr = make_manager(icas, preloaded=0)
        cache.add_many(icas[:20])
        assert cache.add_many(icas[:20]) == 0
        assert mgr.inserts == 20
        assert mgr.version == 20

    def test_bulk_overflow_rebuilds_consistently(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        cache.add_many(icas)  # 60 certs into a 10-capacity plan
        assert mgr.rebuilds >= 1
        assert mgr.inserts == len(icas)
        assert len(mgr.filter) == len(icas)
        assert mgr.consistent_with_cache()


class TestRebuilds:
    def test_overflow_triggers_rebuild(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        for cert in icas:
            cache.add(cert)
        assert mgr.rebuilds >= 1
        assert mgr.consistent_with_cache()
        assert len(mgr.filter) == len(icas)

    def test_bloom_delete_forces_rebuild(self, icas):
        cache, mgr = make_manager(icas, kind="bloom", preloaded=20)
        cache.remove(icas[0])
        assert mgr.rebuilds == 1
        assert mgr.consistent_with_cache()
        assert not any(
            mgr.filter.contains(icas[0].fingerprint())
            for _ in range(1)
        ) or True  # fp possible; consistency is the contract

    def test_force_rebuild_restores_plan_capacity(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        for cert in icas:
            cache.add(cert)
        for cert in icas[10:]:
            cache.remove(cert)
        mgr.force_rebuild()
        assert mgr.filter.params.capacity == mgr.plan.params.capacity
        assert mgr.consistent_with_cache()

    def test_rebuild_records_span_histogram(self, icas):
        # The rebuild duration must land in the metrics export (the
        # fig5 metered arm's --metrics-out) as a labeled histogram.
        from repro import obs

        cache, mgr = make_manager(icas, preloaded=20)
        with obs.scoped() as reg:
            mgr.force_rebuild()
        hist = reg.histogram(
            "core.filter_manager.rebuild.seconds", (("backend", "cuckoo"),)
        )
        assert hist is not None and hist.count == 1
        # The nested bulk-build span records under the same registry.
        build = reg.histogram("amq.build.seconds", (("backend", "cuckoo"),))
        assert build is not None and build.count == 1


class TestXorBufferedMutations:
    """Regression: the static xor backend buffers mirrored inserts and
    reconstructs once, on the next probe — an add->probe->add->probe
    sequence must cost exactly one internal construction per dirty
    transition, never one per insert (rebuild thrash). The internal
    construction count is observable as the ``amq.xor.attempts_per_rebuild``
    histogram's sample count; ``mgr.rebuilds`` stays 0 throughout because
    these are in-place reconstructions, not manager-level replans."""

    def test_add_probe_cycles_rebuild_once_per_dirty_transition(self, icas):
        from repro import obs

        cache, mgr = make_manager(icas, kind="xor", preloaded=20)
        probe = icas[0].fingerprint()
        with obs.scoped() as reg:
            hist = lambda: reg.histogram("amq.xor.attempts_per_rebuild")

            cache.add(icas[21])  # buffered: no construction yet
            assert hist() is None

            assert mgr.filter.contains(icas[21].fingerprint())
            assert hist().count == 1  # first probe pays the build

            for _ in range(5):
                mgr.filter.contains(probe)
            assert hist().count == 1  # clean filter: probes are free

            cache.add(icas[22])
            cache.add(icas[23])  # both buffer into the same dirty window
            assert hist().count == 1

            assert mgr.filter.contains(icas[23].fingerprint())
            for _ in range(5):
                mgr.filter.contains(probe)
            assert hist().count == 2  # one more build, not one per add

        assert mgr.rebuilds == 0
        assert mgr.consistent_with_cache()


class TestApplyDelta:
    """Versioned patch application through the cache↔filter listener
    path: one notification per half, at most one rebuild per patch."""

    def _spy(self, cache):
        adds, removes = [], []
        cache.subscribe(
            on_add_batch=lambda certs: adds.append(list(certs)),
            on_remove_batch=lambda certs: removes.append(list(certs)),
        )
        return adds, removes

    def test_deletion_family_applies_in_place(self, icas):
        cache, mgr = make_manager(icas)
        adds, removes = self._spy(cache)
        mgr.apply_delta(added=icas[40:45], removed=icas[:5], version=1)
        assert len(removes) == 1 and len(removes[0]) == 5
        assert len(adds) == 1 and len(adds[0]) == 5
        assert mgr.rebuilds == 0
        assert mgr.deletes == 5 and mgr.inserts == 5
        assert mgr.consistent_with_cache()

    def test_bloom_patch_rebuilds_exactly_once(self, icas):
        cache, mgr = make_manager(icas, kind="bloom")
        adds, removes = self._spy(cache)
        mgr.apply_delta(added=icas[40:50], removed=icas[:8], version=3)
        assert len(removes) == 1
        assert len(adds) == 1
        assert mgr.rebuilds == 1  # coalesced: not one per half
        assert mgr.consistent_with_cache()

    def test_rebuild_folds_version_into_seed(self, icas):
        from repro.amq.delta import delta_seed

        cache, mgr = make_manager(icas, kind="bloom")
        base_seed = mgr.plan.params.seed
        mgr.apply_delta(added=[], removed=icas[:3], version=7)
        assert mgr.filter.params.seed == delta_seed("bloom", base_seed, 7)

    def test_versionless_rebuild_keeps_plan_seed(self, icas):
        cache, mgr = make_manager(icas, kind="bloom")
        mgr.apply_delta(added=[], removed=icas[:3])
        assert mgr.filter.params.seed == mgr.plan.params.seed

    def test_overflowing_patch_rebuilds_once(self, icas):
        # A 16-slot table cannot hold 60 fingerprints; the add-half
        # overflows mid-batch and the epoch defers the reconstruction —
        # exactly one rebuild for the whole patch, not one per failure.
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        mgr.apply_delta(added=icas[:60], removed=[], version=2)
        assert mgr.rebuilds == 1
        assert len(mgr.filter) == len(cache) == 60
        assert mgr.consistent_with_cache()

    def test_malformed_patch_rejected_before_mutation(self, icas):
        from repro.errors import ConfigurationError

        cache, mgr = make_manager(icas)
        version_before = mgr.version
        count_before = len(cache)
        with pytest.raises(ConfigurationError, match="does not hold"):
            mgr.apply_delta(added=icas[40:45], removed=[icas[45]], version=1)
        assert len(cache) == count_before
        assert mgr.version == version_before
        assert mgr.consistent_with_cache()

    def test_counters_advance_per_item(self, icas):
        cache, mgr = make_manager(icas)
        mgr.apply_delta(added=icas[40:44], removed=icas[:2], version=1)
        assert mgr.version == mgr.inserts + mgr.deletes + mgr.rebuilds

    def test_delta_applies_metered(self, icas):
        from repro import obs

        cache, mgr = make_manager(icas)
        with obs.scoped() as reg:
            mgr.apply_delta(added=[icas[40]], removed=[], version=1)
            mgr.apply_delta(added=[icas[41]], removed=[], version=2)
        assert reg.counter("core.filter_manager.delta_applies") == 2
