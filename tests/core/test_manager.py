"""Tests for dynamic filter maintenance (the §4.2 requirement)."""

import pytest

from repro.core.cache import ICACache
from repro.core.filter_config import plan_filter
from repro.core.manager import FilterManager
from repro.pki import build_hierarchy


@pytest.fixture(scope="module")
def icas():
    h = build_hierarchy("ecdsa-p256", total_icas=60, num_roots=3, seed=12)
    return h.ica_certificates()


def make_manager(icas, kind="cuckoo", capacity=80, preloaded=40):
    cache = ICACache()
    for cert in icas[:preloaded]:
        cache.add(cert)
    plan = plan_filter(capacity, filter_kind=kind, budget_bytes=None, seed=3)
    return cache, FilterManager(cache, plan)


class TestMirroring:
    def test_initial_filter_holds_cache(self, icas):
        cache, mgr = make_manager(icas)
        assert len(mgr.filter) == len(cache) == 40
        assert mgr.consistent_with_cache()

    def test_add_mirrors_into_filter(self, icas):
        cache, mgr = make_manager(icas)
        cache.add(icas[50])
        assert mgr.filter.contains(icas[50].fingerprint())
        assert mgr.inserts == 1

    def test_remove_mirrors_into_filter(self, icas):
        cache, mgr = make_manager(icas)
        target = icas[5]
        cache.remove(target)
        assert mgr.deletes == 1
        assert len(mgr.filter) == 39
        assert mgr.consistent_with_cache()

    def test_churn_stays_consistent(self, icas):
        cache, mgr = make_manager(icas, preloaded=30)
        for cert in icas[30:60]:
            cache.add(cert)
        for cert in icas[:30]:
            cache.remove(cert)
        assert len(mgr.filter) == 30
        assert mgr.consistent_with_cache()
        assert mgr.rebuilds == 0


class TestRebuilds:
    def test_overflow_triggers_rebuild(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        for cert in icas:
            cache.add(cert)
        assert mgr.rebuilds >= 1
        assert mgr.consistent_with_cache()
        assert len(mgr.filter) == len(icas)

    def test_bloom_delete_forces_rebuild(self, icas):
        cache, mgr = make_manager(icas, kind="bloom", preloaded=20)
        cache.remove(icas[0])
        assert mgr.rebuilds == 1
        assert mgr.consistent_with_cache()
        assert not any(
            mgr.filter.contains(icas[0].fingerprint())
            for _ in range(1)
        ) or True  # fp possible; consistency is the contract

    def test_force_rebuild_restores_plan_capacity(self, icas):
        cache, mgr = make_manager(icas, capacity=10, preloaded=0)
        for cert in icas:
            cache.add(cert)
        for cert in icas[10:]:
            cache.remove(cert)
        mgr.force_rebuild()
        assert mgr.filter.params.capacity == mgr.plan.params.capacity
        assert mgr.consistent_with_cache()
