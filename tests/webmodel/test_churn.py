"""The PKI-lifecycle churn engine: determinism, lifecycle coverage, and
the staleness→false-positive mechanism it exists to expose."""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.webmodel.churn import ChurnConfig, ChurnEngine, run_churn

#: Small but busy: short ICA validity pulls expiry sweeps inside the
#: 12-step window, so every lifecycle event class fires.
_CFG = ChurnConfig(steps=12, seed=7, ica_validity_steps=8)


@pytest.fixture(scope="module")
def result():
    return run_churn(_CFG)


class TestDeterminism:
    def test_same_config_same_events_and_series(self, result):
        again = run_churn(_CFG)
        assert again.events == result.events
        assert again.steps == result.steps

    def test_different_seed_different_events(self, result):
        other = run_churn(ChurnConfig(steps=12, seed=8))
        assert other.events != result.events

    def test_huge_derived_seed_is_repeatable(self):
        """Regression: with a 63-bit seed the memoized filter builds used
        to rehydrate with a truncated hash seed, so the first engine in a
        process disagreed with every later one."""
        cfg = ChurnConfig(steps=4, seed=2343948629979923722)
        first = run_churn(cfg)
        second = run_churn(cfg)
        assert first.steps == second.steps
        assert first.suppression_rate > 0.5

    def test_engine_equals_module_helper(self, result):
        engine_result = ChurnEngine(_CFG).run()
        assert engine_result.steps == result.steps
        assert engine_result.events == result.events


class TestLifecycleCoverage:
    def test_every_event_class_fires(self, result):
        kinds = {kind for _, kind, _ in result.events}
        assert {
            "issue",
            "cross-sign",
            "revoke",
            "rotate",
            "preload-refresh",
        } <= kinds

    def test_sweeps_and_revocations_reach_clients(self, result):
        assert sum(s.icas_revoked for s in result.steps) > 0
        assert sum(s.icas_expired_swept for s in result.steps) > 0

    def test_handshakes_all_accounted(self, result):
        for s in result.steps:
            assert s.handshakes == _CFG.handshakes_per_step
            assert s.completed + s.failures == s.handshakes
            assert s.fp_retries + s.fallbacks <= s.completed
        assert result.failures == 0

    def test_cross_signs_share_subject_not_fingerprint(self):
        engine = ChurnEngine(_CFG)
        engine.run()
        multi = [r for r in engine.records if len(r.variants) > 1]
        assert multi
        for record in multi:
            certs = [cert for cert, _ in record.variants]
            assert len({c.subject for c in certs}) == 1
            assert len({c.fingerprint() for c in certs}) == len(certs)

    def test_filters_track_caches_throughout(self):
        engine = ChurnEngine(_CFG)
        for step in range(_CFG.steps):
            engine.run_step(step)
            for client in engine.clients:
                assert len(client.manager.filter) == len(client.cache)
                assert client.manager.consistent_with_cache()


class TestStalenessMechanism:
    def test_fresh_payload_never_pays_fp_retries(self, result):
        # A freshly captured payload can still trail the cache *within* a
        # step (handshake learning only adds entries), but additive lag
        # never over-claims membership, so no FP retry is possible.
        assert result.fp_retries + result.fallbacks == 0

    def test_stale_payload_pays_fp_retries(self):
        stale = run_churn(ChurnConfig(steps=12, seed=7, payload_refresh_every=6))
        assert stale.stale_advertised_rate > 0.0
        assert stale.fp_retries + stale.fallbacks > 0
        assert stale.failures == 0

    def test_suppression_survives_churn(self, result):
        assert result.suppression_rate > 0.5
        assert result.total_wire_bytes > 0


class TestValidationAndObs:
    def test_bad_configs_rejected(self):
        with pytest.raises(SimulationError):
            ChurnEngine(ChurnConfig(steps=0))
        with pytest.raises(SimulationError):
            ChurnEngine(ChurnConfig(num_roots=0))
        with pytest.raises(SimulationError):
            ChurnEngine(ChurnConfig(initial_icas=1))
        with pytest.raises(SimulationError):
            ChurnEngine(ChurnConfig(payload_refresh_every=0))

    def test_obs_counters_match_result(self):
        obs.disable()
        reg = obs.enable()
        try:
            r = run_churn(ChurnConfig(steps=6, seed=7))
            assert reg.counter("webmodel.churn.steps") == 6
            assert reg.counter("webmodel.churn.handshakes") == r.handshakes
            assert reg.counter("webmodel.churn.icas_issued") == sum(
                s.icas_issued for s in r.steps
            )
            assert reg.counter("webmodel.churn.icas_revoked") == sum(
                s.icas_revoked for s in r.steps
            )
            assert reg.counter("webmodel.churn.icas_suppressed") == sum(
                s.icas_suppressed for s in r.steps
            )
            (key,) = [
                k
                for k in reg.snapshot()["histograms"]
                if k[0] == "webmodel.churn.run.seconds"
            ]
            assert dict(key[1])["filter"] == "cuckoo"
        finally:
            obs.disable()
