"""Tests for the browsing-session simulator (the Fig. 5 engine)."""

import pytest

from repro.webmodel.session_sim import (
    BrowsingSessionSimulator,
    SessionConfig,
    flight_sizes,
)


@pytest.fixture(scope="module")
def result():
    """One medium-sized session shared across assertions (live TLS
    handshakes inside, so build it once)."""
    sim = BrowsingSessionSimulator(SessionConfig(seed=2, num_domains=60))
    return sim.run(0)


class TestFlightSizes:
    def test_monotone_in_chain_depth(self):
        sizes = [
            flight_sizes("dilithium3", "ntru-hps-509", n, True)[1] for n in range(4)
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[3]

    def test_ch_independent_of_chain(self):
        ch0 = flight_sizes("dilithium3", "ntru-hps-509", 0, True)[0]
        ch3 = flight_sizes("dilithium3", "ntru-hps-509", 3, True)[0]
        assert ch0 == ch3

    def test_staples_add_bytes(self):
        plain = flight_sizes("dilithium3", "x25519", 1, False)[1]
        stapled = flight_sizes("dilithium3", "x25519", 1, True)[1]
        assert stapled > plain + 3 * 3293  # three extra signatures minimum

    def test_pq_flights_dwarf_conventional(self):
        rsa = flight_sizes("rsa-2048", "x25519", 2, True)[1]
        sphincs = flight_sizes("sphincs-128f", "x25519", 2, True)[1]
        assert sphincs > 10 * rsa


class TestSessionResult:
    def test_all_handshakes_complete(self, result):
        assert result.unique_destinations > 300

    def test_known_rate_in_paper_band(self, result):
        """69-74% in the paper; we allow a modestly wider band for the
        smaller test session."""
        assert 0.6 <= result.known_ica_rate <= 0.85

    def test_reduction_matches_known_rate_without_fps(self, result):
        expected = result.known_ica_rate
        observed = result.ica_reduction_ratio()
        # FPs reduce the reduction; they are rare at 0.1% FPP.
        assert observed <= expected + 1e-9
        assert observed >= expected - 0.05

    def test_suppression_never_invents_icas(self, result):
        for o in result.outcomes:
            assert 0 <= o.icas_sent_first <= o.num_icas
            assert o.suppressed_count == o.num_icas - o.icas_sent_first

    def test_ica_data_extrapolation_scales_with_algorithm(self, result):
        rsa = result.ica_data_bytes("rsa-2048", False)
        dil = result.ica_data_bytes("dilithium3", False)
        sph = result.ica_data_bytes("sphincs-128f", False)
        assert rsa < dil < sph
        # Ratios equal per-cert size ratios exactly.
        assert dil / rsa == pytest.approx(
            result.ica_cert_bytes("dilithium3") / result.ica_cert_bytes("rsa-2048")
        )

    def test_savings_positive(self, result):
        for alg in ("rsa-2048", "dilithium3", "sphincs-128f"):
            assert result.ica_savings_bytes(alg) > 0

    def test_ttfb_suppressed_not_slower_overall(self, result):
        full = result.ttfb_samples("sphincs-128f", False)
        sup = result.ttfb_samples("sphincs-128f", True)
        assert sum(sup) < sum(full)

    def test_ttfb_sample_counts_match_destinations(self, result):
        assert len(result.ttfb_samples("rsa-2048", True)) == (
            result.unique_destinations
        )

    def test_filter_payload_recorded(self, result):
        assert result.filter_payload_bytes > 100
        assert result.filter_lookup_seconds >= 0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = BrowsingSessionSimulator(SessionConfig(seed=5, num_domains=10)).run(0)
        b = BrowsingSessionSimulator(SessionConfig(seed=5, num_domains=10)).run(0)
        assert [o.rank for o in a.outcomes] == [o.rank for o in b.outcomes]
        assert a.known_ica_rate == b.known_ica_rate

    def test_runs_differ(self):
        sim = BrowsingSessionSimulator(SessionConfig(seed=5, num_domains=10))
        a, b = sim.run(0), sim.run(1)
        assert [o.rank for o in a.outcomes] != [o.rank for o in b.outcomes]
