"""``webmodel.cohort.*`` counters under the determinism contract.

The cohort engine meters per block through ``run_metered``/``obs.merge``
(serial) or metered ``parallel_map`` (workers), so the merged counters
must be one fixed function of the config — identical for any ``--jobs``
and block size, and identical between the columnar engine and the scalar
reference (which emits the same counters once over the whole cohort).
This is what lets the CI cohort-smoke job diff metrics exports across
engines and job counts.
"""

import pytest

from tests._fixtures import reduced_population_config, shared_population

pytest.importorskip("numpy")

from repro import obs  # noqa: E402
from repro.obs.export import deterministic_counters  # noqa: E402
from repro.runtime import artifacts  # noqa: E402
from repro.webmodel.cohort import CohortConfig, run_cohort  # noqa: E402
from repro.webmodel.cohort_reference import run_cohort_reference  # noqa: E402

CONFIG = dict(
    num_users=40,
    handshakes_per_user=6,
    hot_top_n=40,
    fpp=0.25,
    payload_refresh_every=2,
    seed=1,
)


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    artifacts.clear()
    yield
    obs.disable()
    artifacts.clear()


def _config(block_users=16_384):
    return CohortConfig(
        block_users=block_users,
        population=reduced_population_config(),
        **CONFIG,
    )


def _cohort_counters(run):
    reg = obs.enable()
    stats = run().stats
    flat = {
        name: value
        for name, value in deterministic_counters(reg.snapshot()).items()
        if name.startswith("webmodel.cohort.")
    }
    obs.disable()
    return stats, flat


def test_counters_mirror_the_stats():
    population = shared_population(reduced_population_config())
    stats, flat = _cohort_counters(
        lambda: run_cohort(_config(), jobs=1, population=population)
    )
    assert stats.retries > 0  # the run is not vacuous
    assert flat == {
        "webmodel.cohort.users{}": stats.users,
        "webmodel.cohort.handshakes{}": stats.handshakes,
        "webmodel.cohort.session_reuse{}": stats.session_reuse,
        "webmodel.cohort.retries{cause=server-fp}": stats.retries,
        "webmodel.cohort.false_positives{}": stats.false_positives,
        "webmodel.cohort.icas_encountered{}": stats.icas_encountered,
        "webmodel.cohort.icas_sent_total{}": stats.icas_sent_total,
        "webmodel.cohort.icas_suppressed_first{}": stats.icas_suppressed_first,
        "webmodel.cohort.divergent_users{}": stats.divergent_users,
        "webmodel.cohort.learned_icas{}": stats.learned_icas,
        "webmodel.cohort.payload_refreshes{}": stats.payload_refreshes,
    }


def test_serial_and_parallel_merge_identically():
    population = shared_population(reduced_population_config())
    _, serial = _cohort_counters(
        lambda: run_cohort(_config(), jobs=1, population=population)
    )
    _, parallel = _cohort_counters(
        lambda: run_cohort(_config(block_users=9), jobs=2)
    )
    assert serial == parallel


def test_scalar_reference_emits_identical_counters():
    population = shared_population(reduced_population_config())
    _, engine = _cohort_counters(
        lambda: run_cohort(_config(), jobs=1, population=population)
    )
    _, reference = _cohort_counters(
        lambda: run_cohort_reference(_config(), population=population)
    )
    assert engine == reference


def test_disabled_obs_records_nothing():
    population = shared_population(reduced_population_config())
    assert not obs.enabled()
    run_cohort(_config(), jobs=1, population=population)
    assert obs.registry() is None
