"""Differential pinning of the columnar churn engine.

The contract (``repro.webmodel.churn_columnar`` docstring): for any churn
cohort config, the columnar engine — generation-bucketed bulk probes,
one representative handshake per (generation, site) context, flagged
contexts replayed cell by cell — and the scalar reference
(:mod:`repro.webmodel.churn_reference`), which runs every cell through
the untouched per-handshake TLS machine, reduce to *equal*
:class:`~repro.webmodel.churn_columnar.ChurnCohortResult` objects:
config, every per-epoch :class:`~repro.webmodel.churn.StepMetrics`
(suppression, FP retries, fallbacks, failures, staleness, wire bytes)
and the whole lifecycle event stream.

Hypothesis drives that over cohort size × epochs × filter family × fpp ×
``payload_refresh_every`` × seed.  The deterministic anchors then force
the interesting paths — stale generations paying real FP retries, high
fpp probe false positives — so the property suite cannot pass vacuously
on all-clean draws.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro import obs  # noqa: E402
from repro.errors import SimulationError  # noqa: E402
from repro.webmodel.churn import ChurnConfig  # noqa: E402
from repro.webmodel.churn_columnar import (  # noqa: E402
    ChurnCohortConfig,
    capture_wire_image,
    generation_size,
    probe_image,
    run_churn_cohort,
)
from repro.webmodel.churn_reference import run_churn_cohort_reference  # noqa: E402


def _config(**overrides):
    world_overrides = {
        k: overrides.pop(k)
        for k in (
            "steps",
            "num_sites",
            "payload_refresh_every",
            "filter_kind",
            "fpp",
            "seed",
            "ica_validity_steps",
            "revocation_rate",
        )
        if k in overrides
    }
    world = ChurnConfig(
        steps=world_overrides.pop("steps", 6),
        num_sites=world_overrides.pop("num_sites", 6),
        ica_validity_steps=world_overrides.pop("ica_validity_steps", 8),
        **world_overrides,
    )
    return ChurnCohortConfig(world=world, **overrides)


def assert_equivalent(config):
    columnar = run_churn_cohort(config)
    reference = run_churn_cohort_reference(config)
    assert columnar == reference
    return columnar


churn_configs = st.builds(
    _config,
    num_clients=st.integers(min_value=1, max_value=10),
    handshakes_per_client=st.integers(min_value=1, max_value=3),
    steps=st.integers(min_value=1, max_value=6),
    filter_kind=st.sampled_from(("cuckoo", "bloom", "vacuum")),
    fpp=st.sampled_from((1e-3, 0.25)),
    payload_refresh_every=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=3),
)


@given(config=churn_configs)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_churn_cohort_matches_scalar_reference(config):
    assert_equivalent(config)


@pytest.mark.parametrize("filter_kind", ["cuckoo", "bloom", "vacuum"])
def test_stale_generations_pay_retries_in_both_engines(filter_kind):
    """A deterministic high-staleness run per filter family that *must*
    take the FP-candidate replay path: stale generations keep advertising
    revoked ICAs, lagging sites suppress them, and the handshake pays the
    paper's false-positive retry — identically in both engines."""
    config = _config(
        num_clients=12,
        handshakes_per_client=2,
        steps=10,
        payload_refresh_every=6,
        filter_kind=filter_kind,
        seed=7,
    )
    result = assert_equivalent(config)
    assert result.fp_retries > 0
    assert result.failures == 0
    assert result.stale_advertised_rate > 0.0
    assert result.suppression_rate > 0.5


def test_fresh_generations_never_retry_at_tight_fpp():
    """k=1 re-captures every epoch: the advertised payload always matches
    the canonical cache, so at fpp=1e-3 no handshake pays a retry (the
    fleet engine's freshness property, ported to the cohort)."""
    config = _config(
        num_clients=12, handshakes_per_client=2, steps=10,
        payload_refresh_every=1, seed=7,
    )
    result = assert_equivalent(config)
    assert result.fp_retries == 0
    assert result.fallbacks == 0
    assert result.failures == 0
    assert result.stale_advertised_rate == 0.0


def test_churn_obs_counters_are_engine_invariant():
    """``webmodel.churn.*`` counters are pure sums over the StepMetrics
    series, so the two engines must emit identical values even though
    their ``amq.*``/``tls.*`` work differs wildly."""
    config = _config(
        num_clients=8, handshakes_per_client=2, steps=6,
        payload_refresh_every=4, seed=3,
    )

    def churn_counters(runner):
        with obs.scoped() as scope:
            runner(config)
            return {
                k: v
                for k, v in scope.snapshot()["counters"].items()
                if k[0].startswith("webmodel.churn.")
            }

    columnar = churn_counters(run_churn_cohort)
    reference = churn_counters(run_churn_cohort_reference)
    assert columnar == reference
    assert columnar[("webmodel.churn.handshakes", ())] == 6 * 8 * 2


def test_zero_epochs_is_a_valid_cohort():
    """The degenerate sweep (steps=0) runs: no epochs, no handshakes,
    empty metrics series, zero rates — in both engines."""
    config = _config(steps=0, num_clients=4)
    result = assert_equivalent(config)
    assert result.steps == []
    assert result.handshakes == 0
    assert result.fp_retry_rate == 0.0
    assert result.suppression_rate == 0.0
    assert result.stale_advertised_rate == 0.0
    assert result.fp_retry_curve() == []


def test_cohort_config_validation():
    with pytest.raises(SimulationError):
        ChurnCohortConfig(num_clients=0)
    with pytest.raises(SimulationError):
        ChurnCohortConfig(handshakes_per_client=0)
    with pytest.raises(SimulationError):
        ChurnCohortConfig(world=ChurnConfig(payload_refresh_every=0))
    with pytest.raises(SimulationError):
        # The world still rejects negative horizons.
        run_churn_cohort(_config(steps=-1))


def test_generation_sizes_partition_the_cohort():
    for n in (1, 5, 12, 13):
        for k in (1, 2, 5, 7):
            sizes = [generation_size(g, n, k) for g in range(k)]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1


def test_artifact_cache_hits_replay_probe_and_build_metrics():
    """A cache hit must be metrically indistinguishable from the work it
    skips: capture and probe store their obs deltas and replay them, so
    ``amq.*`` counters stay a pure function of the call sequence."""
    world = ChurnConfig(seed=11)
    fps = [bytes([i]) * 32 for i in range(8)]

    def observed(fn):
        with obs.scoped() as scope:
            value = fn()
            counters = {
                k: v
                for k, v in scope.snapshot()["counters"].items()
                if k[0].startswith("amq.")
            }
        return value, counters

    cold_img, cold_c = observed(lambda: capture_wire_image(world, fps))
    warm_img, warm_c = observed(lambda: capture_wire_image(world, fps))
    assert warm_img == cold_img
    assert warm_c == cold_c

    cold_hits, cold_p = observed(lambda: probe_image(cold_img, fps))
    warm_hits, warm_p = observed(lambda: probe_image(cold_img, fps))
    assert warm_hits == cold_hits
    assert all(cold_hits)
    assert warm_p == cold_p
