"""Properties of the cohort seed-derivation scheme (``cohortrng``).

The scheme's contract (module docstring of
:mod:`repro.webmodel.cohortrng`): stream keys are content hashes of
(namespace, cohort seed); counters are ``user * slots + slot``; draws are
a splitmix64-finalizer bijection of the counter under the key.  Pinned
here:

* no stream collisions — distinct counters under one key give distinct
  64-bit words (structurally, via the bijection), and the three cohort
  namespaces get pairwise-distinct keys for every seed;
* per-user rows and block matrices address the identical counters, so
  any sharding (``--jobs``, ``block_users``) reproduces every draw —
  including through the engine itself (results and deterministic
  counters invariant across jobs/block size);
* stream keys round-trip the shippable runtime artifact cache
  (export/import is how worker processes inherit them).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests._fixtures import reduced_population_config, shared_population

np = pytest.importorskip("numpy")

from repro.runtime import artifacts  # noqa: E402
from repro.webmodel import cohortrng  # noqa: E402
from repro.webmodel.cohort import (  # noqa: E402
    CohortConfig,
    cohort_stream_keys,
    run_cohort,
)

NAMESPACES = (
    cohortrng.RANK_STREAM,
    cohortrng.RTT_A_STREAM,
    cohortrng.RTT_B_STREAM,
)


class TestStreamKeys:
    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_namespaces_never_share_a_key(self, seed):
        keys = [cohortrng.stream_key(ns, seed) for ns in NAMESPACES]
        assert len(set(keys)) == len(NAMESPACES)
        for key in keys:
            assert 0 <= key < 2**64

    @given(
        seed_a=st.integers(min_value=0, max_value=2**32),
        seed_b=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_distinct_seeds_give_distinct_keys(self, seed_a, seed_b):
        for ns in NAMESPACES:
            assert (
                cohortrng.stream_key(ns, seed_a)
                == cohortrng.stream_key(ns, seed_b)
            ) == (seed_a == seed_b)

    def test_keys_are_stable_values(self):
        # Content hashes, not process state: same inputs, same key, any
        # process — the property every checked-in golden rests on.
        assert cohort_stream_keys(0) == cohort_stream_keys(0)
        again = {ns: cohortrng.stream_key(ns, 0) for ns in NAMESPACES}
        assert cohort_stream_keys(0) == again


class TestCounterStreams:
    @given(
        key=st.integers(min_value=0, max_value=2**64 - 1),
        users=st.integers(min_value=1, max_value=200),
        slots=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_collisions_within_a_stream(self, key, users, slots):
        counters = cohortrng.block_counters(0, users, slots)
        words = cohortrng.counter_hash(key, counters)
        assert len(np.unique(words)) == users * slots

    @given(
        key=st.integers(min_value=0, max_value=2**64 - 1),
        user=st.integers(min_value=0, max_value=2**20),
        slots=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_user_row_equals_block_matrix_row(self, user, key, slots):
        """Scalar-reference addressing (one user's row) and columnar
        addressing (a block matrix) denote the same counters — the root
        of the engines' byte-identical randomness."""
        row = cohortrng.user_counters(user, slots)
        block = cohortrng.block_counters(user, user + 3, slots)
        assert np.array_equal(row, block[0])
        assert np.array_equal(
            cohortrng.uniforms(key, row), cohortrng.uniforms(key, block)[0]
        )

    @given(
        key=st.integers(min_value=0, max_value=2**64 - 1),
        start=st.integers(min_value=0, max_value=1000),
        split=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=25, deadline=None)
    def test_block_sharding_is_invisible(self, key, start, split):
        whole = cohortrng.block_counters(start, start + 8, 5)
        parts = np.concatenate(
            [
                cohortrng.block_counters(start, start + split, 5),
                cohortrng.block_counters(start + split, start + 8, 5),
            ]
        )
        assert np.array_equal(whole, parts)

    def test_uniforms_are_doubles_in_unit_interval(self):
        u = cohortrng.uniforms(12345, cohortrng.block_counters(0, 500, 8))
        assert u.dtype == np.float64
        assert float(u.min()) >= 0.0
        assert float(u.max()) < 1.0


class TestDistributions:
    @given(
        exponent=st.floats(min_value=1.05, max_value=3.0),
        size=st.integers(min_value=1, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_zipf_ranks_stay_in_bounds(self, exponent, size):
        u = cohortrng.uniforms(7, cohortrng.user_counters(0, 64))
        # Include both endpoints of the uniform domain explicitly.
        u = np.concatenate([u, [0.0, np.nextafter(1.0, 0.0)]])
        ranks = cohortrng.zipf_ranks(u, exponent, size)
        assert ranks.dtype == np.int64
        assert int(ranks.min()) >= 1
        assert int(ranks.max()) <= size

    def test_zipf_rejects_degenerate_parameters(self):
        u = np.array([0.5])
        with pytest.raises(ValueError):
            cohortrng.zipf_ranks(u, 1.0, 100)
        with pytest.raises(ValueError):
            cohortrng.zipf_ranks(u, 1.5, 0)

    def test_zipf_is_popularity_skewed(self):
        u = cohortrng.uniforms(7, cohortrng.block_counters(0, 2000, 8))
        ranks = cohortrng.zipf_ranks(u, 1.9, 1_000_000)
        # A Zipf(1.9) stream is head-heavy: rank 1 dominates any deep rank.
        assert (ranks == 1).sum() > (ranks > 1000).sum()

    def test_rtt_respects_physical_floor_and_median(self):
        counters = cohortrng.block_counters(0, 2000, 8)
        rtt = cohortrng.lognormal_rtt(
            cohortrng.uniforms(1, counters),
            cohortrng.uniforms(2, counters),
            0.045,
            0.5,
        )
        assert float(rtt.min()) >= 0.002
        # Median of the log-normal is the median parameter.
        assert abs(float(np.median(rtt)) - 0.045) < 0.005


class TestEngineShardingInvariance:
    """The seed-derivation scheme's end-to-end promise: the *engine's*
    output is a pure function of the config, not of jobs/block size."""

    def _config(self, block_users):
        return CohortConfig(
            num_users=60,
            handshakes_per_user=5,
            hot_top_n=40,
            fpp=0.25,
            seed=1,
            block_users=block_users,
            population=reduced_population_config(),
        )

    def test_jobs_and_block_size_cannot_change_the_result(self):
        population = shared_population(reduced_population_config())
        serial = run_cohort(self._config(16_384), jobs=1, population=population)
        sharded = run_cohort(self._config(17), jobs=2)
        assert serial.stats == sharded.stats
        assert serial.columns == sharded.columns
        assert np.array_equal(serial.rtt_s, sharded.rtt_s)
        # Retries present, so the invariance covers the replay path too.
        assert serial.stats.retries > 0


class TestStreamKeyShipping:
    @pytest.fixture(autouse=True)
    def _clean_artifacts(self):
        artifacts.clear()
        yield
        artifacts.clear()

    def test_keys_round_trip_the_shippable_artifact_cache(self):
        parent = cohort_stream_keys(5)
        shipped = artifacts.export_shippable()
        assert any(
            entry for name, entry in shipped.items() if name == "cohort_streams"
        )
        artifacts.clear()
        assert artifacts.COHORT_STREAMS.get(("streams", 5)) is None
        artifacts.import_entries(shipped)
        # A worker that imports the shipped caches sees the parent's keys
        # without recomputing them...
        assert artifacts.COHORT_STREAMS.get(("streams", 5)) == parent
        # ...and recomputation would agree anyway (content-derived).
        assert cohort_stream_keys(5) == parent

    def test_cache_hit_returns_same_mapping(self):
        first = cohort_stream_keys(9)
        assert cohort_stream_keys(9) is first
