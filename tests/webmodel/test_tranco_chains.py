"""Tests for the domain ranking and chain mixes."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.webmodel.chains import PAPER_MONTH, TABLE2_MONTHS, ChainMix, table2_mix
from repro.webmodel.tranco import DomainRanking


class TestDomainRanking:
    def test_names_deterministic_and_invertible(self):
        ranking = DomainRanking(size=1000, seed=1)
        for rank in (1, 37, 999):
            assert ranking.rank_of(ranking.domain(rank)) == rank

    def test_rank_bounds_enforced(self):
        ranking = DomainRanking(size=100)
        with pytest.raises(ConfigurationError):
            ranking.domain(0)
        with pytest.raises(ConfigurationError):
            ranking.domain(101)

    def test_rank_of_rejects_foreign_names(self):
        with pytest.raises(ConfigurationError):
            DomainRanking().rank_of("www.google.com")

    def test_zipf_sampling_is_head_heavy(self):
        ranking = DomainRanking(size=1_000_000)
        rng = random.Random(7)
        samples = [ranking.sample_rank(rng, 1.9) for _ in range(3000)]
        top10_share = sum(1 for s in samples if s <= 10) / len(samples)
        assert top10_share > 0.5
        assert max(samples) <= 1_000_000

    def test_zipf_no_atom_at_bottom(self):
        """Rejection sampling, not clamping: the bottom rank must not
        accumulate the entire tail mass."""
        ranking = DomainRanking(size=1000)
        rng = random.Random(7)
        samples = [ranking.sample_rank(rng, 1.08) for _ in range(4000)]
        bottom = sum(1 for s in samples if s == 1000)
        assert bottom < 40

    def test_zipf_validates_exponent(self):
        rng = random.Random(1)
        with pytest.raises(ConfigurationError):
            DomainRanking().sample_rank(rng, 1.0)

    def test_monthly_rank_stays_in_bounds_and_is_stable(self):
        ranking = DomainRanking(size=10_000, seed=3)
        for rank in (1, 50, 9000):
            a = ranking.monthly_rank(rank, 3)
            b = ranking.monthly_rank(rank, 3)
            assert a == b
            assert 1 <= a <= 10_000
        assert ranking.monthly_rank(500, 0) == 500

    def test_top_listing(self):
        ranking = DomainRanking(size=50)
        assert len(ranking.top(10)) == 10
        assert len(ranking.top(100)) == 50

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            DomainRanking(size=0)


class TestChainMix:
    def test_table2_rows_sum_to_one(self):
        for month, mix in TABLE2_MONTHS.items():
            assert abs(sum(mix.probabilities()) - 1.0) < 1e-9, month

    def test_paper_month_has_245_icas(self):
        assert table2_mix(PAPER_MONTH).unique_icas == 245

    def test_unknown_month(self):
        with pytest.raises(ConfigurationError):
            table2_mix("Dec. '21")

    def test_invalid_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            ChainMix(0.5, 0.5, 0.5, 0.0, 0.0, 100)

    def test_sampling_matches_mix(self):
        mix = table2_mix("Jun. '22")
        rng = random.Random(11)
        n = 20_000
        counts = {}
        for _ in range(n):
            d = mix.sample_depth(rng)
            counts[d] = counts.get(d, 0) + 1
        for depth, expected in enumerate(mix.probabilities()):
            observed = counts.get(depth, 0) / n
            assert observed == pytest.approx(expected, abs=0.02)

    def test_mean_icas_consistent(self):
        mix = table2_mix("Jun. '22")
        rng = random.Random(5)
        empirical = sum(mix.sample_depth(rng) for _ in range(20_000)) / 20_000
        assert empirical == pytest.approx(mix.mean_icas(), abs=0.05)

    def test_over_80_percent_have_icas(self):
        """The paper's motivation: 'over 80% of the examined servers
        include at least one ICA' (true for all months but Jan)."""
        for month in ("Feb. '22", "Mar. '22", "Apr. '22", "May '22"):
            assert table2_mix(month).p0 < 0.2
