"""Frozen-seed regression pins for the cohort engine.

``golden_cohort_stats.json`` was generated once from the engine at the
PR that introduced it and is **never regenerated**: it pins the integer
aggregate stats of three fixed-seed cohorts, so any change to the RNG
scheme, the session protocol (dedup, refresh points, FP retries) or the
accounting shows up as a diff against numbers that are in git history.
Floats are excluded on purpose — the integer stats depend only on the
counter-RNG bit stream and filter bytes, not on libm.
"""

import json
import os

import pytest

from tests._fixtures import reduced_population_config, shared_population

pytest.importorskip("numpy")

from repro.webmodel.cohort import CohortConfig, run_cohort  # noqa: E402
from repro.webmodel.cohort_reference import run_cohort_reference  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_cohort_stats.json"
)

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)


def golden_config(seed):
    spec = GOLDEN["config"]
    assert spec["population"] == {
        "universe_icas": 160,
        "num_roots": 3,
        "hot_rank_threshold": 40,
        "seed": 7,
    }, "golden population drifted from tests/_fixtures.py"
    return CohortConfig(
        num_users=spec["num_users"],
        handshakes_per_user=spec["handshakes_per_user"],
        hot_top_n=spec["hot_top_n"],
        fpp=spec["fpp"],
        payload_refresh_every=spec["payload_refresh_every"],
        seed=seed,
        population=reduced_population_config(),
    )


def int_stats(result):
    stats = result.stats
    return {
        name: getattr(stats, name)
        for name in type(stats).__dataclass_fields__
        if isinstance(getattr(stats, name), int)
    }


@pytest.mark.parametrize("seed", sorted(GOLDEN["seeds"]))
def test_engine_reproduces_frozen_stats(seed):
    population = shared_population(reduced_population_config())
    result = run_cohort(
        golden_config(int(seed)), jobs=1, population=population
    )
    assert int_stats(result) == GOLDEN["seeds"][seed]


def test_scalar_reference_reproduces_frozen_stats():
    """The goldens pin the *protocol*, not one implementation: the
    untouched per-handshake TLS machine lands on the same frozen numbers
    (one seed — this path runs real crypto)."""
    population = shared_population(reduced_population_config())
    result = run_cohort_reference(golden_config(0), population=population)
    assert int_stats(result) == GOLDEN["seeds"]["0"]


def test_goldens_exercise_every_protocol_feature():
    """The pinned runs are not vacuous: every seed has FP retries,
    divergent users, learning and payload refreshes."""
    for seed, stats in GOLDEN["seeds"].items():
        assert stats["retries"] > 0, seed
        assert stats["divergent_users"] > 0, seed
        assert stats["learned_icas"] > 0, seed
        assert stats["payload_refreshes"] > 0, seed
        assert stats["session_reuse"] > 0, seed
