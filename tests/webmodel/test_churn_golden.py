"""Frozen-seed regression pins for the churn cohort engines.

``golden_churn_stats.json`` was generated once from the engine at the PR
that introduced it and is **never regenerated**: it pins the integer
aggregate stats of three fixed-seed churn cohorts, so any change to the
lifecycle RNG streams, the churn cohort protocol (generation cadence,
preload refresh, pooled learning, FP-candidate classification) or the
accounting shows up as a diff against numbers that are in git history.
Floats are excluded on purpose — the integer stats depend only on the
seeded event stream and filter bytes, not on libm.
"""

import json
import os

import pytest

pytest.importorskip("numpy")

from repro.webmodel.churn import ChurnConfig  # noqa: E402
from repro.webmodel.churn_columnar import (  # noqa: E402
    ChurnCohortConfig,
    run_churn_cohort,
)
from repro.webmodel.churn_reference import run_churn_cohort_reference  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_churn_stats.json"
)

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)


def golden_config(seed):
    spec = GOLDEN["config"]
    return ChurnCohortConfig(
        world=ChurnConfig(
            steps=spec["steps"],
            num_sites=spec["num_sites"],
            payload_refresh_every=spec["payload_refresh_every"],
            ica_validity_steps=spec["ica_validity_steps"],
            filter_kind=spec["filter_kind"],
            fpp=spec["fpp"],
            seed=seed,
        ),
        num_clients=spec["num_clients"],
        handshakes_per_client=spec["handshakes_per_client"],
    )


def int_stats(result):
    return {
        "handshakes": result.handshakes,
        "completed": result.completed,
        "fp_retries": result.fp_retries,
        "fallbacks": result.fallbacks,
        "failures": result.failures,
        "stale_advertised": sum(s.stale_advertised for s in result.steps),
        "icas_encountered": sum(s.icas_encountered for s in result.steps),
        "icas_suppressed": sum(s.icas_suppressed for s in result.steps),
        "wire_bytes": result.total_wire_bytes,
        "events": len(result.events),
        "icas_issued": sum(s.icas_issued for s in result.steps),
        "icas_cross_signed": sum(s.icas_cross_signed for s in result.steps),
        "icas_revoked": sum(s.icas_revoked for s in result.steps),
        "icas_expired_swept": sum(s.icas_expired_swept for s in result.steps),
        "preload_added": sum(s.preload_added for s in result.steps),
        "payload_refreshes": sum(s.payload_refreshes for s in result.steps),
        "site_rotations": sum(s.site_rotations for s in result.steps),
    }


@pytest.mark.parametrize("seed", sorted(GOLDEN["seeds"]))
def test_columnar_engine_reproduces_frozen_stats(seed):
    result = run_churn_cohort(golden_config(int(seed)))
    assert int_stats(result) == GOLDEN["seeds"][seed]


def test_scalar_reference_reproduces_frozen_stats():
    """The goldens pin the *protocol*, not one implementation: the
    untouched per-handshake TLS machine lands on the same frozen numbers
    (one seed — this path runs every cell through real crypto)."""
    result = run_churn_cohort_reference(golden_config(0))
    assert int_stats(result) == GOLDEN["seeds"]["0"]


def test_goldens_exercise_every_lifecycle_feature():
    """The pinned runs are not vacuous: every seed revokes, rotates,
    cross-signs, sweeps expiries, refreshes preloads, serves stale
    payloads and pays FP retries — with zero hard failures."""
    for seed, stats in GOLDEN["seeds"].items():
        assert stats["fp_retries"] > 0, seed
        assert stats["failures"] == 0, seed
        assert stats["icas_revoked"] > 0, seed
        assert stats["icas_cross_signed"] > 0, seed
        assert stats["icas_expired_swept"] > 0, seed
        assert stats["preload_added"] > 0, seed
        assert stats["site_rotations"] > 0, seed
        assert stats["stale_advertised"] > 0, seed
        assert stats["icas_suppressed"] > 0, seed
