"""Tests for the non-Web scenario simulator (§7 future work)."""

import pytest

from repro.errors import SimulationError
from repro.webmodel.nonweb import (
    IOT_FLEET,
    MOBILE_APP,
    WEB_BROWSING,
    ScenarioConfig,
    format_environments,
    simulate_scenario,
)


@pytest.fixture(scope="module")
def iot_result():
    return simulate_scenario(IOT_FLEET, sample_handshakes=20)


class TestScenario:
    def test_full_suppression_in_closed_world(self, iot_result):
        assert iot_result.suppression_rate == 1.0
        assert iot_result.false_positives == 0

    def test_daily_scaling(self, iot_result):
        assert iot_result.bytes_saved_per_day > 0
        assert iot_result.handshake_seconds_saved_per_day == pytest.approx(
            iot_result.flight_rtts_saved_per_day * IOT_FLEET.rtt_s, rel=0.01
        )

    def test_tiny_filter_at_aggressive_fpp(self, iot_result):
        assert iot_result.filter_payload_bytes < 150
        assert IOT_FLEET.fpp == 1e-6

    def test_deterministic(self):
        a = simulate_scenario(MOBILE_APP, sample_handshakes=10)
        b = simulate_scenario(MOBILE_APP, sample_handshakes=10)
        assert a == b

    def test_sample_count_validated(self):
        with pytest.raises(SimulationError):
            simulate_scenario(MOBILE_APP, sample_handshakes=0)

    def test_custom_scenario(self):
        tiny = ScenarioConfig(
            name="lab",
            algorithm="ecdsa-p256",
            kem="x25519",
            num_peers=2,
            num_icas=2,
            handshakes_per_day=10,
            fpp=1e-4,
            rtt_s=0.01,
            initcwnd_segments=10,
            seed=9,
        )
        result = simulate_scenario(tiny, sample_handshakes=5)
        assert result.suppression_rate == 1.0
        # Conventional chains inside one window: bytes saved, no RTTs.
        assert result.bytes_saved_per_day > 0
        assert result.flight_rtts_saved_per_day == 0

    def test_format(self, iot_result):
        out = format_environments([iot_result])
        assert "iot-fleet" in out and "MB saved/day" in out
