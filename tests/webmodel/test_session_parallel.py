"""Determinism and caching invariants of the parallel session runtime.

The contracts this file pins down:

* sharding runs across worker processes produces *element-wise identical*
  ``SessionResult`` s to the serial loop, for multiple seeds and filter
  structures;
* artifact-cache hits never change handshake byte accounting — a warm
  handshake reports the same ``client_hello_bytes`` /
  ``server_flight_bytes`` / ``ica_bytes_sent`` as a cold or cache-disabled
  one;
* a warm repeat of a session performs zero redundant DER encodes;
* the per-rank staples cache is a bounded LRU.
"""

import pytest

from repro.errors import SimulationError
from repro.runtime import artifacts
from repro.tls.server import ServerConfig
from repro.tls.session import run_handshake
from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig


def _small_config(seed, filter_kind="cuckoo"):
    return SessionConfig(seed=seed, num_domains=6, filter_kind=filter_kind)


# ---------------------------------------------------------------------------
# Serial/parallel equality
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("filter_kind", ["cuckoo", "bloom"])
def test_run_many_parallel_matches_serial(seed, filter_kind):
    sim = BrowsingSessionSimulator(_small_config(seed, filter_kind))
    serial = sim.run_many(2, jobs=1)
    parallel = sim.run_many(2, jobs=2)
    assert len(serial) == len(parallel) == 2
    for k, (s, p) in enumerate(zip(serial, parallel)):
        assert s == p, f"run {k} diverged between serial and parallel"


def test_run_many_zero_runs():
    sim = BrowsingSessionSimulator(_small_config(5))
    assert sim.run_many(0, jobs=2) == []


def test_runs_are_distinct_per_index():
    sim = BrowsingSessionSimulator(_small_config(5))
    a, b = sim.run_many(2, jobs=1)
    assert a.outcomes != b.outcomes  # different run indices, different sessions


def test_same_seed_same_results_across_simulators():
    r1 = BrowsingSessionSimulator(_small_config(7)).run(0)
    sim2 = BrowsingSessionSimulator(_small_config(7))
    sim2._lookup_seconds = r1.filter_lookup_seconds
    assert sim2.run(0) == r1


# ---------------------------------------------------------------------------
# Cache hits never change byte accounting
# ---------------------------------------------------------------------------


def _attempt_bytes(sim, rank):
    credential = sim.population.credential_for_rank(rank)
    ocsp, scts = sim._staples_for(rank)
    server_config = ServerConfig(
        credential=credential,
        suppression_handler=sim.server_suppressor,
        ocsp_staple=ocsp,
        scts=list(scts),
        seed=7,
    )
    client_config = sim.suppressor.client_config(
        sim.trust_store,
        hostname=credential.chain.leaf.subject,
        kem_name=sim.config.kem_name,
        at_time=sim.config.at_time,
        seed=9,
    )
    trace = run_handshake(client_config, server_config)
    assert trace.succeeded
    first = trace.attempts[0]
    return (
        first.client_hello_bytes,
        first.server_flight_bytes,
        first.ica_bytes_sent,
    )


def test_cache_hits_do_not_change_handshake_bytes():
    sim = BrowsingSessionSimulator(_small_config(9))
    artifacts.clear()
    cold = _attempt_bytes(sim, rank=1)
    warm = _attempt_bytes(sim, rank=1)  # same handshake, now cache-served
    with artifacts.disabled():
        bypassed = _attempt_bytes(sim, rank=1)
    assert cold == warm == bypassed


def test_disabled_caches_reproduce_session_result():
    sim = BrowsingSessionSimulator(_small_config(9))
    enabled_result = sim.run(0)
    with artifacts.disabled():
        sim2 = BrowsingSessionSimulator(
            _small_config(9), lookup_seconds=sim._lookup_seconds
        )
        disabled_result = sim2.run(0)
    assert disabled_result == enabled_result


# ---------------------------------------------------------------------------
# Warm runs perform zero redundant DER encodes
# ---------------------------------------------------------------------------


def test_warm_session_repeat_encodes_no_der():
    sim = BrowsingSessionSimulator(_small_config(13))
    first = sim.run(0)
    before = artifacts.stats()["der_encode"]["misses"]
    second = sim.run(0)
    after = artifacts.stats()["der_encode"]["misses"]
    assert second == first
    assert after == before, f"warm repeat performed {after - before} DER encodes"


# ---------------------------------------------------------------------------
# Staples LRU bound
# ---------------------------------------------------------------------------


def test_staples_cache_bounded():
    sim = BrowsingSessionSimulator(_small_config(5), staples_cache_size=4)
    for rank in range(1, 20):
        sim._staples_for(rank)
    assert len(sim._staples_cache) <= 4


def test_staples_cache_keeps_recent_ranks():
    sim = BrowsingSessionSimulator(_small_config(5), staples_cache_size=2)
    sim._staples_for(1)
    sim._staples_for(2)
    sim._staples_for(1)  # refresh rank 1
    sim._staples_for(3)  # evicts rank 2
    assert set(sim._staples_cache) == {1, 3}


def test_staples_cache_size_validated():
    with pytest.raises(SimulationError):
        BrowsingSessionSimulator(_small_config(5), staples_cache_size=0)
