"""Delta-distribution churn: differential, monotonicity and metering.

``--distribution delta`` replaces the full-refresh filter shipment with
versioned ``repro.delta/v1`` updates. Because every delta decision lives
in the shared :class:`ChurnCohortState`, the columnar engine and the
scalar reference must stay full-result identical in delta mode for free
— and the whole point of the protocol, strictly fewer cumulative bytes
on the update channel than re-shipping full images, must hold at every
refresh interval.
"""

import dataclasses

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.webmodel.churn import ChurnConfig, ChurnEngine
from repro.webmodel.churn_columnar import (
    ChurnCohortConfig,
    run_churn_cohort,
)
from repro.webmodel.churn_reference import run_churn_cohort_reference


def _cfg(distribution, refresh_every=2, steps=6, seed=11, **world_kw):
    world = ChurnConfig(
        steps=steps,
        seed=seed,
        payload_refresh_every=refresh_every,
        distribution=distribution,
        **world_kw,
    )
    return ChurnCohortConfig(
        world=world, num_clients=12, handshakes_per_client=2
    )


class TestConfigValidation:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(SimulationError, match="distribution"):
            _cfg("gossip")

    def test_fleet_engine_rejects_delta(self):
        # The per-handshake fleet engine has no publisher wiring; only
        # the cohort engines model the update channel.
        with pytest.raises(SimulationError, match="cohort"):
            ChurnEngine(ChurnConfig(steps=2, distribution="delta"))

    def test_fleet_engine_accepts_full(self):
        ChurnEngine(ChurnConfig(steps=2, distribution="full"))


class TestDifferential:
    @pytest.mark.parametrize("refresh_every", [1, 2, 4])
    def test_columnar_matches_scalar_in_delta_mode(self, refresh_every):
        cfg = _cfg("delta", refresh_every=refresh_every)
        assert run_churn_cohort(cfg) == run_churn_cohort_reference(cfg)

    def test_delta_changes_only_distribution_bytes(self):
        # The advertised payloads are byte-identical either way — the
        # distribution knob must not perturb handshakes, retries, events
        # or wire bytes, only the update-channel accounting.
        full = run_churn_cohort(_cfg("full"))
        delta = run_churn_cohort(_cfg("delta"))
        assert full.events == delta.events
        strip = lambda s: dataclasses.replace(s, distribution_bytes=0)
        assert [strip(s) for s in full.steps] == [
            strip(s) for s in delta.steps
        ]


class TestBytesOnWire:
    @pytest.mark.parametrize("refresh_every", [1, 2, 4, 8])
    def test_delta_strictly_undercuts_full(self, refresh_every):
        full = run_churn_cohort(_cfg("full", refresh_every=refresh_every))
        delta = run_churn_cohort(_cfg("delta", refresh_every=refresh_every))
        assert 0 < delta.total_distribution_bytes
        assert delta.total_distribution_bytes < full.total_distribution_bytes

    def test_distribution_bytes_metered(self):
        with obs.scoped() as reg:
            result = run_churn_cohort(_cfg("delta"))
        assert (
            reg.counter("webmodel.churn.distribution_bytes")
            == result.total_distribution_bytes
        )
        assert reg.counter("amq.delta.publishes") > 0
        assert reg.counter("amq.delta.patches_applied") > 0

    def test_full_mode_pays_framed_image_per_refresh(self):
        from repro.amq.delta import delta_overhead_bytes

        result = run_churn_cohort(_cfg("full", refresh_every=1, steps=3))
        # Every client refreshes every epoch in full mode; each shipment
        # is at least the delta framing plus a non-empty image.
        for step in result.steps:
            assert step.distribution_bytes > delta_overhead_bytes() * 12
