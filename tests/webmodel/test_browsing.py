"""Tests for the Burklen browsing model."""

import pytest

from repro.errors import ConfigurationError
from repro.webmodel.browsing import BrowsingConfig, BrowsingModel


class TestSessionGeneration:
    def test_session_has_visits(self):
        model = BrowsingModel(BrowsingConfig(seed=1))
        visits = model.session(20)
        assert visits
        assert all(v.rank >= 1 for v in visits)

    def test_deterministic_given_seed(self):
        a = BrowsingModel(BrowsingConfig(seed=7)).session(30)
        b = BrowsingModel(BrowsingConfig(seed=7)).session(30)
        assert a == b

    def test_seeds_differ(self):
        a = BrowsingModel(BrowsingConfig(seed=7)).session(30)
        b = BrowsingModel(BrowsingConfig(seed=8)).session(30)
        assert a != b

    def test_first_party_visits_present_per_domain(self):
        model = BrowsingModel(BrowsingConfig(seed=2))
        visits = model.session(25)
        assert sum(1 for v in visits if not v.is_third_party) >= 25

    def test_third_parties_marked(self):
        model = BrowsingModel(BrowsingConfig(seed=2))
        visits = model.session(50)
        assert any(v.is_third_party for v in visits)

    def test_page_indexes_monotone(self):
        model = BrowsingModel(BrowsingConfig(seed=2))
        visits = model.session(10)
        pages = [v.page_index for v in visits]
        assert pages == sorted(pages)

    def test_no_third_parties_when_mean_zero(self):
        model = BrowsingModel(BrowsingConfig(seed=2, third_party_mean=0))
        visits = model.session(30)
        assert not any(v.is_third_party for v in visits)

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            BrowsingModel(BrowsingConfig(third_party_mean=-1))

    def test_domain_names_match_ranking(self):
        model = BrowsingModel(BrowsingConfig(seed=3))
        for visit in model.session(5):
            assert model.ranking.rank_of(visit.domain) == visit.rank


class TestPaperCalibration:
    """§5.3's observable session shape."""

    def test_unique_destinations_near_1950(self):
        """'the simulator loaded secure content from ~1950 unique
        destinations' per 200-domain session (band: 1500-2600)."""
        counts = []
        for seed in (3, 4, 5):
            model = BrowsingModel(BrowsingConfig(seed=seed))
            visits = model.session(200)
            counts.append(len(model.unique_destination_ranks(visits)))
        mean = sum(counts) / len(counts)
        assert 1500 <= mean <= 2600

    def test_unique_destination_order_is_first_contact(self):
        model = BrowsingModel(BrowsingConfig(seed=3))
        visits = model.session(10)
        uniq = model.unique_destination_ranks(visits)
        assert len(uniq) == len(set(uniq))
        assert uniq[0] == visits[0].rank

    def test_pages_follow_pareto_mean(self):
        """Pareto(2.5) with floor 1 has mean ~1.5-1.8 pages/visit."""
        model = BrowsingModel(BrowsingConfig(seed=9, third_party_mean=0))
        visits = model.session(2000)
        pages_per_domain = len(visits) / 2000
        assert 1.3 <= pages_per_domain <= 2.1
