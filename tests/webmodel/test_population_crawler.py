"""Tests for the ICA population model and the Table-2 crawler."""

import pytest

from repro.webmodel.chains import TABLE2_MONTHS
from repro.webmodel.crawler import crawl_all_months, crawl_top_domains
from repro.webmodel.population import ICAPopulation, PopulationConfig


@pytest.fixture(scope="module")
def population():
    return ICAPopulation(PopulationConfig(seed=1))


class TestPopulationStructure:
    def test_universe_size(self, population):
        assert len(population.ica_universe()) == 1400

    def test_assignments_deterministic(self, population):
        for rank in (1, 10, 5000, 500_000):
            assert (
                population.path_for_rank(rank).issuer.name
                == population.path_for_rank(rank).issuer.name
            )
            assert population.depth_for_rank(rank) == population.depth_for_rank(rank)

    def test_depths_follow_mix(self, population):
        mix = TABLE2_MONTHS[population.config.month]
        n = 5000
        counts = {}
        for rank in range(1, n + 1):
            d = min(population.depth_for_rank(rank), 4)
            counts[d] = counts.get(d, 0) + 1
        for depth, expected in enumerate(mix.probabilities()):
            observed = counts.get(depth, 0) / n
            assert observed == pytest.approx(expected, abs=0.03)

    def test_credentials_cached_and_valid(self, population):
        cred1 = population.credential_for_rank(42)
        cred2 = population.credential_for_rank(42)
        assert cred1 is cred2
        cred1.chain.validate(population.hierarchy.trust_store(), at_time=100)

    def test_chain_depth_matches_assignment(self, population):
        for rank in (3, 77, 1234):
            assert (
                population.chain_for_rank(rank).num_icas
                == population.depth_for_rank(rank)
            )

    def test_hot_set_in_paper_range(self, population):
        """Table 2: 220-245 distinct ICAs in the top 10K."""
        hot = population.hot_ica_certificates()
        assert 200 <= len(hot) <= 270

    def test_hot_set_subset_of_universe(self, population):
        universe = {c.fingerprint() for c in population.ica_universe()}
        assert all(c.fingerprint() in universe for c in population.hot_ica_certificates())

    def test_config_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PopulationConfig(tail_uniform_share=1.5)
        with pytest.raises(ConfigurationError):
            PopulationConfig(head_exponent=0.9)


class TestCrawler:
    def test_single_month_row(self, population):
        stats = crawl_top_domains(population, "Jun. '22", num_domains=4000)
        assert stats.total_servers == 4000
        assert abs(sum(stats.share_by_depth.values()) - 1.0) < 1e-9
        assert stats.share(1) > stats.share(3)

    def test_distinct_icas_in_range(self, population):
        stats = crawl_top_domains(population, "Jun. '22", num_domains=10_000)
        assert 200 <= stats.unique_icas <= 270

    def test_months_vary(self, population):
        rows = crawl_all_months(population, num_domains=3000)
        assert len(rows) == len(TABLE2_MONTHS)
        jan = next(r for r in rows if r.month == "Jan. '22")
        feb = next(r for r in rows if r.month == "Feb. '22")
        # Jan has far more 0-ICA chains than Feb (30.8% vs 14.4%).
        assert jan.share(0) > feb.share(0) + 0.08

    def test_shares_track_table2(self, population):
        for month, mix in list(TABLE2_MONTHS.items())[:3]:
            stats = crawl_top_domains(population, month, num_domains=4000)
            for depth, expected in enumerate(mix.probabilities()):
                assert stats.share(depth) == pytest.approx(expected, abs=0.03), (
                    month,
                    depth,
                )

    def test_as_row_format(self, population):
        stats = crawl_top_domains(population, "Jun. '22", num_domains=1000)
        row = stats.as_row()
        assert row[0] == "Jun. '22"
        assert len(row) == 8

    def test_month_view_does_not_mutate(self, population):
        original_mix = population._mix
        crawl_top_domains(population, "Jan. '22", num_domains=500)
        assert population._mix is original_mix
