"""Differential pinning of the columnar cohort engine.

The contract (``repro.webmodel.cohort`` docstring): for any cohort
config, the columnar engine and the scalar reference — N independent
per-handshake TLS machines consuming the same counter-based RNG streams
(:mod:`repro.webmodel.cohort_reference`) — reduce to *equal*
:class:`~repro.webmodel.cohort.CohortResult` objects: aggregate
suppression-byte stats, retry counts (all ``RetryCause.SERVER_SUPPRESSION_FP``
by construction; the reference raises on any other cause), per-user
handshake-outcome histograms, and the per-handshake RTT column.

The suite drives that over (cohort size, chain mix/month, filter family,
payload refresh cadence, seed) with Hypothesis, on the reduced shared PKI
from ``tests/_fixtures.py`` — a 160-ICA universe with a 40-ICA hot head,
so tail destinations routinely present unknown ICAs and, at the high fpp
values sampled here, real false-positive retries (the divergent-user
slow path) are exercised, not just the all-fast-path case.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests._fixtures import reduced_population_config, shared_population

np = pytest.importorskip("numpy")

from repro.webmodel.cohort import (  # noqa: E402
    CohortConfig,
    cohort_json_doc,
    run_cohort,
)
from repro.webmodel.cohort_reference import run_cohort_reference  # noqa: E402

MONTHS = ("Jun. '22", "Jan. '22")
#: Small hot head => probes against unknown-ICA paths are common; the
#: sampled fpp values then make deterministic per-fingerprint false
#: positives likely enough to hit the divergent replay path regularly.
HOT_TOP_N = 40


def _population(month):
    return shared_population(reduced_population_config(month=month))


def _config(**overrides):
    month = overrides.pop("month", MONTHS[0])
    base = dict(
        num_users=6,
        handshakes_per_user=4,
        hot_top_n=HOT_TOP_N,
        fpp=0.25,
        population=reduced_population_config(month=month),
    )
    base.update(overrides)
    return CohortConfig(**base)


def outcome_histogram(result):
    """Per-user handshake-outcome histogram: multiset of
    (completed, completed_after_retry) pairs across the cohort."""
    completed = result.columns.handshakes - result.columns.retries
    return Counter(zip(completed.tolist(), result.columns.retries.tolist()))


def assert_equivalent(config):
    population = _population(config.population.month)
    engine = run_cohort(config, jobs=1, population=population)
    reference = run_cohort_reference(config, population=population)
    # Full equality: config, every per-user column, the RTT column and
    # the aggregate stats (including suppression bytes and retry counts).
    assert engine == reference
    assert outcome_histogram(engine) == outcome_histogram(reference)
    assert cohort_json_doc(engine) == cohort_json_doc(reference)
    return engine


cohort_configs = st.builds(
    _config,
    num_users=st.integers(min_value=1, max_value=14),
    handshakes_per_user=st.integers(min_value=1, max_value=5),
    filter_kind=st.sampled_from(("cuckoo", "bloom", "vacuum")),
    fpp=st.sampled_from((0.25, 0.02)),
    payload_refresh_every=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=3),
    month=st.sampled_from(MONTHS),
    block_users=st.sampled_from((3, 16_384)),
)


@given(config=cohort_configs)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_cohort_matches_scalar_reference(config):
    assert_equivalent(config)


@pytest.mark.parametrize("filter_kind", ["cuckoo", "bloom", "vacuum"])
def test_fp_retries_equal_per_filter_family(filter_kind):
    """A deterministic high-fpp cohort per family that *must* take the
    divergent replay path — guards the Hypothesis suite against passing
    vacuously on all-fast-path draws."""
    config = _config(
        num_users=40,
        handshakes_per_user=6,
        filter_kind=filter_kind,
        fpp=0.25,
        seed=1,
    )
    engine = assert_equivalent(config)
    assert engine.stats.retries > 0
    assert engine.stats.divergent_users > 0
    assert engine.stats.learned_icas > 0
    assert engine.stats.completed_after_retry == engine.stats.retries


def test_payload_refresh_cohort_matches_reference():
    """Stale-payload refresh points are protocol state shared by both
    engines; a refreshing cohort with retries must still agree exactly."""
    config = _config(
        num_users=30, handshakes_per_user=6, payload_refresh_every=2, seed=2
    )
    engine = assert_equivalent(config)
    assert engine.stats.payload_refreshes > 0


def test_retry_accounting_is_internally_consistent():
    """Every retry is a server-suppression false positive (the reference
    raises on any other RetryCause), pays a full-chain resend, and the
    affected user is flagged divergent."""
    config = _config(num_users=40, handshakes_per_user=6, seed=1)
    engine = assert_equivalent(config)
    stats = engine.stats
    assert stats.false_positives == stats.retries
    assert stats.attempts == stats.handshakes + stats.retries
    assert stats.icas_sent_total >= stats.icas_sent_first
    assert stats.ica_bytes_sent_total >= stats.ica_bytes_sent_first
    retried = engine.columns.retries > 0
    assert bool(np.all(engine.columns.divergent[retried]))
    # Suppression-byte ledger closes: first-flight sent + suppressed
    # equals total encountered.
    assert (
        stats.ica_bytes_sent_first + stats.ica_bytes_suppressed_first
        == stats.ica_bytes_total
    )


def test_session_reuse_is_dedup_by_destination():
    """Repeat draws of a rank reuse the session in both engines: the
    handshake count equals the number of *distinct* ranks per user."""
    config = _config(num_users=12, handshakes_per_user=5, seed=3)
    engine = assert_equivalent(config)
    stats = engine.stats
    assert stats.destinations == config.num_users * config.handshakes_per_user
    assert stats.handshakes + stats.session_reuse == stats.destinations
    assert len(engine.rtt_s) == stats.handshakes
