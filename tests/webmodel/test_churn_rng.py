"""The churn cohort's counter-based site stream: layout and invariances.

The columnar engine draws one epoch's sites as a (clients, slots) block;
the scalar reference consumes the same stream row by row.  These tests
pin the properties that make that safe: the counter layout is sharding-
invariant (any sub-range of clients yields the values of the full
block), epochs occupy disjoint counter ranges, draws are in range, and
the stream key set is derived once and memoized in the shippable cache
so every worker process agrees on it.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.runtime import artifacts  # noqa: E402
from repro.runtime.parallel import derive_seed  # noqa: E402
from repro.webmodel.churn_columnar import (  # noqa: E402
    SITE_STREAM,
    churn_stream_keys,
    epoch_site_column,
    epoch_site_counters,
)
from repro.webmodel.cohortrng import (  # noqa: E402
    block_counters,
    stream_key,
    uniforms,
    user_counters,
)


def test_epoch_counters_are_sharding_invariant():
    """Any client sub-range of an epoch block equals the corresponding
    slice of the full block — the property that lets the scalar reference
    iterate rows while the columnar engine takes the whole matrix."""
    full = epoch_site_counters(step=3, num_clients=20, slots=4)
    for start, stop in ((0, 20), (0, 7), (7, 13), (19, 20)):
        sub = block_counters(3 * 20 + start, 3 * 20 + stop, 4)
        assert np.array_equal(sub, full[start:stop])
    for client in range(20):
        row = user_counters(3 * 20 + client, 4)
        assert np.array_equal(row, full[client])


def test_epoch_counter_ranges_are_disjoint():
    """Epoch t's virtual users are [t*N, (t+1)*N): consecutive epochs
    never reuse a counter, so no draw correlates across epochs."""
    n, slots = 10, 3
    seen = set()
    for step in range(4):
        counters = epoch_site_counters(step, n, slots)
        values = set(counters.ravel().tolist())
        assert len(values) == n * slots
        assert not (values & seen)
        seen |= values


def test_site_column_matches_scalar_draws_and_stays_in_range():
    key = churn_stream_keys(123)[SITE_STREAM]
    n, slots, num_sites = 16, 3, 7
    column = epoch_site_column(key, step=2, num_clients=n, slots=slots,
                               num_sites=num_sites)
    assert column.shape == (n, slots)
    assert column.min() >= 0
    assert column.max() < num_sites
    counters = epoch_site_counters(2, n, slots)
    for client in range(n):
        draws = uniforms(key, counters[client])
        scalar = [
            min(int(draws[s] * num_sites), num_sites - 1) for s in range(slots)
        ]
        assert scalar == column[client].tolist()


def test_stream_keys_are_memoized_and_derived_from_namespace():
    artifacts.COHORT_STREAMS.get(("churn-streams", 77))  # warm stats only
    keys = churn_stream_keys(77)
    assert keys[SITE_STREAM] == stream_key(SITE_STREAM, 77)
    assert keys[SITE_STREAM] == derive_seed(SITE_STREAM, 77, bits=64)
    # Second call returns the cached entry (identity, not just equality).
    assert churn_stream_keys(77) is keys
    assert ("churn-streams", 77) in dict(artifacts.COHORT_STREAMS.export())


def test_distinct_seeds_give_distinct_site_streams():
    a = churn_stream_keys(0)[SITE_STREAM]
    b = churn_stream_keys(1)[SITE_STREAM]
    assert a != b
    col_a = epoch_site_column(a, 0, 8, 2, 6)
    col_b = epoch_site_column(b, 0, 8, 2, 6)
    assert not np.array_equal(col_a, col_b)
