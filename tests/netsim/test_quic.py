"""Tests for the QUIC amplification-protection model."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.quic import (
    AMPLIFICATION_FACTOR,
    QUIC_MIN_INITIAL_BYTES,
    QUICConfig,
    quic_extra_flights,
    quic_flights_needed,
    quic_handshake_duration_s,
)
from repro.netsim.tcp import flights_needed


class TestAmplificationLimit:
    def test_empty_flight(self):
        assert quic_flights_needed(0, 300) == 0

    def test_small_flight_one_rtt(self):
        # 3 x 1200 = 3600 bytes of pre-validation budget.
        assert quic_flights_needed(3600, 300) == 1

    def test_one_byte_over_budget(self):
        assert quic_flights_needed(3601, 300) == 2

    def test_bigger_client_hello_raises_budget(self):
        """The filter extension enlarges the Initial, which enlarges the
        server's amplification budget — the filter partially pays for
        itself in QUIC."""
        tight = quic_flights_needed(5000, 300)
        padded = quic_flights_needed(5000, 1800)  # CH grew past 1200
        assert padded < tight

    def test_quic_feels_pq_penalty_earlier_than_tcp(self):
        """Kampanakis-Kallitsis's point: a flight that fits TCP's 14.6 KB
        initcwnd can still stall QUIC's 3.6 KB amplification budget."""
        flight = 9_000  # e.g. Falcon-512 2-ICA chain
        assert flights_needed(flight) == 1
        assert quic_flights_needed(flight, 300) == 2

    def test_budget_capped_by_initcwnd(self):
        # A huge ClientHello cannot raise the first flight beyond cwnd.
        assert quic_flights_needed(30_000, 14_000) == quic_flights_needed(
            30_000, 20_000
        )

    def test_monotone_in_flight_size(self):
        values = [quic_flights_needed(n, 900) for n in range(1, 200_000, 5000)]
        assert values == sorted(values)

    def test_extra_flights(self):
        assert quic_extra_flights(1000, 300) == 0
        assert quic_extra_flights(50_000, 300) >= 2


class TestDurations:
    def test_no_tcp_connect_round_trip(self):
        """QUIC's 1-RTT handshake vs TCP+TLS's 2: same small flight."""
        from repro.netsim.tcp import handshake_duration_s

        quic = quic_handshake_duration_s(900, 3000, 0.1)
        tcp = handshake_duration_s(900, 3000, 0.1)
        assert quic == pytest.approx(0.1)
        assert tcp == pytest.approx(0.2)

    def test_cpu_added(self):
        base = quic_handshake_duration_s(900, 3000, 0.1)
        assert quic_handshake_duration_s(900, 3000, 0.1, crypto_cpu_s=0.05) == (
            pytest.approx(base + 0.05)
        )

    def test_suppression_saves_quic_round_trips(self):
        full = quic_handshake_duration_s(900, 31_000, 0.05)  # dilithium3 2-ICA
        suppressed = quic_handshake_duration_s(900, 17_000, 0.05)
        assert suppressed < full


class TestConfig:
    def test_defaults(self):
        cfg = QUICConfig()
        assert cfg.min_initial_bytes == QUIC_MIN_INITIAL_BYTES
        assert cfg.amplification_factor == AMPLIFICATION_FACTOR

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QUICConfig(amplification_factor=0)
        with pytest.raises(ConfigurationError):
            QUICConfig(min_initial_bytes=-1)
