"""Tests for the clock, event loop and link."""

import pytest

from repro.errors import SimulationError
from repro.netsim.clock import SimClock
from repro.netsim.events import EventLoop
from repro.netsim.link import Link


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == 1.5

    def test_no_backwards(self):
        clock = SimClock(10)
        with pytest.raises(SimulationError):
            clock.advance(-1)
        with pytest.raises(SimulationError):
            clock.advance_to(5)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(3, lambda: order.append("c"))
        loop.schedule(1, lambda: order.append("a"))
        loop.schedule(2, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.clock.now == 3

    def test_fifo_tiebreak(self):
        loop = EventLoop()
        order = []
        for tag in "abc":
            loop.schedule(1.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        hits = []

        def ping():
            hits.append(loop.clock.now)
            if len(hits) < 5:
                loop.schedule(1, ping)

        loop.schedule(0, ping)
        loop.run()
        assert hits == [0, 1, 2, 3, 4]

    def test_run_until(self):
        loop = EventLoop()
        hits = []
        for t in (1, 2, 3, 4):
            loop.schedule(t, lambda t=t: hits.append(t))
        loop.run(until=2.5)
        assert hits == [1, 2]
        assert loop.pending == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1, lambda: None)

    def test_runaway_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.001, forever)

        loop.schedule(0, forever)
        with pytest.raises(SimulationError):
            loop.run(max_events=1000)

    def test_processed_counter(self):
        loop = EventLoop()
        loop.schedule(1, lambda: None)
        loop.run()
        assert loop.processed == 1


class TestLink:
    def test_delivery_time(self):
        loop = EventLoop()
        link = Link(loop, rtt_s=0.1, bandwidth_bps=8_000_000)  # 1 MB/s
        done = []
        link.send(1_000_000, lambda: done.append(loop.clock.now))
        loop.run()
        assert done == [pytest.approx(0.05 + 1.0)]
        assert link.bytes_delivered == 1_000_000

    def test_lossless_by_default(self):
        loop = EventLoop()
        link = Link(loop, rtt_s=0.01)
        delivered = []
        for _ in range(50):
            link.send(100, lambda: delivered.append(1))
        loop.run()
        assert len(delivered) == 50
        assert link.packets_dropped == 0

    def test_loss_rate_drops_packets(self):
        loop = EventLoop()
        link = Link(loop, rtt_s=0.01, loss_rate=0.5, seed=3)
        delivered, dropped = [], []
        for _ in range(400):
            link.send(100, lambda: delivered.append(1), lambda: dropped.append(1))
        loop.run()
        assert len(delivered) + len(dropped) == 400
        assert 120 <= len(dropped) <= 280  # ~50%

    def test_invalid_parameters(self):
        loop = EventLoop()
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Link(loop, rtt_s=-1)
        with pytest.raises(ConfigurationError):
            Link(loop, bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            Link(loop, loss_rate=1.0)
