"""Tests for RTT samplers and metric collectors."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.netsim.latency import ConstantRTT, EmpiricalRTT, LogNormalRTT
from repro.netsim.metrics import ByteCounter, LatencyCollector, percentile, summarize


class TestSamplers:
    def test_constant(self):
        sampler = ConstantRTT(0.05)
        assert all(sampler.sample() == 0.05 for _ in range(10))

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantRTT(-0.1)

    def test_lognormal_median(self):
        sampler = LogNormalRTT(median_s=0.04, sigma=0.5, seed=1)
        samples = sorted(sampler.sample() for _ in range(4000))
        median = samples[len(samples) // 2]
        assert 0.035 <= median <= 0.046

    def test_lognormal_floor(self):
        sampler = LogNormalRTT(median_s=0.003, sigma=2.0, seed=1)
        assert all(sampler.sample() >= 0.002 for _ in range(2000))

    def test_lognormal_heavy_tail(self):
        sampler = LogNormalRTT(median_s=0.04, sigma=0.5, seed=1)
        samples = [sampler.sample() for _ in range(4000)]
        assert max(samples) > 3 * 0.04

    def test_lognormal_deterministic_by_seed(self):
        a = LogNormalRTT(0.04, 0.5, seed=9)
        b = LogNormalRTT(0.04, 0.5, seed=9)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_lognormal_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalRTT(median_s=0)
        with pytest.raises(ConfigurationError):
            LogNormalRTT(median_s=0.04, sigma=0)

    def test_empirical_resamples_population(self):
        sampler = EmpiricalRTT([0.01, 0.02, 0.03], seed=1)
        assert all(sampler.sample() in (0.01, 0.02, 0.03) for _ in range(50))

    def test_empirical_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalRTT([])
        with pytest.raises(ConfigurationError):
            EmpiricalRTT([0.01, -0.01])


class TestByteCounter:
    def test_accumulates_by_category(self):
        counter = ByteCounter()
        counter.add("ica", 100)
        counter.add("ica", 50)
        counter.add("leaf", 7)
        assert counter.get("ica") == 150
        assert counter.get("missing") == 0
        assert counter.total() == 157
        assert counter.as_dict() == {"ica": 150, "leaf": 7}


class TestSummaries:
    def test_percentile_interpolation(self):
        values = [0.0, 1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.25) == 1.0
        assert percentile(values, 0.1) == pytest.approx(0.4)

    def test_percentile_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        # Sample stdev: sqrt(sum((v-2.5)^2) / 3) = sqrt(5/3).
        assert s.stdev == pytest.approx(math.sqrt(5.0 / 3.0))

    def test_summarize_empty(self):
        assert summarize([]).count == 0
        assert math.isnan(summarize([]).mean)

    def test_summarize_single_sample_has_zero_stdev(self):
        s = summarize([3.25])
        assert s.count == 1
        assert s.mean == 3.25
        assert s.median == 3.25
        assert s.minimum == 3.25
        assert s.maximum == 3.25
        assert s.stdev == 0.0

    def test_summarize_two_samples_uses_bessel_correction(self):
        s = summarize([1.0, 3.0])
        assert s.count == 2
        assert s.mean == 2.0
        # /(n-1) = /1: variance 2.0, not the population 1.0.
        assert s.stdev == pytest.approx(math.sqrt(2.0))

    def test_percentile_two_samples_interpolates(self):
        assert percentile([1.0, 3.0], 0.5) == pytest.approx(2.0)
        assert percentile([1.0, 3.0], 0.0) == 1.0
        assert percentile([1.0, 3.0], 1.0) == 3.0

    def test_collector_labels_and_summary(self):
        c = LatencyCollector()
        c.record("pq", 0.2)
        c.record("pq", 0.4)
        c.record("classical", 0.1)
        assert c.labels() == ["classical", "pq"]
        assert c.summary("pq").mean == pytest.approx(0.3)
        assert c.samples("pq") == [0.2, 0.4]
        assert c.summary("nothing").count == 0
