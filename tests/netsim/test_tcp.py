"""Tests for the TCP flight model — the paper's latency mechanism."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.tcp import (
    DEFAULT_INITCWND_SEGMENTS,
    DEFAULT_MSS,
    TCPConfig,
    extra_flights,
    flights_needed,
    handshake_duration_s,
    time_to_first_byte_s,
    transfer_time_s,
)


class TestConfig:
    def test_default_window_near_14_5_kb(self):
        """§3: '10 MSS ~ 14.5KB'."""
        assert TCPConfig().initcwnd_bytes == 14600

    def test_rejects_tiny_mss(self):
        with pytest.raises(ConfigurationError):
            TCPConfig(mss=100)

    def test_rejects_zero_window(self):
        with pytest.raises(ConfigurationError):
            TCPConfig(initcwnd_segments=0)


class TestFlights:
    def test_zero_payload(self):
        assert flights_needed(0) == 0

    def test_fits_first_window(self):
        assert flights_needed(14600) == 1
        assert flights_needed(1) == 1

    def test_one_byte_over(self):
        assert flights_needed(14601) == 2

    def test_slow_start_doubling(self):
        # Cumulative capacity: 14600, 43800, 102200, 219000 ...
        assert flights_needed(43800) == 2
        assert flights_needed(43801) == 3
        assert flights_needed(102200) == 3
        assert flights_needed(102201) == 4

    def test_monotone_in_payload(self):
        values = [flights_needed(n) for n in range(0, 200_000, 1000)]
        assert values == sorted(values)

    def test_larger_window_fewer_flights(self):
        payload = 40_000
        small = flights_needed(payload, TCPConfig(initcwnd_segments=4))
        large = flights_needed(payload, TCPConfig(initcwnd_segments=32))
        assert large < small

    def test_extra_flights(self):
        assert extra_flights(1000) == 0
        assert extra_flights(20_000) == 1

    def test_paper_table1_crossings(self):
        """Table 1's conclusion: Falcon-512 auth data stays within the
        window up to 3 ICAs; Dilithium-2 is marginal at a single ICA;
        higher levels overflow."""
        falcon3 = 7900  # Falcon-512, three ICAs (paper row)
        dilithium2_1 = 13590
        dilithium5_1 = 25450
        assert extra_flights(falcon3) == 0
        assert extra_flights(dilithium2_1) == 0
        assert extra_flights(dilithium5_1) >= 1


class TestTimings:
    def test_transfer_time_zero_payload(self):
        assert transfer_time_s(0, 0.1) == 0.0

    def test_single_flight_transfer_is_half_rtt(self):
        assert transfer_time_s(1000, 0.1) == pytest.approx(0.05)

    def test_two_flight_transfer(self):
        assert transfer_time_s(20_000, 0.1) == pytest.approx(0.15)

    def test_handshake_baseline_two_rtt(self):
        """Connect (1 RTT) + hello exchange (1 RTT) when nothing
        overflows."""
        assert handshake_duration_s(300, 4000, 0.1) == pytest.approx(0.2)

    def test_handshake_overflow_adds_rtt(self):
        base = handshake_duration_s(300, 4000, 0.1)
        big = handshake_duration_s(300, 40_000, 0.1)
        assert big == pytest.approx(base + 0.1)

    def test_oversized_client_hello_costs_too(self):
        base = handshake_duration_s(300, 4000, 0.1)
        fat_ch = handshake_duration_s(20_000, 4000, 0.1)
        assert fat_ch == pytest.approx(base + 0.1)

    def test_crypto_cpu_added_linearly(self):
        slow = handshake_duration_s(300, 4000, 0.1, crypto_cpu_s=0.3)
        fast = handshake_duration_s(300, 4000, 0.1, crypto_cpu_s=0.0)
        assert slow - fast == pytest.approx(0.3)

    def test_no_tcp_connect_option(self):
        with_conn = handshake_duration_s(300, 4000, 0.1)
        without = handshake_duration_s(300, 4000, 0.1, tcp_connect=False)
        assert with_conn - without == pytest.approx(0.1)

    def test_ttfb_adds_one_rtt(self):
        hs = handshake_duration_s(300, 4000, 0.1)
        assert time_to_first_byte_s(300, 4000, 0.1) == pytest.approx(hs + 0.1)

    def test_latency_grows_linearly_with_rtt(self):
        """The Fig. 5-center premise: extra latency of larger auth data is
        linear in RTT with slope = extra flights."""
        for rtt in (0.02, 0.05, 0.2):
            small = handshake_duration_s(300, 4_000, rtt)
            big = handshake_duration_s(300, 120_000, rtt)
            assert (big - small) == pytest.approx(
                extra_flights(120_000) * rtt
            )
