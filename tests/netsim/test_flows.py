"""Cross-validation: packet-level simulation vs closed-form flight model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netsim.flows import simulate_transfer
from repro.netsim.tcp import TCPConfig, flights_needed


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize(
        "payload",
        [1, 1000, 14_600, 14_601, 30_000, 43_800, 43_801, 100_000, 121_906],
    )
    def test_flight_counts_match(self, payload):
        result = simulate_transfer(payload)
        assert result.flights == flights_needed(payload)

    @given(payload=st.integers(min_value=1, max_value=300_000))
    @settings(max_examples=40, deadline=None)
    def test_flight_counts_match_property(self, payload):
        assert simulate_transfer(payload).flights == flights_needed(payload)

    @pytest.mark.parametrize("initcwnd", [4, 10, 32])
    def test_agreement_across_windows(self, initcwnd):
        config = TCPConfig(initcwnd_segments=initcwnd)
        for payload in (5_000, 20_000, 80_000):
            assert simulate_transfer(payload, config=config).flights == (
                flights_needed(payload, config)
            )

    def test_completion_time_tracks_flights(self):
        rtt = 0.08
        result = simulate_transfer(30_000, rtt_s=rtt)
        # Last byte lands after (flights - 1) full RTTs + one half RTT
        # (+ serialization, negligible at 1 Gb/s); the sender's final ACK
        # arrives half an RTT after that.
        expected = (result.flights - 1) * rtt + rtt / 2
        assert result.last_byte_time_s == pytest.approx(expected, rel=0.05)
        assert result.completion_time_s == pytest.approx(
            expected + rtt / 2, rel=0.05
        )


class TestMechanics:
    def test_zero_payload(self):
        result = simulate_transfer(0)
        assert result.flights == 0
        assert result.completion_time_s == 0

    def test_segment_count(self):
        result = simulate_transfer(14_600)
        assert result.segments_sent == 10  # exactly the initial window

    def test_lossless_has_no_retransmissions(self):
        assert simulate_transfer(50_000).retransmissions == 0

    def test_loss_triggers_retransmission_and_completes(self):
        result = simulate_transfer(40_000, loss_rate=0.3, seed=5)
        assert result.retransmissions >= 1
        assert result.payload_bytes == 40_000

    def test_loss_costs_time(self):
        clean = simulate_transfer(40_000, seed=5)
        lossy = simulate_transfer(40_000, loss_rate=0.3, seed=5)
        assert lossy.completion_time_s > clean.completion_time_s

    def test_pathological_loss_raises(self):
        with pytest.raises(SimulationError):
            simulate_transfer(40_000, loss_rate=0.995, seed=1)

    def test_negative_payload_rejected(self):
        with pytest.raises(SimulationError):
            simulate_transfer(-1)


class TestPaperScenario:
    def test_sphincs_flight_timeline(self):
        """The Fig. 1 SPHINCS+-128f server flight (121906 B) needs 4
        flights under the default window; the packet-level sim agrees and
        produces the same timeline the latency model predicts."""
        rtt = 0.05
        result = simulate_transfer(121_906, rtt_s=rtt)
        assert result.flights == 4
        assert result.last_byte_time_s == pytest.approx(3.5 * rtt, rel=0.05)

    def test_suppressed_flight_saves_wall_time(self):
        full = simulate_transfer(121_906, rtt_s=0.05)
        suppressed = simulate_transfer(69_000, rtt_s=0.05)  # leaf+staples only
        assert suppressed.last_byte_time_s < full.last_byte_time_s
