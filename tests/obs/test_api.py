"""Module-level repro.obs API: enable/disable, spans, scoped capture."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    yield
    obs.disable()


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.registry() is None

    def test_enable_is_idempotent(self):
        reg = obs.enable()
        reg.inc("x")
        assert obs.enable() is reg
        assert obs.registry().counter("x") == 1

    def test_disable_drops_registry(self):
        obs.enable().inc("x")
        obs.disable()
        assert obs.registry() is None
        assert obs.snapshot() == {}

    def test_reset_clears_but_keeps_enabled(self):
        obs.enable().inc("x")
        obs.reset()
        assert obs.enabled()
        assert obs.registry().counter("x") == 0


class TestConveniences:
    def test_noops_when_disabled(self):
        obs.inc("x")
        obs.set_gauge("g", 1.0)
        obs.observe("h", 1.0)
        obs.merge({"counters": {("x", ()): 5}})
        assert obs.registry() is None

    def test_record_when_enabled(self):
        reg = obs.enable()
        obs.inc("x", 2)
        obs.set_gauge("g", 1.5)
        obs.observe("h", 0.25)
        assert reg.counter("x") == 2
        assert reg.gauge("g") == 1.5
        assert reg.histogram("h").state()[0] == 1

    def test_merge_when_enabled(self):
        reg = obs.enable()
        obs.merge({"counters": {("x", ()): 5}})
        assert reg.counter("x") == 5


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        a, b = obs.span("s"), obs.span("t")
        assert a is b  # one shared object: zero allocation when disabled
        with a:
            pass
        assert obs.registry() is None

    def test_enabled_span_records_seconds_histogram(self):
        reg = obs.enable()
        with obs.span("phase", (("k", "v"),)):
            pass
        hist = reg.histogram("phase.seconds", (("k", "v"),))
        count, total, minimum, maximum, _ = hist.state()
        assert count == 1
        assert 0.0 <= minimum <= maximum
        assert total >= 0.0

    def test_span_records_on_exception(self):
        reg = obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        assert reg.histogram("failing.seconds").state()[0] == 1


class TestScoped:
    def test_isolates_from_enabled_registry(self):
        outer = obs.enable()
        outer.inc("before")
        with obs.scoped() as scope:
            obs.inc("inner")
            assert obs.registry() is scope
        assert obs.registry() is outer
        assert outer.counter("inner") == 0
        assert scope.counter("inner") == 1
        assert scope.counter("before") == 0

    def test_works_when_disabled(self):
        assert not obs.enabled()
        with obs.scoped() as scope:
            obs.inc("inner")
        assert obs.registry() is None
        assert scope.counter("inner") == 1

    def test_restores_on_exception(self):
        outer = obs.enable()
        with pytest.raises(RuntimeError):
            with obs.scoped():
                raise RuntimeError
        assert obs.registry() is outer

    def test_nested_scopes(self):
        with obs.scoped() as a:
            obs.inc("a")
            with obs.scoped() as b:
                obs.inc("b")
            obs.inc("a")
        assert a.counter("a") == 2 and a.counter("b") == 0
        assert b.counter("b") == 1
