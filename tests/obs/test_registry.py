"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs.registry import RESERVOIR_CAP, Histogram, MetricsRegistry


class TestCounters:
    def test_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("ops", 1, (("backend", "cuckoo"),))
        reg.inc("ops", 2, (("backend", "xor"),))
        reg.inc("ops", 3)
        assert reg.counter("ops", (("backend", "cuckoo"),)) == 1
        assert reg.counter("ops", (("backend", "xor"),)) == 2
        assert reg.counter("ops") == 3

    def test_counters_with_name(self):
        reg = MetricsRegistry()
        reg.inc("ops", 1, (("op", "insert"),))
        reg.inc("ops", 2, (("op", "contains"),))
        reg.inc("other")
        assert reg.counters_with_name("ops") == {
            (("op", "insert"),): 1,
            (("op", "contains"),): 2,
        }

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.5)
        reg.set_gauge("g", 2.5)
        assert reg.gauge("g") == 2.5


class TestHistograms:
    def test_observe_tracks_count_total_min_max(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.observe("h", v)
        count, total, minimum, maximum, samples = reg.histogram("h").state()
        assert count == 3
        assert total == pytest.approx(6.0)
        assert (minimum, maximum) == (1.0, 3.0)
        assert samples == [3.0, 1.0, 2.0]

    def test_reservoir_is_bounded_and_deterministic(self):
        h = Histogram()
        for i in range(RESERVOIR_CAP + 100):
            h.observe(float(i))
        count, total, minimum, maximum, samples = h.state()
        assert count == RESERVOIR_CAP + 100
        assert len(samples) == RESERVOIR_CAP
        # First-N reservoir: deterministic, keeps the leading samples.
        assert samples == [float(i) for i in range(RESERVOIR_CAP)]
        assert maximum == float(RESERVOIR_CAP + 99)


class TestSnapshotMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 2)
        b.inc("x", 3)
        b.inc("y", 1, (("k", "v"),))
        a.merge(b.snapshot())
        assert a.counter("x") == 5
        assert a.counter("y", (("k", "v"),)) == 1

    def test_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b.snapshot())
        assert a.gauge("g") == 9.0

    def test_histograms_append_in_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        b.observe("h", 0.5)
        a.merge(b.snapshot())
        count, total, minimum, maximum, samples = a.histogram("h").state()
        assert count == 3
        assert total == pytest.approx(3.5)
        assert (minimum, maximum) == (0.5, 2.0)
        assert samples == [1.0, 2.0, 0.5]

    def test_merge_is_not_affected_by_later_source_mutation(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("x")
        snap = b.snapshot()
        b.inc("x", 100)
        a.merge(snap)
        assert a.counter("x") == 1

    def test_merge_order_independence_for_counters(self):
        parts = []
        for value in (1, 2, 3):
            reg = MetricsRegistry()
            reg.inc("x", value)
            parts.append(reg.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in parts:
            forward.merge(snap)
        for snap in reversed(parts):
            backward.merge(snap)
        assert forward.counter("x") == backward.counter("x") == 6

    def test_clear_and_len(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1.0)
        reg.observe("c", 1.0)
        assert len(reg) == 3
        reg.clear()
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestEventCount:
    def test_every_recording_call_counts_once(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 50)  # value-weighted inc is still one event
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        assert reg.events == 4

    def test_events_are_process_local(self):
        # Not in snapshots, not added by merge, reset by clear.
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("x")
        snap = b.snapshot()
        assert "events" not in snap
        a.merge(snap)
        assert a.events == 0
        b.clear()
        assert b.events == 0
