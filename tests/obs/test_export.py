"""Exporters and the checked-in schema: JSON, Prometheus, validation."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.export import (
    deterministic_counters,
    to_json_doc,
    to_json_text,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.schema import load_schema, validate_export, validation_errors


@pytest.fixture
def sample_snapshot():
    reg = MetricsRegistry()
    reg.inc("tls.handshake.runs", 7)
    reg.inc("amq.ops", 42, (("backend", "cuckoo"), ("op", "insert")))
    reg.inc("runtime.artifacts.hits", 3, (("cache", "staples"),))
    reg.inc("webmodel.churn.steps", 24)
    reg.inc("webmodel.churn.handshakes", 192)
    reg.inc("webmodel.churn.icas_revoked", 9)
    reg.inc("webmodel.churn.stale_retries", 4)
    reg.inc("webmodel.churn.fallbacks", 1)
    reg.inc("webmodel.cohort.users", 40)
    reg.inc("webmodel.cohort.handshakes", 228)
    reg.inc("webmodel.cohort.session_reuse", 12)
    reg.inc("webmodel.cohort.retries", 21, (("cause", "server-fp"),))
    reg.inc("webmodel.cohort.false_positives", 21)
    reg.inc("webmodel.cohort.icas_suppressed_first", 220)
    reg.inc("webmodel.cohort.divergent_users", 16)
    reg.set_gauge("experiments.fig5.mean_reduction", 0.73)
    reg.observe("tls.server.flight.seconds", 0.5)
    reg.observe("tls.server.flight.seconds", 1.5)
    reg.observe(
        "webmodel.churn.run.seconds", 2.25, (("filter", "cuckoo"),)
    )
    return reg.snapshot()


class TestJsonExport:
    def test_doc_matches_schema(self, sample_snapshot):
        validate_export(to_json_doc(sample_snapshot))  # does not raise

    def test_entries_are_sorted_and_flat(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        names = [e["name"] for e in doc["counters"]]
        assert names == sorted(names)
        assert doc["gauges"] == [
            {
                "name": "experiments.fig5.mean_reduction",
                "labels": {},
                "value": 0.73,
            }
        ]
        flight, churn = (
            h
            for h in doc["histograms"]
            if h["name"]
            in ("tls.server.flight.seconds", "webmodel.churn.run.seconds")
        )
        assert flight["count"] == 2
        assert flight["sum"] == pytest.approx(2.0)
        assert (flight["min"], flight["max"]) == (0.5, 1.5)
        assert churn["labels"] == {"filter": "cuckoo"}

    def test_equal_registries_export_byte_identical_text(self, sample_snapshot):
        # The serial-vs-parallel CI check diffs files, so text must be stable.
        assert to_json_text(sample_snapshot) == to_json_text(sample_snapshot)
        round_tripped = json.loads(to_json_text(sample_snapshot))
        assert round_tripped == to_json_doc(sample_snapshot)


class TestPrometheusExport:
    def test_counter_rendering(self, sample_snapshot):
        text = to_prometheus_text(sample_snapshot)
        assert "# TYPE tls_handshake_runs_total counter" in text
        assert "tls_handshake_runs_total 7" in text
        assert 'amq_ops_total{backend="cuckoo",op="insert"} 42' in text

    def test_histogram_summary_rendering(self, sample_snapshot):
        text = to_prometheus_text(sample_snapshot)
        assert "tls_server_flight_seconds_count 2" in text
        assert "tls_server_flight_seconds_sum 2.0" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.inc("c", 1, (("k", 'a"b\\c\nd'),))
        text = to_prometheus_text(reg.snapshot())
        assert 'c_total{k="a\\"b\\\\c\\nd"} 1' in text


class TestWriteMetrics:
    def test_extension_dispatch(self, tmp_path, sample_snapshot):
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        assert write_metrics(str(json_path), sample_snapshot) == "json"
        assert write_metrics(str(prom_path), sample_snapshot) == "prometheus"
        validate_export(json.loads(json_path.read_text()))
        assert "# TYPE" in prom_path.read_text()


class TestDeterministicCounters:
    def test_excludes_artifact_cache_counters(self, sample_snapshot):
        flat = deterministic_counters(sample_snapshot)
        assert "tls.handshake.runs{}" in flat
        assert not any(k.startswith("runtime.artifacts.") for k in flat)

    def test_churn_counters_are_deterministic_series(self, sample_snapshot):
        # The churn-smoke CI job compares these across --jobs values, so
        # they must be in the deterministic set, not filtered out.
        flat = deterministic_counters(sample_snapshot)
        assert flat["webmodel.churn.steps{}"] == 24
        assert flat["webmodel.churn.handshakes{}"] == 192
        assert flat["webmodel.churn.stale_retries{}"] == 4

    def test_cohort_counters_are_deterministic_series(self, sample_snapshot):
        # The cohort-smoke CI job compares these across engines and
        # --jobs values, so they must survive the deterministic filter —
        # including the labelled retry-cause series.
        flat = deterministic_counters(sample_snapshot)
        assert flat["webmodel.cohort.users{}"] == 40
        assert flat["webmodel.cohort.handshakes{}"] == 228
        assert flat["webmodel.cohort.retries{cause=server-fp}"] == 21
        assert flat["webmodel.cohort.false_positives{}"] == 21
        assert flat["webmodel.cohort.divergent_users{}"] == 16

    def test_accepts_snapshot_and_doc_equally(self, sample_snapshot):
        from_snapshot = deterministic_counters(sample_snapshot)
        from_doc = deterministic_counters(to_json_doc(sample_snapshot))
        assert from_snapshot == from_doc
        assert (
            from_doc["amq.ops{backend=cuckoo,op=insert}"] == 42
        )


class TestSchemaValidator:
    def test_valid_doc_passes(self, sample_snapshot):
        assert validation_errors(to_json_doc(sample_snapshot)) == []

    def test_missing_required_key(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        del doc["counters"]
        assert any("counters" in e for e in validation_errors(doc))

    def test_wrong_schema_id(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        doc["schema"] = "repro.obs/v0"
        assert validation_errors(doc)

    def test_unexpected_property_rejected(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        doc["extra"] = 1
        assert any("extra" in e for e in validation_errors(doc))

    def test_wrong_entry_type_rejected(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        doc["counters"].append({"name": 3, "labels": {}, "value": 1})
        assert validation_errors(doc)

    def test_boolean_is_not_a_number(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        doc["counters"].append({"name": "b", "labels": {}, "value": True})
        assert validation_errors(doc)

    def test_histogram_count_must_be_integer(self, sample_snapshot):
        doc = to_json_doc(sample_snapshot)
        doc["histograms"][0]["count"] = 1.5
        assert validation_errors(doc)

    def test_validate_export_raises_with_paths(self):
        with pytest.raises(ValueError, match="schema"):
            validate_export({"schema": "repro.obs/v1"})

    def test_schema_file_loads(self):
        schema = load_schema()
        assert schema["properties"]["schema"]["const"] == "repro.obs/v1"
