"""Tests for regression, stats and table rendering."""

import math

import pytest

from repro.analysis import (
    confidence_interval_95,
    format_table,
    linear_fit,
    mean,
    relative_error,
    render_kv,
)
from repro.errors import ConfigurationError


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n == 4

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(5) == pytest.approx(10.0)

    def test_noisy_r_squared_below_one(self):
        xs = list(range(10))
        ys = [2 * x + (1 if x % 2 else -1) for x in xs]
        fit = linear_fit(xs, ys)
        assert 0.9 < fit.r_squared < 1.0

    def test_flat_data(self):
        fit = linear_fit([0, 1, 2], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1, 2], [1])

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ConfigurationError):
            linear_fit([2, 2, 2], [1, 2, 3])

    def test_describe_contains_slope(self):
        fit = linear_fit([0, 1], [0, 3])
        assert "3.000" in fit.describe()


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_relative_error_zero_reference(self):
        with pytest.raises(ConfigurationError):
            relative_error(1, 0)

    def test_confidence_interval_contains_mean(self):
        lo, hi = confidence_interval_95([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi

    def test_confidence_interval_shrinks_with_n(self):
        wide = confidence_interval_95([1.0, 3.0])
        narrow = confidence_interval_95([1.0, 3.0] * 50)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_confidence_needs_two(self):
        with pytest.raises(ConfigurationError):
            confidence_interval_95([1.0])


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "bee"], [["x", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len({line.index("bee") if "bee" in line else None for line in lines[:1]})

    def test_title_rendered(self):
        out = format_table(["h"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_all_rows_present(self):
        out = format_table(["n"], [[i] for i in range(5)])
        for i in range(5):
            assert str(i) in out

    def test_render_kv(self):
        out = render_kv([("alpha", 1), ("b", 2)], title="T")
        assert "alpha : 1" in out
        assert out.startswith("T")
