"""Tests for the §6 client-fingerprinting analysis."""

import pytest

from repro.analysis.privacy import (
    anonymity_set_sizes,
    distinguishable_fraction,
    membership_leak,
    payload_entropy_bits,
)
from repro.core import ClientSuppressor
from repro.errors import ConfigurationError
from repro.pki import IntermediatePreload, build_hierarchy


@pytest.fixture(scope="module")
def world():
    h = build_hierarchy("ecdsa-p256", total_icas=40, num_roots=2, seed=41)
    return h, h.ica_certificates()


def payload_for(icas, seed=0):
    cs = ClientSuppressor(
        preload=IntermediatePreload(icas), budget_bytes=None, seed=seed
    )
    return cs.extension_payload()


class TestDistinguishability:
    def test_universal_filter_is_a_herd(self, world):
        _, icas = world
        payloads = [payload_for(icas) for _ in range(6)]
        assert distinguishable_fraction(payloads) == 0.0
        assert payload_entropy_bits(payloads) == 0.0
        assert anonymity_set_sizes(payloads) == [6] * 6

    def test_history_filters_are_unique(self, world):
        _, icas = world
        payloads = [payload_for(icas[i : i + 10]) for i in range(6)]
        assert distinguishable_fraction(payloads) == 1.0
        assert payload_entropy_bits(payloads) == pytest.approx(
            2.585, abs=0.01
        )  # log2(6)
        assert anonymity_set_sizes(payloads) == [1] * 6

    def test_mixed_population(self, world):
        _, icas = world
        herd = [payload_for(icas)] * 4
        loner = [payload_for(icas[:5])]
        frac = distinguishable_fraction(herd + loner)
        assert 0.0 < frac < 1.0

    def test_needs_two_clients(self):
        with pytest.raises(ConfigurationError):
            distinguishable_fraction([b"x"])
        with pytest.raises(ConfigurationError):
            payload_entropy_bits([])


class TestMembershipLeak:
    def test_attacker_reads_known_icas_reliably(self, world):
        _, icas = world
        payload = payload_for(icas[:20])
        known = [c.fingerprint() for c in icas[:20]]
        unknown = [c.fingerprint() for c in icas[20:]]
        leak = membership_leak(payload, known, unknown)
        # No false negatives: the attacker's membership test always hits.
        assert leak["true_positive_rate"] == 1.0
        # The only cover is the filter's own FPP.
        assert leak["false_positive_rate"] <= 0.2
        assert leak["advertised_items"] == 20.0

    def test_higher_fpp_gives_more_cover(self, world):
        """A deliberately noisy filter is the paper-adjacent mitigation:
        the attacker's confidence degrades with the FPP."""
        _, icas = world
        from repro.core import plan_filter

        noisy = ClientSuppressor(
            preload=IntermediatePreload(icas[:20]),
            plan=plan_filter(20, fpp=0.2, budget_bytes=None),
        )
        tight = ClientSuppressor(
            preload=IntermediatePreload(icas[:20]),
            plan=plan_filter(20, fpp=1e-4, budget_bytes=None),
        )
        probes = [bytes([i]) * 32 for i in range(200)]
        leak_noisy = membership_leak(noisy.extension_payload(), [], probes)
        leak_tight = membership_leak(tight.extension_payload(), [], probes)
        assert (
            leak_noisy["false_positive_rate"]
            > leak_tight["false_positive_rate"]
        )
