#!/usr/bin/env python
"""Validate ``--metrics-out`` JSON exports and compare runs for determinism.

Usage::

    python scripts/check_metrics_export.py metrics.json
    python scripts/check_metrics_export.py serial.json parallel.json

With one file: validate it against the checked-in ``repro.obs/v1``
schema and print a short summary. With two files: additionally assert
that their *deterministic* counters (everything outside the
``runtime.artifacts.*`` per-process cache counters) are identical —
the serial-vs-parallel contract CI enforces.

Exit status: 0 on success, 1 on schema errors or counter divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.export import SCHEMA_ID, deterministic_counters
from repro.obs.schema import validation_errors


def _load_and_validate(path: str) -> Optional[dict]:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"FAIL {path}: unreadable export: {exc}")
        return None
    errors = validation_errors(doc)
    if errors:
        print(f"FAIL {path}: {len(errors)} schema violation(s) vs {SCHEMA_ID}:")
        for error in errors:
            print(f"  - {error}")
        return None
    counters = deterministic_counters(doc)
    print(
        f"ok   {path}: schema-valid ({len(doc['counters'])} counters, "
        f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms; "
        f"{len(counters)} deterministic series)"
    )
    return doc


def _compare(path_a: str, doc_a: dict, path_b: str, doc_b: dict) -> bool:
    a, b = deterministic_counters(doc_a), deterministic_counters(doc_b)
    if a == b:
        print(f"ok   deterministic counters identical across {path_a} and {path_b}")
        return True
    print(f"FAIL deterministic counters diverge between {path_a} and {path_b}:")
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key), b.get(key)
        if left != right:
            print(f"  - {key}: {left} != {right}")
    return False


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("exports", nargs="+", help="metrics JSON export(s)")
    args = parser.parse_args(argv)
    docs = [_load_and_validate(path) for path in args.exports]
    if any(doc is None for doc in docs):
        return 1
    ok = True
    for path, doc in zip(args.exports[1:], docs[1:]):
        ok = _compare(args.exports[0], docs[0], path, doc) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
