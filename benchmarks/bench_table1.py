"""Table 1 — conventional & PQ TLS authentication data size.

Regenerates both accountings (exact DER and paper-calibrated) for every
algorithm and chain length, printing measured-vs-paper values per cell.
"""

from repro.analysis.stats import relative_error
from repro.experiments import table1


def test_table1_auth_data(benchmark):
    cells = benchmark(table1.compute_table1)
    print()
    print(table1.format_table1(cells))
    pq_errors = [
        relative_error(c.calibrated_kb, c.paper_kb)
        for c in cells
        if c.algorithm not in ("ecdsa-p256", "rsa-2048")
    ]
    worst = max(abs(e) for e in pq_errors)
    print(f"\nworst PQ-row calibration error vs paper: {100 * worst:.2f}%")
    verdict = table1.initcwnd_conclusions(cells)
    print(
        "initcwnd fits: falcon-512/3ICA=%s dilithium2/1ICA=%s "
        "dilithium2/2ICA=%s dilithium5/1ICA=%s"
        % (
            verdict["falcon-512/3"],
            verdict["dilithium2/1"],
            verdict["dilithium2/2"],
            verdict["dilithium5/1"],
        )
    )
    assert worst < 0.03
