"""§4.2 expected-duration model across algorithms, RTTs and FPP targets."""

from repro.experiments.estimator_model import (
    expected_duration_table,
    format_expected_durations,
)


def test_expected_duration_model(benchmark):
    rows = benchmark(expected_duration_table)
    print()
    print(format_expected_durations(rows))
    for row in rows:
        # The estimator's sandwich: d_c <= expected <= d_PQ + eps slack.
        assert row.d_suppressed_ms <= row.expected_ms + 1e-9
        assert row.expected_ms <= row.d_full_ms + row.eps * row.d_suppressed_ms + 1e-6
        # Speedup dips below 1 only by the eps retry tax, never more.
        assert row.speedup >= 1.0 - 1.1 * row.eps
    # eps is second order: at 1e-3 the expectation sits within 1% of d_c.
    for row in rows:
        if row.eps <= 1e-3:
            assert row.expected_ms <= row.d_suppressed_ms * 1.02
    # Where chains overflow the window even suppressed (staple weight),
    # suppression gains nothing — an honest model output; SPHINCS+ still
    # gains a full round trip per handshake.
    sphincs = [r for r in rows if r.algorithm == "sphincs-128f" and r.eps == 1e-3]
    assert all(r.d_full_ms > r.d_suppressed_ms for r in sphincs)
    assert all(r.speedup > 1.05 for r in sphincs)
