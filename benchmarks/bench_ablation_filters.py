"""Ablation — AMQ structure choice in the end-to-end pipeline.

Runs the Fig. 5 browsing pipeline with each filter (including the Bloom
baselines the paper rules out for deployability) over an identical
workload and compares extension size, reduction and false positives.
"""

from repro.experiments import ablations


def test_ablation_filter_choice(benchmark, population, scale):
    rows = benchmark.pedantic(
        ablations.filter_choice,
        kwargs={
            "num_domains": max(30, scale["domains"] // 3),
            "runs": 1,
            "population": population,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(ablations.format_filter_choice(rows))
    by_kind = {r.filter_kind: r for r in rows}
    # Same workload -> same reduction (the structures only differ in size,
    # speed and deletability; FPs are rare at 0.1%).
    reductions = [r.reduction for r in rows]
    assert max(reductions) - min(reductions) < 0.05
    # Vacuum is the most compact *dynamic* filter; the static XOR filter
    # undercuts it slightly at the cost of rebuild-per-update.
    dynamic = {"cuckoo", "vacuum", "quotient", "counting-bloom"}
    assert by_kind["vacuum"].extension_bytes == min(
        r.extension_bytes for r in rows if r.filter_kind in dynamic
    )
    assert by_kind["xor"].extension_bytes <= by_kind["vacuum"].extension_bytes
