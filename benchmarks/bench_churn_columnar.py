#!/usr/bin/env python
"""Throughput benchmark for the columnar churn engine (staleness at scale).

Four arms, emitting ``BENCH_churn.json``:

* ``equivalence`` — a small high-staleness cohort (stale generations keep
  advertising revoked ICAs, so the FP-candidate replay path is exercised)
  run through **both** engines; the results must be equal, with real
  false-positive retries;
* ``scalar``      — a small cohort through the scalar reference (every
  cell a real per-handshake TLS machine), to price one scalar handshake;
* ``columnar``    — a large cohort (10K clients x 50 epochs; 100K clients
  under ``REPRO_FULL=1``) through the columnar engine;
* ``sweep``       — the staleness sweep sharded across workers
  (``run_churn_experiment`` jobs=1 vs jobs=N), which must agree exactly.

The headline assertion is the churn-throughput CI gate: the columnar
engine's per-handshake cost must undercut the scalar machine's by at
least ``MIN_CHURN_SPEEDUP`` (both timers cover engine construction +
run, world lifecycle included).

Usage::

    python benchmarks/bench_churn_columnar.py           # reduced scale
    REPRO_FULL=1 python benchmarks/bench_churn_columnar.py --jobs 4

Exit status is non-zero when an assertion fails, so CI can run it as-is.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests._fixtures import full_scale  # noqa: E402

from repro.experiments.churn import (  # noqa: E402
    ChurnExperimentConfig,
    run_churn_experiment,
)
from repro.webmodel.churn import ChurnConfig  # noqa: E402
from repro.webmodel.churn_columnar import (  # noqa: E402
    ChurnCohortConfig,
    run_churn_cohort,
)
from repro.webmodel.churn_reference import run_churn_cohort_reference  # noqa: E402

#: Columnar per-handshake cost must undercut the scalar machine's by at
#: least this factor (measured ~2000x on a dev box; the floor leaves two
#: orders of magnitude of margin for shared-runner noise). This is the
#: machine-independent CI gate.
MIN_CHURN_SPEEDUP = 25.0

#: The large arm must actually be large — 10K clients x 50 epochs — or
#: the per-handshake figure is dominated by the shared world lifecycle
#: and means nothing.
MIN_COLUMNAR_HANDSHAKES = 500_000


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _equivalence_arm() -> Dict[str, Any]:
    config = ChurnCohortConfig(
        world=ChurnConfig(
            steps=10, num_sites=8, payload_refresh_every=6,
            ica_validity_steps=8, seed=7,
        ),
        num_clients=12,
        handshakes_per_client=2,
    )
    columnar = run_churn_cohort(config)
    scalar = run_churn_cohort_reference(config)
    equal = columnar == scalar
    print(
        f"  equivalence (12 clients, k=6): equal={equal}, "
        f"fp_retries={columnar.fp_retries}, "
        f"stale_rate={columnar.stale_advertised_rate:.2f}"
    )
    return {
        "equal": equal,
        "fp_retries": columnar.fp_retries,
        "failures": columnar.failures,
    }


def run_benchmark(
    clients: int, epochs: int, scalar_clients: int, jobs: int,
    output: Optional[str],
) -> Dict[str, Any]:
    cpus = os.cpu_count() or 1
    print(
        f"churn cohort engine: {clients} clients x {epochs} epochs columnar "
        f"vs {scalar_clients} clients scalar, jobs={jobs}, cpus={cpus}"
    )

    equivalence = _equivalence_arm()

    # Timers cover engine construction + run (world lifecycle included);
    # both arms share the same world knobs and a fresh (k=1) payload
    # cadence so neither pays replay-path costs the other skips.
    scalar_config = ChurnCohortConfig(
        world=ChurnConfig(steps=epochs, seed=0),
        num_clients=scalar_clients,
        handshakes_per_client=1,
    )
    t_scalar, r_scalar = _time(
        lambda: run_churn_cohort_reference(scalar_config)
    )
    scalar_hs = r_scalar.handshakes
    scalar_us = t_scalar / scalar_hs * 1e6
    print(
        f"  scalar   ({scalar_clients} clients x {epochs} epochs): "
        f"{t_scalar:7.2f}s  {scalar_hs} handshakes  "
        f"{scalar_us:9.1f}us/handshake"
    )

    columnar_config = ChurnCohortConfig(
        world=ChurnConfig(steps=epochs, seed=0),
        num_clients=clients,
        handshakes_per_client=1,
    )
    t_col, r_col = _time(lambda: run_churn_cohort(columnar_config))
    col_hs = r_col.handshakes
    col_us = t_col / col_hs * 1e6
    print(
        f"  columnar ({clients} clients x {epochs} epochs): {t_col:7.2f}s"
        f"  {col_hs} handshakes  {col_us:9.3f}us/handshake"
    )

    sweep_config = ChurnExperimentConfig(
        staleness_levels=(1, 4),
        trials=2,
        base=ChurnConfig(steps=8, seed=0),
        clients=48,
        handshakes_per_client=2,
    )
    t_serial, sweep_serial = _time(
        lambda: run_churn_experiment(sweep_config, jobs=1)
    )
    t_par, sweep_par = _time(
        lambda: run_churn_experiment(sweep_config, jobs=jobs)
    )
    print(
        f"  sweep (4 cells, jobs=1): {t_serial:6.2f}s; jobs={jobs}: "
        f"{t_par:6.2f}s; equal={sweep_par == sweep_serial}"
    )

    speedup = scalar_us / col_us
    print(
        f"  per-handshake speedup: {speedup:.0f}x "
        f"(floor {MIN_CHURN_SPEEDUP:.0f}x)"
    )

    report = {
        "benchmark": "churn_columnar",
        "scale": {
            "columnar_clients": clients,
            "scalar_clients": scalar_clients,
            "epochs": epochs,
        },
        "cpu_count": cpus,
        "jobs": jobs,
        "seconds": {
            "scalar_reference": round(t_scalar, 3),
            "columnar": round(t_col, 3),
            "sweep_jobs1": round(t_serial, 3),
            f"sweep_jobs{jobs}": round(t_par, 3),
        },
        "handshakes": {
            "scalar_reference": scalar_hs,
            "columnar": col_hs,
        },
        "per_handshake_us": {
            "scalar_reference": round(scalar_us, 2),
            "columnar": round(col_us, 4),
        },
        "per_handshake_speedup": round(speedup, 1),
        "churn_stats": {
            "fp_retries": r_col.fp_retries,
            "failures": r_col.failures,
            "suppression_rate": round(r_col.suppression_rate, 4),
            "stale_advertised_rate": round(r_col.stale_advertised_rate, 4),
            "events": len(r_col.events),
        },
        "equivalence_smoke": equivalence,
        "results_equal": {"sweep_parallel_vs_serial": sweep_par == sweep_serial},
        "notes": (
            "per-handshake figures price engine construction + run "
            "(lifecycle included); the scalar arm resolves every cell "
            "through the real per-handshake TLS machine, the columnar arm "
            "one representative trace per (generation, site) context"
        ),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {output}")

    assert equivalence["equal"], "columnar engine diverged from scalar reference"
    assert equivalence["fp_retries"] > 0, (
        "equivalence smoke exercised no FP retries"
    )
    assert sweep_par == sweep_serial, "parallel sweep diverged from serial"
    assert col_hs >= MIN_COLUMNAR_HANDSHAKES, (
        f"columnar arm ran only {col_hs} handshakes < "
        f"{MIN_COLUMNAR_HANDSHAKES} floor (figure would be lifecycle-"
        f"dominated)"
    )
    assert speedup >= MIN_CHURN_SPEEDUP, (
        f"per-handshake speedup {speedup:.1f}x < {MIN_CHURN_SPEEDUP}x floor"
    )
    print("  all assertions passed")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    full = full_scale()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--clients", type=int, default=100_000 if full else 10_000,
        help="cohort size for the columnar arm",
    )
    parser.add_argument(
        "--epochs", type=int, default=50,
        help="churn epochs for both timing arms",
    )
    parser.add_argument(
        "--scalar-clients", type=int, default=8 if full else 4,
        help="cohort size for the scalar-reference timing arm",
    )
    parser.add_argument(
        "--jobs", type=int, default=4 if full else 2,
        help="worker processes for the parallel sweep arm",
    )
    parser.add_argument(
        "--output", default="BENCH_churn.json",
        help="report path ('' to skip writing)",
    )
    args = parser.parse_args(argv)
    run_benchmark(
        args.clients, args.epochs, args.scalar_clients, args.jobs,
        args.output or None,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
