"""Non-Web environments (§7 future work): web vs mobile vs IoT."""

from repro.webmodel.nonweb import compare_environments, format_environments


def test_nonweb_environments(benchmark):
    results = benchmark.pedantic(
        compare_environments, rounds=1, iterations=1
    )
    print()
    print(format_environments(results))
    by_name = {r.config.name: r for r in results}
    web = by_name["web-browsing"]
    mobile = by_name["mobile-app"]
    iot = by_name["iot-fleet"]
    # Closed worlds: complete ICA knowledge -> full suppression.
    assert mobile.suppression_rate == 1.0
    assert iot.suppression_rate == 1.0
    # Tiny peer sets afford far tighter FPPs in far fewer bytes.
    assert iot.filter_payload_bytes < web.filter_payload_bytes
    assert iot.config.fpp < web.config.fpp
    # Constrained links turn suppressed flights into real seconds: the
    # IoT fleet (4-MSS window, 300 ms RTT) saves the most wall time per
    # day despite the smallest chains.
    assert iot.handshake_seconds_saved_per_day > web.handshake_seconds_saved_per_day
    assert iot.flight_rtts_saved_per_day > 0
    # No false positives at 1e-5/1e-6 FPPs over a day.
    assert mobile.false_positives == 0
    assert iot.false_positives == 0
