"""Related-work comparison — AMQ filter vs cTLS dictionary vs per-peer
cache flags over one identical browsing workload (§2, quantified)."""

from repro.experiments.baselines import compare_designs, format_baselines


def test_related_work_comparison(benchmark, population, scale):
    rows = benchmark.pedantic(
        compare_designs,
        kwargs={
            "num_domains": scale["domains"],
            "repeat_visits": 2,
            "population": population,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_baselines(rows))
    by_design = {r.design.split(" ")[0]: r for r in rows}
    amq = by_design["amq-filter"]
    flags = by_design["peer-cache-flags"]
    ctls = by_design["ctls-dictionary"]
    # The paper's §4.2 advantage: suppression without per-peer mapping,
    # on first contact, with no out-of-band synchronization channel.
    assert amq.oob_sync_bytes == 0
    assert ctls.oob_sync_bytes > 0
    assert amq.ica_suppression_rate >= flags.ica_suppression_rate
    # With 2 visits per destination the flag design caps at ~50% of the
    # filter's coverage on hot ICAs plus revisit coverage.
    assert flags.ica_suppression_rate < 0.65
