"""Figure 3-center — filter insert/query throughput.

The paper measures C implementations handling millions of ops per second;
pure-Python magnitudes are ~100x lower. The reproducible shape is the
ordering and the adequacy argument (even Python sustains far more lookups
per second than a busy server's handshake rate).
"""

from repro.experiments import fig3


def test_fig3_center_throughput(benchmark, scale):
    results = benchmark.pedantic(
        fig3.throughput,
        kwargs={"num_items": scale["ops"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig3.format_throughput(results))
    for r in results:
        assert r.query_ops_per_s > 10_000  # >> typical handshake rates
        assert r.insert_ops_per_s > 2_000
