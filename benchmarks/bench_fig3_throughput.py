"""Figure 3-center — filter insert/query throughput.

The paper measures C implementations handling millions of ops per second;
pure-Python magnitudes are ~100x lower. The reproducible shape is the
ordering and the adequacy argument (even Python sustains far more lookups
per second than a busy server's handshake rate). The companion batch
benchmark shows the vectorized ``contains_batch``/``insert_batch`` API
recovering an order of magnitude of that gap at Tranco-scale batch sizes.
"""

from repro.amq import HAVE_NUMPY
from repro.experiments import fig3


def test_fig3_center_throughput(benchmark, scale):
    results = benchmark.pedantic(
        fig3.throughput,
        kwargs={"num_items": scale["ops"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig3.format_throughput(results))
    for r in results:
        assert r.query_ops_per_s > 10_000  # >> typical handshake rates
        assert r.insert_ops_per_s > 2_000


def test_fig3_batch_vs_scalar_throughput(benchmark, scale):
    # The acceptance bar is set at 10k-item batches regardless of the
    # reduced-scale knob: the batch API exists precisely for the
    # Tranco-1M-style bulk workloads.
    num_items = max(scale["ops"], 10_000)
    results = benchmark.pedantic(
        fig3.batch_throughput,
        kwargs={"num_items": num_items},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig3.format_batch_throughput(results))
    by_kind = {r.kind: r for r in results}
    for r in results:
        # Batch must never be slower than the scalar loop (generic
        # fallback keeps this true even without numpy).
        assert r.query_speedup > 0.9, (r.kind, r.query_speedup)
    if HAVE_NUMPY:
        for kind in ("bloom", "cuckoo"):
            r = by_kind[kind]
            assert r.query_speedup >= 2.0, (
                f"{kind} contains_batch only {r.query_speedup:.2f}x scalar"
            )
