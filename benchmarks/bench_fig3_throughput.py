#!/usr/bin/env python
"""Figure 3-center — filter insert/query throughput.

The paper measures C implementations handling millions of ops per second;
pure-Python magnitudes are ~100x lower. The reproducible shape is the
ordering and the adequacy argument (even Python sustains far more lookups
per second than a busy server's handshake rate). The companion batch
benchmark shows the vectorized ``contains_batch``/``insert_batch`` API
recovering an order of magnitude of that gap at Tranco-scale batch sizes.

Run as a script to emit ``BENCH_fig3.json``, the machine-readable
scalar/batch/bulk-build throughput report for the array-native storage
engine::

    python benchmarks/bench_fig3_throughput.py                 # 2^16 items
    python benchmarks/bench_fig3_throughput.py --num-items 8192
    python benchmarks/bench_fig3_throughput.py --families cuckoo,xor

Internal floors gate cuckoo/vacuum (bulk build, batch query), the xor
family's array-native peel engine against its own scalar-specification
construction (``repro.amq.peel.scalar_spec_mode``), and the semi-sort
codec round-trip against its scalar emit/take loops; ``--families``
restricts the run (and the gates) to a subset.

The JSON embeds two kinds of comparison:

* **internal ratios** (batch and bulk-build vs this build's own scalar
  loop) — machine-independent, asserted on every run, and the CI
  regression gate;
* **vs-main speedups** against ``PRE_ENGINE_BASELINE``, the four-mode
  throughput of the list-backed engine at commit f35f628 measured on the
  dev machine that generated the checked-in report. The scalar loop is
  within noise of that engine's scalar path on the same machine (the
  scalar algorithms are unchanged), so the internal ratios track the
  vs-main speedups wherever the baseline numbers cannot be reproduced.
  ``--enforce-vs-main`` additionally asserts the acceptance gates
  (>= 5x bulk build, >= 3x batch query for cuckoo and vacuum) against
  the embedded baseline — meaningful only on comparable hardware.

Exit status is non-zero when an assertion fails, so CI can run it as-is.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.amq import HAVE_NUMPY
from repro.experiments import fig3

#: Four-mode throughput (ops/s) of the list-backed storage engine at
#: commit f35f628 ("current main" for this change), measured on the dev
#: machine with the same workload the CLI below runs: 2^16 32-byte items,
#: fpp 1e-3, load factor 0.9, seed 7, query mix of 32768 absent + 32768
#: present probes. Machine-specific — comparisons against these numbers
#: are only meaningful on comparable hardware.
PRE_ENGINE_BASELINE: Dict[str, Dict[str, float]] = {
    "cuckoo": {
        "scalar_build_ops_per_s": 107_085.0,
        "batch_build_ops_per_s": 442_384.0,
        "scalar_query_ops_per_s": 110_635.0,
        "batch_query_ops_per_s": 786_278.0,
    },
    "vacuum": {
        "scalar_build_ops_per_s": 94_812.0,
        "batch_build_ops_per_s": 314_510.0,
        "scalar_query_ops_per_s": 97_542.0,
        "batch_query_ops_per_s": 823_866.0,
    },
}

#: Machine-independent CI floors: the vectorized paths must beat this
#: build's own scalar loop by these factors for the paper's two headline
#: structures. Set well under the measured ratios (build ~7-11x, query
#: ~40x) to absorb shared-runner noise while still catching any
#: regression to per-item placement.
MIN_INTERNAL_BUILD_SPEEDUP = 3.0
MIN_INTERNAL_QUERY_SPEEDUP = 4.0
GATED_KINDS = ("cuckoo", "vacuum")

#: The xor family gates its array-native peel engine against its own
#: scalar-specification construction (``peel.scalar_spec_mode``): the
#: vectorized hash/scatter + packed-record peel must rebuild at least
#: this much faster than the list-backed spec loops at 2^16 items
#: (measured ~5.4x on the dev machine).
MIN_INTERNAL_XOR_BUILD_SPEEDUP = 4.0

#: The semi-sort codec's vectorized pack/unpack (shared ``bitpack``
#: array records) vs its own scalar emit/take loops on the same table
#: (measured ~50-100x; the floor absorbs runner noise).
MIN_INTERNAL_CODEC_SPEEDUP = 8.0

#: The ISSUE acceptance gates, enforced with ``--enforce-vs-main``
#: against ``PRE_ENGINE_BASELINE`` (bulk build vs the scalar insert loop
#: every session construction used to pay; batch query vs main's own
#: batch query path).
MIN_VS_MAIN_BULK_BUILD_SPEEDUP = 5.0
MIN_VS_MAIN_BATCH_QUERY_SPEEDUP = 3.0


def test_fig3_center_throughput(benchmark, scale):
    results = benchmark.pedantic(
        fig3.throughput,
        kwargs={"num_items": scale["ops"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig3.format_throughput(results))
    for r in results:
        assert r.query_ops_per_s > 10_000  # >> typical handshake rates
        assert r.insert_ops_per_s > 2_000


def test_fig3_batch_vs_scalar_throughput(benchmark, scale):
    # The acceptance bar is set at 10k-item batches regardless of the
    # reduced-scale knob: the batch API exists precisely for the
    # Tranco-1M-style bulk workloads.
    num_items = max(scale["ops"], 10_000)
    results = benchmark.pedantic(
        fig3.batch_throughput,
        kwargs={"num_items": num_items},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig3.format_batch_throughput(results))
    by_kind = {r.kind: r for r in results}
    for r in results:
        # Batch must never be slower than the scalar loop (generic
        # fallback keeps this true even without numpy).
        assert r.query_speedup > 0.9, (r.kind, r.query_speedup)
    if HAVE_NUMPY:
        for kind in ("bloom", "cuckoo"):
            r = by_kind[kind]
            assert r.query_speedup >= 2.0, (
                f"{kind} contains_batch only {r.query_speedup:.2f}x scalar"
            )


def test_fig3_bulk_build_throughput(benchmark, scale):
    num_items = max(scale["ops"], 10_000)
    results = benchmark.pedantic(
        fig3.bulk_build_throughput,
        kwargs={"num_items": num_items},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig3.format_bulk_build_throughput(results))
    for r in results:
        assert r.bulk_build_speedup > 0.8, (r.kind, r.bulk_build_speedup)
    if HAVE_NUMPY:
        by_kind = {r.kind: r for r in results}
        for kind in GATED_KINDS:
            r = by_kind[kind]
            assert r.bulk_build_speedup >= 2.0, (
                f"{kind} bulk build only {r.bulk_build_speedup:.2f}x scalar"
            )
            assert r.batch_query_speedup >= 3.0, (
                f"{kind} contains_batch only {r.batch_query_speedup:.2f}x scalar"
            )
        r = by_kind["xor"]
        assert r.bulk_build_speedup >= 2.0, (
            f"xor bulk build only {r.bulk_build_speedup:.2f}x its scalar-spec "
            "construction"
        )


# ---------------------------------------------------------------------------
# BENCH_fig3.json CLI
# ---------------------------------------------------------------------------


def bench_semisort_codec(num_slots: int, seed: int = 7) -> Dict[str, Any]:
    """Vectorized vs scalar semi-sort codec round-trip on one table.

    The scalar arm runs the module's own emit/take loops (its numpy
    gate is stubbed out for the timed window), so the ratio is internal
    and machine-independent like the filter build gates.
    """
    import random
    import time

    from repro.amq import semisort

    rng = random.Random(seed)
    fp_bits = 12
    table = [rng.getrandbits(fp_bits) for _ in range(num_slots)]
    num_buckets = num_slots // semisort.BUCKET_SIZE
    if HAVE_NUMPY:
        import numpy as np

        arr = np.array(table, dtype=np.uint64)
        t0 = time.perf_counter()
        packed = semisort.pack_table(arr, fp_bits)
        semisort.unpack_table_array(packed, num_buckets, fp_bits)
        t_vec = time.perf_counter() - t0
    else:
        t_vec = None
    saved = semisort.np
    semisort.np = None
    try:
        t0 = time.perf_counter()
        packed_scalar = semisort.pack_table(table, fp_bits)
        semisort.unpack_table_array(packed_scalar, num_buckets, fp_bits)
        t_scalar = time.perf_counter() - t0
    finally:
        semisort.np = saved
    if t_vec is not None:
        assert packed == packed_scalar, "codec paths disagree on bytes"
    ratio = (t_scalar / t_vec) if t_vec else None
    return {
        "num_slots": num_slots,
        "fp_bits": fp_bits,
        "vectorized_roundtrip_s": round(t_vec, 6) if t_vec else None,
        "scalar_roundtrip_s": round(t_scalar, 6),
        "internal_speedup": round(ratio, 2) if ratio else None,
    }


def run_benchmark(
    num_items: int,
    output: Optional[str],
    enforce_vs_main: bool,
    families: Optional[List[str]] = None,
) -> Dict[str, Any]:
    kinds = tuple(families) if families else fig3.BATCH_KINDS
    unknown = set(kinds) - set(fig3.BATCH_KINDS)
    if unknown:
        raise SystemExit(
            f"unknown families {sorted(unknown)}; choose from {fig3.BATCH_KINDS}"
        )
    print(
        f"fig3 throughput: {num_items} items x {len(kinds)} "
        f"structures (fpp {fig3.PAPER_FPP:g}, lf {fig3.PAPER_LOAD_FACTOR})"
    )
    results = fig3.bulk_build_throughput(kinds=kinds, num_items=num_items)
    print(fig3.format_bulk_build_throughput(results))
    by_kind = {r.kind: r for r in results}

    engines: Dict[str, Any] = {}
    for r in results:
        engines[r.kind] = {
            "scalar_build_ops_per_s": round(r.scalar_build_ops_per_s),
            "batch_build_ops_per_s": round(r.batch_build_ops_per_s),
            "bulk_build_ops_per_s": round(r.bulk_build_ops_per_s),
            "scalar_query_ops_per_s": round(r.scalar_query_ops_per_s),
            "batch_query_ops_per_s": round(r.batch_query_ops_per_s),
            "internal_speedup": {
                "batch_build_vs_scalar": round(r.batch_build_speedup, 2),
                "bulk_build_vs_scalar": round(r.bulk_build_speedup, 2),
                "batch_query_vs_scalar": round(r.batch_query_speedup, 2),
            },
        }

    gated = [k for k in GATED_KINDS if k in by_kind]
    vs_main: Dict[str, Any] = {}
    gates: Dict[str, Any] = {}
    for kind in gated:
        r = by_kind[kind]
        base = PRE_ENGINE_BASELINE[kind]
        bulk_vs_scalar = r.bulk_build_ops_per_s / base["scalar_build_ops_per_s"]
        bulk_vs_batch = r.bulk_build_ops_per_s / base["batch_build_ops_per_s"]
        query_vs_batch = r.batch_query_ops_per_s / base["batch_query_ops_per_s"]
        query_vs_scalar = r.batch_query_ops_per_s / base["scalar_query_ops_per_s"]
        vs_main[kind] = {
            "bulk_build_vs_main_scalar_build": round(bulk_vs_scalar, 2),
            "bulk_build_vs_main_batch_build": round(bulk_vs_batch, 2),
            "batch_query_vs_main_batch_query": round(query_vs_batch, 2),
            "batch_query_vs_main_scalar_query": round(query_vs_scalar, 2),
        }
        gates[kind] = {
            "bulk_build_speedup_vs_main_scalar_build_ge_5x": bulk_vs_scalar
            >= MIN_VS_MAIN_BULK_BUILD_SPEEDUP,
            "batch_query_speedup_vs_main_batch_query_ge_3x": query_vs_batch
            >= MIN_VS_MAIN_BATCH_QUERY_SPEEDUP,
            "internal_build_speedup_ge_3x": r.bulk_build_speedup
            >= MIN_INTERNAL_BUILD_SPEEDUP,
            "internal_query_speedup_ge_4x": r.batch_query_speedup
            >= MIN_INTERNAL_QUERY_SPEEDUP,
        }

    if "xor" in by_kind:
        r = by_kind["xor"]
        gates["xor"] = {
            "internal_build_speedup_ge_4x": r.bulk_build_speedup
            >= MIN_INTERNAL_XOR_BUILD_SPEEDUP,
        }
    # The codec gate always runs at the acceptance scale (the scalar arm
    # is ~0.1 s there): at tiny tables fixed numpy overheads dilute the
    # ratio below the floor without any regression.
    codec = bench_semisort_codec(max(num_items, 1 << 16))
    if codec["internal_speedup"] is not None:
        gates["semisort_codec"] = {
            "internal_roundtrip_speedup_ge_8x": codec["internal_speedup"]
            >= MIN_INTERNAL_CODEC_SPEEDUP,
        }
        print(
            f"semisort codec roundtrip: {codec['internal_speedup']}x "
            f"vectorized vs scalar ({num_items} slots)"
        )

    report = {
        "benchmark": "fig3_throughput",
        "scale": {
            "num_items": num_items,
            "fpp": fig3.PAPER_FPP,
            "load_factor": fig3.PAPER_LOAD_FACTOR,
            "seed": 7,
            "item_bytes": 32,
            "query_mix": "half absent, half present probes",
            "families": list(kinds),
        },
        "have_numpy": HAVE_NUMPY,
        "engines": engines,
        "semisort_codec": codec,
        "pre_engine_baseline": {
            "commit": "f35f628",
            "note": (
                "list-backed engine measured on the machine that generated "
                "this report; vs-main speedups are only meaningful on "
                "comparable hardware — CI enforces the internal ratios"
            ),
            **PRE_ENGINE_BASELINE,
        },
        "speedup_vs_main": vs_main,
        "gates": gates,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {output}")

    # -- assertions ----------------------------------------------------------
    if HAVE_NUMPY:
        for kind in gated:
            r = by_kind[kind]
            assert r.bulk_build_speedup >= MIN_INTERNAL_BUILD_SPEEDUP, (
                f"{kind} bulk build {r.bulk_build_speedup:.2f}x scalar "
                f"< {MIN_INTERNAL_BUILD_SPEEDUP}x floor"
            )
            assert r.batch_query_speedup >= MIN_INTERNAL_QUERY_SPEEDUP, (
                f"{kind} batch query {r.batch_query_speedup:.2f}x scalar "
                f"< {MIN_INTERNAL_QUERY_SPEEDUP}x floor"
            )
        if "xor" in by_kind:
            r = by_kind["xor"]
            assert r.bulk_build_speedup >= MIN_INTERNAL_XOR_BUILD_SPEEDUP, (
                f"xor bulk build {r.bulk_build_speedup:.2f}x its scalar-spec "
                f"construction < {MIN_INTERNAL_XOR_BUILD_SPEEDUP}x floor"
            )
        if codec["internal_speedup"] is not None:
            assert codec["internal_speedup"] >= MIN_INTERNAL_CODEC_SPEEDUP, (
                f"semisort codec roundtrip {codec['internal_speedup']}x "
                f"scalar < {MIN_INTERNAL_CODEC_SPEEDUP}x floor"
            )
    if enforce_vs_main:
        for kind in gated:
            g = gates[kind]
            assert g["bulk_build_speedup_vs_main_scalar_build_ge_5x"], (
                f"{kind} bulk build vs main scalar build "
                f"{vs_main[kind]['bulk_build_vs_main_scalar_build']}x < "
                f"{MIN_VS_MAIN_BULK_BUILD_SPEEDUP}x gate"
            )
            assert g["batch_query_speedup_vs_main_batch_query_ge_3x"], (
                f"{kind} batch query vs main batch query "
                f"{vs_main[kind]['batch_query_vs_main_batch_query']}x < "
                f"{MIN_VS_MAIN_BATCH_QUERY_SPEEDUP}x gate"
            )
    print("  all assertions passed")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--num-items", type=int, default=1 << 16,
        help="items per structure (acceptance scale: 2^16)",
    )
    parser.add_argument(
        "--output", default="BENCH_fig3.json",
        help="report path ('' to skip writing)",
    )
    parser.add_argument(
        "--enforce-vs-main", action="store_true",
        help=(
            "also assert the >=5x bulk-build / >=3x batch-query gates "
            "against the embedded main baseline (dev-machine only)"
        ),
    )
    parser.add_argument(
        "--families", default="",
        help=(
            "comma-separated subset of families to run "
            f"(default: all of {','.join(fig3.BATCH_KINDS)}); gates apply "
            "only to families present in the run"
        ),
    )
    args = parser.parse_args(argv)
    families = [f for f in args.families.split(",") if f] or None
    run_benchmark(
        args.num_items, args.output or None, args.enforce_vs_main, families
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
