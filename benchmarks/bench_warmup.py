"""Cache warm-up ablation — preloading vs organic learning."""

from repro.experiments.warmup import (
    format_warmup,
    handshakes_to_reach,
    warmup_curves,
)


def test_cache_warmup(benchmark, population, scale):
    curves = benchmark.pedantic(
        warmup_curves,
        kwargs={
            "num_destinations": 10 * scale["domains"],
            "checkpoint_every": scale["domains"],
            "population": population,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_warmup(curves))
    by_strategy = {c.strategy: c for c in curves}
    preload = by_strategy["preload-hot"]
    cold = by_strategy["cold-learning"]
    combined = by_strategy["preload+learning"]
    # Preload starts strong; cold learning starts near zero but climbs.
    assert preload.suppression_rates[0] > 0.55
    assert cold.suppression_rates[0] < preload.suppression_rates[0]
    assert cold.suppression_rates[-1] > cold.suppression_rates[0] + 0.15
    # Learning on top of preload dominates both everywhere.
    for i in range(len(combined.suppression_rates)):
        assert combined.suppression_rates[i] >= preload.suppression_rates[i] - 1e-9
        assert combined.suppression_rates[i] >= cold.suppression_rates[i] - 1e-9
    threshold = handshakes_to_reach(cold, 0.6)
    print(f"\ncold client reaches 60% suppression after ~{threshold} handshakes")
