"""Figure 3-left — filter size vs load factor (capacity 245, FPP 0.1%),
plus the measured achievable fill per structure."""

from repro.experiments import fig3


def test_fig3_left_load_factor(benchmark):
    sweep = benchmark(fig3.load_factor_sweep)
    print()
    print(fig3.format_load_factor_sweep(sweep))
    for kind, series in sweep.items():
        sizes = dict(series)
        # Feasibility claim: at load factors >= 0.75 the structures are in
        # budget-relevant territory; below 0.25 they blow up.
        assert sizes[0.1] >= 4 * sizes[0.9], kind


def test_fig3_left_achievable_load(benchmark):
    loads = benchmark.pedantic(
        fig3.measured_max_load, kwargs={"trials": 3}, rounds=1, iterations=1
    )
    print()
    print(fig3.format_max_load(loads))
    # The paper's bar: "load factors should remain above 75% in all
    # cases"; every candidate clears 0.9 with margin.
    for kind, achieved in loads.items():
        assert achieved > 0.9, kind
