"""Figure 3-right — filter size vs represented ICs, against the 550-byte
ClientHello budget."""

from repro.core.filter_config import DEFAULT_FILTER_BUDGET_BYTES
from repro.experiments import fig3


def test_fig3_right_capacity(benchmark):
    sweep = benchmark(fig3.capacity_sweep)
    budgets = fig3.budget_capacities()
    print()
    print(fig3.format_capacity_sweep(sweep, budgets))
    # Paper claim: "below 550 bytes ... hold over 300 ICs" — met by the
    # vacuum structure; the power-of-two structures land above 200.
    assert budgets["vacuum"] >= 300
    assert min(budgets.values()) >= 200
    vacuum_at_245 = dict(sweep["vacuum"])[245]
    assert vacuum_at_245 <= DEFAULT_FILTER_BUDGET_BYTES
