"""Certificate compression (RFC 8879) vs ICA suppression.

Compression's savings collapse on PQ chains (uniform-random keys and
signatures don't compress); suppression's do not — the asymmetry that
motivates the paper's mechanism for the PQ era.
"""

from repro.experiments.compression import (
    compression_comparison,
    format_compression,
)


def test_compression_vs_suppression(benchmark):
    rows = benchmark(compression_comparison)
    print()
    print(format_compression(rows))
    by_alg = {r.algorithm: r.accounting for r in rows}
    # Conventional chains compress well...
    assert by_alg["rsa-2048"].compression_ratio < 0.75
    # ...PQ chains barely (less than 15% savings on Dilithium/SPHINCS+).
    assert by_alg["dilithium3"].compression_ratio > 0.85
    assert by_alg["sphincs-128f"].compression_ratio > 0.85
    # Suppression keeps working in the PQ era (2 of 3 certs removed).
    assert by_alg["dilithium3"].suppression_ratio < 0.45
    # And composing both is never worse than either alone.
    for acc in by_alg.values():
        assert acc.combined_ratio <= acc.compression_ratio + 1e-9
        assert acc.combined_ratio <= acc.suppression_ratio + 1e-9
