"""Mixed certificate chains x ICA suppression — the strategies compose."""

from repro.experiments.mixed_chains import (
    format_mixed_chains,
    mixed_chain_comparison,
)


def test_mixed_chains_compose_with_suppression(benchmark):
    rows = benchmark(mixed_chain_comparison)
    print()
    print(format_mixed_chains(rows))
    by_label = {r.label.split(" ")[0] + ":" + r.label.split(" ")[-1]: r for r in rows}
    pure_dil = next(r for r in rows if r.label == "pure dilithium2")
    pure_fal = next(r for r in rows if r.label == "pure falcon-512")
    mixed = next(r for r in rows if "dilithium2 leaf" in r.label)
    # The mixed chain undercuts pure Dilithium on the wire...
    assert mixed.chain_bytes < pure_dil.chain_bytes
    # ...and suppression still removes its (Falcon) ICAs on top: the
    # suppressed mixed chain beats BOTH suppressed pure chains on the
    # combined wire+sign-latency frontier.
    assert mixed.suppressed_bytes < pure_dil.suppressed_bytes
    assert mixed.leaf_sign_ms < pure_fal.leaf_sign_ms
    # Suppression saving equals the ICA bytes regardless of the mix.
    for row in rows:
        assert row.suppression_saving > 0
