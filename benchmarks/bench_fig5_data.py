"""Figure 5-left — ICA data exchanged per browsing session.

Runs the §5.3 browsing simulation (REPRO_FULL=1 for the paper's 10 runs x
200 domains) and reports exchanged ICA data with/without suppression for
the baseline and the PQ extrapolations.
"""

from repro.experiments import fig5
from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig


def test_fig5_left_data_volume(benchmark, population, scale):
    sim = BrowsingSessionSimulator(
        SessionConfig(seed=1, num_domains=scale["domains"]),
        population=population,
    )
    results = benchmark.pedantic(
        sim.run_many, kwargs={"runs": scale["runs"]}, rounds=1, iterations=1
    )
    dv = fig5.data_volume(results)
    print()
    print(fig5.format_data_volume(dv))

    # Shape claims (paper: ~73% reduction; ~15 MB saved for Dilithium III
    # and ~45 MB for SPHINCS+-128f at full scale).
    assert 0.6 <= dv.mean_reduction <= 0.85
    by_alg = {r.algorithm: r for r in dv.rows}
    scale_factor = (scale["runs"] * scale["domains"]) and 1  # shape only
    assert by_alg["dilithium3"].mb_saved > 3 * by_alg["rsa-2048"].mb_saved
    assert by_alg["sphincs-128f"].mb_saved > 2.5 * by_alg["dilithium3"].mb_saved
    if scale["domains"] >= 200:
        # Paper: ~15 MB (Dilithium III) and ~45 MB (SPHINCS+-128f); our
        # session touches slightly fewer unique destinations, landing a
        # few MB lower — same decade, same ordering.
        assert 8 <= by_alg["dilithium3"].mb_saved <= 25
        assert 25 <= by_alg["sphincs-128f"].mb_saved <= 60
