"""Figure 5-center — PQ-authentication-induced latency vs RTT.

Extra handshake latency of Dilithium V and SPHINCS+-128f over RSA-2048,
with the paper's line-of-best-fit latency model.
"""

from repro.experiments import fig5


def test_fig5_center_latency_model(benchmark):
    models = benchmark(fig5.latency_models)
    print()
    print(fig5.format_latency_models(models))
    for model in models:
        print(f"{model.algorithm}: {model.fit.describe(x_unit='s RTT')}")
    by_alg = {m.algorithm: m for m in models}
    # Linearity (the regression premise) and ordering (SPHINCS+ pays more
    # round trips than Dilithium V).
    for model in models:
        assert model.fit.r_squared > 0.98
    assert (
        by_alg["sphincs-128f"].fit.slope > by_alg["dilithium5"].fit.slope
    )
    assert by_alg["dilithium5"].fit.slope >= 1.0
