"""Figure 1 — PQ TLS 1.3 handshake flow: per-message sizes and flights."""

from repro.experiments import fig1


def test_fig1_handshake_flows(benchmark):
    flows = benchmark(fig1.compute_flows)
    print()
    print(fig1.format_flow_summary(flows))
    for flow in flows:
        print()
        print(fig1.format_flow(flow))
    by_alg = {f.algorithm: f for f in flows}
    assert by_alg["rsa-2048"].server_flight_rtts == 1
    assert by_alg["dilithium5"].server_flight_rtts >= 2
    assert by_alg["sphincs-128f"].server_flight_rtts >= 3
