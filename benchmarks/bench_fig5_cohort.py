#!/usr/bin/env python
"""Throughput benchmark for the columnar cohort engine (Fig. 5 at scale).

Three arms, emitting ``BENCH_fig5_cohort.json``:

* ``equivalence`` — a small high-fpp cohort on the reduced shared PKI
  (the same ``tests/_fixtures.py`` population the differential suite
  uses), run through **both** engines; the results must be equal, with
  real false-positive retries so the divergent replay path is covered;
* ``scalar``      — a small cohort through the scalar reference (real
  per-handshake TLS machines) on the default population, to price one
  scalar handshake;
* ``columnar``    — a large cohort (100K users, 1M under ``REPRO_FULL=1``;
  ~10 destination draws each) through the columnar engine, serial and
  ``--jobs N``, which must agree exactly.

The headline assertion is the ROADMAP's scale claim: the columnar
engine's per-handshake cost must undercut the scalar machine's by at
least ``MIN_COHORT_SPEEDUP`` (both measured on the same prebuilt
population, timers covering engine construction + run).

Usage::

    python benchmarks/bench_fig5_cohort.py             # reduced scale
    REPRO_FULL=1 python benchmarks/bench_fig5_cohort.py --jobs 4

Exit status is non-zero when an assertion fails, so CI can run it as-is.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests._fixtures import (  # noqa: E402
    POPULATION_SEED,
    full_scale,
    reduced_population_config,
    shared_population,
)

from repro.webmodel.cohort import CohortConfig, run_cohort  # noqa: E402
from repro.webmodel.cohort_reference import run_cohort_reference  # noqa: E402
from repro.webmodel.population import PopulationConfig  # noqa: E402

#: Columnar per-handshake cost must undercut the scalar machine's by at
#: least this factor (measured ~1000x on a dev box; the floor leaves an
#: order of magnitude of margin for shared-runner noise).
MIN_COHORT_SPEEDUP = 50.0

#: The large arm must actually be large, or the per-handshake figure is
#: dominated by constant engine setup and means nothing.
MIN_COLUMNAR_USERS = 100_000


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _equivalence_arm() -> Dict[str, Any]:
    population = shared_population(reduced_population_config())
    config = CohortConfig(
        num_users=40,
        handshakes_per_user=6,
        hot_top_n=40,
        fpp=0.25,
        payload_refresh_every=2,
        seed=1,
        population=reduced_population_config(),
    )
    columnar = run_cohort(config, jobs=1, population=population)
    scalar = run_cohort_reference(config, population=population)
    equal = columnar == scalar
    print(
        f"  equivalence (40 users, fpp=0.25): equal={equal}, "
        f"retries={columnar.stats.retries}, "
        f"divergent={columnar.stats.divergent_users}"
    )
    return {
        "equal": equal,
        "retries": columnar.stats.retries,
        "divergent_users": columnar.stats.divergent_users,
    }


def run_benchmark(
    users: int, scalar_users: int, jobs: int, output: Optional[str]
) -> Dict[str, Any]:
    cpus = os.cpu_count() or 1
    print(
        f"fig5 cohort engine: {users} users columnar vs "
        f"{scalar_users} users scalar, jobs={jobs}, cpus={cpus}"
    )

    equivalence = _equivalence_arm()

    # Both timing arms share one prebuilt default population; the timers
    # cover engine construction + run, not the population build.
    population = shared_population(PopulationConfig(seed=POPULATION_SEED))

    scalar_config = CohortConfig(
        num_users=scalar_users, seed=1, population=population.config
    )
    t_scalar, r_scalar = _time(
        lambda: run_cohort_reference(scalar_config, population=population)
    )
    scalar_hs = r_scalar.stats.handshakes + r_scalar.stats.retries
    scalar_us = t_scalar / scalar_hs * 1e6
    print(
        f"  scalar   ({scalar_users} users): {t_scalar:7.2f}s"
        f"  {scalar_hs} handshakes  {scalar_us:9.1f}us/handshake"
    )

    columnar_config = CohortConfig(
        num_users=users, seed=1, population=population.config
    )
    t_col, r_col = _time(
        lambda: run_cohort(columnar_config, jobs=1, population=population)
    )
    col_hs = r_col.stats.handshakes + r_col.stats.retries
    col_us = t_col / col_hs * 1e6
    print(
        f"  columnar ({users} users, jobs=1): {t_col:7.2f}s"
        f"  {col_hs} handshakes  {col_us:9.3f}us/handshake"
    )
    t_par, r_par = _time(
        lambda: run_cohort(columnar_config, jobs=jobs, population=population)
    )
    print(
        f"  columnar ({users} users, jobs={jobs}): {t_par:7.2f}s"
        f"  -> {t_col / t_par:.2f}x vs serial"
    )

    speedup = scalar_us / col_us
    print(f"  per-handshake speedup: {speedup:.0f}x (floor {MIN_COHORT_SPEEDUP:.0f}x)")

    report = {
        "benchmark": "fig5_cohort",
        "scale": {
            "columnar_users": users,
            "scalar_users": scalar_users,
            "handshakes_per_user": columnar_config.handshakes_per_user,
        },
        "cpu_count": cpus,
        "jobs": jobs,
        "seconds": {
            "scalar_reference": round(t_scalar, 3),
            "columnar_jobs1": round(t_col, 3),
            f"columnar_jobs{jobs}": round(t_par, 3),
        },
        "handshakes": {
            "scalar_reference": scalar_hs,
            "columnar": col_hs,
        },
        "per_handshake_us": {
            "scalar_reference": round(scalar_us, 2),
            "columnar_jobs1": round(col_us, 4),
        },
        "per_handshake_speedup": round(speedup, 1),
        "cohort_stats": {
            "known_ica_rate": round(r_col.stats.known_ica_rate, 4),
            "ica_reduction_ratio": round(r_col.stats.ica_reduction_ratio, 4),
            "false_positive_rate": round(r_col.stats.false_positive_rate, 6),
            "session_reuse": r_col.stats.session_reuse,
        },
        "equivalence_smoke": equivalence,
        "results_equal": {"parallel_vs_serial": r_par == r_col},
        "notes": (
            "per-handshake figures price engine construction + run on a "
            "prebuilt population; the scalar arm runs real per-handshake "
            "TLS machines, the columnar arm the vectorized cohort engine"
        ),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {output}")

    assert equivalence["equal"], "columnar engine diverged from scalar reference"
    assert equivalence["retries"] > 0, "equivalence smoke exercised no retries"
    assert r_par == r_col, "parallel cohort diverged from serial"
    assert users >= MIN_COLUMNAR_USERS, (
        f"columnar arm ran only {users} users < {MIN_COLUMNAR_USERS} floor "
        f"(per-handshake figure would be setup-dominated)"
    )
    assert speedup >= MIN_COHORT_SPEEDUP, (
        f"per-handshake speedup {speedup:.1f}x < {MIN_COHORT_SPEEDUP}x floor"
    )
    print("  all assertions passed")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    full = full_scale()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--users", type=int, default=1_000_000 if full else 100_000,
        help="cohort size for the columnar arm",
    )
    parser.add_argument(
        "--scalar-users", type=int, default=60 if full else 40,
        help="cohort size for the scalar-reference timing arm",
    )
    parser.add_argument(
        "--jobs", type=int, default=4 if full else 2,
        help="worker processes for the parallel columnar run",
    )
    parser.add_argument(
        "--output", default="BENCH_fig5_cohort.json",
        help="report path ('' to skip writing)",
    )
    args = parser.parse_args(argv)
    run_benchmark(args.users, args.scalar_users, args.jobs, args.output or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
