#!/usr/bin/env python
"""End-to-end runtime benchmark for the Fig. 5 browsing-session engine.

Measures four arms over the same workload and emits ``BENCH_fig5.json``:

* ``baseline``  — serial, every disableable artifact cache bypassed
  (approximates the pre-runtime-subsystem engine);
* ``cached``    — serial (``jobs=1``), artifact caches on;
* ``parallel``  — ``jobs=N`` process-pool fan-out, caches on;
* ``metered``   — serial, caches on, the observability registry enabled.

All arms build a fresh population and simulator and pin
``lookup_seconds`` so the four produce byte-identical ``SessionResult``
lists — which the script asserts. Speedup assertions are gated on the
machine: the cached-serial floor always applies, the parallel floor only
when the host actually has multiple cores.

The metered arm also prices the *disabled* instrumentation: it counts
the exact number of recording events the workload fires, multiplies by
the measured cost of one disabled ``obs.inc`` call (a global read plus a
``None`` check) and asserts that total stays under
``MAX_DISABLED_OVERHEAD`` of the cached arm's wall time — the "metrics
off means near-zero cost" contract.

Usage::

    python benchmarks/bench_fig5_sessions.py            # reduced scale
    REPRO_FULL=1 python benchmarks/bench_fig5_sessions.py --jobs 4

Exit status is non-zero when an assertion fails, so CI can run it as-is.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs
from repro.runtime import artifacts
from repro.webmodel.population import ICAPopulation, PopulationConfig
from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig

#: Simulated AMQ lookup cost, pinned so every arm models identical time
#: (the default is wall-clock measured per simulator instance).
LOOKUP_SECONDS = 1e-7

#: Cached-serial must beat the uncached baseline by at least this factor
#: on any machine (the caches save ~30 % of the engine's work; the floor
#: leaves margin for shared-runner timing noise).
MIN_CACHED_SPEEDUP = 1.2

#: Parallel (``jobs>=2``) must beat the uncached baseline by at least this
#: factor — asserted only when the host has at least two cores.
MIN_PARALLEL_SPEEDUP = 1.5

#: Ceiling on the estimated cost of the instrumentation when the
#: registry is disabled, as a fraction of the cached arm's wall time.
MAX_DISABLED_OVERHEAD = 0.02


def _full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def _run_arm(
    runs: int, domains: int, jobs: int, disable_caches: bool
) -> Tuple[float, List[Any], Dict[str, Dict[str, int]]]:
    """Time one arm on a fresh population/simulator; returns
    (wall seconds, results, cache-stats snapshot)."""
    artifacts.clear()
    population = ICAPopulation(PopulationConfig(seed=1))
    sim = BrowsingSessionSimulator(
        SessionConfig(seed=1, num_domains=domains),
        population=population,
        lookup_seconds=LOOKUP_SECONDS,
    )
    start = time.perf_counter()
    if disable_caches:
        with artifacts.disabled():
            results = sim.run_many(runs, jobs=jobs)
    else:
        results = sim.run_many(runs, jobs=jobs)
    elapsed = time.perf_counter() - start
    return elapsed, results, artifacts.stats()


def _run_metered_arm(
    runs: int, domains: int
) -> Tuple[float, List[Any], int]:
    """The cached-serial workload with the metrics registry enabled;
    returns (wall seconds, results, instrumentation event count).

    Runs the sessions directly on one registry (no scoped capture) so
    ``registry.events`` counts every recording call the workload fires —
    the event total the disabled-overhead estimate prices.
    """
    artifacts.clear()
    population = ICAPopulation(PopulationConfig(seed=1))
    sim = BrowsingSessionSimulator(
        SessionConfig(seed=1, num_domains=domains),
        population=population,
        lookup_seconds=LOOKUP_SECONDS,
    )
    obs.disable()
    reg = obs.enable()
    try:
        start = time.perf_counter()
        results = [sim.run(i) for i in range(runs)]
        elapsed = time.perf_counter() - start
        events = reg.events
    finally:
        obs.disable()
    return elapsed, results, events


def _disabled_inc_seconds(calls: int = 200_000) -> float:
    """Measured per-call cost of ``obs.inc`` with the registry disabled
    (what every instrumentation site pays when metrics are off)."""
    obs.disable()
    start = time.perf_counter()
    for _ in range(calls):
        obs.inc("bench.overhead.probe")
    return (time.perf_counter() - start) / calls


def run_benchmark(
    runs: int, domains: int, jobs: int, output: Optional[str]
) -> Dict[str, Any]:
    cpus = os.cpu_count() or 1
    print(
        f"fig5 session engine: {runs} runs x {domains} domains, "
        f"jobs={jobs}, cpus={cpus}"
    )

    t_base, r_base, _ = _run_arm(runs, domains, jobs=1, disable_caches=True)
    print(f"  baseline (serial, caches off): {t_base:7.2f}s")
    t_cached, r_cached, cached_stats = _run_arm(
        runs, domains, jobs=1, disable_caches=False
    )
    print(f"  cached   (serial, caches on):  {t_cached:7.2f}s"
          f"  -> {t_base / t_cached:.2f}x")
    t_par, r_par, _ = _run_arm(runs, domains, jobs=jobs, disable_caches=False)
    print(f"  parallel (jobs={jobs}, caches on): {t_par:7.2f}s"
          f"  -> {t_base / t_par:.2f}x")
    t_metered, r_metered, events = _run_metered_arm(runs, domains)
    print(f"  metered  (serial, metrics on): {t_metered:7.2f}s"
          f"  ({events} events)")
    inc_s = _disabled_inc_seconds()
    disabled_overhead = events * inc_s / t_cached
    print(f"  disabled instrumentation: {inc_s * 1e9:.0f}ns/event x "
          f"{events} events = {disabled_overhead:.3%} of cached arm")

    hit_rates = {
        name: round(s["hits"] / (s["hits"] + s["misses"]), 4)
        for name, s in cached_stats.items()
        if s.get("hits", 0) + s.get("misses", 0) > 0
    }
    report = {
        "benchmark": "fig5_sessions",
        "scale": {"runs": runs, "num_domains": domains},
        "cpu_count": cpus,
        "jobs": jobs,
        "lookup_seconds": LOOKUP_SECONDS,
        "seconds": {
            "baseline_uncached_serial": round(t_base, 3),
            "cached_serial_jobs1": round(t_cached, 3),
            f"parallel_jobs{jobs}": round(t_par, 3),
            "metered_serial_jobs1": round(t_metered, 3),
        },
        "observability": {
            "instrumentation_events": events,
            "disabled_inc_ns_per_call": round(inc_s * 1e9, 1),
            "estimated_disabled_overhead_fraction": round(disabled_overhead, 6),
        },
        "speedup_vs_baseline": {
            "cached_serial_jobs1": round(t_base / t_cached, 3),
            f"parallel_jobs{jobs}": round(t_base / t_par, 3),
        },
        "results_equal": {
            "cached_vs_baseline": r_cached == r_base,
            "parallel_vs_serial": r_par == r_cached,
            "metered_vs_cached": r_metered == r_cached,
        },
        "cache_hit_rates_cached_arm": hit_rates,
        "notes": (
            "baseline = this engine with every disableable artifact cache "
            "bypassed (pre-runtime-subsystem approximation); parallel "
            "speedup is only meaningful when cpu_count covers the worker "
            "count"
        ),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {output}")

    # -- assertions (determinism always; speed floors where measurable) ------
    assert r_cached == r_base, "caching changed SessionResults"
    assert r_par == r_cached, "parallel run diverged from serial results"
    assert r_metered == r_cached, "enabling metrics changed SessionResults"
    assert events > 0, "metered arm recorded no instrumentation events"
    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation estimated at {disabled_overhead:.3%} "
        f"of cached runtime > {MAX_DISABLED_OVERHEAD:.0%} ceiling"
    )
    assert t_base / t_cached >= MIN_CACHED_SPEEDUP, (
        f"cached serial speedup {t_base / t_cached:.2f}x "
        f"< {MIN_CACHED_SPEEDUP}x floor"
    )
    if jobs >= 2 and cpus >= 2:
        assert t_base / t_par >= MIN_PARALLEL_SPEEDUP, (
            f"parallel (jobs={jobs}) speedup {t_base / t_par:.2f}x "
            f"< {MIN_PARALLEL_SPEEDUP}x floor on {cpus} cpus"
        )
    elif jobs >= 2:
        print(f"  (parallel floor skipped: only {cpus} cpu)")
    print("  all assertions passed")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    full = _full_scale()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--runs", type=int, default=10 if full else 8,
        help="browsing-session runs per arm",
    )
    parser.add_argument(
        "--domains", type=int, default=200 if full else 100,
        help="domains visited per run",
    )
    parser.add_argument(
        "--jobs", type=int, default=4 if full else 2,
        help="worker processes for the parallel arm",
    )
    parser.add_argument(
        "--output", default="BENCH_fig5.json",
        help="report path ('' to skip writing)",
    )
    args = parser.parse_args(argv)
    run_benchmark(args.runs, args.domains, args.jobs, args.output or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
