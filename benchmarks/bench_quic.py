"""QUIC amplification-protection comparison (related work [23]).

PQ flights that fit TCP's initcwnd still stall QUIC's 3x pre-validation
budget; suppression recovers at least as many round trips under QUIC as
under TCP for every algorithm.
"""

from repro.experiments.quic import format_transport_comparison, transport_comparison


def test_quic_vs_tcp_transport(benchmark):
    rows = benchmark(transport_comparison)
    print()
    print(format_transport_comparison(rows))
    by_alg = {r.algorithm: r for r in rows}
    # Falcon-512 fits TCP's window but stalls QUIC's amplification budget.
    assert by_alg["falcon-512"].tcp_flights_full == 1
    assert by_alg["falcon-512"].quic_flights_full >= 2
    # Suppression gains under QUIC >= gains under TCP, for every algorithm.
    for row in rows:
        assert row.quic_gain >= row.tcp_gain
    # And SPHINCS+ still pays multiple stalls even suppressed.
    assert by_alg["sphincs-128f"].quic_flights_suppressed >= 2
