"""Figure 5-right — time to first byte per scenario.

TTFB distributions for RSA-2048 / Dilithium V / SPHINCS+-128f with and
without ICA suppression, with false positives doubling the TTFB as in the
paper's method.
"""

from repro.experiments import fig5
from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig


def test_fig5_right_ttfb(benchmark, population, scale):
    sim = BrowsingSessionSimulator(
        SessionConfig(seed=1, num_domains=scale["domains"]),
        population=population,
    )
    results = sim.run_many(scale["runs"])
    scenarios = benchmark.pedantic(
        fig5.ttfb_scenarios, args=(results,), rounds=1, iterations=1
    )
    print()
    print(fig5.format_ttfb(scenarios))
    stats = {(s.algorithm, s.suppressed): s.summary for s in scenarios}
    # Suppression must help the large-signature schemes and never hurt.
    for alg in ("dilithium5", "sphincs-128f"):
        assert stats[(alg, True)].mean <= stats[(alg, False)].mean
    assert (
        stats[("sphincs-128f", False)].mean
        - stats[("sphincs-128f", True)].mean
    ) > 0.01  # tens of ms mean, hundreds in the tail
    # PQ TTFB remains above the conventional baseline (suppression narrows,
    # does not erase, the gap for SPHINCS+).
    assert stats[("sphincs-128f", True)].mean > stats[("rsa-2048", False)].mean
