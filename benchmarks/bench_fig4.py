"""Figure 4 — IC-suppression extension size vs target FPP."""

from repro.experiments import fig4


def test_fig4_extension_size_vs_fpp(benchmark):
    sweep = benchmark(fig4.fpp_sweep)
    print()
    print(fig4.format_fpp_sweep(sweep))
    assert fig4.monotone_decreasing_in_fpp(sweep)
