"""Ablation — targeted (adaptive) vs universal filter advertisement.

The paper's future work (§7) plus its §6 privacy mitigation, quantified:
per-peer targeted filters shrink the extension by an order of magnitude
for repeat peers, while the universal filter forms a perfect anonymity
herd (every client advertises identical bytes).
"""

from repro.analysis.privacy import (
    distinguishable_fraction,
    payload_entropy_bits,
)
from repro.analysis.tables import format_table
from repro.core import ClientSuppressor
from repro.core.adaptive import AdaptiveSuppressor
from repro.pki import IntermediatePreload


def run_adaptive_ablation(population):
    hot = population.hot_ica_certificates()
    universal = ClientSuppressor(
        preload=IntermediatePreload(hot), budget_bytes=None
    )
    adaptive = AdaptiveSuppressor(universal, fallback_universal=True)
    peers = []
    for i in range(1, 40):
        cred = population.credential_for_rank(i)
        peer = cred.chain.leaf.subject
        adaptive.observe(peer, cred.chain)
        peers.append(peer)
    targeted_sizes = list(adaptive.payload_sizes().values())
    return {
        "universal_bytes": len(universal.extension_payload()),
        "targeted_mean_bytes": sum(targeted_sizes) / len(targeted_sizes),
        "targeted_max_bytes": max(targeted_sizes),
        "targeted_payloads": [
            adaptive.extension_payload_for(p) or b"" for p in peers
        ],
    }


def test_ablation_adaptive_filters(benchmark, population):
    stats = benchmark.pedantic(
        run_adaptive_ablation, args=(population,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["advertisement", "payload bytes"],
            [
                ["universal (hot set)", stats["universal_bytes"]],
                ["targeted mean", f"{stats['targeted_mean_bytes']:.0f}"],
                ["targeted max", stats["targeted_max_bytes"]],
            ],
            title="Ablation — universal vs per-peer targeted filters",
        )
    )
    # Privacy view: universal filters are a herd; targeted ones diverge
    # (but are only ever shown to the peer they describe).
    universal_payloads = [b"same-universal-payload"] * 10
    print(
        f"universal herd distinguishability: "
        f"{distinguishable_fraction(universal_payloads):.2f}, "
        f"targeted payload entropy: "
        f"{payload_entropy_bits(stats['targeted_payloads']):.2f} bits"
    )
    assert stats["targeted_mean_bytes"] < stats["universal_bytes"] / 4
