"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact and prints the same
rows/series the paper reports (run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables). Set ``REPRO_FULL=1`` to run the
experiments at full paper scale (10 runs x 200 domains, 10K-domain
crawls); the default is a reduced scale that keeps the whole harness
under a few minutes.
"""

import os

import pytest

from repro.webmodel.population import ICAPopulation, PopulationConfig


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def population():
    """One shared synthetic PKI population for all benchmarks."""
    return ICAPopulation(PopulationConfig(seed=1))


@pytest.fixture(scope="session")
def scale():
    if full_scale():
        return {"runs": 10, "domains": 200, "crawl": 10_000, "ops": 20_000}
    return {"runs": 3, "domains": 100, "crawl": 10_000, "ops": 5_000}
