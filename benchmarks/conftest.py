"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact and prints the same
rows/series the paper reports (run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables). Set ``REPRO_FULL=1`` to run the
experiments at full paper scale (10 runs x 200 domains, 10K-domain
crawls); the default is a reduced scale that keeps the whole harness
under a few minutes.

Fixture *source* is shared with the test suite through
``tests/_fixtures.py`` — population/chain setup here and in tests comes
from the same functions by construction.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests._fixtures import (  # noqa: E402
    POPULATION_SEED,
    benchmark_scale,
    full_scale,
    shared_population,
)

assert POPULATION_SEED == 1  # the seed every checked-in BENCH_*.json used


@pytest.fixture(scope="session")
def population():
    """One shared synthetic PKI population for all benchmarks."""
    return shared_population()


@pytest.fixture(scope="session")
def scale():
    return benchmark_scale()
