"""Table 2 — certificate chain data across monthly Top-10K crawls."""

from repro.experiments import table2


def test_table2_crawl(benchmark, population, scale):
    rows = benchmark(
        table2.compute_table2, population=population, num_domains=scale["crawl"]
    )
    print()
    print(table2.format_table2(rows))
    for row in rows:
        # Distinct-ICA counts land in the paper's 200-270 band at 10K.
        assert 180 <= row.measured.unique_icas <= 280
        for depth in range(4):
            assert abs(row.measured.share(depth) - row.paper_shares[depth]) < 0.03
