"""Ablation — initcwnd sensitivity (§5.2 discussion).

Sweeps the TCP initial window and reports where the PQ round-trip penalty
appears and where suppression stops paying (large windows)."""

from repro.experiments import ablations


def test_ablation_initcwnd(benchmark):
    rows = benchmark(ablations.initcwnd_sweep)
    print()
    print(ablations.format_initcwnd(rows))
    by_key = {(r.algorithm, r.initcwnd_segments): r for r in rows}
    # Small windows amplify the PQ penalty...
    assert (
        by_key[("sphincs-128f", 4)].full_extra_rtts
        > by_key[("sphincs-128f", 10)].full_extra_rtts
    )
    # ...and a 64-MSS window absorbs Dilithium entirely (§5.2: with large
    # windows "the initiator of the handshake can omit the IC Filter
    # extension altogether").
    assert by_key[("dilithium3", 64)].full_extra_rtts == 0
    assert not by_key[("dilithium3", 64)].suppression_useful
