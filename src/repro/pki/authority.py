"""Certificate authorities and synthetic CA hierarchies.

``CertificateAuthority`` wraps a key pair plus its own certificate and
issues subordinate CA or leaf certificates. ``build_hierarchy`` produces a
whole synthetic Web PKI — a few roots, a configurable population of ICAs
arranged in chains of depth 1-3 — mirroring the populations the paper
measures in the wild (Table 2: 220-245 distinct ICAs across the Tranco top
10K; 1400 in the Firefox/CCADB preload list).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.pki.certificate import (
    Certificate,
    CertificateBuilder,
    DEFAULT_ATTRIBUTE_BYTES,
)
from repro.pki.chain import CertificateChain
from repro.pki.keys import KeyPair
from repro.pki.store import TrustStore

#: Ten years, in seconds — default validity for CA certificates.
CA_VALIDITY = 10 * 365 * 24 * 3600
#: Ninety days — default leaf validity (Let's Encrypt style).
LEAF_VALIDITY = 90 * 24 * 3600


class CertificateAuthority:
    """A CA: a key pair, its certificate, and a serial-number counter."""

    def __init__(
        self,
        name: str,
        keypair: KeyPair,
        certificate: Certificate,
        builder: CertificateBuilder,
    ) -> None:
        self.name = name
        self.keypair = keypair
        self.certificate = certificate
        self._builder = builder
        self._next_serial = 1

    @classmethod
    def create_root(
        cls,
        name: str,
        algorithm,
        seed: int,
        not_before: int = 0,
        not_after: int = CA_VALIDITY,
        attribute_bytes: int = DEFAULT_ATTRIBUTE_BYTES,
    ) -> "CertificateAuthority":
        builder = CertificateBuilder(algorithm, attribute_bytes)
        keypair = KeyPair(builder.algorithm, seed)
        certificate = builder.build(
            subject=name,
            issuer=name,
            subject_key=keypair,
            signer_key=keypair,
            serial=0,
            is_ca=True,
            not_before=not_before,
            not_after=not_after,
        )
        return cls(name, keypair, certificate, builder)

    def _take_serial(self) -> int:
        serial = self._next_serial
        self._next_serial += 1
        return serial

    def create_subordinate(
        self,
        name: str,
        seed: int,
        not_before: Optional[int] = None,
        not_after: Optional[int] = None,
        algorithm=None,
    ) -> "CertificateAuthority":
        """Issue an intermediate CA signed by this CA.

        ``algorithm`` switches the subordinate's *own* key algorithm (the
        mixed-chain strategy of Paul et al. / Sikeridis et al. the paper
        cites): the new CA's certificate is still signed with this CA's
        scheme, but everything the subordinate issues uses its own.
        """
        if algorithm is not None:
            from repro.pki.algorithms import get_signature_algorithm

            if isinstance(algorithm, str):
                algorithm = get_signature_algorithm(algorithm)
            sub_builder = CertificateBuilder(
                algorithm, self._builder.attribute_bytes
            )
        else:
            sub_builder = self._builder
        keypair = KeyPair(sub_builder.algorithm, seed)
        certificate = self._builder.build(
            subject=name,
            issuer=self.name,
            subject_key=keypair,
            signer_key=self.keypair,
            serial=self._take_serial(),
            is_ca=True,
            not_before=self.certificate.not_before if not_before is None else not_before,
            not_after=self.certificate.not_after if not_after is None else not_after,
        )
        return CertificateAuthority(name, keypair, certificate, sub_builder)

    def cross_sign(
        self,
        subordinate: "CertificateAuthority",
        not_before: Optional[int] = None,
        not_after: Optional[int] = None,
        serial: Optional[int] = None,
    ) -> Certificate:
        """Cross-sign an existing CA: issue a certificate for its *same*
        subject name and key pair under this CA.

        The result is a distinct certificate (different issuer, serial and
        fingerprint) for an identical subject/key — the Web PKI's
        re-anchoring pattern (e.g. a new root bootstrapping trust through
        an established one). Because the key is shared, either variant
        completes a valid verification path for everything the subordinate
        has issued.
        """
        return self._builder.build(
            subject=subordinate.name,
            issuer=self.name,
            subject_key=subordinate.keypair,
            signer_key=self.keypair,
            serial=self._take_serial() if serial is None else serial,
            is_ca=True,
            not_before=self.certificate.not_before if not_before is None else not_before,
            not_after=self.certificate.not_after if not_after is None else not_after,
        )

    def issue_leaf(
        self,
        subject: str,
        seed: int,
        not_before: int = 0,
        not_after: Optional[int] = None,
    ) -> Certificate:
        return self.issue_leaf_with_key(
            subject, KeyPair(self._builder.algorithm, seed), not_before, not_after
        )

    def issue_leaf_with_key(
        self,
        subject: str,
        keypair: KeyPair,
        not_before: int = 0,
        not_after: Optional[int] = None,
        serial: Optional[int] = None,
    ) -> Certificate:
        """``serial=None`` draws from this CA's stateful counter; passing
        one keeps the issuance a pure function of its arguments (what the
        population layer needs for content-addressed credential reuse)."""
        return self._builder.build(
            subject=subject,
            issuer=self.name,
            subject_key=keypair,
            signer_key=self.keypair,
            serial=self._take_serial() if serial is None else serial,
            is_ca=False,
            not_before=not_before,
            not_after=not_before + LEAF_VALIDITY if not_after is None else not_after,
        )


@dataclass(frozen=True)
class ServerCredential:
    """What a TLS server deploys: its chain plus the leaf private key."""

    chain: "CertificateChain"
    keypair: KeyPair


@dataclass(frozen=True)
class ICAPath:
    """One issuing position in the hierarchy: the ordered CAs between a
    root and a leaf issuer. ``authorities[0]`` is the root's direct child;
    ``authorities[-1]`` signs leaves. Empty paths mean root-issued leaves."""

    root: CertificateAuthority
    authorities: Tuple[CertificateAuthority, ...]

    @property
    def depth(self) -> int:
        return len(self.authorities)

    @property
    def issuer(self) -> CertificateAuthority:
        return self.authorities[-1] if self.authorities else self.root

    def ica_certificates(self) -> List[Certificate]:
        """ICA certs ordered leaf-side first (as transmitted in TLS)."""
        return [ca.certificate for ca in reversed(self.authorities)]


class Hierarchy:
    """A synthetic PKI: roots, a flat ICA population, and issuing paths."""

    def __init__(
        self,
        roots: Sequence[CertificateAuthority],
        paths: Sequence[ICAPath],
        seed: int,
    ) -> None:
        if not roots:
            raise ConfigurationError("hierarchy needs at least one root")
        self.roots = list(roots)
        self.paths = list(paths)
        self._rng = random.Random(seed ^ 0x11EA)
        self._leaf_seed = 1 << 20

    # -- population views --------------------------------------------------------

    def ica_certificates(self) -> List[Certificate]:
        """Every distinct ICA certificate in the hierarchy."""
        seen: Dict[bytes, Certificate] = {}
        for path in self.paths:
            for ca in path.authorities:
                seen.setdefault(ca.certificate.fingerprint(), ca.certificate)
        return list(seen.values())

    def trust_store(self) -> TrustStore:
        store = TrustStore()
        for root in self.roots:
            store.add(root.certificate)
        return store

    # -- issuance ------------------------------------------------------------------

    def issue_chain(
        self,
        subject: str,
        path: Optional[ICAPath] = None,
        not_before: int = 0,
    ) -> CertificateChain:
        """Issue a leaf for ``subject`` through ``path`` (random path when
        omitted) and return the full chain."""
        if path is None:
            path = self._rng.choice(self.paths)
        self._leaf_seed += 1
        leaf = path.issuer.issue_leaf(subject, seed=self._leaf_seed, not_before=not_before)
        return CertificateChain(
            leaf=leaf,
            intermediates=tuple(path.ica_certificates()),
            root=path.root.certificate,
        )

    def issue_credential(
        self,
        subject: str,
        path: Optional[ICAPath] = None,
        not_before: int = 0,
        seed: Optional[int] = None,
        serial: Optional[int] = None,
    ) -> ServerCredential:
        """Issue a leaf plus its private key — what a server needs to run
        TLS handshakes (the chain alone only supports size accounting).

        With explicit ``seed`` and ``serial`` the issuance touches no
        hierarchy state, making the credential a pure function of its
        arguments (issuance-order independent; see
        :meth:`ICAPopulation.credential_for_rank`)."""
        if path is None:
            path = self._rng.choice(self.paths)
        if seed is None:
            self._leaf_seed += 1
            seed = self._leaf_seed
        keypair = KeyPair(path.issuer.certificate.public_key.algorithm, seed)
        leaf = path.issuer.issue_leaf_with_key(
            subject, keypair, not_before=not_before, serial=serial
        )
        chain = CertificateChain(
            leaf=leaf,
            intermediates=tuple(path.ica_certificates()),
            root=path.root.certificate,
        )
        return ServerCredential(chain=chain, keypair=keypair)

    def paths_by_depth(self, depth: int) -> List[ICAPath]:
        return [p for p in self.paths if p.depth == depth]


def build_hierarchy(
    algorithm,
    total_icas: int,
    num_roots: int = 5,
    depth_weights: Optional[Dict[int, float]] = None,
    seed: int = 0,
    not_before: int = 0,
    not_after: int = CA_VALIDITY,
    attribute_bytes: int = DEFAULT_ATTRIBUTE_BYTES,
) -> Hierarchy:
    """Generate a synthetic hierarchy with ``total_icas`` distinct ICAs.

    ``depth_weights`` controls how issuing paths of depth 1, 2 and 3 are
    formed (defaults roughly matching Table 2's observed chain mix among
    chains that do carry ICAs). Deeper paths reuse ICAs as parents, so the
    distinct-ICA count stays exactly ``total_icas``.
    """
    if total_icas < 1:
        raise ConfigurationError(f"total_icas must be >= 1, got {total_icas}")
    if num_roots < 1:
        raise ConfigurationError(f"num_roots must be >= 1, got {num_roots}")
    depth_weights = depth_weights or {1: 0.50, 2: 0.35, 3: 0.15}
    rng = random.Random(seed)

    roots = [
        CertificateAuthority.create_root(
            f"Root CA R{i}",
            algorithm,
            seed=(seed << 8) + i + 1,
            not_before=not_before,
            not_after=not_after,
            attribute_bytes=attribute_bytes,
        )
        for i in range(num_roots)
    ]

    # Create the flat ICA population, each under a root or an earlier ICA
    # so that multi-ICA chains exist.
    authorities: List[CertificateAuthority] = []
    parent_of: Dict[int, Optional[int]] = {}  # index -> parent ica index
    root_of: Dict[int, CertificateAuthority] = {}
    depths = list(depth_weights.keys())
    weights = list(depth_weights.values())
    for i in range(total_icas):
        root = roots[i % num_roots]
        # Decide this ICA's own depth: 1 = direct child of a root, deeper =
        # child of an existing ICA under the same root.
        target_depth = rng.choices(depths, weights=weights, k=1)[0]
        parent_idx: Optional[int] = None
        if target_depth > 1:
            candidates = [
                j
                for j, ca in enumerate(authorities)
                if root_of[j] is root and _depth_of(j, parent_of) == target_depth - 1
            ]
            if candidates:
                parent_idx = rng.choice(candidates)
        if parent_idx is None:
            parent = root
        else:
            parent = authorities[parent_idx]
        ica = parent.create_subordinate(
            f"ICA I{i} ({algorithm if isinstance(algorithm, str) else algorithm.name})",
            seed=(seed << 16) + 0xA000 + i,
        )
        authorities.append(ica)
        parent_of[i] = parent_idx
        root_of[i] = root

    paths: List[ICAPath] = []
    for i, ica in enumerate(authorities):
        lineage = [ica]
        j = parent_of[i]
        while j is not None:
            lineage.append(authorities[j])
            j = parent_of[j]
        paths.append(
            ICAPath(root=root_of[i], authorities=tuple(reversed(lineage)))
        )
    # Root-direct issuance (the "0 ICAs" rows of Table 2).
    for root in roots:
        paths.append(ICAPath(root=root, authorities=()))
    return Hierarchy(roots, paths, seed)


def _depth_of(index: int, parent_of: Dict[int, Optional[int]]) -> int:
    depth = 1
    j = parent_of[index]
    while j is not None:
        depth += 1
        j = parent_of[j]
    return depth
