"""Trust anchors and ICA preload lists.

``TrustStore`` holds root certificates (indexed by subject and by
fingerprint). ``IntermediatePreload`` models Mozilla's Intermediate CA
Preloading (the related work the paper cites as "a first step towards ICA
certificate suppression"): a curated set of known ICA certificates a client
ships with, which in our pipeline seeds the ICA cache and hence the filter.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import CertificateError
from repro.pki.certificate import Certificate


class TrustStore:
    """A set of trusted root certificates."""

    def __init__(self, roots: Iterable[Certificate] = ()) -> None:
        self._by_fingerprint: Dict[bytes, Certificate] = {}
        self._by_subject: Dict[str, Certificate] = {}
        self._token: Optional[bytes] = None
        for root in roots:
            self.add(root)

    def add(self, root: Certificate) -> None:
        if not root.is_ca:
            raise CertificateError(
                f"refusing non-CA certificate {root.subject!r} as trust anchor"
            )
        if not root.is_self_signed:
            raise CertificateError(
                f"trust anchor {root.subject!r} must be self-signed"
            )
        self._by_fingerprint[root.fingerprint()] = root
        self._by_subject[root.subject] = root
        self._token = None

    def cache_token(self) -> bytes:
        """Content digest of the anchor set: two stores trust the same
        roots iff their tokens are equal. Keys the verified-chain cache,
        and is invalidated whenever an anchor is added."""
        if self._token is None:
            digest = hashlib.sha256()
            for fp in sorted(self._by_fingerprint):
                digest.update(fp)
            self._token = digest.digest()
        return self._token

    def contains(self, cert: Certificate) -> bool:
        return cert.fingerprint() in self._by_fingerprint

    def get_by_subject(self, subject: str) -> Optional[Certificate]:
        return self._by_subject.get(subject)

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self._by_fingerprint.values())


class IntermediatePreload:
    """A Mozilla-style ICA preload list (CCADB export)."""

    def __init__(self, certificates: Iterable[Certificate] = ()) -> None:
        self._by_fingerprint: Dict[bytes, Certificate] = {}
        for cert in certificates:
            self.add(cert)

    def add(self, cert: Certificate) -> None:
        if not cert.is_ca or cert.is_self_signed:
            raise CertificateError(
                f"preload list accepts intermediate CA certificates only, "
                f"got {cert.subject!r}"
            )
        self._by_fingerprint[cert.fingerprint()] = cert

    def remove_expired(self, at_time: int) -> int:
        """Drop expired entries (the CCADB list is curated the same way);
        returns how many were removed."""
        stale = [
            fp
            for fp, cert in self._by_fingerprint.items()
            if not cert.valid_at(at_time)
        ]
        for fp in stale:
            del self._by_fingerprint[fp]
        return len(stale)

    def certificates(self) -> List[Certificate]:
        return list(self._by_fingerprint.values())

    def fingerprints(self) -> List[bytes]:
        return list(self._by_fingerprint.keys())

    def __contains__(self, cert: Certificate) -> bool:
        return cert.fingerprint() in self._by_fingerprint

    def __len__(self) -> int:
        return len(self._by_fingerprint)
