"""Certificate chains: building, measuring and validating.

A chain is leaf → intermediates → root. The root is anchored client-side
and never transmitted; the ICAs are exactly what the paper's mechanism
suppresses. ``validate`` implements full path validation against a trust
store (signatures, validity window, CA bits, optional revocation), and
``complete_path`` implements the client-side behaviour of Fig. 2: rebuild
a full verification path from a *suppressed* server response plus the
local ICA cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ChainValidationError, RevocationError
from repro.pki.certificate import Certificate
from repro.runtime import artifacts

IssuerLookup = Callable[[str], Optional[Certificate]]


@dataclass(frozen=True)
class CertificateChain:
    """An ordered certificate path.

    Attributes:
        leaf: the end-entity certificate;
        intermediates: ICAs ordered leaf-side first (index 0 signed the
            leaf, the last one is signed by the root);
        root: the trust anchor (not transmitted in TLS).
    """

    leaf: Certificate
    intermediates: Tuple[Certificate, ...]
    root: Certificate

    def __post_init__(self) -> None:
        object.__setattr__(self, "intermediates", tuple(self.intermediates))

    # -- accounting -----------------------------------------------------------

    @property
    def num_icas(self) -> int:
        return len(self.intermediates)

    def transmitted_certificates(
        self, suppressed: Optional[Set[bytes]] = None
    ) -> List[Certificate]:
        """Certificates the server sends: the leaf plus every ICA whose
        fingerprint is not in ``suppressed``."""
        suppressed = suppressed or set()
        sent = [self.leaf]
        sent.extend(
            ica for ica in self.intermediates if ica.fingerprint() not in suppressed
        )
        return sent

    def transmitted_bytes(self, suppressed: Optional[Set[bytes]] = None) -> int:
        return sum(c.size_bytes() for c in self.transmitted_certificates(suppressed))

    def ica_bytes(self) -> int:
        """DER bytes of the ICA certificates only (Fig. 5-left's metric)."""
        return sum(c.size_bytes() for c in self.intermediates)

    def ica_fingerprints(self) -> List[bytes]:
        return [c.fingerprint() for c in self.intermediates]

    def all_certificates(self) -> List[Certificate]:
        return [self.leaf, *self.intermediates, self.root]

    def content_digest(self) -> bytes:
        """SHA-256 over every certificate fingerprint in path order —
        equal digests mean byte-identical chains."""
        digest = hashlib.sha256()
        for cert in (self.leaf, *self.intermediates, self.root):
            digest.update(cert.fingerprint())
        return digest.digest()

    # -- validation -----------------------------------------------------------

    def validate(
        self,
        trust_store,
        at_time: int,
        revocation=None,
    ) -> None:
        """Full path validation; raises ChainValidationError on failure.

        Checks, leaf to root: signature by the next certificate's key,
        validity window, CA bit on every non-leaf, trust anchor membership
        and (optionally) revocation status.

        Successful validations of revocation-free paths are memoized by
        (chain digest, trust-store token) together with the path's shared
        validity window: a later validation of the same bytes against the
        same anchors at any time inside that window is a cache hit and
        skips the signature walk entirely. The ICA→root suffix is memoized
        separately, so a *new* leaf over an already-verified issuing path
        only pays its own signature check. Revocation checks are stateful,
        so any ``revocation`` argument bypasses the caches both ways.
        """
        cache_key = suffix_key = None
        suffix_verified = False
        if revocation is None and hasattr(trust_store, "cache_token"):
            token = trust_store.cache_token()
            cache_key = (b"chain", self.content_digest(), token)
            window = artifacts.VERIFIED_CHAINS.get(cache_key)
            if window is not None and window[0] <= at_time <= window[1]:
                return
            suffix_digest = hashlib.sha256()
            for cert in (*self.intermediates, self.root):
                suffix_digest.update(cert.fingerprint())
            suffix_key = (b"suffix", suffix_digest.digest(), token)
            window = artifacts.VERIFIED_CHAINS.get(suffix_key)
            suffix_verified = (
                window is not None and window[0] <= at_time <= window[1]
            )
        path = [self.leaf, *self.intermediates, self.root]
        if not trust_store.contains(self.root):
            raise ChainValidationError(
                f"root {self.root.subject!r} is not a trust anchor"
            )
        for cert in path:
            if not cert.valid_at(at_time):
                raise ChainValidationError(
                    f"certificate {cert.subject!r} not valid at {at_time} "
                    f"(window {cert.not_before}..{cert.not_after})"
                )
            if revocation is not None and revocation.is_revoked(cert):
                raise RevocationError(f"certificate {cert.subject!r} is revoked")
        for position, (child, parent) in enumerate(zip(path, path[1:])):
            if not parent.is_ca:
                raise ChainValidationError(
                    f"issuer {parent.subject!r} is not a CA certificate"
                )
            if child.issuer != parent.subject:
                raise ChainValidationError(
                    f"name chaining broken: {child.subject!r} names issuer "
                    f"{child.issuer!r}, got {parent.subject!r}"
                )
            if suffix_verified and position >= 1:
                continue  # suffix signatures already verified this window
            if not child.verify_signature(parent.public_key):
                raise ChainValidationError(
                    f"signature of {child.subject!r} does not verify under "
                    f"{parent.subject!r}"
                )
        if not suffix_verified:
            if not self.root.verify_signature(self.root.public_key):
                raise ChainValidationError(
                    f"root {self.root.subject!r} self-signature invalid"
                )
            if suffix_key is not None:
                suffix = path[1:]
                artifacts.VERIFIED_CHAINS.put(
                    suffix_key,
                    (
                        max(cert.not_before for cert in suffix),
                        min(cert.not_after for cert in suffix),
                    ),
                )
        if cache_key is not None:
            artifacts.VERIFIED_CHAINS.put(
                cache_key,
                (
                    max(cert.not_before for cert in path),
                    min(cert.not_after for cert in path),
                ),
            )


def complete_path(
    transmitted: Sequence[Certificate],
    cache_lookup: IssuerLookup,
    trust_store,
) -> CertificateChain:
    """Rebuild a full chain from a (possibly ICA-suppressed) server
    Certificate message — the client-side pipeline of Fig. 2.

    ``transmitted`` is leaf-first. Missing issuers are resolved through
    ``cache_lookup`` (the ICA cache) and finally the trust store's roots.
    Raises ChainValidationError when the path cannot be completed, which is
    exactly the false-positive suppression failure the client recovers from
    by retrying without the extension.
    """
    if not transmitted:
        raise ChainValidationError("empty certificate message")
    leaf = transmitted[0]
    by_subject = {c.subject: c for c in transmitted[1:]}
    intermediates: List[Certificate] = []
    current = leaf
    seen = {leaf.subject}
    for _ in range(16):  # generous path-length bound
        root = trust_store.get_by_subject(current.issuer)
        if root is not None:
            return CertificateChain(
                leaf=leaf, intermediates=tuple(intermediates), root=root
            )
        issuer = by_subject.get(current.issuer)
        if issuer is None:
            issuer = cache_lookup(current.issuer)
        if issuer is None:
            raise ChainValidationError(
                f"cannot complete path: no certificate for issuer "
                f"{current.issuer!r} (suppression false positive?)"
            )
        if issuer.subject in seen:
            raise ChainValidationError(
                f"issuer loop detected at {issuer.subject!r}"
            )
        seen.add(issuer.subject)
        intermediates.append(issuer)
        current = issuer
    raise ChainValidationError("path length exceeds 16 certificates")
