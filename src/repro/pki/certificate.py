"""X.509-shaped certificates with byte-exact DER encoding.

The certificate profile follows RFC 5280's structure (version, serial,
signature algorithm, issuer, validity, subject, SubjectPublicKeyInfo,
extensions, signature) closely enough that sizes are realistic, while the
cryptographic payloads come from :mod:`repro.pki.keys` /
:mod:`repro.pki.signatures`.

Per the paper's Table-1 assumption, each certificate carries "400 bytes of
attribute data": the builder pads a private extension so that the DER size
minus the public-key and signature payloads equals the requested attribute
budget exactly (or exceeds it by a single byte at the rare DER
length-field quantization points where adding one pad byte grows the
encoding by two).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ASN1Error, CertificateError
from repro.pki import asn1
from repro.runtime import artifacts
from repro.pki.algorithms import (
    SignatureAlgorithm,
    algorithm_from_oid,
    algorithm_oid,
)
from repro.pki.keys import KeyPair, PublicKey
from repro.pki.signatures import sign_payload, verify_payload

#: The paper's per-certificate attribute-data assumption (Table 1).
DEFAULT_ATTRIBUTE_BYTES = 400

_OID_COMMON_NAME = "2.5.4.3"
_OID_BASIC_CONSTRAINTS = "2.5.29.19"
_OID_ATTRIBUTE_PADDING = "1.3.6.1.4.1.99999.9.1"


def _encode_name(common_name: str) -> bytes:
    key = ("name", common_name)
    cached = artifacts.DER_FRAGMENTS.get(key)
    if cached is not None:
        return cached
    encoded = asn1.encode_sequence(
        asn1.encode_set(
            asn1.encode_sequence(
                asn1.encode_oid(_OID_COMMON_NAME),
                asn1.encode_utf8_string(common_name),
            )
        )
    )
    artifacts.DER_FRAGMENTS.put(key, encoded)
    return encoded


def _decode_name(node: asn1.DERNode) -> str:
    try:
        rdn = node.children[0].children[0]
        return rdn.children[1].content.decode("utf-8")
    except (IndexError, ASN1Error, UnicodeDecodeError) as exc:
        raise CertificateError(f"malformed Name: {exc}") from exc


def _encode_algorithm_identifier(name: str) -> bytes:
    key = ("alg", name)
    cached = artifacts.DER_FRAGMENTS.get(key)
    if cached is not None:
        return cached
    encoded = asn1.encode_sequence(asn1.encode_oid(algorithm_oid(name)))
    artifacts.DER_FRAGMENTS.put(key, encoded)
    return encoded


@dataclass(frozen=True)
class Certificate:
    """An issued certificate. Instances are immutable; ``to_der()`` is the
    canonical wire form and ``fingerprint()`` identifies the certificate
    everywhere in this package (caches, filters, suppression decisions)."""

    subject: str
    issuer: str
    serial: int
    public_key: PublicKey
    signature_algorithm: SignatureAlgorithm
    not_before: int
    not_after: int
    is_ca: bool
    signature: bytes
    attribute_bytes: int = DEFAULT_ATTRIBUTE_BYTES
    _der: bytes = field(default=b"", repr=False, compare=False)
    _tbs: bytes = field(default=b"", repr=False, compare=False)
    _fp: bytes = field(default=b"", repr=False, compare=False)

    # -- encoding ------------------------------------------------------------

    def to_der(self) -> bytes:
        if not self._der:
            artifacts.DER_ENCODE.record_miss()
            der = asn1.encode_sequence(
                self.tbs_der(),
                _encode_algorithm_identifier(self.signature_algorithm.name),
                asn1.encode_bit_string(self.signature),
            )
            object.__setattr__(self, "_der", der)
        else:
            artifacts.DER_ENCODE.record_hit()
        return self._der

    def tbs_der(self) -> bytes:
        """The to-be-signed body (what the issuer's signature covers)."""
        if not self._tbs:
            tbs = build_tbs(
                subject=self.subject,
                issuer=self.issuer,
                serial=self.serial,
                public_key=self.public_key,
                signature_algorithm=self.signature_algorithm,
                not_before=self.not_before,
                not_after=self.not_after,
                is_ca=self.is_ca,
                attribute_bytes=self.attribute_bytes,
            )
            object.__setattr__(self, "_tbs", tbs)
        return self._tbs

    def size_bytes(self) -> int:
        """Transmitted size: the DER length (what Table 1 accounts)."""
        return len(self.to_der())

    def fingerprint(self) -> bytes:
        """SHA-256 of the DER encoding — the AMQ filter item for this
        certificate (Fig. 2's set element ``c``). Memoized: the handshake
        pipeline fingerprints the same immutable certificates on every
        suppression decision."""
        if not self._fp:
            object.__setattr__(self, "_fp", hashlib.sha256(self.to_der()).digest())
        return self._fp

    # -- semantics ------------------------------------------------------------

    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def valid_at(self, epoch_seconds: int) -> bool:
        return self.not_before <= epoch_seconds <= self.not_after

    def verify_signature(self, issuer_key: PublicKey) -> bool:
        return verify_payload(issuer_key, self.tbs_der(), self.signature)

    # -- decoding ------------------------------------------------------------

    @classmethod
    def from_der(cls, data: bytes) -> "Certificate":
        try:
            outer = asn1.sequence_children(data)
        except ASN1Error as exc:
            raise CertificateError(f"not a certificate: {exc}") from exc
        if len(outer) != 3:
            raise CertificateError(
                f"certificate SEQUENCE has {len(outer)} children, expected 3"
            )
        tbs_node, sig_alg_node, sig_node = outer
        if sig_node.tag != asn1.TAG_BIT_STRING or not sig_node.content:
            raise CertificateError("malformed signature BIT STRING")
        signature = sig_node.content[1:]

        tbs = tbs_node.children
        if len(tbs) != 8:
            raise CertificateError(
                f"TBSCertificate has {len(tbs)} fields, expected 8"
            )
        version_node, serial_node, alg_node, issuer_node = tbs[:4]
        validity_node, subject_node, spki_node, ext_wrapper = tbs[4:]
        serial = asn1.decode_integer(serial_node.encode())
        sig_alg = algorithm_from_oid(asn1.decode_oid(alg_node.children[0].encode()))
        issuer = _decode_name(issuer_node)
        subject = _decode_name(subject_node)
        not_before = _decode_time(validity_node.children[0])
        not_after = _decode_time(validity_node.children[1])

        spki_alg = algorithm_from_oid(
            asn1.decode_oid(spki_node.children[0].children[0].encode())
        )
        key_bits = spki_node.children[1]
        if key_bits.tag != asn1.TAG_BIT_STRING or not key_bits.content:
            raise CertificateError("malformed SPKI BIT STRING")
        public_key = PublicKey(spki_alg, key_bits.content[1:])

        is_ca = False
        attribute_pad = 0
        for ext in ext_wrapper.children[0].children:
            oid = asn1.decode_oid(ext.children[0].encode())
            value = ext.children[-1].content
            if oid == _OID_BASIC_CONSTRAINTS:
                inner = asn1.parse(value)
                is_ca = bool(inner.children) and inner.children[0].content == b"\xff"
            elif oid == _OID_ATTRIBUTE_PADDING:
                attribute_pad = len(value)

        cert = cls(
            subject=subject,
            issuer=issuer,
            serial=serial,
            public_key=public_key,
            signature_algorithm=sig_alg,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            signature=signature,
            attribute_bytes=len(data) - len(public_key.key_bytes) - len(signature),
        )
        object.__setattr__(cert, "_der", bytes(data))
        object.__setattr__(cert, "_tbs", tbs_node.encode())
        return cert


def decode_certificate(data: bytes) -> Certificate:
    """Parse DER into a :class:`Certificate`, content-cached.

    Certificates are immutable and ``Certificate`` is frozen, so identical
    DER bytes always map to one shared instance — the TLS endpoints use
    this instead of :meth:`Certificate.from_der` to stop re-parsing the
    same chains on every simulated handshake. Malformed input is never
    cached and raises exactly like ``from_der``.
    """
    key = bytes(data)
    cached = artifacts.CERT_DECODE.get(key)
    if cached is not None:
        return cached
    cert = Certificate.from_der(key)
    artifacts.CERT_DECODE.put(key, cert)
    return cert


def _decode_time(node: asn1.DERNode) -> int:
    import calendar

    text = node.content.decode("ascii")
    if len(text) != 15 or not text.endswith("Z"):
        raise CertificateError(f"unsupported time encoding {text!r}")
    parts = (
        int(text[0:4]),
        int(text[4:6]),
        int(text[6:8]),
        int(text[8:10]),
        int(text[10:12]),
        int(text[12:14]),
    )
    return calendar.timegm(parts + (0, 0, 0))


def build_tbs(
    subject: str,
    issuer: str,
    serial: int,
    public_key: PublicKey,
    signature_algorithm: SignatureAlgorithm,
    not_before: int,
    not_after: int,
    is_ca: bool,
    attribute_bytes: int,
    _pad_override: Optional[int] = None,
) -> bytes:
    """Assemble the TBSCertificate, padding a private extension so the
    final certificate's non-cryptographic content hits ``attribute_bytes``.
    """
    spki = asn1.encode_sequence(
        asn1.encode_sequence(asn1.encode_oid(algorithm_oid(public_key.algorithm.name))),
        asn1.encode_bit_string(public_key.key_bytes),
    )
    basic_constraints = asn1.encode_sequence(
        asn1.encode_oid(_OID_BASIC_CONSTRAINTS),
        asn1.encode_boolean(True),
        asn1.encode_octet_string(
            asn1.encode_sequence(asn1.encode_boolean(True)) if is_ca
            else asn1.encode_sequence()
        ),
    )

    def assemble(pad_len: int) -> bytes:
        extensions = [basic_constraints]
        if pad_len > 0:
            extensions.append(
                asn1.encode_sequence(
                    asn1.encode_oid(_OID_ATTRIBUTE_PADDING),
                    asn1.encode_octet_string(b"\x00" * pad_len),
                )
            )
        return asn1.encode_sequence(
            asn1.encode_context(0, asn1.encode_integer(2)),
            asn1.encode_integer(serial),
            asn1.encode_sequence(asn1.encode_oid(algorithm_oid(signature_algorithm.name))),
            _encode_name(issuer),
            asn1.encode_sequence(
                asn1.encode_generalized_time(not_before),
                asn1.encode_generalized_time(not_after),
            ),
            _encode_name(subject),
            spki,
            asn1.encode_context(3, asn1.encode_sequence(*extensions)),
        )

    if _pad_override is not None:
        return assemble(_pad_override)

    # The solved pad depends only on component *lengths* (DER length
    # fields never see contents), so identical length profiles share one
    # fixed-point solution through the tbs_pads cache.
    pad_key = (
        signature_algorithm.name,
        public_key.algorithm.name,
        len(public_key.key_bytes),
        len(asn1.encode_integer(serial)),
        len(subject.encode("utf-8")),
        len(issuer.encode("utf-8")),
        is_ca,
        attribute_bytes,
    )
    pad = artifacts.TBS_PADS.get(pad_key)
    if pad is not None:
        return assemble(pad)

    # Solve for the pad length that makes the *certificate* (TBS + outer
    # algorithm identifier + signature BIT STRING) carry exactly
    # ``attribute_bytes`` of non-cryptographic content. DER length fields
    # shift with the pad, so iterate the exact assembled size to a fixed
    # point (converges in a few steps; clamped at pad 0).
    def non_crypto_bytes(pad: int) -> int:
        shell = asn1.encode_sequence(
            assemble(pad),
            _encode_algorithm_identifier(signature_algorithm.name),
            asn1.encode_bit_string(b"\x00" * signature_algorithm.signature_bytes),
        )
        return (
            len(shell)
            - len(public_key.key_bytes)
            - signature_algorithm.signature_bytes
        )

    pad = max(0, attribute_bytes - non_crypto_bytes(0))
    for _ in range(8):
        gap = attribute_bytes - non_crypto_bytes(pad)
        if gap == 0 or (gap < 0 and pad == 0):
            break
        pad = max(0, pad + gap)
    artifacts.TBS_PADS.put(pad_key, pad)
    return assemble(pad)


class CertificateBuilder:
    """Assembles and signs certificates.

    Example::

        builder = CertificateBuilder(signature_algorithm="dilithium3")
        root_kp = KeyPair(builder.algorithm, seed=1)
        cert = builder.build(
            subject="Example ICA", issuer="Example Root",
            subject_key=KeyPair(builder.algorithm, seed=2),
            signer_key=root_kp, serial=7, is_ca=True,
            not_before=0, not_after=10**10,
        )
    """

    def __init__(
        self,
        signature_algorithm,
        attribute_bytes: int = DEFAULT_ATTRIBUTE_BYTES,
    ) -> None:
        from repro.pki.algorithms import get_signature_algorithm

        if isinstance(signature_algorithm, str):
            signature_algorithm = get_signature_algorithm(signature_algorithm)
        self.algorithm = signature_algorithm
        self.attribute_bytes = attribute_bytes

    def build(
        self,
        subject: str,
        issuer: str,
        subject_key: KeyPair,
        signer_key: KeyPair,
        serial: int,
        is_ca: bool,
        not_before: int,
        not_after: int,
    ) -> Certificate:
        if not_after <= not_before:
            raise CertificateError(
                f"not_after ({not_after}) must exceed not_before ({not_before})"
            )
        tbs = build_tbs(
            subject=subject,
            issuer=issuer,
            serial=serial,
            public_key=subject_key.public_key,
            signature_algorithm=signer_key.algorithm,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            attribute_bytes=self.attribute_bytes,
        )
        signature = sign_payload(signer_key, tbs)
        cert = Certificate(
            subject=subject,
            issuer=issuer,
            serial=serial,
            public_key=subject_key.public_key,
            signature_algorithm=signer_key.algorithm,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            signature=signature,
            attribute_bytes=self.attribute_bytes,
        )
        artifacts.DER_ENCODE.record_miss()
        der = asn1.encode_sequence(
            tbs,
            _encode_algorithm_identifier(signer_key.algorithm.name),
            asn1.encode_bit_string(signature),
        )
        object.__setattr__(cert, "_der", der)
        object.__setattr__(cert, "_tbs", tbs)
        # Prime the decode cache: a TLS peer in this process will receive
        # exactly these bytes and can reuse this instance instead of
        # re-parsing them.
        artifacts.CERT_DECODE.put(der, cert)
        return cert
