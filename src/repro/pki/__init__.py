"""Synthetic Web-PKI substrate.

Everything the paper's evaluation touches about certificates is
size-driven: the handshake cost of a chain is the DER length of its
certificates, each dominated by the signature algorithm's public-key and
signature sizes (Table 1). This subpackage therefore implements a real
(minimal) DER encoder, X.509-shaped certificates whose cryptographic
payloads are *simulated* — deterministic bytes of exactly the published
per-algorithm lengths — plus the chain building/validation, OCSP stapling,
SCT and revocation machinery the paper's accounting includes.

The simulated signatures preserve sizes and verification semantics (a
tampered certificate fails verification) but provide **no security**; this
is a measurement substrate, not a cryptography library.
"""

from repro.pki.algorithms import (
    SignatureAlgorithm,
    KEMAlgorithm,
    SIGNATURE_ALGORITHMS,
    KEM_ALGORITHMS,
    get_signature_algorithm,
    get_kem_algorithm,
    conventional_algorithms,
    post_quantum_algorithms,
)
from repro.pki.keys import KeyPair, PublicKey
from repro.pki.signatures import sign_payload, verify_payload
from repro.pki.certificate import Certificate, CertificateBuilder, DEFAULT_ATTRIBUTE_BYTES
from repro.pki.chain import CertificateChain
from repro.pki.authority import CertificateAuthority, build_hierarchy
from repro.pki.ocsp import OCSPStaple
from repro.pki.sct import SignedCertificateTimestamp
from repro.pki.store import TrustStore, IntermediatePreload
from repro.pki.revocation import RevocationList

__all__ = [
    "SignatureAlgorithm",
    "KEMAlgorithm",
    "SIGNATURE_ALGORITHMS",
    "KEM_ALGORITHMS",
    "get_signature_algorithm",
    "get_kem_algorithm",
    "conventional_algorithms",
    "post_quantum_algorithms",
    "KeyPair",
    "PublicKey",
    "sign_payload",
    "verify_payload",
    "Certificate",
    "CertificateBuilder",
    "DEFAULT_ATTRIBUTE_BYTES",
    "CertificateChain",
    "CertificateAuthority",
    "build_hierarchy",
    "OCSPStaple",
    "SignedCertificateTimestamp",
    "TrustStore",
    "IntermediatePreload",
    "RevocationList",
]
