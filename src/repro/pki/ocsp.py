"""OCSP staples (RFC 6960, size-faithful simulation).

Table 1's accounting includes "one extra OCSP staple" per handshake: one
more signature plus a small response body. The staple here is a real DER
structure (serial, status, producedAt, responder signature) whose dominant
size term is the responder's signature, exactly as in the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CertificateError
from repro.pki import asn1
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair, PublicKey
from repro.pki.signatures import sign_payload, verify_payload
from repro.runtime import artifacts

STATUS_GOOD = 0
STATUS_REVOKED = 1
STATUS_UNKNOWN = 2


@dataclass(frozen=True)
class OCSPStaple:
    """A signed certificate-status assertion stapled into the handshake."""

    serial: int
    status: int
    produced_at: int
    signature: bytes
    responder_algorithm_name: str

    @classmethod
    def create(
        cls,
        certificate: Certificate,
        responder_key: KeyPair,
        produced_at: int,
        status: int = STATUS_GOOD,
    ) -> "OCSPStaple":
        if status not in (STATUS_GOOD, STATUS_REVOKED, STATUS_UNKNOWN):
            raise CertificateError(f"unknown OCSP status {status}")
        body = cls._tbs(certificate.serial, status, produced_at)
        return cls(
            serial=certificate.serial,
            status=status,
            produced_at=produced_at,
            signature=sign_payload(responder_key, body),
            responder_algorithm_name=responder_key.algorithm.name,
        )

    @staticmethod
    def _tbs(serial: int, status: int, produced_at: int) -> bytes:
        # Re-assembled by every client that verifies the staple; the
        # response body is immutable, so memoize it by content.
        key = ("ocsp-tbs", serial, status, produced_at)
        body = artifacts.DER_FRAGMENTS.get(key)
        if body is None:
            body = asn1.encode_sequence(
                asn1.encode_integer(serial),
                asn1.encode_integer(status),
                asn1.encode_generalized_time(produced_at),
            )
            artifacts.DER_FRAGMENTS.put(key, body)
        return body

    def to_der(self) -> bytes:
        # The server staples the same response into every handshake it
        # serves, so the encoding is content-keyed and memoized.
        key = ("ocsp", self.serial, self.status, self.produced_at, self.signature)
        der = artifacts.DER_FRAGMENTS.get(key)
        if der is None:
            der = asn1.encode_sequence(
                self._tbs(self.serial, self.status, self.produced_at),
                asn1.encode_bit_string(self.signature),
            )
            artifacts.DER_FRAGMENTS.put(key, der)
        return der

    def size_bytes(self) -> int:
        return len(self.to_der())

    def verify(self, responder_public_key: PublicKey) -> bool:
        body = self._tbs(self.serial, self.status, self.produced_at)
        return verify_payload(responder_public_key, body, self.signature)

    @property
    def is_good(self) -> bool:
        return self.status == STATUS_GOOD
