"""Minimal DER (Distinguished Encoding Rules) codec — ITU-T X.690.

The paper's Table 1 assumes certificates "in binary DER encoding", so our
synthetic certificates are genuinely DER-framed: sizes include the real
tag/length overhead, and the encoder/decoder round-trips bit-exactly.
Only the universal types X.509 structures need are implemented.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ASN1Error

# Universal tags.
TAG_BOOLEAN = 0x01
TAG_INTEGER = 0x02
TAG_BIT_STRING = 0x03
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_UTF8_STRING = 0x0C
TAG_PRINTABLE_STRING = 0x13
TAG_UTC_TIME = 0x17
TAG_GENERALIZED_TIME = 0x18
TAG_SEQUENCE = 0x30
TAG_SET = 0x31


def encode_length(length: int) -> bytes:
    """Definite-form DER length octets."""
    if length < 0:
        raise ASN1Error(f"negative length {length}")
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def decode_length(data: bytes, offset: int) -> Tuple[int, int]:
    """Return (length, offset after the length octets)."""
    if offset >= len(data):
        raise ASN1Error("truncated length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    num_octets = first & 0x7F
    if num_octets == 0:
        raise ASN1Error("indefinite lengths are not DER")
    if offset + num_octets > len(data):
        raise ASN1Error("truncated long-form length")
    length = int.from_bytes(data[offset : offset + num_octets], "big")
    if num_octets > 1 and data[offset] == 0:
        raise ASN1Error("non-minimal long-form length")
    if length < 0x80 and num_octets == 1:
        raise ASN1Error("non-minimal length encoding")
    return length, offset + num_octets


def encode_tlv(tag: int, content: bytes) -> bytes:
    return bytes([tag]) + encode_length(len(content)) + content


def decode_tlv(data: bytes, offset: int = 0) -> Tuple[int, bytes, int]:
    """Return (tag, content, offset after value)."""
    if offset >= len(data):
        raise ASN1Error("truncated TLV: no tag")
    tag = data[offset]
    length, body_start = decode_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise ASN1Error(
            f"truncated TLV: tag 0x{tag:02x} declares {length} bytes, "
            f"{len(data) - body_start} available"
        )
    return tag, data[body_start:body_end], body_end


# ---------------------------------------------------------------------------
# Encoders
# ---------------------------------------------------------------------------


def encode_integer(value: int) -> bytes:
    if value == 0:
        return encode_tlv(TAG_INTEGER, b"\x00")
    negative = value < 0
    magnitude = -value if negative else value
    body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8, "big")
    if negative:
        # Two's complement over len(body) bytes.
        value_tc = (1 << (8 * len(body))) + value
        body = value_tc.to_bytes(len(body), "big")
        if len(body) > 1 and body[0] == 0xFF and body[1] & 0x80:
            body = body[1:]
    else:
        while len(body) > 1 and body[0] == 0 and not body[1] & 0x80:
            body = body[1:]
    return encode_tlv(TAG_INTEGER, body)


def encode_boolean(value: bool) -> bytes:
    return encode_tlv(TAG_BOOLEAN, b"\xff" if value else b"\x00")


def encode_null() -> bytes:
    return encode_tlv(TAG_NULL, b"")


def encode_octet_string(value: bytes) -> bytes:
    return encode_tlv(TAG_OCTET_STRING, value)


def encode_bit_string(value: bytes, unused_bits: int = 0) -> bytes:
    if not 0 <= unused_bits <= 7:
        raise ASN1Error(f"unused_bits must be 0..7, got {unused_bits}")
    return encode_tlv(TAG_BIT_STRING, bytes([unused_bits]) + value)


def encode_utf8_string(value: str) -> bytes:
    return encode_tlv(TAG_UTF8_STRING, value.encode("utf-8"))


def encode_printable_string(value: str) -> bytes:
    return encode_tlv(TAG_PRINTABLE_STRING, value.encode("ascii"))


def _encode_arc(arc: int) -> bytes:
    chunk = [arc & 0x7F]
    arc >>= 7
    while arc:
        chunk.append(0x80 | (arc & 0x7F))
        arc >>= 7
    return bytes(reversed(chunk))


def encode_oid(dotted: str) -> bytes:
    parts = [int(p) for p in dotted.split(".")]
    if len(parts) < 2 or parts[0] > 2 or (parts[0] < 2 and parts[1] >= 40):
        raise ASN1Error(f"invalid OID {dotted!r}")
    if any(arc < 0 for arc in parts):
        raise ASN1Error(f"negative OID arc in {dotted!r}")
    # First two arcs combine into one base-128 subidentifier (X.690 §8.19).
    body = bytearray(_encode_arc(40 * parts[0] + parts[1]))
    for arc in parts[2:]:
        body.extend(_encode_arc(arc))
    return encode_tlv(TAG_OID, bytes(body))


def encode_generalized_time(epoch_seconds: int) -> bytes:
    """YYYYMMDDHHMMSSZ from unix epoch seconds (UTC, no leap handling)."""
    import time

    t = time.gmtime(epoch_seconds)
    text = (
        f"{t.tm_year:04d}{t.tm_mon:02d}{t.tm_mday:02d}"
        f"{t.tm_hour:02d}{t.tm_min:02d}{t.tm_sec:02d}Z"
    )
    return encode_tlv(TAG_GENERALIZED_TIME, text.encode("ascii"))


def encode_sequence(*parts: bytes) -> bytes:
    return encode_tlv(TAG_SEQUENCE, b"".join(parts))


def encode_set(*parts: bytes) -> bytes:
    return encode_tlv(TAG_SET, b"".join(parts))


def encode_context(number: int, content: bytes, constructed: bool = True) -> bytes:
    if not 0 <= number <= 30:
        raise ASN1Error(f"context tag {number} out of supported range")
    tag = 0x80 | number | (0x20 if constructed else 0)
    return encode_tlv(tag, content)


# ---------------------------------------------------------------------------
# Decoders
# ---------------------------------------------------------------------------


def decode_integer(tlv: bytes) -> int:
    tag, body, end = decode_tlv(tlv)
    if tag != TAG_INTEGER:
        raise ASN1Error(f"expected INTEGER, got tag 0x{tag:02x}")
    if end != len(tlv):
        raise ASN1Error("trailing bytes after INTEGER")
    if not body:
        raise ASN1Error("empty INTEGER body")
    return int.from_bytes(body, "big", signed=True)


def decode_oid(tlv: bytes) -> str:
    tag, body, end = decode_tlv(tlv)
    if tag != TAG_OID:
        raise ASN1Error(f"expected OID, got tag 0x{tag:02x}")
    if end != len(tlv) or not body:
        raise ASN1Error("malformed OID")
    if body[-1] & 0x80:
        raise ASN1Error("truncated OID arc")
    arcs = []
    arc = 0
    for byte in body:
        arc = (arc << 7) | (byte & 0x7F)
        if not byte & 0x80:
            arcs.append(arc)
            arc = 0
    first = arcs[0]
    if first < 80:
        parts = [first // 40, first % 40]
    else:
        parts = [2, first - 80]
    parts.extend(arcs[1:])
    return ".".join(str(p) for p in parts)


class DERNode:
    """A parsed DER element; constructed types expose ``children``."""

    __slots__ = ("tag", "content", "_children")

    def __init__(self, tag: int, content: bytes) -> None:
        self.tag = tag
        self.content = content
        self._children: Optional[List["DERNode"]] = None

    @property
    def constructed(self) -> bool:
        return bool(self.tag & 0x20)

    @property
    def children(self) -> List["DERNode"]:
        if not self.constructed:
            raise ASN1Error(f"tag 0x{self.tag:02x} is primitive")
        if self._children is None:
            self._children = parse_all(self.content)
        return self._children

    def encode(self) -> bytes:
        return encode_tlv(self.tag, self.content)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DERNode tag=0x{self.tag:02x} len={len(self.content)}>"


def parse(data: bytes) -> DERNode:
    """Parse exactly one DER element spanning all of ``data``."""
    tag, content, end = decode_tlv(data)
    if end != len(data):
        raise ASN1Error(f"{len(data) - end} trailing bytes after element")
    return DERNode(tag, content)


def parse_all(data: bytes) -> List[DERNode]:
    """Parse a concatenated sequence of DER elements."""
    nodes = []
    offset = 0
    while offset < len(data):
        tag, content, offset = decode_tlv(data, offset)
        nodes.append(DERNode(tag, content))
    return nodes


def sequence_children(data: bytes) -> List[DERNode]:
    """Parse ``data`` as a SEQUENCE and return its children."""
    node = parse(data)
    if node.tag != TAG_SEQUENCE:
        raise ASN1Error(f"expected SEQUENCE, got tag 0x{node.tag:02x}")
    return node.children
