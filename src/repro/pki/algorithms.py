"""Signature and KEM algorithm catalogue.

Byte sizes are the published values for the NIST Round-3 parameter sets the
paper evaluates (Table 1 uses Falcon, Dilithium and SPHINCS+ alongside
ECDSA-256 and RSA-2048; §5.2 uses NTRU-HPS-509 and LightSaber key shares).
CPU-time figures are rough medians from published liboqs/OpenSSL benchmarks
on contemporary x86 hardware; they only enter the latency *model* (the
paper's own Fig. 5-center approach fits latency against RTT, so round-trips
dominate and small CPU-time errors are immaterial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import UnknownAlgorithmError


@dataclass(frozen=True)
class SignatureAlgorithm:
    """A digital-signature scheme as the TLS/PKI layers see it."""

    name: str
    family: str  # "ecdsa", "rsa", "lattice", "hash", "multivariate"
    nist_level: int  # 0 for conventional algorithms
    public_key_bytes: int
    signature_bytes: int
    sign_ms: float
    verify_ms: float

    @property
    def post_quantum(self) -> bool:
        return self.nist_level > 0

    def auth_bytes_per_certificate(self, attribute_bytes: int = 400) -> int:
        """The paper's per-certificate accounting unit: attributes +
        public key + signature (Table 1's per-ICA increment before
        encoding overhead)."""
        return attribute_bytes + self.public_key_bytes + self.signature_bytes


@dataclass(frozen=True)
class KEMAlgorithm:
    """A key-encapsulation mechanism (TLS 1.3 key share)."""

    name: str
    public_key_bytes: int
    ciphertext_bytes: int
    shared_secret_bytes: int
    keygen_ms: float
    encaps_ms: float
    decaps_ms: float

    @property
    def post_quantum(self) -> bool:
        return self.name != "x25519"


_SIG_LIST: "List[SignatureAlgorithm]" = [
    # Conventional baselines.
    SignatureAlgorithm("ecdsa-p256", "ecdsa", 0, 64, 72, 0.03, 0.09),
    SignatureAlgorithm("rsa-2048", "rsa", 0, 270, 256, 0.60, 0.02),
    SignatureAlgorithm("ed25519", "ecdsa", 0, 32, 64, 0.03, 0.08),
    # Lattice signatures (NIST Round 3 winners).
    SignatureAlgorithm("falcon-512", "lattice", 1, 897, 666, 0.25, 0.04),
    SignatureAlgorithm("falcon-1024", "lattice", 5, 1793, 1280, 0.50, 0.09),
    SignatureAlgorithm("dilithium2", "lattice", 2, 1312, 2420, 0.08, 0.03),
    SignatureAlgorithm("dilithium3", "lattice", 3, 1952, 3293, 0.13, 0.05),
    SignatureAlgorithm("dilithium5", "lattice", 5, 2592, 4595, 0.16, 0.07),
    # Hash-based signatures.
    SignatureAlgorithm("sphincs-128s", "hash", 1, 32, 7856, 300.0, 0.35),
    SignatureAlgorithm("sphincs-128f", "hash", 1, 32, 17088, 15.0, 0.95),
    SignatureAlgorithm("sphincs-192s", "hash", 3, 48, 16224, 500.0, 0.50),
    SignatureAlgorithm("sphincs-256s", "hash", 5, 64, 29792, 900.0, 0.70),
    # Multivariate (withdrawn after Round 3, kept for the paper's intro
    # data point: "three Rainbow Ia certs amount to ~175.35 KB" — that
    # figure corresponds to the Ia-cyclic parameter set's ~58 KB keys).
    SignatureAlgorithm("rainbow-ia", "multivariate", 1, 58144, 66, 0.05, 0.02),
]

_KEM_LIST: "List[KEMAlgorithm]" = [
    KEMAlgorithm("x25519", 32, 32, 32, 0.03, 0.04, 0.04),
    KEMAlgorithm("ntru-hps-509", 699, 699, 32, 0.30, 0.05, 0.08),
    KEMAlgorithm("lightsaber", 672, 736, 32, 0.05, 0.06, 0.06),
    KEMAlgorithm("kyber512", 800, 768, 32, 0.04, 0.05, 0.04),
    KEMAlgorithm("kyber768", 1184, 1088, 32, 0.06, 0.07, 0.06),
]

SIGNATURE_ALGORITHMS: "Dict[str, SignatureAlgorithm]" = {
    alg.name: alg for alg in _SIG_LIST
}
KEM_ALGORITHMS: "Dict[str, KEMAlgorithm]" = {alg.name: alg for alg in _KEM_LIST}

#: The signature-set Table 1 reports, in the paper's row order.
TABLE1_ALGORITHMS = [
    "ecdsa-p256",
    "rsa-2048",
    "falcon-512",
    "falcon-1024",
    "dilithium2",
    "dilithium3",
    "dilithium5",
    "sphincs-128s",
]

#: Synthetic object identifiers so certificates stay DER-well-formed. The
#: conventional ones are real; PQ schemes had no ratified arcs in 2022, so
#: we use a private-enterprise arc.
ALGORITHM_OIDS: "Dict[str, str]" = {
    "ecdsa-p256": "1.2.840.10045.4.3.2",
    "rsa-2048": "1.2.840.113549.1.1.11",
    "ed25519": "1.3.101.112",
    "falcon-512": "1.3.6.1.4.1.99999.1.1",
    "falcon-1024": "1.3.6.1.4.1.99999.1.2",
    "dilithium2": "1.3.6.1.4.1.99999.2.1",
    "dilithium3": "1.3.6.1.4.1.99999.2.2",
    "dilithium5": "1.3.6.1.4.1.99999.2.3",
    "sphincs-128s": "1.3.6.1.4.1.99999.3.1",
    "sphincs-128f": "1.3.6.1.4.1.99999.3.2",
    "sphincs-192s": "1.3.6.1.4.1.99999.3.3",
    "sphincs-256s": "1.3.6.1.4.1.99999.3.4",
    "rainbow-ia": "1.3.6.1.4.1.99999.4.1",
}

_OID_TO_NAME = {oid: name for name, oid in ALGORITHM_OIDS.items()}


def get_signature_algorithm(name: str) -> SignatureAlgorithm:
    try:
        return SIGNATURE_ALGORITHMS[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown signature algorithm {name!r}; known: "
            f"{sorted(SIGNATURE_ALGORITHMS)}"
        ) from None


def get_kem_algorithm(name: str) -> KEMAlgorithm:
    try:
        return KEM_ALGORITHMS[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown KEM {name!r}; known: {sorted(KEM_ALGORITHMS)}"
        ) from None


def algorithm_oid(name: str) -> str:
    get_signature_algorithm(name)  # validates
    return ALGORITHM_OIDS[name]


def algorithm_from_oid(oid: str) -> SignatureAlgorithm:
    try:
        return SIGNATURE_ALGORITHMS[_OID_TO_NAME[oid]]
    except KeyError:
        raise UnknownAlgorithmError(f"no algorithm with OID {oid}") from None


def conventional_algorithms() -> "List[SignatureAlgorithm]":
    return [a for a in _SIG_LIST if not a.post_quantum]


def post_quantum_algorithms() -> "List[SignatureAlgorithm]":
    return [a for a in _SIG_LIST if a.post_quantum]
