"""Simulated signing and verification.

A signature over ``payload`` by a key pair is the deterministic expansion
of ``(public key bytes, payload)`` to exactly ``signature_bytes``. Anyone
holding the public key can recompute it, so:

* sizes are byte-exact per algorithm (the property every experiment needs);
* verification genuinely detects tampering (any payload or key change
  yields different bytes);
* there is **no unforgeability** — this substrate measures protocols, it
  does not secure them. The module refuses nothing; it is the caller's
  responsibility (documented in DESIGN.md) to not deploy this.
"""

from __future__ import annotations

import hmac

from repro.pki.keys import KeyPair, PublicKey, expand_bytes
from repro.runtime import artifacts


def sign_payload(keypair: KeyPair, payload: bytes) -> bytes:
    """Produce a simulated signature of the correct per-algorithm size."""
    return _signature_bytes(keypair.public_key, payload)


def verify_payload(public_key: PublicKey, payload: bytes, signature: bytes) -> bool:
    """Check a simulated signature (constant-time compare)."""
    if len(signature) != public_key.algorithm.signature_bytes:
        return False
    expected = _signature_bytes(public_key, payload)
    return hmac.compare_digest(expected, signature)


def _signature_bytes(public_key: PublicKey, payload: bytes) -> bytes:
    import hashlib

    digest = hashlib.sha256(public_key.key_bytes + payload).digest()
    # The counter-mode expansion to multi-KB PQ signature sizes dominates
    # this function; (key, payload) pairs repeat constantly (the same TBS
    # verified on every handshake), so it is content-cached. The digest
    # binds key and payload, making it the whole cache key.
    key = (public_key.algorithm.name, digest)
    cached = artifacts.SIGNATURE_BYTES.get(key)
    if cached is not None:
        return cached
    signature = expand_bytes(
        digest,
        public_key.algorithm.signature_bytes,
        label=b"sig:" + public_key.algorithm.name.encode(),
    )
    artifacts.SIGNATURE_BYTES.put(key, signature)
    return signature
