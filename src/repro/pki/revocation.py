"""Certificate revocation lists.

Revocation matters to the paper in one place: §4.2 requires the filter to
support *dynamic updates* so "revoked or expired certificates" can be
deleted from the advertised set. ``RevocationList`` is the source of truth
those deletions are driven from, and plugs into
:meth:`repro.pki.chain.CertificateChain.validate`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.pki import asn1
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair
from repro.pki.signatures import sign_payload


class RevocationList:
    """A per-PKI revocation set keyed by (issuer, serial)."""

    def __init__(self) -> None:
        self._revoked: Set[Tuple[str, int]] = set()
        self._revoked_at: Dict[Tuple[str, int], int] = {}

    def revoke(self, certificate: Certificate, at_time: int = 0) -> None:
        key = (certificate.issuer, certificate.serial)
        self._revoked.add(key)
        self._revoked_at.setdefault(key, at_time)

    def unrevoke(self, certificate: Certificate) -> bool:
        """Remove an entry (e.g. issued in error); True when present."""
        key = (certificate.issuer, certificate.serial)
        self._revoked_at.pop(key, None)
        try:
            self._revoked.remove(key)
        except KeyError:
            return False
        return True

    def is_revoked(self, certificate: Certificate) -> bool:
        return (certificate.issuer, certificate.serial) in self._revoked

    def revoked_at(self, certificate: Certificate) -> Optional[int]:
        return self._revoked_at.get((certificate.issuer, certificate.serial))

    def __len__(self) -> int:
        return len(self._revoked)

    def to_der(self, signer: KeyPair, this_update: int) -> bytes:
        """A signed CRL-shaped document (for size accounting in the
        revocation-traffic ablation)."""
        entries = [
            asn1.encode_sequence(
                asn1.encode_utf8_string(issuer),
                asn1.encode_integer(serial),
                asn1.encode_generalized_time(
                    self._revoked_at.get((issuer, serial), this_update)
                ),
            )
            for issuer, serial in sorted(self._revoked)
        ]
        body = asn1.encode_sequence(
            asn1.encode_generalized_time(this_update),
            asn1.encode_sequence(*entries),
        )
        return asn1.encode_sequence(
            body, asn1.encode_bit_string(sign_payload(signer, body))
        )
