"""Signed Certificate Timestamps (RFC 6962, size-faithful simulation).

Table 1 assumes two SCTs per handshake ("Chrome requests two to five SCTs
... Apple requires three"); each SCT costs one log signature plus a fixed
header (log id, timestamp). We encode the RFC 6962 v1 layout: 1-byte
version, 32-byte log id, 8-byte timestamp, 2-byte extensions length, then
the log's signature.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.pki.certificate import Certificate
from repro.pki.keys import KeyPair, PublicKey
from repro.pki.signatures import sign_payload, verify_payload

_HEADER = struct.Struct(">B32sQH")


@dataclass(frozen=True)
class SignedCertificateTimestamp:
    """One CT log's inclusion promise for a certificate."""

    log_id: bytes  # 32 bytes
    timestamp_ms: int
    signature: bytes
    log_algorithm_name: str

    @classmethod
    def create(
        cls,
        certificate: Certificate,
        log_key: KeyPair,
        log_id: bytes,
        timestamp_ms: int,
    ) -> "SignedCertificateTimestamp":
        if len(log_id) != 32:
            raise ValueError(f"log id must be 32 bytes, got {len(log_id)}")
        signed_body = cls._signed_body(certificate, log_id, timestamp_ms)
        return cls(
            log_id=log_id,
            timestamp_ms=timestamp_ms,
            signature=sign_payload(log_key, signed_body),
            log_algorithm_name=log_key.algorithm.name,
        )

    @staticmethod
    def _signed_body(certificate: Certificate, log_id: bytes, timestamp_ms: int) -> bytes:
        return log_id + timestamp_ms.to_bytes(8, "big") + certificate.fingerprint()

    def to_bytes(self) -> bytes:
        return _HEADER.pack(1, self.log_id, self.timestamp_ms, 0) + self.signature

    def size_bytes(self) -> int:
        return _HEADER.size + len(self.signature)

    def verify(self, certificate: Certificate, log_public_key: PublicKey) -> bool:
        body = self._signed_body(certificate, self.log_id, self.timestamp_ms)
        return verify_payload(log_public_key, body, self.signature)
