"""Simulated key pairs with exact published key sizes.

Key material is deterministic: a key pair is fully defined by (algorithm,
seed), and the public key bytes are a pseudorandom expansion of the seed to
exactly ``algorithm.public_key_bytes``. This keeps every certificate,
handshake and experiment reproducible from integer seeds while carrying
byte-exact payload sizes through the TLS substrate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.pki.algorithms import SignatureAlgorithm


def expand_bytes(seed: bytes, length: int, label: bytes = b"") -> bytes:
    """Deterministically expand ``seed`` to ``length`` bytes (SHAKE-256,
    domain-separated by a length-framed ``label``).

    A single XOF call: multi-KB post-quantum key and signature sizes are
    the common case, and an extendable-output function produces them in
    one pass (shorter outputs are prefixes of longer ones)."""
    return hashlib.shake_256(
        len(label).to_bytes(4, "big") + label + seed
    ).digest(length)


@dataclass(frozen=True)
class PublicKey:
    """A public key: the algorithm plus ``public_key_bytes`` opaque bytes."""

    algorithm: SignatureAlgorithm
    key_bytes: bytes

    def __post_init__(self) -> None:
        if len(self.key_bytes) != self.algorithm.public_key_bytes:
            raise ValueError(
                f"{self.algorithm.name} public key must be "
                f"{self.algorithm.public_key_bytes} bytes, got {len(self.key_bytes)}"
            )

    def fingerprint(self) -> bytes:
        return hashlib.sha256(self.key_bytes).digest()


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair derived from an integer seed."""

    algorithm: SignatureAlgorithm
    seed: int
    _public: PublicKey = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        seed_bytes = self.seed.to_bytes(16, "big", signed=False)
        key_bytes = expand_bytes(
            seed_bytes,
            self.algorithm.public_key_bytes,
            label=b"pk:" + self.algorithm.name.encode(),
        )
        object.__setattr__(self, "_public", PublicKey(self.algorithm, key_bytes))

    @property
    def public_key(self) -> PublicKey:
        return self._public
