"""TLS certificate compression (RFC 8879) — the deployed alternative.

Before ICA suppression, the ecosystem's answer to bulky Certificate
messages was ``compress_certificate``: the server sends a zlib/brotli
compressed CompressedCertificate message. It works well for conventional
chains (X.509 boilerplate and shared issuer names compress), but
post-quantum keys and signatures are uniform-random bytes — roughly
**incompressible** — so compression's savings collapse exactly where the
PQ problem begins. This module implements the RFC 8879 message framing
over zlib (stdlib) and an accounting helper the comparison experiment
uses to show: compression helps conventional chains ~2x, PQ chains a few
percent; suppression removes whole certificates regardless of entropy;
and the two compose.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence, Set

from repro.errors import DecodeError
from repro.pki.chain import CertificateChain
from repro.tls.messages import (
    CertificateEntry,
    CertificateMessage,
    encode_handshake,
    split_handshake_stream,
)

#: RFC 8879 handshake message type.
COMPRESSED_CERTIFICATE_TYPE = 25

#: RFC 8879 algorithm code points (zlib is the stdlib-available one).
ALGORITHM_ZLIB = 1


@dataclass(frozen=True)
class CompressedCertificate:
    """The CompressedCertificate handshake message."""

    algorithm: int
    uncompressed_length: int
    compressed: bytes

    def encode(self) -> bytes:
        body = (
            struct.pack(">H", self.algorithm)
            + self.uncompressed_length.to_bytes(3, "big")
            + len(self.compressed).to_bytes(3, "big")
            + self.compressed
        )
        return encode_handshake(COMPRESSED_CERTIFICATE_TYPE, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "CompressedCertificate":
        if len(body) < 8:
            raise DecodeError("CompressedCertificate too short")
        (algorithm,) = struct.unpack_from(">H", body, 0)
        uncompressed_length = int.from_bytes(body[2:5], "big")
        compressed_length = int.from_bytes(body[5:8], "big")
        compressed = body[8:]
        if len(compressed) != compressed_length:
            raise DecodeError("CompressedCertificate length mismatch")
        return cls(algorithm, uncompressed_length, compressed)


def compress_certificate_message(
    message: CertificateMessage, level: int = 6
) -> CompressedCertificate:
    """Compress a Certificate message body per RFC 8879 (zlib)."""
    # RFC 8879 compresses the Certificate *body* (without handshake header).
    body = message.encode()[4:]
    return CompressedCertificate(
        algorithm=ALGORITHM_ZLIB,
        uncompressed_length=len(body),
        compressed=zlib.compress(body, level),
    )


def decompress_certificate_message(
    compressed: CompressedCertificate,
    max_uncompressed: int = 1 << 24,
) -> CertificateMessage:
    """Inverse of :func:`compress_certificate_message` with the RFC's
    decompression-bomb guard."""
    if compressed.algorithm != ALGORITHM_ZLIB:
        raise DecodeError(
            f"unsupported compression algorithm {compressed.algorithm}"
        )
    if compressed.uncompressed_length > max_uncompressed:
        raise DecodeError(
            f"declared uncompressed size {compressed.uncompressed_length} "
            f"exceeds limit {max_uncompressed}"
        )
    try:
        body = zlib.decompress(
            compressed.compressed, bufsize=compressed.uncompressed_length or 64
        )
    except zlib.error as exc:
        raise DecodeError(f"zlib decompression failed: {exc}") from exc
    if len(body) != compressed.uncompressed_length:
        raise DecodeError(
            f"decompressed to {len(body)} bytes, header declared "
            f"{compressed.uncompressed_length}"
        )
    return CertificateMessage.decode_body(body)


def certificate_message_for(
    chain: CertificateChain, suppressed: Optional[Set[bytes]] = None
) -> CertificateMessage:
    """Plain Certificate message for a chain (optionally suppressed)."""
    entries = [
        CertificateEntry(cert.to_der())
        for cert in chain.transmitted_certificates(suppressed or set())
    ]
    return CertificateMessage(entries=tuple(entries))


@dataclass(frozen=True)
class CompressionAccounting:
    """Byte accounting for the compression-vs-suppression comparison."""

    plain_bytes: int
    compressed_bytes: int
    suppressed_bytes: int
    suppressed_compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.plain_bytes

    @property
    def suppression_ratio(self) -> float:
        return self.suppressed_bytes / self.plain_bytes

    @property
    def combined_ratio(self) -> float:
        return self.suppressed_compressed_bytes / self.plain_bytes


def compare_mechanisms(
    chain: CertificateChain,
    suppressed: Optional[Set[bytes]] = None,
) -> CompressionAccounting:
    """Measure the Certificate-message size under all four mechanisms
    (plain / compressed / suppressed / suppressed+compressed)."""
    if suppressed is None:
        suppressed = set(chain.ica_fingerprints())
    plain = certificate_message_for(chain)
    suppressed_msg = certificate_message_for(chain, suppressed)
    return CompressionAccounting(
        plain_bytes=len(plain.encode()),
        compressed_bytes=len(compress_certificate_message(plain).encode()),
        suppressed_bytes=len(suppressed_msg.encode()),
        suppressed_compressed_bytes=len(
            compress_certificate_message(suppressed_msg).encode()
        ),
    )
