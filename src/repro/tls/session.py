"""Paired in-memory handshake runner.

``run_handshake`` wires a :class:`TLSClient` to a :class:`TLSServer`,
implements the paper's false-positive recovery ("on this repeated
handshake, the client does not include the IC Suppression extension and
the handshake is completed as usual", §4.2), and returns a trace with the
byte accounting every experiment consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro import obs
from repro.errors import HandshakeError
from repro.tls.client import ClientConfig, TLSClient
from repro.tls.record import wire_size
from repro.tls.server import ServerConfig, ServerFlightResult, TLSServer


class HandshakeOutcome(enum.Enum):
    COMPLETED = "completed"
    COMPLETED_AFTER_RETRY = "completed-after-retry"
    #: mTLS double false positive: the retry hit the *other* cause and a
    #: final fully-plain attempt completed the handshake.
    COMPLETED_AFTER_FALLBACK = "completed-after-fallback"
    FAILED = "failed"


class RetryCause(enum.Enum):
    """Typed discriminator for why an attempt warrants a plain retry.

    Set from the stage that *detected* the failure — the client path
    builder (server over-suppressed the Certificate message) or the
    server's client-certificate verifier (mTLS: the client over-suppressed
    its own chain) — never inferred from failure-reason text.
    """

    #: The client's advertised filter false-positived on a chain ICA, so
    #: the server omitted an ICA the client cannot recover locally.
    SERVER_SUPPRESSION_FP = "server-fp"
    #: mTLS: the server's advertised filter false-positived on the
    #: client's own chain, so the client over-suppressed itself.
    CLIENT_AUTH_FP = "client-auth-fp"


_OUTCOME_LABELS = {
    outcome: (("outcome", outcome.value),) for outcome in HandshakeOutcome
}
_RETRY_LABELS = {cause: (("cause", cause.value),) for cause in RetryCause}


@dataclass(frozen=True)
class AttemptTrace:
    """Byte accounting for one handshake attempt."""

    client_hello_bytes: int
    server_flight_bytes: int
    client_finished_bytes: int
    certificate_payload_bytes: int
    auth_data_bytes: int
    ica_bytes_sent: int
    ica_bytes_suppressed: int
    suppressed_ica_count: int
    used_suppression_extension: bool
    succeeded: bool
    failure_reason: str = ""
    #: mTLS: the client's own chain accounting (zero in server-auth-only).
    client_auth_ica_bytes_sent: int = 0
    client_auth_ica_bytes_suppressed: int = 0
    client_auth_suppressed_count: int = 0
    #: Why this attempt is retryable; None for successes and hard failures.
    retry_cause: Optional[RetryCause] = None

    @property
    def total_bytes(self) -> int:
        return (
            self.client_hello_bytes
            + self.server_flight_bytes
            + self.client_finished_bytes
        )

    @property
    def total_wire_bytes(self) -> int:
        """Total including TLS record framing."""
        return (
            wire_size(self.client_hello_bytes)
            + wire_size(self.server_flight_bytes)
            + wire_size(self.client_finished_bytes)
        )


@dataclass(frozen=True)
class HandshakeTrace:
    outcome: HandshakeOutcome
    attempts: List[AttemptTrace]

    @property
    def succeeded(self) -> bool:
        return self.outcome is not HandshakeOutcome.FAILED

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    @property
    def false_positive(self) -> bool:
        """True when a suppression attempt failed and the plain retry
        succeeded — the observable signature of a filter false positive."""
        return self.outcome in (
            HandshakeOutcome.COMPLETED_AFTER_RETRY,
            HandshakeOutcome.COMPLETED_AFTER_FALLBACK,
        )

    # -- aggregates over every attempt (a false positive pays for both) --------

    @property
    def total_bytes(self) -> int:
        return sum(a.total_bytes for a in self.attempts)

    @property
    def total_wire_bytes(self) -> int:
        return sum(a.total_wire_bytes for a in self.attempts)

    @property
    def ica_bytes_sent(self) -> int:
        return sum(a.ica_bytes_sent for a in self.attempts)

    @property
    def ica_bytes_suppressed(self) -> int:
        """ICA bytes avoided, net of retry overhead (only counted on the
        attempt that completed)."""
        return sum(
            a.ica_bytes_suppressed for a in self.attempts if a.succeeded
        )

    @property
    def auth_data_bytes(self) -> int:
        return sum(a.auth_data_bytes for a in self.attempts)

    @property
    def suppressed_ica_count(self) -> int:
        return sum(a.suppressed_ica_count for a in self.attempts if a.succeeded)

    @property
    def final_attempt(self) -> AttemptTrace:
        return self.attempts[-1]


def _run_attempt(
    client_config: ClientConfig, server_config: ServerConfig
) -> AttemptTrace:
    client = TLSClient(client_config)
    server = TLSServer(server_config)

    with obs.span("tls.client.hello"):
        hello = client.create_client_hello()
    with obs.span("tls.server.flight"):
        flight: ServerFlightResult = server.process_client_hello(hello)
    with obs.span("tls.client.process_flight"):
        result = client.process_server_flight(flight.flight)

    staple_bytes = (
        server_config.ocsp_staple.size_bytes() if server_config.ocsp_staple else 0
    ) + sum(s.size_bytes() for s in server_config.scts)
    cv_sig_bytes = server_config.credential.keypair.algorithm.signature_bytes
    auth_bytes = flight.certificate_payload_bytes + staple_bytes + cv_sig_bytes

    succeeded = result.complete
    retry_cause: Optional[RetryCause] = None
    if succeeded:
        with obs.span("tls.server.client_flight"):
            verdict = server.process_client_flight(result.client_finished)
        if not verdict.ok:
            succeeded = False
            result = replace(
                result,
                failure_reason=verdict.reason or "client flight rejected",
                needs_retry=verdict.needs_retry,
            )
            if verdict.needs_retry:
                retry_cause = RetryCause.CLIENT_AUTH_FP
    elif result.needs_retry:
        retry_cause = RetryCause.SERVER_SUPPRESSION_FP

    return AttemptTrace(
        client_hello_bytes=len(hello),
        server_flight_bytes=len(flight.flight),
        client_finished_bytes=len(result.client_finished),
        certificate_payload_bytes=flight.certificate_payload_bytes,
        auth_data_bytes=auth_bytes,
        ica_bytes_sent=flight.ica_bytes_sent,
        # Both byte and count figures describe the attempt as the server
        # executed it — a failed suppression attempt still omitted ICAs.
        # HandshakeTrace's aggregates filter on ``succeeded``.
        ica_bytes_suppressed=flight.ica_bytes_suppressed,
        suppressed_ica_count=flight.ica_suppressed_count,
        used_suppression_extension=client_config.ica_filter_payload is not None,
        succeeded=succeeded,
        failure_reason=result.failure_reason,
        client_auth_ica_bytes_sent=result.own_ica_bytes_sent,
        client_auth_ica_bytes_suppressed=result.own_ica_bytes_suppressed,
        client_auth_suppressed_count=result.own_suppressed_ica_count,
        retry_cause=retry_cause,
    )


def _finish(trace: HandshakeTrace) -> HandshakeTrace:
    reg = obs.registry()
    if reg is not None:
        reg.inc("tls.handshake.runs")
        reg.inc("tls.handshake.attempts", len(trace.attempts))
        reg.inc("tls.handshake.outcomes", 1, _OUTCOME_LABELS[trace.outcome])
        # One retry per non-final attempt that carried a typed cause, so
        # the closure invariant attempts == runs + retries holds for the
        # three-attempt fallback path as well as the single retry.
        for attempt in trace.attempts[:-1]:
            if attempt.retry_cause is not None:
                reg.inc(
                    "tls.handshake.retries", 1, _RETRY_LABELS[attempt.retry_cause]
                )
    return trace


def run_handshake(
    client_config: ClientConfig, server_config: ServerConfig
) -> HandshakeTrace:
    """Run a handshake, retrying once without the IC-filter extension when
    the suppression attempt cannot complete the verification path."""
    first = _run_attempt(client_config, server_config)
    if first.succeeded:
        return _finish(HandshakeTrace(HandshakeOutcome.COMPLETED, [first]))

    # Two false-positive recoveries exist: the client's filter caused the
    # server to over-suppress (retry without the ClientHello extension),
    # or — under mutual TLS — the server's advertised filter caused the
    # *client* to over-suppress its own chain (retry without client-side
    # suppression). The attempt carries a typed cause set by whichever
    # stage detected the incompletable path; the config guards only keep
    # us from "retrying without" a feature that was never on.
    server_fp = (
        first.retry_cause is RetryCause.SERVER_SUPPRESSION_FP
        and client_config.ica_filter_payload is not None
    )
    client_fp = (
        first.retry_cause is RetryCause.CLIENT_AUTH_FP
        and client_config.own_suppression_handler is not None
    )
    if not server_fp and not client_fp:
        return _finish(HandshakeTrace(HandshakeOutcome.FAILED, [first]))

    plain_config = replace(
        client_config,
        ica_filter_payload=(
            None if server_fp else client_config.ica_filter_payload
        ),
        own_suppression_handler=(
            None if client_fp else client_config.own_suppression_handler
        ),
        seed=client_config.seed + 1,
    )
    second = _run_attempt(plain_config, server_config)
    if second.succeeded:
        return _finish(
            HandshakeTrace(
                HandshakeOutcome.COMPLETED_AFTER_RETRY, [first, second]
            )
        )

    # mTLS double false positive: the retry disabled only the feature the
    # first attempt's cause named, and the second attempt then tripped the
    # *other* cause (e.g. server-suppression FP first, client-auth FP on
    # the retry). One final, fully-plain attempt — both features off — is
    # still bounded and recovers what a terminal failure would waste.
    other_feature_on = (
        plain_config.ica_filter_payload is not None
        if second.retry_cause is RetryCause.SERVER_SUPPRESSION_FP
        else plain_config.own_suppression_handler is not None
    )
    if (
        second.retry_cause is not None
        and second.retry_cause is not first.retry_cause
        and other_feature_on
    ):
        fallback_config = replace(
            plain_config,
            ica_filter_payload=None,
            own_suppression_handler=None,
            seed=plain_config.seed + 1,
        )
        third = _run_attempt(fallback_config, server_config)
        attempts = [first, second, third]
        if third.succeeded:
            return _finish(
                HandshakeTrace(HandshakeOutcome.COMPLETED_AFTER_FALLBACK, attempts)
            )
        return _finish(HandshakeTrace(HandshakeOutcome.FAILED, attempts))
    return _finish(HandshakeTrace(HandshakeOutcome.FAILED, [first, second]))
