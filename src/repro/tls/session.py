"""Paired in-memory handshake runner.

``run_handshake`` wires a :class:`TLSClient` to a :class:`TLSServer`,
implements the paper's false-positive recovery ("on this repeated
handshake, the client does not include the IC Suppression extension and
the handshake is completed as usual", §4.2), and returns a trace with the
byte accounting every experiment consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import HandshakeError
from repro.tls.client import ClientConfig, TLSClient
from repro.tls.record import wire_size
from repro.tls.server import ServerConfig, ServerFlightResult, TLSServer


class HandshakeOutcome(enum.Enum):
    COMPLETED = "completed"
    COMPLETED_AFTER_RETRY = "completed-after-retry"
    FAILED = "failed"


@dataclass(frozen=True)
class AttemptTrace:
    """Byte accounting for one handshake attempt."""

    client_hello_bytes: int
    server_flight_bytes: int
    client_finished_bytes: int
    certificate_payload_bytes: int
    auth_data_bytes: int
    ica_bytes_sent: int
    ica_bytes_suppressed: int
    suppressed_ica_count: int
    used_suppression_extension: bool
    succeeded: bool
    failure_reason: str = ""
    #: mTLS: the client's own chain accounting (zero in server-auth-only).
    client_auth_ica_bytes_sent: int = 0
    client_auth_ica_bytes_suppressed: int = 0
    client_auth_suppressed_count: int = 0

    @property
    def total_bytes(self) -> int:
        return (
            self.client_hello_bytes
            + self.server_flight_bytes
            + self.client_finished_bytes
        )

    @property
    def total_wire_bytes(self) -> int:
        """Total including TLS record framing."""
        return (
            wire_size(self.client_hello_bytes)
            + wire_size(self.server_flight_bytes)
            + wire_size(self.client_finished_bytes)
        )


@dataclass(frozen=True)
class HandshakeTrace:
    outcome: HandshakeOutcome
    attempts: List[AttemptTrace]

    @property
    def succeeded(self) -> bool:
        return self.outcome is not HandshakeOutcome.FAILED

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    @property
    def false_positive(self) -> bool:
        """True when a suppression attempt failed and the plain retry
        succeeded — the observable signature of a filter false positive."""
        return self.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY

    # -- aggregates over every attempt (a false positive pays for both) --------

    @property
    def total_bytes(self) -> int:
        return sum(a.total_bytes for a in self.attempts)

    @property
    def total_wire_bytes(self) -> int:
        return sum(a.total_wire_bytes for a in self.attempts)

    @property
    def ica_bytes_sent(self) -> int:
        return sum(a.ica_bytes_sent for a in self.attempts)

    @property
    def ica_bytes_suppressed(self) -> int:
        """ICA bytes avoided, net of retry overhead (only counted on the
        attempt that completed)."""
        return sum(
            a.ica_bytes_suppressed for a in self.attempts if a.succeeded
        )

    @property
    def auth_data_bytes(self) -> int:
        return sum(a.auth_data_bytes for a in self.attempts)

    @property
    def suppressed_ica_count(self) -> int:
        return sum(a.suppressed_ica_count for a in self.attempts if a.succeeded)

    @property
    def final_attempt(self) -> AttemptTrace:
        return self.attempts[-1]


def _run_attempt(
    client_config: ClientConfig, server_config: ServerConfig
) -> AttemptTrace:
    client = TLSClient(client_config)
    server = TLSServer(server_config)

    hello = client.create_client_hello()
    flight: ServerFlightResult = server.process_client_hello(hello)
    result = client.process_server_flight(flight.flight)

    staple_bytes = (
        server_config.ocsp_staple.size_bytes() if server_config.ocsp_staple else 0
    ) + sum(s.size_bytes() for s in server_config.scts)
    cv_sig_bytes = server_config.credential.keypair.algorithm.signature_bytes
    auth_bytes = flight.certificate_payload_bytes + staple_bytes + cv_sig_bytes

    succeeded = result.complete
    if succeeded:
        verdict = server.process_client_flight(result.client_finished)
        if not verdict.ok:
            succeeded = False
            result = replace(
                result,
                failure_reason=verdict.reason or "client flight rejected",
                needs_retry=verdict.needs_retry,
            )

    return AttemptTrace(
        client_hello_bytes=len(hello),
        server_flight_bytes=len(flight.flight),
        client_finished_bytes=len(result.client_finished),
        certificate_payload_bytes=flight.certificate_payload_bytes,
        auth_data_bytes=auth_bytes,
        ica_bytes_sent=flight.ica_bytes_sent,
        ica_bytes_suppressed=flight.ica_bytes_suppressed,
        suppressed_ica_count=result.suppressed_ica_count if succeeded else 0,
        used_suppression_extension=client_config.ica_filter_payload is not None,
        succeeded=succeeded,
        failure_reason=result.failure_reason,
        client_auth_ica_bytes_sent=result.own_ica_bytes_sent,
        client_auth_ica_bytes_suppressed=result.own_ica_bytes_suppressed,
        client_auth_suppressed_count=result.own_suppressed_ica_count,
    )


def run_handshake(
    client_config: ClientConfig, server_config: ServerConfig
) -> HandshakeTrace:
    """Run a handshake, retrying once without the IC-filter extension when
    the suppression attempt cannot complete the verification path."""
    first = _run_attempt(client_config, server_config)
    if first.succeeded:
        return HandshakeTrace(HandshakeOutcome.COMPLETED, [first])

    # Two false-positive recoveries exist: the client's filter caused the
    # server to over-suppress (retry without the ClientHello extension),
    # or — under mutual TLS — the server's advertised filter caused the
    # *client* to over-suppress its own chain (retry without client-side
    # suppression).
    server_fp = (
        client_config.ica_filter_payload is not None
        and "cannot complete path" in first.failure_reason
        and not first.failure_reason.startswith("client-auth:")
    )
    client_fp = (
        client_config.own_suppression_handler is not None
        and first.failure_reason.startswith("client-auth:")
        and "cannot complete path" in first.failure_reason
    )
    if not server_fp and not client_fp:
        return HandshakeTrace(HandshakeOutcome.FAILED, [first])

    plain_config = replace(
        client_config,
        ica_filter_payload=(
            None if server_fp else client_config.ica_filter_payload
        ),
        own_suppression_handler=(
            None if client_fp else client_config.own_suppression_handler
        ),
        seed=client_config.seed + 1,
    )
    second = _run_attempt(plain_config, server_config)
    if second.succeeded:
        return HandshakeTrace(
            HandshakeOutcome.COMPLETED_AFTER_RETRY, [first, second]
        )
    return HandshakeTrace(HandshakeOutcome.FAILED, [first, second])
