"""Byte-accurate TLS 1.3 handshake substrate.

Implements the message layer (ClientHello ... Finished codecs, extension
framework, record framing), a size-faithful KEM simulation, the HKDF key
schedule, and client/server handshake state machines including the paper's
IC-filter ClientHello extension (§4.2) and the false-positive retry.

This is a *handshake measurement* stack: message flows, sizes and
validation semantics are real; record protection (encryption) is modelled
as identity transforms because encrypted and plaintext handshake bytes are
the same length for the purposes of every experiment in the paper.
"""

from repro.tls.record import (
    RECORD_HEADER_BYTES,
    MAX_FRAGMENT_BYTES,
    ContentType,
    fragment_payload,
    wire_size,
    parse_records,
)
from repro.tls.alerts import Alert, AlertDescription
from repro.tls.extensions import Extension, ExtensionType, KeyShareEntry
from repro.tls.kem import KEMKeyPair, encapsulate, decapsulate
from repro.tls.messages import (
    HandshakeType,
    ClientHello,
    ServerHello,
    EncryptedExtensions,
    CertificateMessage,
    CertificateEntry,
    CertificateVerify,
    Finished,
    decode_handshake,
    encode_handshake,
)
from repro.tls.keyschedule import KeySchedule
from repro.tls.client import ClientConfig, TLSClient
from repro.tls.server import ServerConfig, TLSServer
from repro.tls.session import HandshakeOutcome, HandshakeTrace, run_handshake
from repro.tls.ech import (
    ECHConfig,
    encrypt_client_hello,
    decrypt_client_hello,
    observable_extension_types,
)

__all__ = [
    "RECORD_HEADER_BYTES",
    "MAX_FRAGMENT_BYTES",
    "ContentType",
    "fragment_payload",
    "wire_size",
    "parse_records",
    "Alert",
    "AlertDescription",
    "Extension",
    "ExtensionType",
    "KeyShareEntry",
    "KEMKeyPair",
    "encapsulate",
    "decapsulate",
    "HandshakeType",
    "ClientHello",
    "ServerHello",
    "EncryptedExtensions",
    "CertificateMessage",
    "CertificateEntry",
    "CertificateVerify",
    "Finished",
    "decode_handshake",
    "encode_handshake",
    "KeySchedule",
    "ClientConfig",
    "TLSClient",
    "ServerConfig",
    "TLSServer",
    "HandshakeOutcome",
    "HandshakeTrace",
    "run_handshake",
    "ECHConfig",
    "encrypt_client_hello",
    "decrypt_client_hello",
    "observable_extension_types",
]
