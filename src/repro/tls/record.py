"""TLS record layer framing (RFC 8446 §5).

Handshake payloads are fragmented into records of at most 2^14 bytes, each
carrying a 5-byte header. That overhead is part of what the TCP flight
model counts, so the framing here is real, not estimated.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import DecodeError

RECORD_HEADER_BYTES = 5
MAX_FRAGMENT_BYTES = 1 << 14  # 16384
_LEGACY_VERSION = 0x0303

_HEADER = struct.Struct(">BHH")


class ContentType:
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


def fragment_payload(
    payload: bytes, content_type: int = ContentType.HANDSHAKE
) -> List[bytes]:
    """Split ``payload`` into framed TLSPlaintext records."""
    if not payload:
        return []
    records = []
    for start in range(0, len(payload), MAX_FRAGMENT_BYTES):
        fragment = payload[start : start + MAX_FRAGMENT_BYTES]
        records.append(
            _HEADER.pack(content_type, _LEGACY_VERSION, len(fragment)) + fragment
        )
    return records


def wire_size(payload_bytes: int) -> int:
    """Bytes on the wire for a handshake payload of the given size,
    including record headers."""
    if payload_bytes <= 0:
        return 0
    num_records = -(-payload_bytes // MAX_FRAGMENT_BYTES)
    return payload_bytes + num_records * RECORD_HEADER_BYTES


def parse_records(data: bytes) -> List[Tuple[int, bytes]]:
    """Parse concatenated records into (content_type, fragment) pairs."""
    out = []
    offset = 0
    while offset < len(data):
        if offset + RECORD_HEADER_BYTES > len(data):
            raise DecodeError("truncated record header")
        content_type, version, length = _HEADER.unpack_from(data, offset)
        if version != _LEGACY_VERSION:
            raise DecodeError(f"unexpected record version 0x{version:04x}")
        if length > MAX_FRAGMENT_BYTES:
            raise DecodeError(f"record fragment of {length} bytes exceeds maximum")
        offset += RECORD_HEADER_BYTES
        if offset + length > len(data):
            raise DecodeError("truncated record fragment")
        out.append((content_type, data[offset : offset + length]))
        offset += length
    return out


def coalesce_handshake(data: bytes) -> bytes:
    """Reassemble the handshake byte stream from framed records."""
    fragments = []
    for content_type, fragment in parse_records(data):
        if content_type != ContentType.HANDSHAKE:
            raise DecodeError(
                f"expected handshake records, got content type {content_type}"
            )
        fragments.append(fragment)
    return b"".join(fragments)
