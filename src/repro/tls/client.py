"""TLS 1.3 client state machine with ICA suppression (Fig. 2, client side).

The client attaches its serialized ICA filter to the ClientHello
(extension 0xFE00), processes the server flight, and rebuilds the
verification path from the possibly-suppressed Certificate message plus
its local ICA cache. A path that cannot be completed — the false-positive
case — is reported as ``needs_retry`` so the caller re-runs the handshake
without the extension, exactly the recovery the paper specifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import obs
from repro.errors import (
    ChainValidationError,
    DecodeError,
    HandshakeError,
    RevocationError,
    UnexpectedMessageError,
)
from repro.pki.certificate import Certificate, decode_certificate
from repro.pki.chain import CertificateChain, complete_path
from repro.pki.signatures import verify_payload
from repro.tls import extensions as ext
from repro.tls.kem import KEMKeyPair, decapsulate
from repro.tls.keyschedule import KeySchedule
from repro.tls.messages import (
    CertificateEntry,
    CertificateMessage,
    CertificateRequest,
    CertificateVerify,
    ClientHello,
    EncryptedExtensions,
    Finished,
    HandshakeType,
    ServerHello,
    decode_handshake,
)
from repro.pki.signatures import sign_payload
from repro.pki.algorithms import get_kem_algorithm

_CV_CONTEXT = b" " * 64 + b"TLS 1.3, server CertificateVerify" + b"\x00"
_CV_CONTEXT_CLIENT = b" " * 64 + b"TLS 1.3, client CertificateVerify" + b"\x00"

IssuerLookup = Callable[[str], Optional[Certificate]]


def _no_cache(name: str) -> Optional[Certificate]:
    """Default issuer lookup: an empty ICA cache."""
    return None


@dataclass
class ClientConfig:
    """Client-side handshake configuration."""

    trust_store: object
    kem_name: str = "x25519"
    hostname: str = "example.com"
    at_time: int = 0
    #: Serialized ICA filter to advertise; None disables the extension.
    ica_filter_payload: Optional[bytes] = None
    #: ICA cache lookup used to complete suppressed paths.
    issuer_lookup: IssuerLookup = _no_cache
    revocation: Optional[object] = None
    seed: int = 0
    # -- mutual TLS (client authentication, §6) ------------------------------
    #: The client's own certificate chain + key (required if the server
    #: sends a CertificateRequest).
    credential: Optional[object] = None
    #: Decides which of the client's own ICAs to omit, given the filter
    #: the server advertised in EncryptedExtensions (same handler protocol
    #: as the server side; see repro.core.suppression.ServerSuppressor).
    own_suppression_handler: Optional[object] = None


@dataclass
class ClientResult:
    """Outcome of processing the server flight."""

    complete: bool
    needs_retry: bool = False
    failure_reason: str = ""
    chain: Optional[CertificateChain] = None
    client_finished: bytes = b""
    suppressed_ica_count: int = 0
    #: mTLS: the client's own ICA suppression accounting.
    own_ica_bytes_sent: int = 0
    own_ica_bytes_suppressed: int = 0
    own_suppressed_ica_count: int = 0


class TLSClient:
    """One handshake attempt (create a fresh instance to retry)."""

    def __init__(self, config: ClientConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed ^ 0x715C)
        self._kem_alg = get_kem_algorithm(config.kem_name)
        self._kem_keypair = KEMKeyPair(self._kem_alg, seed=config.seed ^ 0xEC)
        self._schedule = KeySchedule()
        self._hello_sent = False
        self._done = False

    # -- flight 1 ---------------------------------------------------------------

    def create_client_hello(self) -> bytes:
        if self._hello_sent:
            raise UnexpectedMessageError("ClientHello already sent")
        exts: List[ext.Extension] = [
            ext.server_name_extension(self.config.hostname),
            ext.supported_versions_client(),
            ext.supported_groups_extension(list(ext.KEM_GROUP_IDS.values())),
            ext.signature_algorithms_extension(
                sorted(ext.SIGNATURE_SCHEME_IDS.values())
            ),
            ext.client_key_share_extension(
                ext.KeyShareEntry(
                    ext.KEM_GROUP_IDS[self._kem_alg.name],
                    self._kem_keypair.public_key,
                )
            ),
        ]
        if self.config.ica_filter_payload is not None:
            exts.append(
                ext.Extension(
                    ext.ExtensionType.ICA_SUPPRESSION,
                    self.config.ica_filter_payload,
                )
            )
        hello = ClientHello(
            random=self._rng.getrandbits(256).to_bytes(32, "big"),
            session_id=self._rng.getrandbits(256).to_bytes(32, "big"),
            extensions=tuple(exts),
        )
        wire = hello.encode()
        self._schedule.update_transcript(wire)
        self._hello_sent = True
        return wire

    # -- flight 2 ---------------------------------------------------------------

    def process_server_flight(self, flight: bytes) -> ClientResult:
        """Consume ServerHello..Finished; returns the client Finished or a
        retry/failure indication."""
        if not self._hello_sent or self._done:
            raise UnexpectedMessageError("not expecting a server flight")
        try:
            messages = decode_handshake(flight)
        except DecodeError as exc:
            return ClientResult(False, failure_reason=f"decode: {exc}")
        shapes = {
            5: [ServerHello, EncryptedExtensions, CertificateMessage,
                CertificateVerify, Finished],
            6: [ServerHello, EncryptedExtensions, CertificateRequest,
                CertificateMessage, CertificateVerify, Finished],
        }
        if [type(m) for m in messages] != shapes.get(len(messages)):
            return ClientResult(
                False,
                failure_reason="unexpected server flight "
                f"{[type(m).__name__ for m in messages]}",
            )
        cert_request: Optional[CertificateRequest] = None
        if len(messages) == 6:
            (server_hello, enc_ext, cert_request,
             cert_msg, cert_verify, finished) = messages
        else:
            server_hello, enc_ext, cert_msg, cert_verify, finished = messages

        # Key exchange.
        ks = ext.find_extension(server_hello.extensions, ext.ExtensionType.KEY_SHARE)
        if ks is None:
            return ClientResult(False, failure_reason="server omitted key_share")
        entry = ext.decode_server_key_share(ks)
        if entry.group_id != ext.KEM_GROUP_IDS[self._kem_alg.name]:
            return ClientResult(False, failure_reason="key-share group mismatch")
        shared = decapsulate(self._kem_keypair, entry.key_exchange)
        self._schedule.update_transcript(server_hello.encode())
        self._schedule.inject_shared_secret(shared)
        self._schedule.update_transcript(enc_ext.encode())
        if cert_request is not None:
            if self.config.credential is None:
                return ClientResult(
                    False,
                    failure_reason="server requested a client certificate "
                    "but none is configured",
                )
            self._schedule.update_transcript(cert_request.encode())

        # Certificate path (with suppression completion).
        try:
            transmitted = [
                decode_certificate(e.cert_data) for e in cert_msg.entries
            ]
        except Exception as exc:  # CertificateError subclasses ReproError
            return ClientResult(False, failure_reason=f"bad certificate: {exc}")
        advertised = self.config.ica_filter_payload is not None
        try:
            chain = complete_path(
                transmitted, self.config.issuer_lookup, self.config.trust_store
            )
        except ChainValidationError as exc:
            # If we advertised a filter, an incompletable path is the
            # paper's false-positive signature: retry without suppression.
            # Only *path completion* failures set needs_retry — a chain
            # that reassembles fine but fails validation (expiry, broken
            # signature, untrusted root) is not a suppression artifact.
            obs.inc("tls.client.path_incomplete")
            return ClientResult(
                False, needs_retry=advertised, failure_reason=str(exc)
            )
        try:
            chain.validate(
                self.config.trust_store,
                at_time=self.config.at_time,
                revocation=self.config.revocation,
            )
        except ChainValidationError as exc:
            return ClientResult(False, failure_reason=str(exc))
        except RevocationError as exc:
            return ClientResult(False, failure_reason=str(exc))
        if chain.leaf.subject != self.config.hostname:
            return ClientResult(
                False,
                failure_reason=f"certificate is for {chain.leaf.subject!r}, "
                f"expected {self.config.hostname!r}",
            )
        suppressed = chain.num_icas - max(0, len(transmitted) - 1)

        # CertificateVerify over the transcript so far.
        self._schedule.update_transcript(cert_msg.encode())
        expected_scheme = ext.SIGNATURE_SCHEME_IDS[
            chain.leaf.public_key.algorithm.name
        ]
        if cert_verify.scheme_id != expected_scheme:
            return ClientResult(False, failure_reason="CertificateVerify scheme mismatch")
        signed = _CV_CONTEXT + self._schedule.transcript_hash()
        if not verify_payload(chain.leaf.public_key, signed, cert_verify.signature):
            return ClientResult(False, failure_reason="CertificateVerify invalid")
        self._schedule.update_transcript(cert_verify.encode())

        # Server Finished.
        if not self._schedule.verify_finished("server", finished.verify_data):
            return ClientResult(False, failure_reason="server Finished invalid")
        self._schedule.update_transcript(finished.encode())

        # Client authentication (mTLS), then Finished.
        own_flight = b""
        own_sent = own_suppressed_bytes = own_suppressed_count = 0
        if cert_request is not None:
            own_flight, own_sent, own_suppressed_bytes, own_suppressed_count = (
                self._client_authentication(cert_request, enc_ext)
            )
        client_fin = Finished(self._schedule.finished_mac("client")).encode()
        self._schedule.update_transcript(client_fin)
        self._done = True
        return ClientResult(
            complete=True,
            chain=chain,
            client_finished=own_flight + client_fin,
            suppressed_ica_count=suppressed,
            own_ica_bytes_sent=own_sent,
            own_ica_bytes_suppressed=own_suppressed_bytes,
            own_suppressed_ica_count=own_suppressed_count,
        )

    def _client_authentication(
        self,
        cert_request: CertificateRequest,
        enc_ext: EncryptedExtensions,
    ) -> "tuple[bytes, int, int, int]":
        """Build Certificate + CertificateVerify for our own credential,
        suppressing our ICAs against the filter the server advertised in
        EncryptedExtensions (encrypted on the wire, so no §6 leak)."""
        credential = self.config.credential
        own_chain = credential.chain
        suppressed_fps = set()
        server_filter = ext.find_extension(
            enc_ext.extensions, ext.ExtensionType.ICA_SUPPRESSION
        )
        if server_filter is not None and self.config.own_suppression_handler:
            suppressed_fps = set(
                self.config.own_suppression_handler(server_filter.data, own_chain)
            )
        entries = [CertificateEntry(own_chain.leaf.to_der())]
        sent_bytes = 0
        for ica in own_chain.intermediates:
            if ica.fingerprint() not in suppressed_fps:
                entries.append(CertificateEntry(ica.to_der()))
                sent_bytes += ica.size_bytes()
        cert_msg = CertificateMessage(
            entries=tuple(entries), context=cert_request.context
        )
        cert_bytes = cert_msg.encode()
        self._schedule.update_transcript(cert_bytes)
        signed = _CV_CONTEXT_CLIENT + self._schedule.transcript_hash()
        cv = CertificateVerify(
            scheme_id=ext.SIGNATURE_SCHEME_IDS[credential.keypair.algorithm.name],
            signature=sign_payload(credential.keypair, signed),
        )
        cv_bytes = cv.encode()
        self._schedule.update_transcript(cv_bytes)
        return (
            cert_bytes + cv_bytes,
            sent_bytes,
            own_chain.ica_bytes() - sent_bytes,
            len(suppressed_fps),
        )

    @property
    def key_schedule(self) -> KeySchedule:
        return self._schedule
