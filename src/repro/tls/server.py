"""TLS 1.3 server state machine with ICA suppression (Fig. 2, server side).

On receiving a ClientHello carrying the IC-filter extension, the server
hands the payload to its suppression handler (see
:class:`repro.core.suppression.ServerSuppressor`), which deserializes the
filter and queries each ICA on the verification path. ICAs reported
present are omitted from the Certificate message; everything else about
the handshake is unchanged — including, crucially for the paper, the case
where the filter yields a false positive and the server innocently omits a
certificate the client does not have.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro import obs
from repro.errors import (
    ChainValidationError,
    DecodeError,
    RevocationError,
    UnexpectedMessageError,
)
from repro.pki.authority import ServerCredential
from repro.pki.certificate import Certificate, decode_certificate
from repro.pki.chain import CertificateChain, complete_path
from repro.pki.ocsp import OCSPStaple
from repro.pki.sct import SignedCertificateTimestamp
from repro.pki.signatures import sign_payload
from repro.tls import extensions as ext
from repro.tls.kem import encapsulate
from repro.tls.keyschedule import KeySchedule
from repro.tls.messages import (
    ENTRY_EXT_OCSP,
    ENTRY_EXT_SCT,
    CertificateEntry,
    CertificateMessage,
    CertificateRequest,
    CertificateVerify,
    ClientHello,
    EncryptedExtensions,
    Finished,
    ServerHello,
    decode_handshake,
)
from repro.pki.signatures import verify_payload

_CV_CONTEXT = b" " * 64 + b"TLS 1.3, server CertificateVerify" + b"\x00"
_CV_CONTEXT_CLIENT = b" " * 64 + b"TLS 1.3, client CertificateVerify" + b"\x00"


def _no_client_cache(name):
    """Default server-side issuer lookup: an empty ICA cache."""
    return None

#: Given the raw filter payload and the server's chain, return the set of
#: ICA fingerprints to omit from the Certificate message.
SuppressionHandler = Callable[[bytes, CertificateChain], Set[bytes]]


@dataclass
class ServerConfig:
    """Server-side handshake configuration."""

    credential: ServerCredential
    #: Suppression handler; None means the extension is ignored.
    suppression_handler: Optional[SuppressionHandler] = None
    ocsp_staple: Optional[OCSPStaple] = None
    scts: List[SignedCertificateTimestamp] = field(default_factory=list)
    seed: int = 0
    # -- mutual TLS (client authentication, §6) ------------------------------
    #: Send a CertificateRequest and verify the client's chain.
    request_client_certificate: bool = False
    #: Trust anchors for client chains (required when requesting them).
    client_trust_store: Optional[object] = None
    #: Server-side ICA cache used to complete suppressed client chains.
    client_issuer_lookup: object = _no_client_cache
    #: The server's own known-ICA filter, advertised to the client inside
    #: EncryptedExtensions — encrypted on the wire, so the privacy leak of
    #: the cleartext ClientHello extension does not apply (§6).
    ica_filter_payload: Optional[bytes] = None
    client_revocation: Optional[object] = None
    at_time: int = 0


@dataclass
class ClientAuthVerdict:
    """Outcome of processing the client's final flight."""

    ok: bool
    needs_retry: bool = False
    reason: str = ""
    client_chain: Optional[CertificateChain] = None
    suppressed_ica_count: int = 0


@dataclass
class ServerFlightResult:
    flight: bytes
    suppressed_fingerprints: Set[bytes]
    certificate_payload_bytes: int
    ica_bytes_sent: int
    ica_bytes_suppressed: int
    #: Chain ICAs omitted from the Certificate message — the count the
    #: byte figures above derive from, reported together so per-attempt
    #: accounting can never mix a zeroed count with nonzero bytes.
    ica_suppressed_count: int = 0


class TLSServer:
    """One handshake attempt on the server side."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed ^ 0x5E17)
        self._schedule = KeySchedule()
        self._sent_flight = False
        self._complete = False

    # -- flight 2 -----------------------------------------------------------------

    def process_client_hello(self, hello_bytes: bytes) -> ServerFlightResult:
        if self._sent_flight:
            raise UnexpectedMessageError("server flight already sent")
        messages = decode_handshake(hello_bytes)
        if len(messages) != 1 or not isinstance(messages[0], ClientHello):
            raise DecodeError("expected exactly one ClientHello")
        hello = messages[0]
        self._schedule.update_transcript(hello_bytes)

        # Key exchange: encapsulate against the client's share.
        ks = ext.find_extension(hello.extensions, ext.ExtensionType.KEY_SHARE)
        if ks is None:
            raise DecodeError("ClientHello missing key_share")
        entry = ext.decode_client_key_share(ks)
        kem_name = ext.kem_name_for_group(entry.group_id)
        from repro.pki.algorithms import get_kem_algorithm

        kem_alg = get_kem_algorithm(kem_name)
        ciphertext, shared = encapsulate(
            kem_alg, entry.key_exchange, entropy_seed=self.config.seed ^ 0xE2CA
        )

        # ICA suppression decision.
        chain = self.config.credential.chain
        suppressed: Set[bytes] = set()
        filter_ext = ext.find_extension(
            hello.extensions, ext.ExtensionType.ICA_SUPPRESSION
        )
        if filter_ext is not None and self.config.suppression_handler is not None:
            suppressed = set(
                self.config.suppression_handler(filter_ext.data, chain)
            )

        server_hello = ServerHello(
            random=self._rng.getrandbits(256).to_bytes(32, "big"),
            session_id=hello.session_id,
            extensions=(
                ext.supported_versions_server(),
                ext.server_key_share_extension(
                    ext.KeyShareEntry(entry.group_id, ciphertext)
                ),
            ),
        )
        sh_bytes = server_hello.encode()
        self._schedule.update_transcript(sh_bytes)
        self._schedule.inject_shared_secret(shared)

        ee_exts = []
        if self.config.ica_filter_payload is not None:
            ee_exts.append(
                ext.Extension(
                    ext.ExtensionType.ICA_SUPPRESSION,
                    self.config.ica_filter_payload,
                )
            )
        ee_bytes = EncryptedExtensions(extensions=tuple(ee_exts)).encode()
        self._schedule.update_transcript(ee_bytes)

        cr_bytes = b""
        if self.config.request_client_certificate:
            cr_bytes = CertificateRequest(
                context=b"", extensions=()
            ).encode()
            self._schedule.update_transcript(cr_bytes)

        cert_msg = self._certificate_message(chain, suppressed)
        cert_bytes = cert_msg.encode()
        self._schedule.update_transcript(cert_bytes)

        signed = _CV_CONTEXT + self._schedule.transcript_hash()
        cv = CertificateVerify(
            scheme_id=ext.SIGNATURE_SCHEME_IDS[
                self.config.credential.keypair.algorithm.name
            ],
            signature=sign_payload(self.config.credential.keypair, signed),
        )
        cv_bytes = cv.encode()
        self._schedule.update_transcript(cv_bytes)

        fin_bytes = Finished(self._schedule.finished_mac("server")).encode()
        self._schedule.update_transcript(fin_bytes)
        self._sent_flight = True

        sent_ica = 0
        suppressed_count = 0
        for ica in chain.intermediates:
            if ica.fingerprint() in suppressed:
                suppressed_count += 1
            else:
                sent_ica += ica.size_bytes()
        reg = obs.registry()
        if reg is not None:
            reg.inc("tls.server.flights")
            reg.inc("tls.server.icas_suppressed", suppressed_count)
            reg.inc(
                "tls.server.ica_bytes_suppressed", chain.ica_bytes() - sent_ica
            )
        return ServerFlightResult(
            flight=sh_bytes + ee_bytes + cr_bytes + cert_bytes + cv_bytes + fin_bytes,
            suppressed_fingerprints=suppressed,
            certificate_payload_bytes=cert_msg.certificate_payload_bytes(),
            ica_bytes_sent=sent_ica,
            ica_bytes_suppressed=chain.ica_bytes() - sent_ica,
            ica_suppressed_count=suppressed_count,
        )

    def _certificate_message(
        self, chain: CertificateChain, suppressed: Set[bytes]
    ) -> CertificateMessage:
        entries = []
        leaf_exts = []
        if self.config.ocsp_staple is not None:
            leaf_exts.append(
                ext.Extension(ENTRY_EXT_OCSP, self.config.ocsp_staple.to_der())
            )
        for sct in self.config.scts:
            leaf_exts.append(ext.Extension(ENTRY_EXT_SCT, sct.to_bytes()))
        entries.append(CertificateEntry(chain.leaf.to_der(), tuple(leaf_exts)))
        for ica in chain.intermediates:
            if ica.fingerprint() not in suppressed:
                entries.append(CertificateEntry(ica.to_der()))
        return CertificateMessage(entries=tuple(entries))

    # -- flight 3 -----------------------------------------------------------------

    def process_client_finished(self, fin_bytes: bytes) -> bool:
        """Back-compat wrapper: server-auth-only flight (just Finished)."""
        return self.process_client_flight(fin_bytes).ok

    def process_client_flight(self, flight_bytes: bytes) -> "ClientAuthVerdict":
        """Consume the client's final flight: a bare Finished, or — under
        mutual TLS — Certificate + CertificateVerify + Finished, with the
        client's ICAs possibly suppressed against the filter this server
        advertised in EncryptedExtensions."""
        if not self._sent_flight or self._complete:
            raise UnexpectedMessageError("not expecting a client flight")
        messages = decode_handshake(flight_bytes)
        verdict = ClientAuthVerdict(ok=False)
        if self.config.request_client_certificate:
            expected = [CertificateMessage, CertificateVerify, Finished]
            if [type(m) for m in messages] != expected:
                return ClientAuthVerdict(
                    ok=False,
                    reason="expected client Certificate, CertificateVerify, "
                    f"Finished; got {[type(m).__name__ for m in messages]}",
                )
            cert_msg, cert_verify, finished = messages
            verdict = self._verify_client_certificate(cert_msg, cert_verify)
            if not verdict.ok:
                return verdict
        else:
            if len(messages) != 1 or not isinstance(messages[0], Finished):
                return ClientAuthVerdict(
                    ok=False, reason="expected exactly one Finished"
                )
            finished = messages[0]
        if not self._schedule.verify_finished("client", finished.verify_data):
            return ClientAuthVerdict(ok=False, reason="client Finished invalid")
        self._schedule.update_transcript(finished.encode())
        self._complete = True
        return verdict if verdict.ok else ClientAuthVerdict(ok=True)

    def _verify_client_certificate(
        self, cert_msg: CertificateMessage, cert_verify: CertificateVerify
    ) -> "ClientAuthVerdict":
        store = self.config.client_trust_store
        if store is None:
            return ClientAuthVerdict(
                ok=False, reason="client-auth: no client trust store configured"
            )
        try:
            transmitted = [
                decode_certificate(e.cert_data) for e in cert_msg.entries
            ]
        except Exception as exc:
            return ClientAuthVerdict(
                ok=False, reason=f"client-auth: bad certificate: {exc}"
            )
        advertised = self.config.ica_filter_payload is not None
        try:
            chain = complete_path(
                transmitted, self.config.client_issuer_lookup, store
            )
        except ChainValidationError as exc:
            # Only a path that cannot be *reassembled* is the client-side
            # over-suppression signature; validation failures on a complete
            # chain never warrant a retry.
            obs.inc("tls.server.client_path_incomplete")
            return ClientAuthVerdict(
                ok=False,
                needs_retry=advertised,
                reason=f"client-auth: {exc}",
            )
        try:
            chain.validate(
                store,
                at_time=self.config.at_time,
                revocation=self.config.client_revocation,
            )
        except ChainValidationError as exc:
            return ClientAuthVerdict(ok=False, reason=f"client-auth: {exc}")
        except RevocationError as exc:
            return ClientAuthVerdict(ok=False, reason=f"client-auth: {exc}")
        self._schedule.update_transcript(cert_msg.encode())
        expected_scheme = ext.SIGNATURE_SCHEME_IDS[
            chain.leaf.public_key.algorithm.name
        ]
        if cert_verify.scheme_id != expected_scheme:
            return ClientAuthVerdict(
                ok=False, reason="client-auth: CertificateVerify scheme mismatch"
            )
        signed = _CV_CONTEXT_CLIENT + self._schedule.transcript_hash()
        if not verify_payload(
            chain.leaf.public_key, signed, cert_verify.signature
        ):
            return ClientAuthVerdict(
                ok=False, reason="client-auth: CertificateVerify invalid"
            )
        self._schedule.update_transcript(cert_verify.encode())
        suppressed = chain.num_icas - max(0, len(transmitted) - 1)
        return ClientAuthVerdict(
            ok=True,
            client_chain=chain,
            suppressed_ica_count=suppressed,
        )

    @property
    def handshake_complete(self) -> bool:
        return self._complete

    @property
    def key_schedule(self) -> KeySchedule:
        return self._schedule
