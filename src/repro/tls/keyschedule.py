"""TLS 1.3 key schedule (RFC 8446 §7.1), real HKDF over SHA-256.

The schedule binds the Finished MACs to the full transcript, which is what
makes the handshake trace in our simulator tamper-evident: any change to
any message (including a suppressed Certificate message) changes the
transcript hash and breaks Finished verification.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

_HASH_LEN = 32
_EMPTY_HASH = hashlib.sha256(b"").digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    return hmac.digest(salt or b"\x00" * _HASH_LEN, ikm, "sha256")


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    if length <= _HASH_LEN:  # the schedule's common case: one block
        return hmac.digest(prk, info + b"\x01", "sha256")[:length]
    out = b""
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac.digest(prk, block + info + bytes([counter]), "sha256")
        out += block
        counter += 1
    return out[:length]


def hkdf_expand_label(secret: bytes, label: str, context: bytes, length: int) -> bytes:
    full_label = b"tls13 " + label.encode("ascii")
    info = (
        struct.pack(">H", length)
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, info, length)


class KeySchedule:
    """Tracks the transcript and derives handshake/application secrets."""

    def __init__(self) -> None:
        self._transcript = hashlib.sha256()
        self._early_secret = hkdf_extract(b"", b"\x00" * _HASH_LEN)
        self._handshake_secret = b""
        self._master_secret = b""

    # -- transcript -------------------------------------------------------------

    def update_transcript(self, handshake_bytes: bytes) -> None:
        self._transcript.update(handshake_bytes)

    def transcript_hash(self) -> bytes:
        return self._transcript.copy().digest()

    # -- secrets ---------------------------------------------------------------

    def inject_shared_secret(self, shared_secret: bytes) -> None:
        derived = hkdf_expand_label(
            self._early_secret, "derived", _EMPTY_HASH, _HASH_LEN
        )
        self._handshake_secret = hkdf_extract(derived, shared_secret)
        derived2 = hkdf_expand_label(
            self._handshake_secret, "derived", _EMPTY_HASH, _HASH_LEN
        )
        self._master_secret = hkdf_extract(derived2, b"\x00" * _HASH_LEN)

    def _require_secret(self) -> bytes:
        if not self._handshake_secret:
            raise RuntimeError("shared secret not injected yet")
        return self._handshake_secret

    def handshake_traffic_secret(self, role: str) -> bytes:
        label = {"client": "c hs traffic", "server": "s hs traffic"}[role]
        return hkdf_expand_label(
            self._require_secret(), label, self.transcript_hash(), _HASH_LEN
        )

    def finished_key(self, role: str) -> bytes:
        return hkdf_expand_label(
            self.handshake_traffic_secret(role), "finished", b"", _HASH_LEN
        )

    def finished_mac(self, role: str) -> bytes:
        return hmac.digest(self.finished_key(role), self.transcript_hash(), "sha256")

    def verify_finished(self, role: str, verify_data: bytes) -> bool:
        return hmac.compare_digest(self.finished_mac(role), verify_data)

    def exporter_secret(self) -> bytes:
        if not self._master_secret:
            raise RuntimeError("shared secret not injected yet")
        return hkdf_expand_label(
            self._master_secret, "exp master", self.transcript_hash(), _HASH_LEN
        )
