"""TLS alerts (RFC 8446 §6) — the failure channel of the handshake.

The suppression false-positive path surfaces here: a client that cannot
complete the verification path sends ``unknown_ca``/``bad_certificate``
and retries the handshake without the IC-filter extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError


class AlertLevel:
    WARNING = 1
    FATAL = 2


class AlertDescription:
    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    HANDSHAKE_FAILURE = 40
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_REVOKED = 44
    CERTIFICATE_EXPIRED = 45
    UNKNOWN_CA = 48
    DECODE_ERROR = 50
    DECRYPT_ERROR = 51
    PROTOCOL_VERSION = 70
    MISSING_EXTENSION = 109
    UNSUPPORTED_EXTENSION = 110


@dataclass(frozen=True)
class Alert:
    level: int
    description: int

    def encode(self) -> bytes:
        return bytes([self.level, self.description])

    @classmethod
    def decode(cls, data: bytes) -> "Alert":
        if len(data) != 2:
            raise DecodeError(f"alert must be 2 bytes, got {len(data)}")
        return cls(level=data[0], description=data[1])

    @classmethod
    def fatal(cls, description: int) -> "Alert":
        return cls(AlertLevel.FATAL, description)

    @property
    def is_fatal(self) -> bool:
        return self.level == AlertLevel.FATAL
