"""Size-faithful KEM simulation.

Public keys and ciphertexts carry exactly the published byte sizes of the
simulated scheme (X25519, NTRU-HPS-509, LightSaber, Kyber — §5.2 of the
paper sizes ClientHello around these). The shared secret is derived as
``H(public_key || ciphertext)``, which both sides can compute (the
decapsulator knows its own public key), giving a *correct* KEM without
security — consistent with the rest of the measurement substrate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

from repro.pki.algorithms import KEMAlgorithm, get_kem_algorithm
from repro.pki.keys import expand_bytes


@dataclass(frozen=True)
class KEMKeyPair:
    """An ephemeral KEM key pair derived from an integer seed."""

    algorithm: KEMAlgorithm
    seed: int
    public_key: bytes = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.algorithm, str):
            object.__setattr__(self, "algorithm", get_kem_algorithm(self.algorithm))
        pk = expand_bytes(
            self.seed.to_bytes(16, "big"),
            self.algorithm.public_key_bytes,
            label=b"kem-pk:" + self.algorithm.name.encode(),
        )
        object.__setattr__(self, "public_key", pk)


def encapsulate(
    algorithm: KEMAlgorithm, public_key: bytes, entropy_seed: int
) -> Tuple[bytes, bytes]:
    """Return (ciphertext, shared_secret) against ``public_key``."""
    if len(public_key) != algorithm.public_key_bytes:
        raise ValueError(
            f"{algorithm.name} public key must be {algorithm.public_key_bytes} "
            f"bytes, got {len(public_key)}"
        )
    ciphertext = expand_bytes(
        entropy_seed.to_bytes(16, "big") + public_key[:32],
        algorithm.ciphertext_bytes,
        label=b"kem-ct:" + algorithm.name.encode(),
    )
    return ciphertext, _shared(algorithm, public_key, ciphertext)


def decapsulate(keypair: KEMKeyPair, ciphertext: bytes) -> bytes:
    if len(ciphertext) != keypair.algorithm.ciphertext_bytes:
        raise ValueError(
            f"{keypair.algorithm.name} ciphertext must be "
            f"{keypair.algorithm.ciphertext_bytes} bytes, got {len(ciphertext)}"
        )
    return _shared(keypair.algorithm, keypair.public_key, ciphertext)


def _shared(algorithm: KEMAlgorithm, public_key: bytes, ciphertext: bytes) -> bytes:
    digest = hashlib.sha256(
        b"kem-ss:" + algorithm.name.encode() + public_key + ciphertext
    ).digest()
    return digest[: algorithm.shared_secret_bytes]
