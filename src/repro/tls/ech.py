"""Encrypted ClientHello (draft-ietf-tls-esni) — the §6 privacy fix.

The paper's answer to the filter-fingerprinting concern: "a solution to
this drawback is the use of public key encryption to encrypt the
ClientHello message as suggested in the IETF draft-ietf-tls-esni". This
module provides a size- and semantics-faithful ECH simulation:

* the **inner** ClientHello (real SNI, the IC-filter extension) is
  AEAD-encrypted under a key derived from an HPKE-style encapsulation to
  the server's published ECH config;
* the **outer** ClientHello carries only the public name and the opaque
  ``encrypted_client_hello`` extension — a passive observer sees neither
  the destination nor the advertised filter;
* sizes are exact: outer = inner + encapsulated key + AEAD tag + framing,
  so the §5.2 budget discussion extends to ECH deployments.

Crypto is simulated like the rest of the substrate (keystream =
deterministic expansion; tag = keyed digest): confidentiality is not
real, tamper-detection and size accounting are.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import DecodeError
from repro.pki.keys import expand_bytes
from repro.tls import extensions as ext
from repro.tls.messages import ClientHello, decode_handshake

#: The real ECH extension code point.
ECH_EXTENSION_TYPE = 0xFE0D
_ENC_BYTES = 32  # HPKE X25519 encapsulated key
_TAG_BYTES = 16  # AEAD tag
_HEADER = struct.Struct(">BH")  # config id + ciphertext length


@dataclass(frozen=True)
class ECHConfig:
    """A server's published ECH configuration (DNS HTTPS record)."""

    config_id: int
    public_name: str
    seed: int = 0

    @property
    def public_key(self) -> bytes:
        return expand_bytes(
            self.seed.to_bytes(16, "big"), 32, label=b"ech-pk"
        )


def _keystream(config: ECHConfig, enc: bytes, length: int) -> bytes:
    shared = hashlib.sha256(b"ech-ss" + config.public_key + enc).digest()
    return expand_bytes(shared, length, label=b"ech-ks")


def _tag(config: ECHConfig, enc: bytes, ciphertext: bytes) -> bytes:
    shared = hashlib.sha256(b"ech-ss" + config.public_key + enc).digest()
    return hashlib.sha256(b"ech-tag" + shared + ciphertext).digest()[:_TAG_BYTES]


def encrypt_client_hello(
    inner_hello_bytes: bytes,
    config: ECHConfig,
    client_seed: int = 0,
) -> bytes:
    """Build the outer ClientHello wrapping ``inner_hello_bytes``."""
    enc = expand_bytes(
        client_seed.to_bytes(16, "big") + config.public_key[:8],
        _ENC_BYTES,
        label=b"ech-enc",
    )
    keystream = _keystream(config, enc, len(inner_hello_bytes))
    ciphertext = bytes(a ^ b for a, b in zip(inner_hello_bytes, keystream))
    body = (
        _HEADER.pack(config.config_id, len(ciphertext) + _TAG_BYTES)
        + enc
        + ciphertext
        + _tag(config, enc, ciphertext)
    )
    outer = ClientHello(
        random=expand_bytes(client_seed.to_bytes(16, "big"), 32, b"ech-rand"),
        session_id=expand_bytes(client_seed.to_bytes(16, "big"), 32, b"ech-sid"),
        extensions=(
            ext.server_name_extension(config.public_name),
            ext.supported_versions_client(),
            ext.Extension(ECH_EXTENSION_TYPE, body),
        ),
    )
    return outer.encode()


def decrypt_client_hello(outer_hello_bytes: bytes, config: ECHConfig) -> bytes:
    """Recover the inner ClientHello (server side); raises DecodeError on
    a wrong config or tampering."""
    messages = decode_handshake(outer_hello_bytes)
    if len(messages) != 1 or not isinstance(messages[0], ClientHello):
        raise DecodeError("outer message is not a ClientHello")
    ech = ext.find_extension(messages[0].extensions, ECH_EXTENSION_TYPE)
    if ech is None:
        raise DecodeError("outer ClientHello carries no ECH extension")
    if len(ech.data) < _HEADER.size + _ENC_BYTES + _TAG_BYTES:
        raise DecodeError("truncated ECH payload")
    config_id, ct_len = _HEADER.unpack_from(ech.data, 0)
    if config_id != config.config_id:
        raise DecodeError(
            f"ECH config id {config_id} does not match {config.config_id}"
        )
    offset = _HEADER.size
    enc = ech.data[offset : offset + _ENC_BYTES]
    offset += _ENC_BYTES
    ciphertext = ech.data[offset:-_TAG_BYTES]
    tag = ech.data[-_TAG_BYTES:]
    if len(ciphertext) + _TAG_BYTES != ct_len:
        raise DecodeError("ECH ciphertext length mismatch")
    if _tag(config, enc, ciphertext) != tag:
        raise DecodeError("ECH authentication tag mismatch")
    keystream = _keystream(config, enc, len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, keystream))


def observable_extension_types(outer_hello_bytes: bytes) -> List[int]:
    """What a passive on-path observer learns: the outer extension types
    (the IC filter must never appear here)."""
    [hello] = decode_handshake(outer_hello_bytes)
    return [e.extension_type for e in hello.extensions]


def ech_overhead_bytes(inner_hello_bytes: int) -> int:
    """Outer-minus-inner size for budget planning (enc + tag + ECH
    framing + the outer hello's own skeleton)."""
    probe = encrypt_client_hello(b"\x00" * inner_hello_bytes, ECHConfig(1, "p.example"))
    return len(probe) - inner_hello_bytes
