"""TLS extension framework (RFC 8446 §4.2).

Extensions are (uint16 type, opaque data) pairs; lists carry a uint16
aggregate length. The IC-suppression filter travels as a private-use
extension type (0xFE00), exactly as the paper proposes adding it "to the
ClientHello message as a TLS 1.3 extension"; its payload codec lives in
:mod:`repro.core.extension` so the TLS layer stays mechanism-agnostic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DecodeError


class ExtensionType:
    SERVER_NAME = 0
    SUPPORTED_GROUPS = 10
    SIGNATURE_ALGORITHMS = 13
    SUPPORTED_VERSIONS = 43
    KEY_SHARE = 51
    #: Private-use code point carrying the serialized ICA filter (§4.2).
    ICA_SUPPRESSION = 0xFE00


#: Synthetic TLS 1.3 group code points for the simulated KEMs.
KEM_GROUP_IDS: Dict[str, int] = {
    "x25519": 0x001D,
    "ntru-hps-509": 0x2F01,
    "lightsaber": 0x2F02,
    "kyber512": 0x2F03,
    "kyber768": 0x2F04,
}
_GROUP_TO_KEM = {gid: name for name, gid in KEM_GROUP_IDS.items()}

#: Synthetic signature-scheme code points (conventional ones are real TLS
#: values; PQ schemes use the private-use range).
SIGNATURE_SCHEME_IDS: Dict[str, int] = {
    "ecdsa-p256": 0x0403,
    "rsa-2048": 0x0804,
    "ed25519": 0x0807,
    "falcon-512": 0xFE01,
    "falcon-1024": 0xFE02,
    "dilithium2": 0xFE03,
    "dilithium3": 0xFE04,
    "dilithium5": 0xFE05,
    "sphincs-128s": 0xFE06,
    "sphincs-128f": 0xFE07,
    "sphincs-192s": 0xFE08,
    "sphincs-256s": 0xFE09,
    "rainbow-ia": 0xFE0A,
}
_SCHEME_TO_NAME = {sid: name for name, sid in SIGNATURE_SCHEME_IDS.items()}


def signature_algorithm_for_scheme(scheme_id: int) -> str:
    try:
        return _SCHEME_TO_NAME[scheme_id]
    except KeyError:
        raise DecodeError(f"unknown signature scheme 0x{scheme_id:04x}") from None


def kem_name_for_group(group_id: int) -> str:
    try:
        return _GROUP_TO_KEM[group_id]
    except KeyError:
        raise DecodeError(f"unknown key-share group 0x{group_id:04x}") from None


@dataclass(frozen=True)
class Extension:
    extension_type: int
    data: bytes

    def encode(self) -> bytes:
        return struct.pack(">HH", self.extension_type, len(self.data)) + self.data

    @property
    def size_bytes(self) -> int:
        return 4 + len(self.data)


def encode_extensions(extensions: Sequence[Extension]) -> bytes:
    body = b"".join(ext.encode() for ext in extensions)
    if len(body) > 0xFFFF:
        raise DecodeError(f"extension block of {len(body)} bytes exceeds uint16")
    return struct.pack(">H", len(body)) + body


def decode_extensions(data: bytes, offset: int = 0) -> Tuple[List[Extension], int]:
    if offset + 2 > len(data):
        raise DecodeError("truncated extensions length")
    (total,) = struct.unpack_from(">H", data, offset)
    offset += 2
    end = offset + total
    if end > len(data):
        raise DecodeError("truncated extension block")
    extensions = []
    while offset < end:
        if offset + 4 > end:
            raise DecodeError("truncated extension header")
        ext_type, length = struct.unpack_from(">HH", data, offset)
        offset += 4
        if offset + length > end:
            raise DecodeError(f"truncated extension 0x{ext_type:04x}")
        extensions.append(Extension(ext_type, data[offset : offset + length]))
        offset += length
    return extensions, end


def find_extension(
    extensions: Sequence[Extension], extension_type: int
) -> Optional[Extension]:
    for ext in extensions:
        if ext.extension_type == extension_type:
            return ext
    return None


# ---------------------------------------------------------------------------
# Typed extension payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyShareEntry:
    """One key-share: a group code point plus opaque key-exchange bytes
    (a KEM public key client-side, a KEM ciphertext server-side)."""

    group_id: int
    key_exchange: bytes

    def encode(self) -> bytes:
        return struct.pack(">HH", self.group_id, len(self.key_exchange)) + (
            self.key_exchange
        )

    @classmethod
    def decode(cls, data: bytes) -> "KeyShareEntry":
        if len(data) < 4:
            raise DecodeError("truncated KeyShareEntry")
        group_id, length = struct.unpack_from(">HH", data, 0)
        if 4 + length != len(data):
            raise DecodeError("KeyShareEntry length mismatch")
        return cls(group_id, data[4:])


def client_key_share_extension(entry: KeyShareEntry) -> Extension:
    body = entry.encode()
    return Extension(
        ExtensionType.KEY_SHARE, struct.pack(">H", len(body)) + body
    )


def decode_client_key_share(ext: Extension) -> KeyShareEntry:
    if len(ext.data) < 2:
        raise DecodeError("truncated client key_share")
    (length,) = struct.unpack_from(">H", ext.data, 0)
    if 2 + length != len(ext.data):
        raise DecodeError("client key_share length mismatch")
    return KeyShareEntry.decode(ext.data[2:])


def server_key_share_extension(entry: KeyShareEntry) -> Extension:
    return Extension(ExtensionType.KEY_SHARE, entry.encode())


def decode_server_key_share(ext: Extension) -> KeyShareEntry:
    return KeyShareEntry.decode(ext.data)


def server_name_extension(hostname: str) -> Extension:
    name = hostname.encode("idna" if any(ord(c) > 127 for c in hostname) else "ascii")
    entry = b"\x00" + struct.pack(">H", len(name)) + name
    return Extension(
        ExtensionType.SERVER_NAME, struct.pack(">H", len(entry)) + entry
    )


def decode_server_name(ext: Extension) -> str:
    if len(ext.data) < 5:
        raise DecodeError("truncated server_name")
    (list_len,) = struct.unpack_from(">H", ext.data, 0)
    name_type = ext.data[2]
    (name_len,) = struct.unpack_from(">H", ext.data, 3)
    if name_type != 0 or 5 + name_len != len(ext.data) or list_len + 2 != len(ext.data):
        raise DecodeError("malformed server_name")
    return ext.data[5 : 5 + name_len].decode("ascii")


def supported_versions_client() -> Extension:
    return Extension(ExtensionType.SUPPORTED_VERSIONS, b"\x02\x03\x04")


def supported_versions_server() -> Extension:
    return Extension(ExtensionType.SUPPORTED_VERSIONS, b"\x03\x04")


def signature_algorithms_extension(scheme_ids: Sequence[int]) -> Extension:
    body = struct.pack(">H", 2 * len(scheme_ids)) + b"".join(
        struct.pack(">H", s) for s in scheme_ids
    )
    return Extension(ExtensionType.SIGNATURE_ALGORITHMS, body)


def supported_groups_extension(group_ids: Sequence[int]) -> Extension:
    body = struct.pack(">H", 2 * len(group_ids)) + b"".join(
        struct.pack(">H", g) for g in group_ids
    )
    return Extension(ExtensionType.SUPPORTED_GROUPS, body)
