"""TLS 1.3 handshake message codecs (RFC 8446 §4).

Every message encodes to the real wire layout (4-byte handshake header,
vector length prefixes), so the flight sizes the TCP model counts are the
sizes a packet capture would show. The Certificate message additionally
carries OCSP/SCT staples as per-entry extensions, matching how Table 1
accounts "one extra OCSP staple and two SCTs".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import DecodeError
from repro.tls.extensions import (
    Extension,
    decode_extensions,
    encode_extensions,
)

_TLS12 = 0x0303
_TLS_AES_128_GCM_SHA256 = 0x1301

#: Per-certificate-entry extension code points for staples.
ENTRY_EXT_OCSP = 5
ENTRY_EXT_SCT = 18


class HandshakeType:
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    ENCRYPTED_EXTENSIONS = 8
    CERTIFICATE = 11
    CERTIFICATE_REQUEST = 13
    CERTIFICATE_VERIFY = 15
    FINISHED = 20


def _u8v(data: bytes) -> bytes:
    return bytes([len(data)]) + data


def _u16v(data: bytes) -> bytes:
    return struct.pack(">H", len(data)) + data


def _u24(n: int) -> bytes:
    return n.to_bytes(3, "big")


def encode_handshake(msg_type: int, body: bytes) -> bytes:
    return bytes([msg_type]) + _u24(len(body)) + body


def split_handshake_stream(data: bytes) -> List[Tuple[int, bytes]]:
    """Split a handshake byte stream into (type, body) messages."""
    out = []
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise DecodeError("truncated handshake header")
        msg_type = data[offset]
        length = int.from_bytes(data[offset + 1 : offset + 4], "big")
        offset += 4
        if offset + length > len(data):
            raise DecodeError(
                f"truncated handshake body: type {msg_type} wants {length} bytes"
            )
        out.append((msg_type, data[offset : offset + length]))
        offset += length
    return out


@dataclass(frozen=True)
class ClientHello:
    random: bytes
    session_id: bytes
    extensions: Tuple[Extension, ...]
    cipher_suites: Tuple[int, ...] = (_TLS_AES_128_GCM_SHA256,)

    def encode(self) -> bytes:
        suites = b"".join(struct.pack(">H", s) for s in self.cipher_suites)
        body = (
            struct.pack(">H", _TLS12)
            + self.random
            + _u8v(self.session_id)
            + _u16v(suites)
            + _u8v(b"\x00")  # legacy compression: null only
            + encode_extensions(self.extensions)
        )
        return encode_handshake(HandshakeType.CLIENT_HELLO, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "ClientHello":
        if len(body) < 35:
            raise DecodeError("ClientHello too short")
        offset = 2  # legacy version
        random = body[offset : offset + 32]
        offset += 32
        sid_len = body[offset]
        offset += 1
        if offset + sid_len + 2 > len(body):
            raise DecodeError("truncated ClientHello session id")
        session_id = body[offset : offset + sid_len]
        offset += sid_len
        (suites_len,) = struct.unpack_from(">H", body, offset)
        offset += 2
        if suites_len % 2 or offset + suites_len + 1 > len(body):
            raise DecodeError("truncated ClientHello cipher suites")
        suites = tuple(
            struct.unpack_from(">H", body, offset + i)[0]
            for i in range(0, suites_len, 2)
        )
        offset += suites_len
        comp_len = body[offset]
        offset += 1 + comp_len
        if offset > len(body):
            raise DecodeError("truncated ClientHello compression methods")
        extensions, offset = decode_extensions(body, offset)
        if offset != len(body):
            raise DecodeError("trailing bytes after ClientHello extensions")
        return cls(
            random=random,
            session_id=session_id,
            extensions=tuple(extensions),
            cipher_suites=suites,
        )


@dataclass(frozen=True)
class ServerHello:
    random: bytes
    session_id: bytes
    extensions: Tuple[Extension, ...]
    cipher_suite: int = _TLS_AES_128_GCM_SHA256

    def encode(self) -> bytes:
        body = (
            struct.pack(">H", _TLS12)
            + self.random
            + _u8v(self.session_id)
            + struct.pack(">H", self.cipher_suite)
            + b"\x00"  # legacy compression
            + encode_extensions(self.extensions)
        )
        return encode_handshake(HandshakeType.SERVER_HELLO, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "ServerHello":
        if len(body) < 38:
            raise DecodeError("ServerHello too short")
        offset = 2
        random = body[offset : offset + 32]
        offset += 32
        sid_len = body[offset]
        offset += 1
        if offset + sid_len + 3 > len(body):
            raise DecodeError("truncated ServerHello session id")
        session_id = body[offset : offset + sid_len]
        offset += sid_len
        (suite,) = struct.unpack_from(">H", body, offset)
        offset += 3  # suite + compression
        extensions, offset = decode_extensions(body, offset)
        if offset != len(body):
            raise DecodeError("trailing bytes after ServerHello extensions")
        return cls(
            random=random,
            session_id=session_id,
            extensions=tuple(extensions),
            cipher_suite=suite,
        )


@dataclass(frozen=True)
class EncryptedExtensions:
    extensions: Tuple[Extension, ...] = ()

    def encode(self) -> bytes:
        return encode_handshake(
            HandshakeType.ENCRYPTED_EXTENSIONS, encode_extensions(self.extensions)
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "EncryptedExtensions":
        extensions, offset = decode_extensions(body, 0)
        if offset != len(body):
            raise DecodeError("trailing bytes after EncryptedExtensions")
        return cls(extensions=tuple(extensions))


@dataclass(frozen=True)
class CertificateRequest:
    """Server requests client authentication (RFC 8446 §4.3.2)."""

    context: bytes = b""
    extensions: Tuple[Extension, ...] = ()

    def encode(self) -> bytes:
        body = _u8v(self.context) + encode_extensions(self.extensions)
        return encode_handshake(HandshakeType.CERTIFICATE_REQUEST, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "CertificateRequest":
        if not body:
            raise DecodeError("empty CertificateRequest")
        ctx_len = body[0]
        context = body[1 : 1 + ctx_len]
        extensions, offset = decode_extensions(body, 1 + ctx_len)
        if offset != len(body):
            raise DecodeError("trailing bytes after CertificateRequest")
        return cls(context=context, extensions=tuple(extensions))


@dataclass(frozen=True)
class CertificateEntry:
    """One cert_data plus its per-entry extensions (OCSP staple / SCTs)."""

    cert_data: bytes
    extensions: Tuple[Extension, ...] = ()

    def encode(self) -> bytes:
        return (
            _u24(len(self.cert_data))
            + self.cert_data
            + encode_extensions(self.extensions)
        )

    @property
    def size_bytes(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class CertificateMessage:
    entries: Tuple[CertificateEntry, ...]
    context: bytes = b""

    def encode(self) -> bytes:
        entries = b"".join(e.encode() for e in self.entries)
        body = _u8v(self.context) + _u24(len(entries)) + entries
        return encode_handshake(HandshakeType.CERTIFICATE, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "CertificateMessage":
        if not body:
            raise DecodeError("empty Certificate message")
        ctx_len = body[0]
        offset = 1 + ctx_len
        context = body[1:offset]
        if offset + 3 > len(body):
            raise DecodeError("truncated certificate_list length")
        total = int.from_bytes(body[offset : offset + 3], "big")
        offset += 3
        end = offset + total
        if end != len(body):
            raise DecodeError("certificate_list length mismatch")
        entries = []
        while offset < end:
            if offset + 3 > end:
                raise DecodeError("truncated certificate entry")
            cert_len = int.from_bytes(body[offset : offset + 3], "big")
            offset += 3
            cert_data = body[offset : offset + cert_len]
            if len(cert_data) != cert_len:
                raise DecodeError("truncated cert_data")
            offset += cert_len
            extensions, offset = decode_extensions(body, offset)
            entries.append(CertificateEntry(cert_data, tuple(extensions)))
        return cls(entries=tuple(entries), context=context)

    def certificate_payload_bytes(self) -> int:
        """DER bytes of the certificates themselves (no framing)."""
        return sum(len(e.cert_data) for e in self.entries)


@dataclass(frozen=True)
class CertificateVerify:
    scheme_id: int
    signature: bytes

    def encode(self) -> bytes:
        body = struct.pack(">H", self.scheme_id) + _u16v(self.signature)
        return encode_handshake(HandshakeType.CERTIFICATE_VERIFY, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "CertificateVerify":
        if len(body) < 4:
            raise DecodeError("CertificateVerify too short")
        scheme_id, sig_len = struct.unpack_from(">HH", body, 0)
        if 4 + sig_len != len(body):
            raise DecodeError("CertificateVerify length mismatch")
        return cls(scheme_id=scheme_id, signature=body[4:])


@dataclass(frozen=True)
class Finished:
    verify_data: bytes

    def encode(self) -> bytes:
        return encode_handshake(HandshakeType.FINISHED, self.verify_data)

    @classmethod
    def decode_body(cls, body: bytes) -> "Finished":
        if len(body) != 32:
            raise DecodeError(f"Finished must carry 32 bytes, got {len(body)}")
        return cls(verify_data=body)


HandshakeMessage = Union[
    ClientHello,
    ServerHello,
    EncryptedExtensions,
    CertificateRequest,
    CertificateMessage,
    CertificateVerify,
    Finished,
]

_DECODERS = {
    HandshakeType.CLIENT_HELLO: ClientHello.decode_body,
    HandshakeType.SERVER_HELLO: ServerHello.decode_body,
    HandshakeType.ENCRYPTED_EXTENSIONS: EncryptedExtensions.decode_body,
    HandshakeType.CERTIFICATE: CertificateMessage.decode_body,
    HandshakeType.CERTIFICATE_REQUEST: CertificateRequest.decode_body,
    HandshakeType.CERTIFICATE_VERIFY: CertificateVerify.decode_body,
    HandshakeType.FINISHED: Finished.decode_body,
}


def decode_handshake(data: bytes) -> List[HandshakeMessage]:
    """Decode a handshake byte stream into typed messages."""
    messages = []
    for msg_type, body in split_handshake_stream(data):
        try:
            decoder = _DECODERS[msg_type]
        except KeyError:
            raise DecodeError(f"unknown handshake type {msg_type}") from None
        messages.append(decoder(body))
    return messages
