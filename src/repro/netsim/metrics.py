"""Metric collectors and summary statistics for experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


class ByteCounter:
    """Counts bytes by category (e.g. 'ica', 'leaf', 'staples')."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, category: str, nbytes: int) -> None:
        self._counts[category] = self._counts.get(category, 0) + nbytes

    def get(self, category: str) -> int:
        return self._counts.get(category, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class LatencyCollector:
    """Accumulates latency samples (seconds) per scenario label."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def record(self, label: str, seconds: float) -> None:
        self._samples.setdefault(label, []).append(seconds)

    def samples(self, label: str) -> List[float]:
        return list(self._samples.get(label, []))

    def labels(self) -> List[str]:
        return sorted(self._samples)

    def summary(self, label: str) -> "Summary":
        return summarize(self._samples.get(label, []))


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    median: float
    p10: float
    p90: float
    p99: float
    minimum: float
    maximum: float
    stdev: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p10": self.p10,
            "p90": self.p90,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
        }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values, q in [0, 1]."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    # Sample variance (Bessel's correction): these are always summaries of
    # a sample of simulated handshakes, never the full population. A
    # single observation has no spread estimate; report 0.0.
    var = sum((v - mean) ** 2 for v in ordered) / (n - 1) if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        median=percentile(ordered, 0.5),
        p10=percentile(ordered, 0.1),
        p90=percentile(ordered, 0.9),
        p99=percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
        stdev=math.sqrt(var),
    )
