"""Packet-level TCP transfer simulation on the event loop.

The closed-form flight model (:mod:`repro.netsim.tcp`) is the workhorse of
every latency experiment; this module is its independent check: a
segment-by-segment sender with a congestion window, ACK clocking and
slow-start doubling, run on the discrete-event engine over a
:class:`~repro.netsim.link.Link` pair. The test suite asserts that both
models agree on round-trip counts across the whole payload range the
experiments use — so a bug in either shows up as a disagreement.

The sender model is deliberately classic Reno-style slow start with
cumulative ACKs per flight (one ACK batch per window, as delayed-ACK
implementations effectively behave for handshake-sized transfers), no
loss recovery (the experiments' links are lossless; the Link's loss knob
exists for the loss ablation, which uses retransmission timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SimulationError
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.tcp import TCPConfig


@dataclass
class TransferResult:
    """Outcome of one simulated transfer.

    ``last_byte_time_s`` is the receiver-side completion (what TTFB-style
    metrics care about); ``completion_time_s`` is the sender-side time of
    the final cumulative ACK, half an RTT later.
    """

    payload_bytes: int
    completion_time_s: float
    last_byte_time_s: float
    flights: int
    segments_sent: int
    retransmissions: int = 0


class TCPSender:
    """A slow-start sender delivering one payload over a link pair."""

    def __init__(
        self,
        loop: EventLoop,
        data_link: Link,
        ack_link: Link,
        payload_bytes: int,
        config: TCPConfig = TCPConfig(),
        rto_s: float = 1.0,
        max_retries: int = 8,
    ) -> None:
        if payload_bytes < 0:
            raise SimulationError(f"negative payload {payload_bytes}")
        self._loop = loop
        self._data_link = data_link
        self._ack_link = ack_link
        self._config = config
        self._payload = payload_bytes
        self._rto = rto_s
        self._max_retries = max_retries
        self._cwnd = config.initcwnd_bytes
        self._sent = 0
        self._acked = 0
        self._flights = 0
        self._segments = 0
        self._retransmissions = 0
        self._retries = 0
        self._last_byte_time = 0.0
        self._done: Optional[TransferResult] = None

    # -- driving ------------------------------------------------------------

    def start(self) -> None:
        if self._payload == 0:
            now = self._loop.clock.now
            self._done = TransferResult(0, now, now, 0, 0)
            return
        self._send_window()

    @property
    def result(self) -> Optional[TransferResult]:
        return self._done

    # -- internals -----------------------------------------------------------

    def _send_window(self) -> None:
        """Transmit one congestion window's worth of segments."""
        window_end = min(self._payload, self._acked + self._cwnd)
        to_send = window_end - self._sent
        if to_send <= 0:
            return
        self._flights += 1
        flight_bytes = 0
        segments = 0
        while flight_bytes < to_send:
            seg = min(self._config.mss, to_send - flight_bytes)
            flight_bytes += seg
            segments += 1
        self._segments += segments
        self._sent += flight_bytes
        expected_ack = self._sent
        sent_at_flight = self._flights

        def on_delivery() -> None:
            if expected_ack >= self._payload:
                self._last_byte_time = self._loop.clock.now
            # Receiver ACKs the whole flight cumulatively.
            self._ack_link.send(64, lambda: self._on_ack(expected_ack))

        def on_drop() -> None:
            self._schedule_retransmit(sent_at_flight)

        self._data_link.send(flight_bytes, on_delivery, on_drop)

    def _schedule_retransmit(self, flight: int) -> None:
        self._retries += 1
        if self._retries > self._max_retries:
            raise SimulationError("transfer exceeded retransmission budget")

        def retransmit() -> None:
            if self._done is not None or self._acked >= self._sent:
                return
            self._retransmissions += 1
            # Go-back-N to the last cumulative ACK.
            self._sent = self._acked
            self._cwnd = self._config.initcwnd_bytes  # timeout: restart
            self._send_window()

        self._loop.schedule(self._rto, retransmit)

    def _on_ack(self, ack_bytes: int) -> None:
        if ack_bytes <= self._acked:
            return  # stale
        newly_acked = ack_bytes - self._acked
        self._acked = ack_bytes
        # Slow start: cwnd grows by the bytes acknowledged.
        self._cwnd += newly_acked
        if self._acked >= self._payload:
            self._done = TransferResult(
                payload_bytes=self._payload,
                completion_time_s=self._loop.clock.now,
                last_byte_time_s=self._last_byte_time,
                flights=self._flights,
                segments_sent=self._segments,
                retransmissions=self._retransmissions,
            )
            return
        self._send_window()


def simulate_transfer(
    payload_bytes: int,
    rtt_s: float = 0.04,
    bandwidth_bps: float = 1e9,
    config: TCPConfig = TCPConfig(),
    loss_rate: float = 0.0,
    seed: int = 0,
) -> TransferResult:
    """Run one sender to completion and return its result."""
    loop = EventLoop()
    data_link = Link(
        loop, rtt_s=rtt_s, bandwidth_bps=bandwidth_bps,
        loss_rate=loss_rate, seed=seed,
    )
    ack_link = Link(loop, rtt_s=rtt_s, bandwidth_bps=bandwidth_bps, seed=seed + 1)
    sender = TCPSender(loop, data_link, ack_link, payload_bytes, config)
    sender.start()
    loop.run(max_events=100_000)
    if sender.result is None:
        raise SimulationError(
            f"transfer of {payload_bytes} bytes did not complete"
        )
    return sender.result
