"""TCP initial-window flight model.

The mechanism behind every latency number in the paper: a TLS flight
larger than the sender's congestion window must wait for ACKs, costing
extra round trips. We model slow start from a configurable initial window
(Linux default 10 MSS ~= 14.6 KB, §3/§5.2), doubling per round trip:

* flight 1 carries ``initcwnd`` segments,
* flight k carries ``initcwnd * 2^(k-1)`` segments,

so a payload needs the smallest n with
``mss * initcwnd * (2^n - 1) >= payload``.

``handshake_duration_s`` composes the full TLS-over-TCP timeline the
paper's Fig. 5 measurements reflect: TCP connect (1 RTT), ClientHello +
server flight (1 RTT for the first exchange, plus extra round trips when
the server flight overflows the window), crypto CPU time, and the client
Finished (piggybacked on the first application data, so not an extra
round trip). TTFB adds one more RTT for the HTTP request/first byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

DEFAULT_MSS = 1460
DEFAULT_INITCWND_SEGMENTS = 10


@dataclass(frozen=True)
class TCPConfig:
    """Transport parameters for the flight model."""

    mss: int = DEFAULT_MSS
    initcwnd_segments: int = DEFAULT_INITCWND_SEGMENTS

    def __post_init__(self) -> None:
        if self.mss < 536:
            raise ConfigurationError(f"mss of {self.mss} below IPv4 minimum")
        if self.initcwnd_segments < 1:
            raise ConfigurationError(
                f"initcwnd must be >= 1 segment, got {self.initcwnd_segments}"
            )

    @property
    def initcwnd_bytes(self) -> int:
        return self.mss * self.initcwnd_segments


def flights_needed(payload_bytes: int, config: TCPConfig = TCPConfig()) -> int:
    """Round trips required to deliver ``payload_bytes`` from a cold
    connection under slow start (0 for an empty payload)."""
    if payload_bytes <= 0:
        return 0
    window = config.initcwnd_bytes
    flights = 0
    delivered = 0
    while delivered < payload_bytes:
        delivered += window
        window *= 2
        flights += 1
    return flights


def extra_flights(payload_bytes: int, config: TCPConfig = TCPConfig()) -> int:
    """Round trips beyond the first (the penalty the paper's suppression
    mechanism removes)."""
    return max(0, flights_needed(payload_bytes, config) - 1)


def transfer_time_s(
    payload_bytes: int, rtt_s: float, config: TCPConfig = TCPConfig()
) -> float:
    """Time until the last byte arrives, counting half an RTT for the
    final one-way delivery."""
    flights = flights_needed(payload_bytes, config)
    if flights == 0:
        return 0.0
    return (flights - 1) * rtt_s + rtt_s / 2


def handshake_duration_s(
    client_hello_bytes: int,
    server_flight_bytes: int,
    rtt_s: float,
    config: TCPConfig = TCPConfig(),
    crypto_cpu_s: float = 0.0,
    tcp_connect: bool = True,
) -> float:
    """Wall time from SYN to handshake completion (client Finished sent).

    Timeline: TCP connect (1 RTT) + ClientHello->server-flight exchange
    (1 RTT, plus extra server-flight round trips when the auth data
    overflows the congestion window, plus extra ClientHello flights for
    oversized filters) + CPU time for the asymmetric crypto.
    """
    connect = rtt_s if tcp_connect else 0.0
    ch_extra = extra_flights(client_hello_bytes, config)
    flight_extra = extra_flights(server_flight_bytes, config)
    return connect + rtt_s * (1 + ch_extra + flight_extra) + crypto_cpu_s


def time_to_first_byte_s(
    client_hello_bytes: int,
    server_flight_bytes: int,
    rtt_s: float,
    config: TCPConfig = TCPConfig(),
    crypto_cpu_s: float = 0.0,
) -> float:
    """TTFB: handshake plus one RTT for the HTTP request/first byte."""
    return (
        handshake_duration_s(
            client_hello_bytes,
            server_flight_bytes,
            rtt_s,
            config,
            crypto_cpu_s,
        )
        + rtt_s
    )
