"""RTT samplers.

The paper measures real RTTs to Tranco servers; we substitute a
heavy-tailed log-normal model (the standard fit for Internet RTT
populations) with a configurable median, plus empirical and constant
samplers for calibration and tests.
"""

from __future__ import annotations

import math
import random
from typing import Protocol, Sequence

from repro.errors import ConfigurationError


class RTTSampler(Protocol):
    """Anything that yields RTT samples in seconds."""

    def sample(self) -> float: ...


class ConstantRTT:
    """Fixed RTT (unit tests, controlled sweeps)."""

    def __init__(self, rtt_s: float) -> None:
        if rtt_s < 0:
            raise ConfigurationError(f"negative RTT {rtt_s}")
        self._rtt = rtt_s

    def sample(self) -> float:
        return self._rtt


class LogNormalRTT:
    """Log-normal RTT population with a given median.

    ``sigma`` controls tail heaviness (0.5 gives a realistic mix of
    nearby CDN nodes and intercontinental paths). Samples are clamped to
    a 2 ms floor to avoid nonphysical values in deep tails.
    """

    def __init__(self, median_s: float = 0.04, sigma: float = 0.5, seed: int = 0) -> None:
        if median_s <= 0:
            raise ConfigurationError(f"median RTT must be positive, got {median_s}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self._mu = math.log(median_s)
        self._sigma = sigma
        self._rng = random.Random(seed ^ 0x277)

    def sample(self) -> float:
        return max(0.002, self._rng.lognormvariate(self._mu, self._sigma))


class EmpiricalRTT:
    """Resampling from a measured RTT population."""

    def __init__(self, samples_s: Sequence[float], seed: int = 0) -> None:
        if not samples_s:
            raise ConfigurationError("empirical sampler needs at least one sample")
        if any(s < 0 for s in samples_s):
            raise ConfigurationError("negative RTT in empirical samples")
        self._samples = list(samples_s)
        self._rng = random.Random(seed ^ 0x391)

    def sample(self) -> float:
        return self._rng.choice(self._samples)
