"""Discrete-event network simulator.

The paper's latency story is a transport story: PQ authentication data
overflows TCP's initial congestion window (10 MSS ~ 14.5 KB) and adds
round trips (§3). This subpackage provides the pieces that turn the TLS
substrate's byte counts into time: a slow-start flight model
(:mod:`repro.netsim.tcp`), RTT samplers (:mod:`repro.netsim.latency`), a
simple link model and a deterministic event loop for full end-to-end
simulations, plus metric collectors.
"""

from repro.netsim.clock import SimClock
from repro.netsim.events import EventLoop
from repro.netsim.tcp import (
    DEFAULT_MSS,
    DEFAULT_INITCWND_SEGMENTS,
    TCPConfig,
    flights_needed,
    handshake_duration_s,
    time_to_first_byte_s,
    transfer_time_s,
)
from repro.netsim.link import Link
from repro.netsim.quic import (
    QUICConfig,
    quic_extra_flights,
    quic_flights_needed,
    quic_handshake_duration_s,
)
from repro.netsim.latency import (
    ConstantRTT,
    EmpiricalRTT,
    LogNormalRTT,
    RTTSampler,
)
from repro.netsim.metrics import ByteCounter, LatencyCollector, summarize

__all__ = [
    "SimClock",
    "EventLoop",
    "DEFAULT_MSS",
    "DEFAULT_INITCWND_SEGMENTS",
    "TCPConfig",
    "flights_needed",
    "handshake_duration_s",
    "time_to_first_byte_s",
    "transfer_time_s",
    "Link",
    "QUICConfig",
    "quic_extra_flights",
    "quic_flights_needed",
    "quic_handshake_duration_s",
    "ConstantRTT",
    "EmpiricalRTT",
    "LogNormalRTT",
    "RTTSampler",
    "ByteCounter",
    "LatencyCollector",
    "summarize",
]
