"""QUIC handshake transport model: amplification protection.

The paper's closest related work (Kampanakis & Kallitsis) analyses "the
impact of PQ algorithms on QUIC's amplification protection mechanism":
before the client's address is validated, a QUIC server may send at most
``3x`` the bytes it has received (RFC 9000 §8). A PQ certificate chain
blows through that budget long before it would overflow a TCP initcwnd,
so QUIC feels the PQ penalty *earlier* — and ICA suppression pays off
even more.

Model: the client's first datagram is its ClientHello padded to the
1200-byte Initial minimum. The server's pre-validation send budget is
``amplification_factor x received``; once the first client response
arrives (one round trip) the address is validated and the transfer
continues under congestion-window slow start, seeded by what was already
sent. This mirrors a standard QUIC implementation's behaviour closely
enough for round-trip counting, which is all the experiments need.

A pleasant interaction the experiments surface: attaching the IC filter
*enlarges* the client's first datagram, which enlarges the server's
amplification budget — in QUIC the filter partially pays for its own
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.netsim.tcp import TCPConfig

#: RFC 9000: Initial packets are padded to at least 1200 bytes.
QUIC_MIN_INITIAL_BYTES = 1200
#: RFC 9000 §8: pre-validation amplification limit.
AMPLIFICATION_FACTOR = 3


@dataclass(frozen=True)
class QUICConfig:
    """Transport parameters for the QUIC flight model."""

    min_initial_bytes: int = QUIC_MIN_INITIAL_BYTES
    amplification_factor: int = AMPLIFICATION_FACTOR
    #: Congestion window after validation (same slow-start base as TCP).
    tcp: TCPConfig = TCPConfig()

    def __post_init__(self) -> None:
        if self.amplification_factor < 1:
            raise ConfigurationError(
                f"amplification factor must be >= 1, got {self.amplification_factor}"
            )
        if self.min_initial_bytes < 0:
            raise ConfigurationError(
                f"min initial bytes must be >= 0, got {self.min_initial_bytes}"
            )


def quic_flights_needed(
    server_flight_bytes: int,
    client_hello_bytes: int,
    config: QUICConfig = QUICConfig(),
) -> int:
    """Round trips to deliver the server flight under amplification
    protection followed by slow start."""
    if server_flight_bytes <= 0:
        return 0
    initial = max(config.min_initial_bytes, client_hello_bytes)
    budget = config.amplification_factor * initial
    first = min(budget, config.tcp.initcwnd_bytes, server_flight_bytes)
    delivered = first
    flights = 1
    window = max(first, 1)
    while delivered < server_flight_bytes:
        # Address validated after the first round trip; slow start doubles.
        window *= 2
        delivered += min(window, config.tcp.initcwnd_bytes * (1 << flights))
        flights += 1
    return flights


def quic_extra_flights(
    server_flight_bytes: int,
    client_hello_bytes: int,
    config: QUICConfig = QUICConfig(),
) -> int:
    return max(
        0, quic_flights_needed(server_flight_bytes, client_hello_bytes, config) - 1
    )


def quic_handshake_duration_s(
    client_hello_bytes: int,
    server_flight_bytes: int,
    rtt_s: float,
    config: QUICConfig = QUICConfig(),
    crypto_cpu_s: float = 0.0,
) -> float:
    """QUIC needs no TCP connect round trip: the handshake costs one RTT
    plus any amplification/congestion stalls."""
    flights = max(1, quic_flights_needed(
        server_flight_bytes, client_hello_bytes, config
    ))
    return rtt_s * flights + crypto_cpu_s
