"""A point-to-point link for event-driven simulations.

Delivery time = propagation (RTT/2) + serialization (payload/bandwidth),
with optional Bernoulli loss. Used by the event-loop-based integration
scenarios; the closed-form flight model in :mod:`repro.netsim.tcp` covers
the paper's experiments directly.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.netsim.events import EventLoop


class Link:
    """Unidirectional link with delay, bandwidth and loss."""

    def __init__(
        self,
        loop: EventLoop,
        rtt_s: float = 0.04,
        bandwidth_bps: float = 100e6,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if rtt_s < 0:
            raise ConfigurationError(f"negative RTT {rtt_s}")
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth_bps}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {loss_rate}")
        self._loop = loop
        self._one_way = rtt_s / 2
        self._bandwidth = bandwidth_bps
        self._loss = loss_rate
        self._rng = random.Random(seed ^ 0x11BC)
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.packets_dropped = 0

    def delivery_delay(self, payload_bytes: int) -> float:
        return self._one_way + payload_bytes * 8 / self._bandwidth

    def send(
        self,
        payload_bytes: int,
        on_delivery: Callable[[], None],
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        """Schedule delivery of ``payload_bytes`` through the link."""
        self.bytes_sent += payload_bytes
        if self._loss and self._rng.random() < self._loss:
            self.packets_dropped += 1
            if on_drop is not None:
                self._loop.schedule(self._one_way, on_drop)
            return

        def deliver() -> None:
            self.bytes_delivered += payload_bytes
            on_delivery()

        self._loop.schedule(self.delivery_delay(payload_bytes), deliver)
