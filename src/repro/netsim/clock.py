"""Simulated time.

All simulator time is in float seconds from an epoch of 0. Wall-clock
time never leaks into experiments, which keeps every run reproducible.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise SimulationError(f"cannot advance clock by {delta}")
        self._now += delta
        return self._now

    def advance_to(self, t: float) -> float:
        if t < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {t}"
            )
        self._now = t
        return self._now
