"""Deterministic discrete-event loop.

A minimal future-event-list scheduler: callbacks run in timestamp order
with FIFO tie-breaking, and may schedule further events. Deliberately
synchronous and single-threaded — determinism is worth more to an
experiment harness than concurrency.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.netsim.clock import SimClock

Callback = Callable[[], None]


class EventLoop:
    """Future event list over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self._processed = 0

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        heapq.heappush(self._queue, (self.clock.now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, when: float, callback: Callback) -> None:
        self.schedule(when - self.clock.now, callback)

    def step(self) -> bool:
        """Run the earliest event; False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self.clock.advance_to(when)
        callback()
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue (optionally stopping at time ``until``);
        returns the number of events processed."""
        ran = 0
        while self._queue and ran < max_events:
            when = self._queue[0][0]
            if until is not None and when > until:
                break
            self.step()
            ran += 1
        if ran >= max_events:
            raise SimulationError(f"event budget of {max_events} exhausted")
        if until is not None and self.clock.now < until and not self._queue:
            self.clock.advance_to(until)
        return ran

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def processed(self) -> int:
        return self._processed
