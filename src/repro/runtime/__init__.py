"""Experiment runtime: process-pool fan-out + immutable-artifact caches.

``repro.runtime.parallel`` shards deterministic experiment loops across
worker processes (ordered results, stable per-item seeds, serial
fallback); ``repro.runtime.artifacts`` memoizes the immutable PKI
artifacts the handshake fast path would otherwise recompute per
connection. Both are wired through the browsing-session simulator, the
experiment drivers, the CLI (``--jobs``) and the benchmark harness.
"""

from repro.runtime import artifacts
from repro.runtime.parallel import (
    WorkerCrashError,
    default_jobs,
    derive_seed,
    parallel_map,
    resolve_jobs,
)

__all__ = [
    "artifacts",
    "WorkerCrashError",
    "default_jobs",
    "derive_seed",
    "parallel_map",
    "resolve_jobs",
]
