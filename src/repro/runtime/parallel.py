"""Deterministic process-pool fan-out for the experiment layer.

``parallel_map`` runs a picklable function over an item list on a process
pool and returns results in item order, so a sharded experiment produces
exactly the list its serial loop would. Determinism is the contract:

* results come back ordered, whatever the completion order;
* per-item randomness must be derived with :func:`derive_seed` (a stable
  content hash over the experiment's seed and the item index), never from
  worker-local state, ``seed * 1009 + i``-style arithmetic that collides
  across streams, or anything dependent on which worker ran the item;
* workers are initialized once per process (rebuilding the population /
  simulator there, not pickling it per task), optionally pre-warmed with
  shipped artifact-cache contents (see
  :func:`repro.runtime.artifacts.export_shippable`).

Failures propagate cleanly: an exception raised by ``fn`` in a worker
re-raises in the parent with its original type; a worker dying outright
surfaces as :class:`WorkerCrashError`; Ctrl-C tears the pool down without
leaking children. When ``jobs`` resolves to 1 — or multiprocessing is
unusable on the platform — the same call runs serially in-process.
"""

from __future__ import annotations

import functools
import hashlib
import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import SimulationError


class WorkerCrashError(SimulationError):
    """A pool worker died without reporting a Python exception."""


def default_jobs() -> int:
    """The machine's core count (the CLI's ``--jobs`` default)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None/0 mean all cores, negatives are
    rejected, anything else passes through."""
    if jobs is None or jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def derive_seed(namespace: str, *components: Any, bits: int = 63) -> int:
    """A stable per-item seed: SHA-256 over the namespace and components.

    Unlike ``seed * 1009 + i`` arithmetic, streams derived for different
    namespaces or indices never collide or correlate, and the value is
    identical across processes, platforms and Python versions (no
    ``hash()`` randomization).
    """
    h = hashlib.sha256(namespace.encode("utf-8"))
    for component in components:
        if isinstance(component, bytes):
            data = b"b" + component
        elif isinstance(component, str):
            data = b"s" + component.encode("utf-8")
        elif isinstance(component, bool):
            data = b"B" + bytes([component])
        elif isinstance(component, int):
            data = b"i" + str(component).encode("ascii")
        elif isinstance(component, float):
            data = b"f" + repr(component).encode("ascii")
        elif component is None:
            data = b"n"
        else:
            raise TypeError(
                f"derive_seed components must be scalars, got {type(component).__name__}"
            )
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return int.from_bytes(h.digest(), "big") >> (256 - bits)


# Worker-side bootstrap state: the user initializer runs exactly once per
# worker process, after shipped artifact caches are imported.
_BOOTSTRAPPED: Dict[int, bool] = {}


def _bootstrap_worker(
    shipped: Optional[Dict[str, List[Tuple[Any, Any]]]],
    initializer: Optional[Callable[..., None]],
    initargs: Sequence[Any],
) -> None:
    from repro.runtime import artifacts

    if shipped:
        artifacts.import_entries(shipped)
    if initializer is not None:
        initializer(*initargs)
    _BOOTSTRAPPED[os.getpid()] = True


def run_metered(fn: Callable[[Any], Any], item: Any) -> Tuple[Any, Dict[str, Any]]:
    """Run one work item inside a fresh metrics scope.

    Returns ``(fn(item), snapshot)`` where the snapshot holds exactly the
    metrics the item recorded — plus this item's artifact-cache hit/miss
    deltas as ``runtime.artifacts.{hits,misses}{cache=...}`` counters.
    Because :func:`repro.obs.scoped` isolates the item whether or not the
    process had metrics enabled (workers fork-inherit the parent's
    registry state), a serial loop and a pool worker capture identical
    per-item deltas, which is what makes merging deterministic.
    """
    from repro.runtime import artifacts

    before = artifacts.stats()
    with obs.scoped() as reg:
        result = fn(item)
    after = artifacts.stats()
    for name, stats in after.items():
        prior = before.get(name, {})
        hits = stats.get("hits", 0) - prior.get("hits", 0)
        misses = stats.get("misses", 0) - prior.get("misses", 0)
        if hits:
            reg.inc("runtime.artifacts.hits", hits, (("cache", name),))
        if misses:
            reg.inc("runtime.artifacts.misses", misses, (("cache", name),))
    return result, reg.snapshot()


def _metered_call(fn: Callable[[Any], Any], item: Any) -> Tuple[Any, Dict[str, Any]]:
    """Module-level (hence picklable via ``functools.partial``) wrapper
    pools map instead of ``fn`` when ``metered=True``."""
    return run_metered(fn, item)


def _merge_metered(pairs: List[Tuple[Any, Dict[str, Any]]]) -> List[Any]:
    """Fold per-item snapshots into the parent registry **in item order**
    (counter merges commute, but histogram reservoirs are order-sensitive)
    and return the bare results."""
    results = []
    for result, snap in pairs:
        obs.merge(snap)
        results.append(result)
    return results


def _pool_context():
    """Prefer fork (cheap worker start, inherits warm caches); fall back
    to the platform default where fork does not exist."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Sequence[Any] = (),
    shipped_caches: Optional[Dict[str, List[Tuple[Any, Any]]]] = None,
    chunksize: Optional[int] = None,
    metered: bool = False,
) -> List[Any]:
    """Map ``fn`` over ``items`` on ``jobs`` processes, results ordered.

    ``fn``, ``initializer`` and every item must be picklable module-level
    objects. ``chunksize`` defaults to a round-robin-ish split that keeps
    every worker busy without starving the tail.

    With ``metered=True`` each item runs through :func:`run_metered`; the
    per-item metric snapshots ship back with the results and are merged
    into this process's registry in item order, so the merged counters are
    identical for every ``jobs`` value.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, max(1, len(items)))
    mapped_fn = functools.partial(_metered_call, fn) if metered else fn
    if jobs <= 1 or len(items) <= 1:
        out = _serial_map(mapped_fn, items, initializer, initargs, shipped_caches)
        return _merge_metered(out) if metered else out

    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        context = _pool_context()
    except (ImportError, OSError, ValueError):
        out = _serial_map(mapped_fn, items, initializer, initargs, shipped_caches)
        return _merge_metered(out) if metered else out

    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    executor = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=_bootstrap_worker,
        initargs=(shipped_caches, initializer, tuple(initargs)),
    )
    try:
        out = list(executor.map(mapped_fn, items, chunksize=chunksize))
        return _merge_metered(out) if metered else out
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            f"a worker process died while mapping {getattr(fn, '__name__', fn)!r} "
            f"over {len(items)} items"
        ) from exc
    except KeyboardInterrupt:
        # Kill outstanding work before re-raising so Ctrl-C never leaks
        # orphan workers mid-experiment.
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        executor.shutdown(wait=True, cancel_futures=True)


def _serial_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    initializer: Optional[Callable[..., None]],
    initargs: Sequence[Any],
    shipped_caches: Optional[Dict[str, List[Tuple[Any, Any]]]],
) -> List[Any]:
    """In-process fallback with identical semantics (initializer runs
    once, shipped caches are imported)."""
    _bootstrap_worker(shipped_caches, initializer, initargs)
    return [fn(item) for item in items]
