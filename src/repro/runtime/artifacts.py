"""Content-keyed caches for immutable PKI artifacts (the handshake fast path).

The browsing-session engine re-derives the same immutable artifacts
thousands of times per experiment: certificates are re-parsed from
identical DER bytes on every handshake, chain signatures are re-verified
although neither the certificates nor the trust anchors changed, OCSP
staples are re-signed for the same leaf, and every simulator construction
rebuilds an identical AMQ filter from the same hot-ICA set. All of those
are pure functions of their inputs, so this module gives each one a
bounded, content-keyed cache with hit/miss counters.

Design rules:

* **Content keys only.** Keys are derived from the bytes that define the
  artifact (DER images, fingerprints, canonical filter parameters), never
  from object identity — so a cache hit can never change an experiment's
  byte accounting, only skip recomputation.
* **Bounded.** Every cache is an LRU with a per-cache entry cap; the
  engine never grows without bound across long sweeps.
* **Observable.** ``stats()`` exposes hits/misses/size per cache, and the
  ``DER_ENCODE`` event counter tracks how many actual DER assemblies
  happened, so tests can assert a warm run performs zero redundant work.
* **Optional.** ``set_enabled(False)`` (or the ``disabled()`` context
  manager) turns every *disableable* cache into a pass-through, which is
  how the benchmark harness measures the uncached baseline. Caches that
  pre-date this subsystem's semantics (the flight-size memo) are marked
  non-disableable so experiment loops never regress to re-probing.
* **Shippable.** ``export_shippable()`` / ``import_entries()`` move
  picklable cache contents into freshly initialized worker processes so
  cold workers do not re-probe what the parent already measured.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

_ENABLED = True
_LOCK = threading.Lock()


class EventCounter:
    """Hit/miss tally for work that is memoized outside a ContentCache
    (e.g. per-instance DER memos on frozen dataclasses)."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


class ContentCache:
    """A bounded LRU keyed by content-derived hashable keys."""

    def __init__(
        self,
        name: str,
        max_entries: int,
        disableable: bool = True,
        shippable: bool = False,
    ) -> None:
        self.name = name
        self.max_entries = max_entries
        self.disableable = disableable
        self.shippable = shippable
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    @property
    def active(self) -> bool:
        return _ENABLED or not self.disableable

    def get(self, key: Hashable) -> Optional[Any]:
        if not self.active:
            self.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        if not self.active:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def export(self) -> List[Tuple[Hashable, Any]]:
        """Entries as a picklable list (insertion/LRU order preserved)."""
        return list(self._entries.items())

    def import_entries(self, entries: Iterable[Tuple[Hashable, Any]]) -> int:
        count = 0
        for key, value in entries:
            self.put(key, value)
            count += 1
        return count

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


_CACHES: Dict[str, ContentCache] = {}
_EVENTS: Dict[str, EventCounter] = {}


def _register(cache: ContentCache) -> ContentCache:
    _CACHES[cache.name] = cache
    return cache


def _register_event(counter: EventCounter) -> EventCounter:
    _EVENTS[counter.name] = counter
    return counter


#: DER bytes -> decoded Certificate (the client/server re-parse path).
CERT_DECODE = _register(ContentCache("cert_decode", max_entries=16384))
#: (algorithm, sha256(key || payload)) -> simulated signature bytes; hit on
#: both signing and verification of a previously expanded payload.
SIGNATURE_BYTES = _register(ContentCache("signature_bytes", max_entries=65536))
#: (chain digest, trust-store token) -> validated (not_before, not_after)
#: window; a hit inside the window skips full path validation.
VERIFIED_CHAINS = _register(ContentCache("verified_chains", max_entries=16384))
#: (kind, capacity, fpp, load_factor, seed, items digest) -> serialized
#: filter image, rehydrated instead of re-inserting every item.
FILTER_BUILDS = _register(ContentCache("filter_builds", max_entries=64))
#: (leaf fingerprint, responder key fp, produced_at) -> (staple, SCTs).
STAPLES = _register(ContentCache("staples", max_entries=8192))
#: Length profile of a TBSCertificate -> solved attribute-padding length
#: (the fixed-point loop in ``build_tbs`` otherwise re-assembles the full
#: TBS several times per issued certificate).
TBS_PADS = _register(ContentCache("tbs_pads", max_entries=1024))
#: Small recurring DER fragments: ("name", cn) -> encoded Name,
#: ("alg", name) -> encoded AlgorithmIdentifier.
DER_FRAGMENTS = _register(ContentCache("der_fragments", max_entries=8192))
#: (issuer fingerprint, subject, leaf seed, serial, not_before) ->
#: ServerCredential; content-addressed leaf issuance (the population
#: derives leaf seeds from (population seed, rank), so the key is pure).
CREDENTIALS = _register(ContentCache("credentials", max_entries=8192))
#: Flight-size probe memo; shipped to workers and never disabled (the
#: TTFB loops would otherwise re-run one handshake per sample).
FLIGHT_SIZES = _register(
    ContentCache("flight_sizes", max_entries=4096, disableable=False, shippable=True)
)
#: ("streams", cohort seed) -> {namespace: 64-bit stream key} for the
#: cohort engine's counter-based RNG; shipped to workers and never
#: disabled so every process derives draws from one key set (the
#: seed-derivation round-trip the cohort RNG property tests pin).
COHORT_STREAMS = _register(
    ContentCache(
        "cohort_streams", max_entries=1024, disableable=False, shippable=True
    )
)

#: ("image", kind, fpp, load_factor, seed, fingerprints digest) ->
#: (serialized advertised payload, obs snapshot) for the columnar churn
#: engine's per-generation wire images; keyed by cache *content* (the
#: ordered fingerprint list), so identical churn states across trials,
#: staleness levels and ``--jobs`` workers share one filter build.
CHURN_IMAGES = _register(
    ContentCache("churn_images", max_entries=256, shippable=True)
)
#: ("probe", payload digest, fingerprints digest) -> (hit tuple, obs
#: snapshot): the per-(generation, epoch) bulk membership probe of the
#: columnar churn engine. Values carry the amq.* counter snapshot so a
#: hit replays the probe's metrics instead of silently skipping them.
CHURN_PROBES = _register(
    ContentCache("churn_probes", max_entries=4096, shippable=True)
)

#: Actual DER assemblies of Certificate objects (encode events, not cache
#: lookups): ``misses`` counts real encodes, ``hits`` counts memoized
#: returns. A warm run must not advance ``misses``.
DER_ENCODE = _register_event(EventCounter("der_encode"))


def enabled() -> bool:
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Globally enable/disable the disableable caches (pass-through mode)."""
    global _ENABLED
    with _LOCK:
        _ENABLED = bool(value)


@contextmanager
def disabled():
    """Run a block with every disableable cache bypassed (the benchmark
    harness's uncached baseline)."""
    previous = _ENABLED
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size snapshot of every cache and event counter."""
    out = {name: cache.snapshot() for name, cache in _CACHES.items()}
    for name, counter in _EVENTS.items():
        out[name] = counter.snapshot()
    return out


def reset_stats() -> None:
    for cache in _CACHES.values():
        cache.reset_stats()
    for counter in _EVENTS.values():
        counter.reset()


def clear() -> None:
    """Drop every cached entry (stats are reset too)."""
    for cache in _CACHES.values():
        cache.clear()
    reset_stats()


def export_shippable() -> Dict[str, List[Tuple[Hashable, Any]]]:
    """Picklable contents of the caches marked shippable — what a parent
    process sends along when it warms cold workers."""
    return {
        name: cache.export()
        for name, cache in _CACHES.items()
        if cache.shippable and len(cache)
    }


def import_entries(shipped: Dict[str, List[Tuple[Hashable, Any]]]) -> int:
    """Load shipped cache contents (unknown cache names are ignored, so
    newer parents can ship to older workers)."""
    count = 0
    for name, entries in (shipped or {}).items():
        cache = _CACHES.get(name)
        if cache is not None:
            count += cache.import_entries(entries)
    return count
