"""PKI-lifecycle churn engine.

The paper's §4.2 dynamic-updates assumption ("the filter supports dynamic
updates") is trivially true for a static ICA population; the Web PKI is
not static. This module evolves a synthetic CA ecosystem step by step —
new ICA issuance, expiry, CRL-driven revocation, cross-signing (distinct
certificates for one subject/key), and preload-list drift — and drives a
fleet of clients (each an :class:`~repro.core.cache.ICACache` +
:class:`~repro.core.manager.FilterManager`) through real handshakes
against servers whose chains reference both fresh and stale ICAs.

The load-bearing knob is **advertised-payload staleness**: a client's
*filter* tracks its cache exactly (the manager's contract), but the
serialized payload it attaches to ClientHellos is only re-captured every
``payload_refresh_every`` steps, the way a real client amortizes filter
serialization across connections. A revoked ICA therefore lingers in the
advertised payload after cache + filter dropped it; a server still serving
that ICA (rotation lags revocation by ``rotation_lag_steps``) suppresses
it, the client cannot complete the path, and the handshake pays the
paper's false-positive retry. The engine measures how suppression rate,
FP-retry rate and bytes-on-wire degrade as that staleness grows.

The ecosystem mutation phase lives in :class:`ChurnWorld` so that other
engines — notably the columnar cohort engine in
:mod:`repro.webmodel.churn_columnar` and its scalar reference — can drive
the *identical* lifecycle event stream (same ``churn.events`` RNG draws,
same issuance/cross-sign/revoke/rotate ordering) without the per-client
fleet this module attaches to it.

Everything is a pure function of :class:`ChurnConfig`: all randomness is
drawn from :func:`~repro.runtime.parallel.derive_seed` streams, so one
config yields one event stream and one metrics series, bit-for-bit, in
any process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import obs
from repro.core.cache import ICACache
from repro.core.extension import build_extension_payload
from repro.core.filter_config import plan_filter
from repro.core.manager import FilterManager
from repro.core.suppression import ServerSuppressor
from repro.errors import SimulationError
from repro.pki.authority import (
    CA_VALIDITY,
    CertificateAuthority,
    ServerCredential,
)
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.pki.keys import KeyPair
from repro.pki.revocation import RevocationList
from repro.pki.store import TrustStore
from repro.runtime.parallel import derive_seed
from repro.tls.client import ClientConfig
from repro.tls.server import ServerConfig
from repro.tls.session import HandshakeOutcome, run_handshake


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of one churn run (defaults: a ~3-week, one-day-step
    ecosystem small enough for CI but busy enough that every lifecycle
    event class fires)."""

    steps: int = 24
    step_seconds: int = 86_400
    num_roots: int = 2
    initial_icas: int = 10
    num_sites: int = 12
    num_clients: int = 4
    handshakes_per_step: int = 8
    #: Expected new ICAs per step (fractional part drawn Bernoulli).
    issuance_rate: float = 0.4
    #: Expected revocations per step.
    revocation_rate: float = 0.5
    #: Expected cross-sign events per step.
    cross_sign_rate: float = 0.25
    #: ICA validity in steps; initial ICAs get staggered expiries so the
    #: sweep fires repeatedly instead of once.
    ica_validity_steps: int = 16
    #: Steps a site keeps serving a chain whose ICA was just revoked
    #: (certificate rotation lags CRL publication in the wild).
    rotation_lag_steps: int = 2
    #: Steps between preload-list refreshes (clients bulk-learn the
    #: current live population — the CCADB drift model).
    preload_refresh_every: int = 4
    #: Steps between a client re-capturing its *advertised* payload from
    #: the live filter. 1 = always fresh; larger = staler.
    payload_refresh_every: int = 1
    filter_kind: str = "cuckoo"
    fpp: float = 1e-3
    load_factor: float = 0.9
    kem_name: str = "x25519"
    algorithm: str = "ecdsa-p256"
    seed: int = 0
    #: How refreshed payloads reach clients: ``"full"`` re-ships the
    #: whole framed filter image on every refresh; ``"delta"`` ships
    #: versioned ``repro.delta/v1`` patches (:mod:`repro.amq.delta`)
    #: against the client's last-applied version. Either way the
    #: advertised *bytes* are identical — distribution only changes what
    #: crossed the update channel, metered in
    #: :attr:`StepMetrics.distribution_bytes`.
    distribution: str = "full"


@dataclass(frozen=True)
class StepMetrics:
    """Everything one step did to the ecosystem and what it cost."""

    step: int
    icas_issued: int
    icas_cross_signed: int
    icas_revoked: int
    icas_expired_swept: int
    preload_added: int
    payload_refreshes: int
    site_rotations: int
    handshakes: int
    completed: int
    fp_retries: int
    fallbacks: int
    failures: int
    #: Handshakes whose advertised payload no longer matched the cache.
    stale_advertised: int
    icas_encountered: int
    icas_suppressed: int
    wire_bytes: int
    #: Bytes the filter-update channel shipped this step (framed full
    #: images or ``repro.delta/v1`` messages times refreshed clients);
    #: defaults to 0 so pre-delta constructions stay valid.
    distribution_bytes: int = 0


@dataclass
class ChurnResult:
    """One churn run: the per-step series plus the recorded event stream
    (the determinism contract: same config → same events, same series)."""

    config: ChurnConfig
    steps: List[StepMetrics]
    events: List[Tuple[int, str, str]]

    @property
    def handshakes(self) -> int:
        return sum(s.handshakes for s in self.steps)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.steps)

    @property
    def fp_retries(self) -> int:
        return sum(s.fp_retries for s in self.steps)

    @property
    def fallbacks(self) -> int:
        return sum(s.fallbacks for s in self.steps)

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.steps)

    @property
    def fp_retry_rate(self) -> float:
        total = self.handshakes
        return (self.fp_retries + self.fallbacks) / total if total else 0.0

    @property
    def suppression_rate(self) -> float:
        encountered = sum(s.icas_encountered for s in self.steps)
        if not encountered:
            return 0.0
        return sum(s.icas_suppressed for s in self.steps) / encountered

    @property
    def stale_advertised_rate(self) -> float:
        total = self.handshakes
        return sum(s.stale_advertised for s in self.steps) / total if total else 0.0

    @property
    def total_wire_bytes(self) -> int:
        return sum(s.wire_bytes for s in self.steps)

    @property
    def total_distribution_bytes(self) -> int:
        """Cumulative bytes the filter-update channel shipped — the
        headline delta-vs-full comparison metric."""
        return sum(s.distribution_bytes for s in self.steps)

    def fp_retry_curve(self) -> List[float]:
        """Per-step FP-retry rate — the staleness-degradation series the
        churn experiment plots."""
        return [
            (s.fp_retries + s.fallbacks) / s.handshakes if s.handshakes else 0.0
            for s in self.steps
        ]


@dataclass
class _ICARecord:
    """One intermediate CA and every certificate ever carrying its
    subject/key: the original plus later cross-signs."""

    authority: CertificateAuthority
    #: (ica certificate, anchoring root certificate), oldest first.
    variants: List[Tuple[Certificate, Certificate]]
    expire_step: int
    revoked: bool = False

    def live_variant(
        self, step: int, crl: RevocationList, at_time: int
    ) -> Optional[Tuple[Certificate, Certificate]]:
        """Newest variant that is unrevoked and valid — what a rotating
        site would deploy."""
        for cert, root in reversed(self.variants):
            if not crl.is_revoked(cert) and cert.valid_at(at_time):
                return cert, root
        return None


@dataclass
class _Site:
    hostname: str
    record_index: int
    ica_cert: Certificate
    root_cert: Certificate
    credential: ServerCredential
    #: Step at which this site swaps off its current (revoked) chain.
    rotate_at: Optional[int] = None


class _ChurnClient:
    """One client: live cache + managed filter, stale advertised payload."""

    def __init__(
        self, index: int, config: ChurnConfig, initial: List[Certificate]
    ) -> None:
        self.index = index
        self.cache = ICACache()
        self.cache.add_many(initial)
        plan = plan_filter(
            num_icas=max(1, len(self.cache)),
            filter_kind=config.filter_kind,
            fpp=config.fpp,
            load_factor=config.load_factor,
            budget_bytes=None,
            seed=config.seed,
            headroom=2.0,
        )
        self.manager = FilterManager(self.cache, plan)
        self.advertised_payload: bytes = b""
        self.advertised_fps: frozenset = frozenset()
        self.refresh_payload()

    def refresh_payload(self) -> None:
        self.advertised_payload = build_extension_payload(self.manager.filter)
        self.advertised_fps = frozenset(self.cache.fingerprints())

    def payload_is_stale(self) -> bool:
        return self.advertised_fps != frozenset(self.cache.fingerprints())


class ChurnWorld:
    """The CA-ecosystem half of the simulation: roots, ICA records, CRL,
    serving sites, and the per-step mutation phase (issue → cross-sign →
    revoke → rotate) driven by the ``churn.events`` RNG stream.

    A world is client-free on purpose: the fleet engine below and the
    columnar cohort engine both attach their own client models to one of
    these, and because every draw comes from
    :func:`~repro.runtime.parallel.derive_seed` streams keyed only by
    (config.seed, step), two worlds built from one config replay the
    identical event stream whatever consumes them.
    """

    def __init__(self, config: ChurnConfig = ChurnConfig()) -> None:
        if config.steps < 0:
            raise SimulationError(f"steps must be >= 0, got {config.steps}")
        if config.num_roots < 1:
            raise SimulationError(
                f"num_roots must be >= 1, got {config.num_roots}"
            )
        if config.initial_icas < 2:
            raise SimulationError(
                f"initial_icas must be >= 2, got {config.initial_icas}"
            )
        self.config = config
        self.events: List[Tuple[int, str, str]] = []
        self._issued = 0
        horizon = (config.steps + 2) * config.step_seconds
        self.roots = [
            CertificateAuthority.create_root(
                f"Churn Root R{i}",
                config.algorithm,
                seed=derive_seed("churn.root", config.seed, i),
                not_before=0,
                not_after=max(CA_VALIDITY, horizon),
            )
            for i in range(config.num_roots)
        ]
        self.trust_store = TrustStore([r.certificate for r in self.roots])
        self.crl = RevocationList()
        self.records: List[_ICARecord] = []
        for i in range(config.initial_icas):
            # Staggered expiries: the sweep fires across the horizon, not
            # in one burst at step ``ica_validity_steps``.
            stagger = i % max(1, config.ica_validity_steps // 2)
            self._issue_ica(step=0, expire_step=config.ica_validity_steps + stagger)
        self.server_suppressor = ServerSuppressor()
        self.sites: List[_Site] = []
        rng = random.Random(derive_seed("churn.sites", config.seed))
        for i in range(config.num_sites):
            self.sites.append(self._make_site(f"site{i}.churn.example", 0, rng))

    # -- ecosystem mutation ------------------------------------------------------

    def _issue_ica(self, step: int, expire_step: Optional[int] = None) -> _ICARecord:
        cfg = self.config
        i = self._issued
        self._issued += 1
        root = self.roots[i % cfg.num_roots]
        expire = expire_step if expire_step is not None else step + cfg.ica_validity_steps
        authority = root.create_subordinate(
            f"Churn ICA I{i}",
            seed=derive_seed("churn.ica", cfg.seed, i),
            not_before=step * cfg.step_seconds,
            not_after=expire * cfg.step_seconds,
        )
        record = _ICARecord(
            authority=authority,
            variants=[(authority.certificate, root.certificate)],
            expire_step=expire,
        )
        self.records.append(record)
        self.events.append((step, "issue", authority.name))
        return record

    def _cross_sign(self, step: int, rng: random.Random) -> bool:
        cfg = self.config
        if cfg.num_roots < 2:
            return False
        at_time = step * cfg.step_seconds
        candidates = [
            (i, r)
            for i, r in enumerate(self.records)
            if r.live_variant(step, self.crl, at_time) is not None
            and r.expire_step > step + 1
        ]
        if not candidates:
            return False
        index, record = candidates[rng.randrange(len(candidates))]
        current_root = record.variants[-1][1]
        other_roots = [
            r for r in self.roots if r.certificate.subject != current_root.subject
        ]
        signer = other_roots[rng.randrange(len(other_roots))]
        cert = signer.cross_sign(
            record.authority,
            not_before=at_time,
            not_after=record.expire_step * cfg.step_seconds,
        )
        record.variants.append((cert, signer.certificate))
        self.events.append(
            (step, "cross-sign", f"{record.authority.name} by {signer.name}")
        )
        return True

    def _revoke(self, step: int, rng: random.Random) -> bool:
        at_time = step * self.config.step_seconds
        servable = [
            i
            for i, r in enumerate(self.records)
            if r.live_variant(step, self.crl, at_time) is not None
            and r.expire_step > step + 1
        ]
        if len(servable) <= 2:  # keep the ecosystem servable
            return False
        index = servable[rng.randrange(len(servable))]
        record = self.records[index]
        cert, _ = record.live_variant(step, self.crl, at_time)
        self.crl.revoke(cert, at_time=at_time)
        record.revoked = record.live_variant(step, self.crl, at_time) is None
        self.events.append((step, "revoke", cert.subject))
        # Sites serving the revoked certificate rotate only after the lag.
        for site in self.sites:
            if (
                site.ica_cert.fingerprint() == cert.fingerprint()
                and site.rotate_at is None
            ):
                site.rotate_at = step + self.config.rotation_lag_steps
        return True

    def _make_site(self, hostname: str, step: int, rng: random.Random) -> _Site:
        cfg = self.config
        at_time = step * cfg.step_seconds
        servable = [
            (i, r.live_variant(step, self.crl, at_time))
            for i, r in enumerate(self.records)
            if r.live_variant(step, self.crl, at_time) is not None
            and r.expire_step > step + 1
        ]
        if not servable:
            # Renewal issuance: when revocations plus expiries have drained
            # the servable pool, the CA ecosystem mints a replacement ICA
            # rather than leaving the site unservable.
            record = self._issue_ica(step)
            servable = [(len(self.records) - 1, record.variants[-1])]
        index, variant = servable[rng.randrange(len(servable))]
        ica_cert, root_cert = variant
        record = self.records[index]
        keypair = KeyPair(
            record.authority.certificate.public_key.algorithm,
            derive_seed("churn.leaf", cfg.seed, hostname, step),
        )
        leaf = record.authority.issue_leaf_with_key(
            hostname, keypair, not_before=at_time
        )
        chain = CertificateChain(
            leaf=leaf, intermediates=(ica_cert,), root=root_cert
        )
        return _Site(
            hostname=hostname,
            record_index=index,
            ica_cert=ica_cert,
            root_cert=root_cert,
            credential=ServerCredential(chain=chain, keypair=keypair),
        )

    def _rotate_due_sites(self, step: int, rng: random.Random) -> int:
        rotations = 0
        at_time = step * self.config.step_seconds
        for i, site in enumerate(self.sites):
            record = self.records[site.record_index]
            lag_due = site.rotate_at is not None and step >= site.rotate_at
            # Renew-before-expiry: an expired ICA in the chain would fail
            # even the plain retry, so sites rotate one step ahead.
            expiring = record.expire_step <= step + 1
            invalid = not site.ica_cert.valid_at(at_time)
            if lag_due or expiring or invalid:
                self.sites[i] = self._make_site(site.hostname, step, rng)
                rotations += 1
                self.events.append((step, "rotate", site.hostname))
        return rotations

    def _draw_count(self, rate: float, rng: random.Random) -> int:
        count = int(rate)
        if rng.random() < rate - count:
            count += 1
        return count

    # -- queries -----------------------------------------------------------------

    def initial_certificates(self) -> List[Certificate]:
        """Every ICA variant currently on record (what a fresh client's
        preload cache starts from)."""
        return [cert for record in self.records for cert, _ in record.variants]

    def live_certificates(self, step: int) -> List[Certificate]:
        at_time = step * self.config.step_seconds
        live = []
        for record in self.records:
            for cert, _ in record.variants:
                if not self.crl.is_revoked(cert) and cert.valid_at(at_time):
                    live.append(cert)
        return live

    # -- per-step mutation --------------------------------------------------------

    def advance(self, step: int) -> Tuple[int, int, int, int]:
        """Run one step's lifecycle phase: issuance, cross-signing,
        revocation, then due site rotations — all drawn from the
        ``churn.events`` stream in this exact order (the determinism
        contract every engine on top of this world relies on).

        Returns ``(issued, cross_signed, revoked, rotations)``.
        """
        cfg = self.config
        rng = random.Random(derive_seed("churn.events", cfg.seed, step))
        issued = sum(
            1
            for _ in range(self._draw_count(cfg.issuance_rate, rng))
            if self._issue_ica(step)
        )
        cross_signed = sum(
            1
            for _ in range(self._draw_count(cfg.cross_sign_rate, rng))
            if self._cross_sign(step, rng)
        )
        revoked = sum(
            1
            for _ in range(self._draw_count(cfg.revocation_rate, rng))
            if self._revoke(step, rng)
        )
        rotations = self._rotate_due_sites(step, rng)
        return issued, cross_signed, revoked, rotations


class ChurnEngine:
    """Deterministic, time-stepped PKI lifecycle simulation: a
    :class:`ChurnWorld` plus a small fleet of stateful clients, every
    handshake run one at a time through the real TLS machine."""

    def __init__(self, config: ChurnConfig = ChurnConfig()) -> None:
        if config.steps < 1:
            raise SimulationError(f"steps must be >= 1, got {config.steps}")
        if config.payload_refresh_every < 1:
            raise SimulationError(
                f"payload_refresh_every must be >= 1, got "
                f"{config.payload_refresh_every}"
            )
        if config.distribution != "full":
            # Delta distribution is modeled by the cohort engines (shared
            # ChurnCohortState), whose generation structure defines which
            # clients refresh per step; this per-handshake fleet has no
            # such structure to meter against.
            raise SimulationError(
                "the fleet churn engine only supports distribution='full'; "
                "use the columnar or scalar cohort engines for "
                f"{config.distribution!r}"
            )
        self.config = config
        self.world = ChurnWorld(config)
        initial_certs = self.world.initial_certificates()
        self.clients = [
            _ChurnClient(i, config, initial_certs)
            for i in range(config.num_clients)
        ]

    # The world owns the ecosystem state; these aliases keep the engine's
    # historical surface (tests and callers inspect them directly).

    @property
    def events(self) -> List[Tuple[int, str, str]]:
        return self.world.events

    @property
    def roots(self):
        return self.world.roots

    @property
    def trust_store(self) -> TrustStore:
        return self.world.trust_store

    @property
    def crl(self) -> RevocationList:
        return self.world.crl

    @property
    def records(self) -> List[_ICARecord]:
        return self.world.records

    @property
    def sites(self) -> List[_Site]:
        return self.world.sites

    @property
    def server_suppressor(self) -> ServerSuppressor:
        return self.world.server_suppressor

    # -- per-step work -------------------------------------------------------------

    def _learn(self, client: _ChurnClient, chain: CertificateChain) -> None:
        # A client that evicted an ICA for revocation must not re-learn it
        # from the wire while the serving site lags its rotation.
        fresh = [
            cert
            for cert in chain.intermediates
            if not self.crl.is_revoked(cert) and cert not in client.cache
        ]
        if fresh:
            client.cache.add_many(fresh)

    def run_step(self, step: int) -> StepMetrics:
        cfg = self.config
        at_time = step * cfg.step_seconds
        issued, cross_signed, revoked, rotations = self.world.advance(step)

        expired_swept = 0
        for client in self.clients:
            expired_swept += client.cache.sweep_expired(at_time)
            client.cache.apply_revocations(self.crl)

        preload_added = 0
        if step and step % cfg.preload_refresh_every == 0:
            live = self.world.live_certificates(step)
            for client in self.clients:
                preload_added += client.cache.add_many(
                    [cert for cert in live if cert not in client.cache]
                )
            self.events.append((step, "preload-refresh", f"added={preload_added}"))

        payload_refreshes = 0
        for client in self.clients:
            if (step + client.index) % cfg.payload_refresh_every == 0:
                client.refresh_payload()
                payload_refreshes += 1

        (
            handshakes,
            completed,
            fp_retries,
            fallbacks,
            failures,
            stale_advertised,
            encountered,
            suppressed,
            wire_bytes,
        ) = self._run_handshakes(step)

        metrics = StepMetrics(
            step=step,
            icas_issued=issued,
            icas_cross_signed=cross_signed,
            icas_revoked=revoked,
            icas_expired_swept=expired_swept,
            preload_added=preload_added,
            payload_refreshes=payload_refreshes,
            site_rotations=rotations,
            handshakes=handshakes,
            completed=completed,
            fp_retries=fp_retries,
            fallbacks=fallbacks,
            failures=failures,
            stale_advertised=stale_advertised,
            icas_encountered=encountered,
            icas_suppressed=suppressed,
            wire_bytes=wire_bytes,
        )
        record_churn_step(metrics)
        return metrics

    def _run_handshakes(self, step: int):
        cfg = self.config
        at_time = step * cfg.step_seconds
        handshakes = completed = fp_retries = fallbacks = failures = 0
        stale_advertised = encountered = suppressed = wire_bytes = 0
        for h in range(cfg.handshakes_per_step):
            rng = random.Random(derive_seed("churn.handshake", cfg.seed, step, h))
            client = self.clients[rng.randrange(len(self.clients))]
            site = self.sites[rng.randrange(len(self.sites))]
            client_config = ClientConfig(
                trust_store=self.trust_store,
                kem_name=cfg.kem_name,
                hostname=site.hostname,
                at_time=at_time,
                ica_filter_payload=client.advertised_payload,
                issuer_lookup=client.cache.lookup_issuer,
                seed=derive_seed("churn.client", cfg.seed, step, h),
            )
            server_config = ServerConfig(
                credential=site.credential,
                suppression_handler=self.server_suppressor,
                seed=derive_seed("churn.server", cfg.seed, step, h),
            )
            trace = run_handshake(client_config, server_config)
            handshakes += 1
            if client.payload_is_stale():
                stale_advertised += 1
            chain = site.credential.chain
            encountered += chain.num_icas
            suppressed += trace.attempts[0].suppressed_ica_count
            wire_bytes += trace.total_wire_bytes
            if trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY:
                fp_retries += 1
            elif trace.outcome is HandshakeOutcome.COMPLETED_AFTER_FALLBACK:
                fallbacks += 1
            if trace.succeeded:
                completed += 1
                self._learn(client, chain)
            else:
                failures += 1
        return (
            handshakes,
            completed,
            fp_retries,
            fallbacks,
            failures,
            stale_advertised,
            encountered,
            suppressed,
            wire_bytes,
        )

    def run(self) -> ChurnResult:
        steps = []
        with obs.span(
            "webmodel.churn.run", (("filter", self.config.filter_kind),)
        ):
            for step in range(self.config.steps):
                steps.append(self.run_step(step))
        return ChurnResult(config=self.config, steps=steps, events=self.events)


def record_churn_step(m: StepMetrics) -> None:
    """Emit the ``webmodel.churn.*`` counters of one step.

    Shared by every churn engine (fleet, columnar, scalar reference):
    counters are pure sums over :class:`StepMetrics` fields, so equal
    metric series yield equal counters whichever engine — and whichever
    ``--jobs`` sharding, via the metered merge — produced them.
    """
    reg = obs.registry()
    if reg is None:
        return
    reg.inc("webmodel.churn.steps")
    reg.inc("webmodel.churn.icas_issued", m.icas_issued)
    reg.inc("webmodel.churn.cross_signs", m.icas_cross_signed)
    reg.inc("webmodel.churn.icas_revoked", m.icas_revoked)
    reg.inc("webmodel.churn.icas_expired", m.icas_expired_swept)
    reg.inc("webmodel.churn.preload_added", m.preload_added)
    reg.inc("webmodel.churn.payload_refreshes", m.payload_refreshes)
    reg.inc("webmodel.churn.site_rotations", m.site_rotations)
    reg.inc("webmodel.churn.handshakes", m.handshakes)
    reg.inc("webmodel.churn.stale_retries", m.fp_retries)
    reg.inc("webmodel.churn.fallbacks", m.fallbacks)
    reg.inc("webmodel.churn.failures", m.failures)
    reg.inc("webmodel.churn.icas_encountered", m.icas_encountered)
    reg.inc("webmodel.churn.icas_suppressed", m.icas_suppressed)
    reg.inc("webmodel.churn.distribution_bytes", m.distribution_bytes)


def run_churn(config: ChurnConfig = ChurnConfig()) -> ChurnResult:
    """Build a fresh engine and run it (one call = one pure function of
    ``config``; the churn experiment's parallel cells use this)."""
    return ChurnEngine(config).run()
