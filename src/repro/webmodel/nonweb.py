"""Non-Web workloads: IoT fleets and mobile apps (the paper's §7 plan).

The conclusion promises to "evaluate the ICA suppression performance in
non-Web-based environments (e.g., IoT, mobile devices)". These
environments differ from browsing in every parameter that matters to the
mechanism:

* **peer sets are tiny and closed** — a device talks to a handful of
  gateways under one private PKI, so the filter can be both tiny and run
  at an aggressive FPP (§5.2's service-mesh observation);
* **connections are frequent and short** — telemetry every few minutes,
  API calls all day — so per-handshake byte savings compound;
* **links are constrained** — small initial windows and long RTTs
  (cellular, satellite) amplify every extra flight.

``simulate_scenario`` runs a day of connections for a parameterized
scenario through the real suppression pipeline (live handshakes, real
filters) and reports the deployment-facing metrics; three presets model
web browsing, a mobile app and an IoT fleet for the comparison table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.filter_config import plan_filter
from repro.core.suppression import ClientSuppressor, ServerSuppressor
from repro.errors import SimulationError
from repro.netsim.tcp import TCPConfig, flights_needed
from repro.pki import IntermediatePreload, build_hierarchy
from repro.tls.record import wire_size
from repro.tls.server import ServerConfig
from repro.tls.session import run_handshake


@dataclass(frozen=True)
class ScenarioConfig:
    """One non-Web (or Web) deployment scenario."""

    name: str
    algorithm: str
    kem: str
    #: Distinct TLS peers the client contacts.
    num_peers: int
    #: Distinct ICAs across those peers' chains.
    num_icas: int
    #: Handshakes per day (resumption and connection reuse already netted
    #: out — these are full handshakes).
    handshakes_per_day: int
    #: Filter false-positive target (closed worlds can afford tiny FPPs).
    fpp: float
    rtt_s: float
    initcwnd_segments: int
    filter_kind: str = "vacuum"
    seed: int = 0


#: Presets for the comparison experiment.
WEB_BROWSING = ScenarioConfig(
    name="web-browsing",
    algorithm="dilithium3",
    kem="ntru-hps-509",
    num_peers=40,
    num_icas=35,
    handshakes_per_day=200,
    fpp=1e-3,
    rtt_s=0.045,
    initcwnd_segments=10,
    seed=1,
)
MOBILE_APP = ScenarioConfig(
    name="mobile-app",
    algorithm="dilithium2",
    kem="kyber512",
    num_peers=6,
    num_icas=5,
    handshakes_per_day=120,
    fpp=1e-5,
    rtt_s=0.07,  # LTE
    initcwnd_segments=10,
    seed=2,
)
IOT_FLEET = ScenarioConfig(
    name="iot-fleet",
    algorithm="falcon-512",
    kem="kyber512",
    num_peers=3,
    num_icas=4,
    handshakes_per_day=288,  # telemetry every 5 minutes
    fpp=1e-6,
    rtt_s=0.3,  # NB-IoT / satellite backhaul
    initcwnd_segments=4,
    seed=3,
)


@dataclass(frozen=True)
class ScenarioResult:
    config: ScenarioConfig
    filter_payload_bytes: int
    suppression_rate: float
    bytes_saved_per_day: int
    flight_rtts_saved_per_day: int
    handshake_seconds_saved_per_day: float
    false_positives: int


def simulate_scenario(
    config: ScenarioConfig, sample_handshakes: int = 60
) -> ScenarioResult:
    """Run ``sample_handshakes`` live handshakes for the scenario and
    scale the per-handshake savings to a day."""
    if sample_handshakes < 1:
        raise SimulationError("need at least one sampled handshake")
    hierarchy = build_hierarchy(
        config.algorithm,
        total_icas=config.num_icas,
        num_roots=1,
        seed=config.seed,
    )
    store = hierarchy.trust_store()
    credentials = [
        hierarchy.issue_credential(f"{config.name}-peer-{i}.local")
        for i in range(config.num_peers)
    ]
    suppressor = ClientSuppressor(
        preload=IntermediatePreload(hierarchy.ica_certificates()),
        plan=plan_filter(
            max(8, config.num_icas),
            filter_kind=config.filter_kind,
            fpp=config.fpp,
            budget_bytes=None,
            headroom=1.5,
            seed=config.seed,
        ),
    )
    server_suppressor = ServerSuppressor()
    tcp = TCPConfig(initcwnd_segments=config.initcwnd_segments)
    rng = random.Random(config.seed ^ 0x0A7)

    bytes_saved = 0
    rtts_saved = 0
    total_icas = suppressed_icas = 0
    fps = 0
    for i in range(sample_handshakes):
        credential = rng.choice(credentials)
        server = ServerConfig(
            credential=credential,
            suppression_handler=server_suppressor,
            seed=config.seed * 1000 + i,
        )
        with_f = run_handshake(
            suppressor.client_config(
                store, credential.chain.leaf.subject, kem_name=config.kem,
                at_time=100, seed=i,
            ),
            server,
        )
        without = run_handshake(
            suppressor.client_config(
                store, credential.chain.leaf.subject, kem_name=config.kem,
                at_time=100, use_suppression=False, seed=i,
            ),
            server,
        )
        if not (with_f.succeeded and without.succeeded):
            raise SimulationError(
                f"scenario handshake failed: "
                f"{with_f.final_attempt.failure_reason or without.final_attempt.failure_reason}"
            )
        bytes_saved += without.total_wire_bytes - with_f.total_wire_bytes
        flights_without = flights_needed(
            wire_size(without.attempts[-1].server_flight_bytes), tcp
        )
        flights_with = flights_needed(
            wire_size(with_f.attempts[-1].server_flight_bytes), tcp
        )
        rtts_saved += max(0, flights_without - flights_with)
        total_icas += credential.chain.num_icas
        suppressed_icas += with_f.suppressed_ica_count
        fps += with_f.false_positive

    scale = config.handshakes_per_day / sample_handshakes
    return ScenarioResult(
        config=config,
        filter_payload_bytes=len(suppressor.extension_payload()),
        suppression_rate=suppressed_icas / total_icas if total_icas else 1.0,
        bytes_saved_per_day=round(bytes_saved * scale),
        flight_rtts_saved_per_day=round(rtts_saved * scale),
        handshake_seconds_saved_per_day=rtts_saved * scale * config.rtt_s,
        false_positives=fps,
    )


def compare_environments(
    scenarios: Tuple[ScenarioConfig, ...] = (WEB_BROWSING, MOBILE_APP, IOT_FLEET),
    sample_handshakes: int = 60,
) -> List[ScenarioResult]:
    return [simulate_scenario(s, sample_handshakes) for s in scenarios]


def format_environments(results: List[ScenarioResult]) -> str:
    from repro.analysis.tables import format_table

    rows = []
    for r in results:
        c = r.config
        rows.append(
            [
                c.name,
                c.algorithm,
                c.num_peers,
                f"{c.fpp:g}",
                r.filter_payload_bytes,
                f"{100 * r.suppression_rate:.0f}%",
                f"{r.bytes_saved_per_day / 1e6:.2f}",
                r.flight_rtts_saved_per_day,
                f"{r.handshake_seconds_saved_per_day:.1f}",
            ]
        )
    return format_table(
        ["environment", "algorithm", "peers", "fpp", "filter B",
         "suppression", "MB saved/day", "RTTs saved/day", "sec saved/day"],
        rows,
        title="Non-Web environments (§7 future work) — a day of handshakes",
    )
