"""ICA population model: who signs the web's certificates.

Couples the domain ranking to the synthetic PKI:

* the ICA universe holds ~1400 distinct intermediates (the CCADB /
  Firefox preload count the paper reports for June 2022);
* each domain's chain depth follows the month's Table-2 mix;
* the issuing path is drawn from a head-heavy Zipf over paths, calibrated
  so a Top-10K crawl observes the paper's 220-245 distinct ICAs;
* tail domains (rank > ``hot_rank_threshold``) mix in a uniform draw over
  the whole universe (``tail_uniform_share``), which is what pushes the
  browsing session's known-ICA rate down to the paper's observed 69-74 %
  despite the head's concentration.

Every assignment is a pure function of (seed, rank), so the same domain
always presents the same chain — a property both the crawler and the
browsing simulator rely on.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.pki.authority import Hierarchy, ICAPath, ServerCredential, build_hierarchy
from repro.pki.certificate import Certificate
from repro.runtime import artifacts
from repro.runtime.parallel import derive_seed
from repro.webmodel.chains import PAPER_MONTH, ChainMix, table2_mix
from repro.webmodel.tranco import DomainRanking


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the population model (defaults = paper calibration)."""

    algorithm: str = "ecdsa-p256"
    universe_icas: int = 1400
    num_roots: int = 7
    head_exponent: float = 2.1
    tail_uniform_share: float = 0.85
    hot_rank_threshold: int = 10_000
    month: str = PAPER_MONTH
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.tail_uniform_share <= 1.0:
            raise ConfigurationError(
                f"tail_uniform_share must be in [0,1], got {self.tail_uniform_share}"
            )
        if self.head_exponent <= 1.0:
            raise ConfigurationError(
                f"head_exponent must exceed 1, got {self.head_exponent}"
            )


class ICAPopulation:
    """The web's CA population, addressable by domain rank."""

    def __init__(
        self,
        config: PopulationConfig = PopulationConfig(),
        ranking: Optional[DomainRanking] = None,
    ) -> None:
        self.config = config
        self.ranking = ranking or DomainRanking(seed=config.seed)
        self.hierarchy: Hierarchy = build_hierarchy(
            config.algorithm,
            total_icas=config.universe_icas,
            num_roots=config.num_roots,
            depth_weights={1: 0.50, 2: 0.35, 3: 0.145, 4: 0.005},
            seed=config.seed,
        )
        shuffle_rng = random.Random(config.seed ^ 0xBEEF)
        self._paths_by_depth: Dict[int, List[ICAPath]] = {}
        for path in self.hierarchy.paths:
            self._paths_by_depth.setdefault(path.depth, []).append(path)
        for depth, paths in self._paths_by_depth.items():
            shuffle_rng.shuffle(paths)  # popularity order, decoupled from creation
        self._cum_weights: Dict[int, List[float]] = {
            depth: self._cumulative_zipf(len(paths))
            for depth, paths in self._paths_by_depth.items()
        }
        self._mix: ChainMix = table2_mix(config.month)
        self._credentials: Dict[int, ServerCredential] = {}
        self._hot_icas: Dict[int, List[Certificate]] = {}

    # -- internals ------------------------------------------------------------

    def _cumulative_zipf(self, n: int) -> List[float]:
        acc = 0.0
        out = []
        for i in range(n):
            acc += 1.0 / (i + 1) ** self.config.head_exponent
            out.append(acc)
        return out

    def _rng_for(self, rank: int, salt: int) -> random.Random:
        return random.Random(
            (self.config.seed << 32) ^ (rank * 0x9E3779B1) ^ (salt * 0x85EBCA6B)
        )

    def _available_depth(self, depth: int) -> int:
        while depth > 0 and not self._paths_by_depth.get(depth):
            depth -= 1
        return depth

    # -- assignment -----------------------------------------------------------

    def depth_for_rank(self, rank: int) -> int:
        """Chain depth (ICA count) of the domain at ``rank``."""
        depth = self._mix.sample_depth(self._rng_for(rank, 1))
        return self._available_depth(depth)

    def path_for_rank(self, rank: int) -> ICAPath:
        depth = self.depth_for_rank(rank)
        if depth == 0:
            roots = self._paths_by_depth.get(0, [])
            if not roots:
                raise ConfigurationError("hierarchy has no root-direct paths")
            return roots[self._rng_for(rank, 2).randrange(len(roots))]
        paths = self._paths_by_depth[depth]
        rng = self._rng_for(rank, 3)
        if (
            rank > self.config.hot_rank_threshold
            and rng.random() < self.config.tail_uniform_share
        ):
            return paths[rng.randrange(len(paths))]
        cum = self._cum_weights[depth]
        u = rng.random() * cum[-1]
        return paths[min(bisect.bisect_left(cum, u), len(paths) - 1)]

    # -- issuance ------------------------------------------------------------

    def credential_for_rank(self, rank: int) -> ServerCredential:
        """The server credential (chain + leaf key) for a domain; cached,
        so a domain presents one stable chain across the simulation.

        The leaf seed and serial derive from (population seed, rank), so
        issuance is a pure function of its inputs — independent of visit
        order, identical across processes, and shareable across simulator
        instances through the content-keyed credentials cache."""
        cred = self._credentials.get(rank)
        if cred is None:
            domain = self.ranking.domain(rank)
            path = self.path_for_rank(rank)
            leaf_seed = derive_seed("population.leaf", self.config.seed, rank)
            serial = derive_seed(
                "population.serial", self.config.seed, rank, bits=48
            )
            key = (
                path.issuer.certificate.fingerprint(),
                domain,
                leaf_seed,
                serial,
            )
            cred = artifacts.CREDENTIALS.get(key)
            if cred is None:
                cred = self.hierarchy.issue_credential(
                    domain, path, seed=leaf_seed, serial=serial
                )
                artifacts.CREDENTIALS.put(key, cred)
            self._credentials[rank] = cred
        return cred

    def chain_for_rank(self, rank: int):
        return self.credential_for_rank(rank).chain

    # -- population views --------------------------------------------------------

    def ica_universe(self) -> List[Certificate]:
        return self.hierarchy.ica_certificates()

    def hot_ica_certificates(self, top_n: int = 10_000) -> List[Certificate]:
        """Distinct ICAs observed across the top-``top_n`` domains — the
        paper's filter contents (245 for the June '22 crawl). Memoized per
        ``top_n``: rank assignment is a pure function of (seed, rank), so
        the scan's result never changes and every simulator sharing this
        population reuses one copy."""
        cached = self._hot_icas.get(top_n)
        if cached is None:
            seen: Dict[bytes, Certificate] = {}
            for rank in range(1, top_n + 1):
                path = self.path_for_rank(rank)
                for cert in path.ica_certificates():
                    seen.setdefault(cert.fingerprint(), cert)
            cached = list(seen.values())
            self._hot_icas[top_n] = cached
        return list(cached)
