"""Synthetic web workload: domain rankings, PKI population, browsing.

Substitutes the paper's live inputs (Tranco list crawls, real user
browsing) with calibrated generative models:

* :mod:`repro.webmodel.tranco` — a ranked domain universe with Zipf
  popularity (the Tranco Top-1M stand-in);
* :mod:`repro.webmodel.chains` — the chain-size mixes of Table 2;
* :mod:`repro.webmodel.population` — a 1400-ICA universe (the CCADB
  preload count) with head-heavy popularity such that a top-10K crawl
  observes the paper's 220-245 distinct ICAs;
* :mod:`repro.webmodel.crawler` — the monthly top-10K crawl (Table 2);
* :mod:`repro.webmodel.browsing` — the Burklen et al. user model the
  paper cites (Zipf-1.9 domain visits, Pareto-2.5 pages per domain,
  third-party content per page);
* :mod:`repro.webmodel.session_sim` — the full browsing-session simulator
  behind Fig. 5.
"""

from repro.webmodel.tranco import DomainRanking
from repro.webmodel.chains import ChainMix, TABLE2_MONTHS, table2_mix
from repro.webmodel.population import ICAPopulation, PopulationConfig
from repro.webmodel.crawler import CrawlStats, crawl_top_domains
from repro.webmodel.browsing import BrowsingModel, BrowsingConfig, Visit
from repro.webmodel.session_sim import (
    SessionConfig,
    SessionResult,
    BrowsingSessionSimulator,
)
from repro.webmodel.churn import (
    ChurnConfig,
    ChurnEngine,
    ChurnResult,
    StepMetrics,
    run_churn,
)
from repro.webmodel.nonweb import (
    ScenarioConfig,
    ScenarioResult,
    simulate_scenario,
    compare_environments,
    WEB_BROWSING,
    MOBILE_APP,
    IOT_FLEET,
)

__all__ = [
    "DomainRanking",
    "ChainMix",
    "TABLE2_MONTHS",
    "table2_mix",
    "ICAPopulation",
    "PopulationConfig",
    "CrawlStats",
    "crawl_top_domains",
    "BrowsingModel",
    "BrowsingConfig",
    "Visit",
    "SessionConfig",
    "SessionResult",
    "BrowsingSessionSimulator",
    "ChurnConfig",
    "ChurnEngine",
    "ChurnResult",
    "StepMetrics",
    "run_churn",
    "ScenarioConfig",
    "ScenarioResult",
    "simulate_scenario",
    "compare_environments",
    "WEB_BROWSING",
    "MOBILE_APP",
    "IOT_FLEET",
]
