"""Scalar reference for the churn cohort protocol.

This runner executes the *same* protocol as
:mod:`repro.webmodel.churn_columnar` — same :class:`ChurnCohortState`
(world, canonical cache, generation captures, epoch maintenance, pooled
learning), same counter-based site draws, same per-cell handshake seeds —
but resolves every single cell through the untouched per-handshake TLS
machine, one :func:`~repro.tls.session.run_handshake` at a time, with no
representative broadcasting, no bulk probes and no artifact-cache fast
paths on the accounting side.

It exists to be slow and obviously correct: the differential suite and
the CI churn-smoke assert *full-result equality* (config, every
per-epoch ``StepMetrics``, the whole event stream) between this runner
and the columnar engine, so any vectorization shortcut that changes a
number — a wrong broadcast, a missed FP candidate, a stale-flag slip —
shows up as a failing comparison rather than a silently wrong sweep.

Site draws come from per-client counter rows
(:func:`~repro.webmodel.cohortrng.uniforms` over
``epoch_site_counters(step, n, slots)[client]``), which doubles as a
standing check that the counter layout is sharding-invariant: the scalar
row and the columnar block must yield identical draws by construction.
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro import obs
from repro.webmodel.churn import StepMetrics, record_churn_step
from repro.webmodel.churn_columnar import (
    SITE_STREAM,
    ChurnCohortConfig,
    ChurnCohortResult,
    ChurnCohortState,
    EpochCounts,
    _trace_stats,
    churn_stream_keys,
    epoch_site_counters,
    generation_of,
)
from repro.webmodel.cohortrng import uniforms


def _reference_epoch(
    state: ChurnCohortState, site_key: int, step: int
) -> StepMetrics:
    cfg = state.config.world
    n = state.config.num_clients
    slots = state.config.handshakes_per_client
    k = state.generations

    counts: EpochCounts = state.begin_epoch(step)
    stale = state.stale_generations()

    completed = fp_retries = fallbacks = failures = 0
    suppressed = wire_bytes = encountered = stale_advertised = 0
    succeeded_sites: Set[int] = set()

    epoch_counters = epoch_site_counters(step, n, slots)
    for client in range(n):
        generation = generation_of(client, k)
        payload = state.captures[generation][0]
        draws = uniforms(site_key, epoch_counters[client])
        for slot in range(slots):
            site_index = min(
                int(draws[slot] * cfg.num_sites), cfg.num_sites - 1
            )
            trace = state.run_representative(
                step, client, slot, site_index, payload
            )
            c, r, fb, fail, sup, wire = _trace_stats(trace)
            completed += c
            fp_retries += r
            fallbacks += fb
            failures += fail
            suppressed += sup
            wire_bytes += wire
            chain = state.world.sites[site_index].credential.chain
            encountered += chain.num_icas
            if stale[generation]:
                stale_advertised += 1
            if trace.succeeded:
                succeeded_sites.add(site_index)

    state.finish_epoch(succeeded_sites)
    metrics = StepMetrics(
        step=step,
        icas_issued=counts.icas_issued,
        icas_cross_signed=counts.icas_cross_signed,
        icas_revoked=counts.icas_revoked,
        icas_expired_swept=counts.icas_expired_swept,
        preload_added=counts.preload_added,
        payload_refreshes=counts.payload_refreshes,
        site_rotations=counts.site_rotations,
        handshakes=n * slots,
        completed=completed,
        fp_retries=fp_retries,
        fallbacks=fallbacks,
        failures=failures,
        stale_advertised=stale_advertised,
        icas_encountered=encountered,
        icas_suppressed=suppressed,
        wire_bytes=wire_bytes,
        distribution_bytes=counts.distribution_bytes,
    )
    record_churn_step(metrics)
    return metrics


def run_churn_cohort_reference(
    config: ChurnCohortConfig = ChurnCohortConfig(),
) -> ChurnCohortResult:
    """Run the churn cohort protocol cell by cell on the scalar machine."""
    state = ChurnCohortState(config)
    site_key = churn_stream_keys(config.world.seed)[SITE_STREAM]
    steps = []
    with obs.span(
        "webmodel.churn.run", (("filter", config.world.filter_kind),)
    ):
        for step in range(config.world.steps):
            steps.append(_reference_epoch(state, site_key, step))
    return ChurnCohortResult(
        config=config, steps=steps, events=state.world.events
    )
