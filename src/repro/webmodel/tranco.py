"""Synthetic ranked domain universe (the Tranco Top-1M stand-in).

Domain names are deterministic functions of rank, and popularity-weighted
sampling uses the Zipf law with the exponent the paper takes from the
Burklen et al. browsing model (1.9). Monthly snapshots apply a small
deterministic rank churn so Table 2's month-to-month variation has a
source.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import ConfigurationError

_TLDS = ("com", "org", "net", "io", "dev", "co", "app", "info")


class DomainRanking:
    """A ranked universe of ``size`` domains (rank 1 = most popular)."""

    def __init__(self, size: int = 1_000_000, seed: int = 0) -> None:
        if size < 1:
            raise ConfigurationError(f"ranking size must be >= 1, got {size}")
        self.size = size
        self._seed = seed

    def domain(self, rank: int) -> str:
        """Deterministic domain name for a rank (1-based)."""
        if not 1 <= rank <= self.size:
            raise ConfigurationError(
                f"rank {rank} outside [1, {self.size}]"
            )
        tld = _TLDS[(rank * 2654435761) % len(_TLDS)]
        return f"site-{rank:07d}.{tld}"

    def rank_of(self, domain: str) -> int:
        """Inverse of :meth:`domain`."""
        try:
            return int(domain.split(".", 1)[0].split("-")[1])
        except (IndexError, ValueError) as exc:
            raise ConfigurationError(f"not a synthetic domain: {domain!r}") from exc

    def sample_rank(self, rng: random.Random, exponent: float = 1.9) -> int:
        """Zipf(``exponent``)-distributed rank via inverse-CDF on the
        continuous Pareto envelope (exact enough for exponents > 1 at
        this universe size), clamped to the universe."""
        if exponent <= 1.0:
            raise ConfigurationError(
                f"zipf exponent must exceed 1, got {exponent}"
            )
        # Continuous inverse CDF (rank ~ u^(-1/(a-1))), rejection-sampled
        # against the universe bound: clamping instead would pile an atom
        # of probability onto the single bottom rank.
        for _ in range(64):
            rank = int(rng.random() ** (-1.0 / (exponent - 1.0)))
            if rank <= self.size:
                return max(1, rank)
        return self.size  # astronomically unlikely fallback

    def monthly_rank(self, rank: int, month_index: int, churn: float = 0.02) -> int:
        """Rank of the same site in a monthly snapshot: a deterministic
        jitter of up to ``churn`` of the rank magnitude."""
        if month_index == 0 or rank == 1:
            return rank
        rng = random.Random((self._seed << 24) ^ (rank * 1000003) ^ month_index)
        span = max(1, int(rank * churn))
        return min(max(1, rank + rng.randint(-span, span)), self.size)

    def top(self, n: int) -> List[str]:
        return [self.domain(r) for r in range(1, min(n, self.size) + 1)]
