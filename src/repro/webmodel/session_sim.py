"""Browsing-session simulator — the engine behind Fig. 5.

Mirrors the paper's §5.3 methodology: a simulated user visits domains
(Burklen model over the synthetic Tranco ranking); for every *unique*
destination the simulator runs a **real handshake** through the TLS
substrate with the IC-filter extension attached, so suppressions, misses
and false positives are produced by the actual cuckoo-filter lookups, not
by sampling an epsilon. The hot paths ride the AMQ batch API: the hot-ICA
preload bulk-loads the client filter via ``insert_batch`` and the server
probes each destination's verification path with one ``contains_batch``
call per handshake. Per destination it records chain composition,
suppression outcome and an RTT draw; the result object then reproduces
the paper's three panels:

* Fig. 5-left — ICA bytes exchanged with/without suppression, measured
  for the baseline PKI and extrapolated to the PQ algorithms (exact here,
  because certificate size is ``attrs + pk + sig`` by construction);
* Fig. 5-center — PQ-authentication-induced latency vs RTT (flight
  model), the input to the linear fit;
* Fig. 5-right — TTFB distributions per scenario, with a false positive
  doubling the observed TTFB, as in the paper.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.estimator import crypto_cpu_seconds
from repro.core.suppression import ClientSuppressor, ServerSuppressor
from repro.errors import SimulationError
from repro.netsim.latency import LogNormalRTT
from repro.netsim.tcp import TCPConfig, time_to_first_byte_s
from repro.pki import build_hierarchy
from repro.pki.algorithms import get_signature_algorithm
from repro.pki.certificate import DEFAULT_ATTRIBUTE_BYTES
from repro.pki.keys import KeyPair
from repro.pki.ocsp import OCSPStaple
from repro.pki.sct import SignedCertificateTimestamp
from repro.pki.store import IntermediatePreload
from repro.runtime import artifacts
from repro.runtime.parallel import (
    derive_seed,
    parallel_map,
    resolve_jobs,
    run_metered,
)
from repro.tls.server import ServerConfig
from repro.tls.session import HandshakeOutcome, run_handshake
from repro.webmodel.browsing import BrowsingConfig, BrowsingModel
from repro.webmodel.population import ICAPopulation, PopulationConfig


@dataclass(frozen=True)
class SessionConfig:
    """Parameters of one browsing-session experiment (§5.3 defaults)."""

    num_domains: int = 200
    filter_kind: str = "cuckoo"
    fpp: float = 1e-3
    load_factor: float = 0.9
    kem_name: str = "ntru-hps-509"
    baseline_algorithm: str = "rsa-2048"
    pq_algorithms: Tuple[str, ...] = ("dilithium3", "dilithium5", "sphincs-128f")
    rtt_median_s: float = 0.045
    rtt_sigma: float = 0.5
    initcwnd_segments: int = 10
    include_staples: bool = True
    at_time: int = 1_000
    seed: int = 0


@dataclass(frozen=True)
class DestinationOutcome:
    """One unique destination's handshake record."""

    rank: int
    num_icas: int
    icas_sent_first: int
    suppressed_count: int
    false_positive: bool
    rtt_s: float

    @property
    def icas_sent_total(self) -> int:
        """ICA certs transmitted across attempts (a false positive pays
        the partial first attempt plus the full retry)."""
        return self.icas_sent_first + (self.num_icas if self.false_positive else 0)


@dataclass
class SessionResult:
    """Aggregated session metrics with per-algorithm extrapolation."""

    config: SessionConfig
    outcomes: List[DestinationOutcome]
    filter_payload_bytes: int
    filter_lookup_seconds: float

    # -- basic counts ------------------------------------------------------------

    @property
    def unique_destinations(self) -> int:
        return len(self.outcomes)

    @property
    def false_positives(self) -> int:
        return sum(o.false_positive for o in self.outcomes)

    @property
    def total_icas(self) -> int:
        return sum(o.num_icas for o in self.outcomes)

    @property
    def known_ica_rate(self) -> float:
        """Share of encountered ICA certs the filter suppressed (the
        paper's 'common ICA certs' rate, 69-74 %)."""
        total = self.total_icas
        return sum(o.suppressed_count for o in self.outcomes) / total if total else 0.0

    # -- Fig. 5-left: ICA data volume ----------------------------------------------

    def ica_cert_bytes(self, algorithm_name: str) -> int:
        """Per-certificate DER size under ``algorithm_name``."""
        alg = get_signature_algorithm(algorithm_name)
        return alg.auth_bytes_per_certificate(DEFAULT_ATTRIBUTE_BYTES)

    def ica_data_bytes(self, algorithm_name: str, suppressed: bool) -> int:
        per_cert = self.ica_cert_bytes(algorithm_name)
        if suppressed:
            return per_cert * sum(o.icas_sent_total for o in self.outcomes)
        return per_cert * self.total_icas

    def ica_savings_bytes(self, algorithm_name: str) -> int:
        return self.ica_data_bytes(algorithm_name, False) - self.ica_data_bytes(
            algorithm_name, True
        )

    def ica_reduction_ratio(self) -> float:
        """Fractional reduction in exchanged ICA data (algorithm-free:
        every ICA cert has the same size within a deployment)."""
        total = self.total_icas
        if not total:
            return 0.0
        sent = sum(o.icas_sent_total for o in self.outcomes)
        return 1.0 - sent / total

    # -- Fig. 5-right: TTFB -----------------------------------------------------------

    def ttfb_samples(
        self,
        algorithm_name: str,
        suppressed: bool,
        *,
        tcp: Optional[TCPConfig] = None,
        cpu: Optional[float] = None,
    ) -> List[float]:
        """Per-destination TTFB under the scenario, per the paper's
        method: flight-model TTFB, filter-lookup time added when
        suppression is on, and a false positive doubling the TTFB.

        ``tcp``/``cpu`` accept pre-resolved per-algorithm constants so
        scenario sweeps hoist them once per call instead of re-deriving
        them for every result (they must match this result's config).
        """
        if tcp is None:
            tcp = TCPConfig(initcwnd_segments=self.config.initcwnd_segments)
        if cpu is None:
            alg = get_signature_algorithm(algorithm_name)
            cpu = crypto_cpu_seconds(alg, self.config.kem_name)
        samples = []
        for outcome in self.outcomes:
            n_sent = outcome.icas_sent_first if suppressed else outcome.num_icas
            ch, flight = flight_sizes(
                algorithm_name,
                self.config.kem_name,
                n_sent,
                self.config.include_staples,
            )
            if suppressed:
                ch += self.filter_payload_bytes + 4  # extension framing
            ttfb = time_to_first_byte_s(ch, flight, outcome.rtt_s, tcp, cpu)
            if suppressed:
                ttfb += self.filter_lookup_seconds
                if outcome.false_positive:
                    ttfb *= 2
            samples.append(ttfb)
        return samples


@functools.lru_cache(maxsize=None)
def _micro_credential(algorithm_name: str, n_icas: int):
    """A credential whose chain has exactly ``n_icas`` intermediates,
    used to measure exact flight sizes for any algorithm."""
    from repro.pki.authority import CertificateAuthority, ServerCredential
    from repro.pki.chain import CertificateChain
    from repro.pki.store import TrustStore

    root = CertificateAuthority.create_root(
        "Flight Probe Root", algorithm_name, seed=0xF11
    )
    issuer = root
    authorities = []
    for i in range(n_icas):
        issuer = issuer.create_subordinate(
            f"Flight Probe ICA {i}", seed=0xF20 + i
        )
        authorities.append(issuer)
    alg = get_signature_algorithm(algorithm_name)
    keypair = KeyPair(alg, 0xF99)
    leaf = issuer.issue_leaf_with_key("flight-probe.example", keypair)
    chain = CertificateChain(
        leaf=leaf,
        intermediates=tuple(ca.certificate for ca in reversed(authorities)),
        root=root.certificate,
    )
    return ServerCredential(chain=chain, keypair=keypair), TrustStore(
        [root.certificate]
    )


def flight_sizes(
    algorithm_name: str, kem_name: str, n_icas: int, staples: bool
) -> Tuple[int, int]:
    """(ClientHello bytes, server-flight bytes) measured by running one
    real handshake with the given chain shape — exact by construction.

    Memoized in the shippable ``flight_sizes`` artifact cache: the parent
    process probes each shape once, and `run_many` ships the entries to
    its workers so cold processes never re-run probe handshakes.
    """
    key = (algorithm_name, kem_name, n_icas, staples)
    cached = artifacts.FLIGHT_SIZES.get(key)
    if cached is not None:
        return cached
    result = _measure_flight_sizes(algorithm_name, kem_name, n_icas, staples)
    artifacts.FLIGHT_SIZES.put(key, result)
    return result


def _measure_flight_sizes(
    algorithm_name: str, kem_name: str, n_icas: int, staples: bool
) -> Tuple[int, int]:
    from repro.tls.client import ClientConfig

    credential, store = _micro_credential(algorithm_name, n_icas)
    responder = KeyPair(get_signature_algorithm(algorithm_name), 0xE5D)
    ocsp = scts = None
    sct_list: List[SignedCertificateTimestamp] = []
    if staples:
        ocsp = OCSPStaple.create(credential.chain.leaf, responder, produced_at=1)
        sct_list = [
            SignedCertificateTimestamp.create(
                credential.chain.leaf, responder, bytes([i]) * 32, 7
            )
            for i in (1, 2)
        ]
    server = ServerConfig(credential=credential, ocsp_staple=ocsp, scts=sct_list)
    client = ClientConfig(
        trust_store=store,
        kem_name=kem_name,
        hostname="flight-probe.example",
        at_time=10,
    )
    trace = run_handshake(client, server)
    if not trace.succeeded:
        raise SimulationError(
            f"flight probe failed: {trace.final_attempt.failure_reason}"
        )
    attempt = trace.attempts[0]
    return attempt.client_hello_bytes, attempt.server_flight_bytes


class BrowsingSessionSimulator:
    """Runs browsing sessions against a shared population."""

    #: Per-rank staple cache bound: staples are tiny, but scenario sweeps
    #: drive millions of destinations through one simulator, so the
    #: per-rank map is an LRU instead of growing without bound.
    DEFAULT_STAPLES_CACHE_SIZE = 4096

    def __init__(
        self,
        config: SessionConfig = SessionConfig(),
        population: Optional[ICAPopulation] = None,
        lookup_seconds: Optional[float] = None,
        staples_cache_size: int = DEFAULT_STAPLES_CACHE_SIZE,
    ) -> None:
        if staples_cache_size < 1:
            raise SimulationError(
                f"staples_cache_size must be >= 1, got {staples_cache_size}"
            )
        self.config = config
        self.population = population or ICAPopulation(
            PopulationConfig(seed=config.seed)
        )
        hot = self.population.hot_ica_certificates()
        self.suppressor = ClientSuppressor(
            preload=IntermediatePreload(hot),
            filter_kind=config.filter_kind,
            fpp=config.fpp,
            load_factor=config.load_factor,
            budget_bytes=None,  # see EXPERIMENTS.md on the 550-byte budget
            seed=config.seed,
        )
        self.server_suppressor = ServerSuppressor(max_cached_filters=8)
        self.trust_store = self.population.hierarchy.trust_store()
        # ICAs genuinely in the client cache: lookups outside this set are
        # the negative queries whose hit rate the configured filter fpp
        # bounds (the FP-retry-rate-vs-eps check in the metrics export).
        self._known_fps = frozenset(self.suppressor.cache.fingerprints())
        self._staples_cache: "OrderedDict[int, Tuple[Optional[OCSPStaple], list]]" = (
            OrderedDict()
        )
        self._staples_cache_size = staples_cache_size
        self._responder = KeyPair(
            get_signature_algorithm(self.population.config.algorithm), 0xCA7
        )
        # ``lookup_seconds`` overrides the wall-clock measurement: workers
        # receive the parent's figure so serial and parallel runs report
        # byte-for-byte identical SessionResults.
        self._lookup_seconds = (
            lookup_seconds
            if lookup_seconds is not None
            else self._measure_lookup_seconds()
        )

    #: Verification-path batch size used to meter per-lookup cost: the
    #: server queries a whole path per handshake via ``contains_batch``,
    #: and synthetic chains carry up to a few ICAs (Table 2 mix).
    _PROBE_PATH_LEN = 4

    def _measure_lookup_seconds(self) -> float:
        """Per-item filter lookup cost as the server pays it: one
        ``contains_batch`` per verification path (not one ``contains``
        per certificate)."""
        import time

        filt = self.suppressor.filter
        probes = [bytes([i % 256]) * 32 for i in range(2000)]
        path = self._PROBE_PATH_LEN
        start = time.perf_counter()
        for offset in range(0, len(probes), path):
            filt.contains_batch(probes[offset : offset + path])
        return (time.perf_counter() - start) / len(probes)

    def _staples_for(self, rank: int):
        cached = self._staples_cache.get(rank)
        if cached is not None:
            self._staples_cache.move_to_end(rank)
            return cached
        if not self.config.include_staples:
            result = (None, [])
        else:
            leaf = self.population.credential_for_rank(rank).chain.leaf
            # Staples are pure functions of (leaf, responder, time), so
            # their content is shared across simulators through the
            # artifact cache; the per-rank LRU above only saves the
            # fingerprint lookup on the session's revisit path.
            content_key = (
                leaf.fingerprint(),
                self._responder.public_key.fingerprint(),
                1,
            )
            result = artifacts.STAPLES.get(content_key)
            if result is None:
                result = (
                    OCSPStaple.create(leaf, self._responder, produced_at=1),
                    [
                        SignedCertificateTimestamp.create(
                            leaf, self._responder, bytes([i]) * 32, 7
                        )
                        for i in (1, 2)
                    ],
                )
                artifacts.STAPLES.put(content_key, result)
        self._staples_cache[rank] = result
        while len(self._staples_cache) > self._staples_cache_size:
            self._staples_cache.popitem(last=False)
        return result

    def run(self, run_index: int = 0) -> SessionResult:
        """Simulate one session (the paper runs 10 with 200 domains)."""
        cfg = self.config
        browsing = BrowsingModel(
            BrowsingConfig(seed=derive_seed("session.browsing", cfg.seed, run_index)),
            ranking=self.population.ranking,
        )
        visits = browsing.session(cfg.num_domains)
        destinations = browsing.unique_destination_ranks(visits)
        rtt_sampler = LogNormalRTT(
            cfg.rtt_median_s,
            cfg.rtt_sigma,
            seed=derive_seed("session.rtt", cfg.seed, run_index),
        )
        reg = obs.registry()
        if reg is not None:
            reg.inc("webmodel.session.runs")
        outcomes: List[DestinationOutcome] = []
        for i, rank in enumerate(destinations):
            credential = self.population.credential_for_rank(rank)
            ocsp, scts = self._staples_for(rank)
            server_config = ServerConfig(
                credential=credential,
                suppression_handler=self.server_suppressor,
                ocsp_staple=ocsp,
                scts=list(scts),
                seed=derive_seed("session.server", cfg.seed, run_index, i),
            )
            client_config = self.suppressor.client_config(
                self.trust_store,
                hostname=credential.chain.leaf.subject,
                kem_name=cfg.kem_name,
                at_time=cfg.at_time,
                seed=derive_seed("session.client", cfg.seed, run_index, i),
            )
            trace = run_handshake(client_config, server_config)
            if not trace.succeeded:
                raise SimulationError(
                    f"handshake to rank {rank} failed: "
                    f"{trace.final_attempt.failure_reason}"
                )
            chain = credential.chain
            first = trace.attempts[0]
            ica_size = chain.intermediates[0].size_bytes() if chain.num_icas else 1
            sent_first = (
                first.ica_bytes_sent // ica_size if chain.num_icas else 0
            )
            outcome = DestinationOutcome(
                rank=rank,
                num_icas=chain.num_icas,
                icas_sent_first=sent_first,
                suppressed_count=chain.num_icas - sent_first,
                false_positive=trace.false_positive,
                rtt_s=rtt_sampler.sample(),
            )
            outcomes.append(outcome)
            if reg is not None:
                reg.inc("webmodel.session.destinations")
                reg.inc("webmodel.session.icas_encountered", chain.num_icas)
                reg.inc("webmodel.session.icas_sent_total", outcome.icas_sent_total)
                reg.inc(
                    "webmodel.session.icas_suppressed_first",
                    outcome.suppressed_count,
                )
                if outcome.false_positive:
                    reg.inc("webmodel.session.false_positives")
                # Negative queries against the filter on this path: the
                # denominator of the observed-FP-rate-vs-eps check.
                reg.inc(
                    "webmodel.session.unknown_ica_probes",
                    sum(
                        1
                        for fp in chain.ica_fingerprints()
                        if fp not in self._known_fps
                    ),
                )
        return SessionResult(
            config=cfg,
            outcomes=outcomes,
            filter_payload_bytes=len(self.suppressor.extension_payload()),
            filter_lookup_seconds=self._lookup_seconds,
        )

    def run_many(
        self, runs: int = 10, jobs: Optional[int] = 1
    ) -> List[SessionResult]:
        """Run ``runs`` sessions; ``jobs`` > 1 shards them across worker
        processes (``None``/``0`` = all cores).

        Each worker rebuilds the population and simulator once from the
        configs (sessions are pure functions of (config, run index), so
        sharding changes nothing), receives the parent's flight-size cache
        and measured filter-lookup time, and returns its
        :class:`SessionResult` s in run order — element-wise identical to
        the serial path. A custom ``population`` not reconstructible from
        its ``PopulationConfig`` (e.g. a hand-built ranking) must be run
        with ``jobs=1``.
        """
        jobs = resolve_jobs(jobs)
        metered = obs.enabled()
        if jobs <= 1 or runs <= 1:
            if not metered:
                return [self.run(i) for i in range(runs)]
            # Capture per-run deltas through the same scoped/merge path a
            # pool worker uses, so merged metrics match any jobs value.
            results = []
            for i in range(runs):
                result, snap = run_metered(self.run, i)
                obs.merge(snap)
                results.append(result)
            return results
        payload = _WorkerPayload(
            session_config=self.config,
            population_config=self.population.config,
            lookup_seconds=self._lookup_seconds,
            staples_cache_size=self._staples_cache_size,
        )
        return parallel_map(
            _session_worker_run,
            range(runs),
            jobs=jobs,
            initializer=_session_worker_init,
            initargs=(payload,),
            shipped_caches=artifacts.export_shippable(),
            metered=metered,
        )


@dataclass(frozen=True)
class _WorkerPayload:
    """What a session worker needs to rebuild the simulator bit-for-bit."""

    session_config: SessionConfig
    population_config: PopulationConfig
    lookup_seconds: float
    staples_cache_size: int


#: Worker-process simulator, built once by ``_session_worker_init``.
_WORKER_SIMULATOR: Optional[BrowsingSessionSimulator] = None


def _session_worker_init(payload: _WorkerPayload) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = BrowsingSessionSimulator(
        payload.session_config,
        population=ICAPopulation(payload.population_config),
        lookup_seconds=payload.lookup_seconds,
        staples_cache_size=payload.staples_cache_size,
    )


def _session_worker_run(run_index: int) -> SessionResult:
    if _WORKER_SIMULATOR is None:
        raise SimulationError("session worker used before initialization")
    return _WORKER_SIMULATOR.run(run_index)
