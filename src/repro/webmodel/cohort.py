"""Columnar cohort browsing engine — Fig. 5 at traffic scale.

The per-session simulator (:mod:`repro.webmodel.session_sim`) runs one
real handshake per destination, which tops out around a couple of hundred
handshakes per second — fine for reproducing the paper's 10x200-domain
runs, hopeless for the ROADMAP's "millions of users".  This module
advances a cohort of N users as numpy columns instead:

* per-user destination draws and RTTs come from the counter-based RNG
  streams of :mod:`repro.webmodel.cohortrng` (pure functions of
  ``(stream key, user * slots + slot)``, so any sharding reproduces them);
* chain composition is a gather: ``rank -> ICAPath`` is a pure function
  of the population seed, so the engine resolves each *unique* rank once
  and reads per-path fact columns (depth, ICA bytes, base-filter hits,
  false-positive flag) for every (user, slot) cell;
* filter behaviour comes from one bulk ``contains_batch`` probe of the
  advertised wire image over every path's fingerprints;
* warm-state/dedup ("already visited this destination"), retry and
  suppression-byte accounting are boolean/int masks and column
  reductions.

**The cohort session protocol** (shared with the scalar reference): each
user starts from the hot-ICA preload cache and the filter built from it,
and draws ``handshakes_per_user`` destinations; a repeat destination
reuses the session (no handshake).  A handshake suppresses the ICAs the
advertised filter claims; if any suppressed ICA is missing from the
user's cache (a false positive), the attempt fails, a plain retry resends
the full chain, and the client learns the chain's ICAs
(``observe_chain``).  With ``payload_refresh_every = k > 0`` the
advertised payload is re-captured from the live filter before handshakes
``k, 2k, ...`` (the churn engine's live-cache/stale-payload idiom);
between refreshes the advertised bytes stay stale.

**Exactness by construction.**  Until a user's first false positive their
cache and advertised filter are byte-for-byte the preload state, so the
precomputed per-path facts describe their handshakes exactly.  Users the
base-state probe flags as FP-affected ("divergent") are excluded from the
column fast path and replayed through the real object pipeline
(:class:`~repro.core.suppression.ClientSuppressor`, the manager's insert/
rebuild machinery, ``parse_extension_payload`` round-trips) — byte-exact
with the scalar reference, and cheap because the configured fpp makes
them rare.  ``tests/webmodel/test_cohort_vs_scalar.py`` pins the
equivalence against the untouched per-handshake TLS machine.

Aggregate float identity: RTTs are kept as one (user-major, slot-major)
column and reduced with a single ``np.sum`` at finalize time, so the
result is independent of block size and ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.extension import parse_extension_payload
from repro.core.suppression import ClientSuppressor
from repro.errors import ConfigurationError, SimulationError
from repro.pki.algorithms import get_signature_algorithm
from repro.pki.certificate import DEFAULT_ATTRIBUTE_BYTES
from repro.pki.store import IntermediatePreload
from repro.runtime import artifacts
from repro.runtime.parallel import parallel_map, resolve_jobs, run_metered
from repro.webmodel import cohortrng
from repro.webmodel.population import ICAPopulation, PopulationConfig

#: JSON schema identifier of :func:`cohort_json_doc` exports.
COHORT_SCHEMA = "repro.cohort/v1"

#: Algorithms the JSON doc extrapolates ICA data volume to (Fig. 5-left).
EXTRAPOLATED_ALGORITHMS = (
    "rsa-2048",
    "dilithium3",
    "dilithium5",
    "sphincs-128f",
)


@dataclass(frozen=True)
class CohortConfig:
    """Parameters of one cohort run.

    ``handshakes_per_user`` counts destination *draws* (slots); repeat
    destinations reuse the session, so actual handshakes per user are
    ``<=`` this.  ``block_users`` shards the cohort for ``--jobs``; it
    cannot change any result (blocks are independent and reductions are
    integer or whole-column), only memory footprint and parallel grain.
    """

    num_users: int = 10_000
    handshakes_per_user: int = 10
    #: Popularity skew of the user's *destination stream* (first-party
    #: domains plus embedded third-party origins), hence flatter than the
    #: Burklen domain-only draw (1.9): ~20 % of draws land beyond the
    #: hot-rank threshold, reproducing the paper's 69-74 % known-ICA
    #: rate band at the default population calibration.
    zipf_exponent: float = 1.1
    max_rank: int = 1_000_000
    filter_kind: str = "cuckoo"
    fpp: float = 1e-3
    load_factor: float = 0.9
    payload_refresh_every: int = 0
    hot_top_n: int = 10_000
    rtt_median_s: float = 0.045
    rtt_sigma: float = 0.5
    at_time: int = 1_000
    seed: int = 0
    population: PopulationConfig = PopulationConfig()
    block_users: int = 16_384

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError(
                f"num_users must be >= 1, got {self.num_users}"
            )
        if self.handshakes_per_user < 1:
            raise ConfigurationError(
                f"handshakes_per_user must be >= 1, got {self.handshakes_per_user}"
            )
        if self.max_rank < 1:
            raise ConfigurationError(f"max_rank must be >= 1, got {self.max_rank}")
        if self.payload_refresh_every < 0:
            raise ConfigurationError(
                f"payload_refresh_every must be >= 0 (0 = never), "
                f"got {self.payload_refresh_every}"
            )
        if self.block_users < 1:
            raise ConfigurationError(
                f"block_users must be >= 1, got {self.block_users}"
            )


def cohort_stream_keys(seed: int) -> Dict[str, int]:
    """The cohort's three stream keys, routed through the shippable
    ``cohort_streams`` artifact cache so parent-derived keys ride along to
    worker processes (and round-trip the export/import path the property
    tests exercise)."""
    cache_key = ("streams", seed)
    cached = artifacts.COHORT_STREAMS.get(cache_key)
    if cached is None:
        cached = {
            ns: cohortrng.stream_key(ns, seed)
            for ns in (
                cohortrng.RANK_STREAM,
                cohortrng.RTT_A_STREAM,
                cohortrng.RTT_B_STREAM,
            )
        }
        artifacts.COHORT_STREAMS.put(cache_key, cached)
    return cached


@dataclass(frozen=True)
class CohortColumns:
    """Per-user result columns (index = user id, cohort order)."""

    handshakes: np.ndarray
    retries: np.ndarray
    icas_encountered: np.ndarray
    icas_sent_first: np.ndarray
    icas_sent_total: np.ndarray
    ica_bytes_total: np.ndarray
    ica_bytes_sent_first: np.ndarray
    ica_bytes_sent_total: np.ndarray
    learned_icas: np.ndarray
    payload_refreshes: np.ndarray
    divergent: np.ndarray

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CohortColumns):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self.__dataclass_fields__
        )

    __hash__ = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CohortStats:
    """Whole-cohort aggregates (python ints; one float, the RTT sum)."""

    users: int
    destinations: int
    handshakes: int
    session_reuse: int
    attempts: int
    completed: int
    completed_after_retry: int
    retries: int
    false_positives: int
    icas_encountered: int
    icas_sent_first: int
    icas_sent_total: int
    icas_suppressed_first: int
    ica_bytes_total: int
    ica_bytes_sent_first: int
    ica_bytes_sent_total: int
    ica_bytes_suppressed_first: int
    learned_icas: int
    payload_refreshes: int
    divergent_users: int
    filter_payload_bytes: int
    rtt_sum_s: float

    @property
    def ica_reduction_ratio(self) -> float:
        """Fractional reduction in exchanged ICA bytes, retries paid."""
        if not self.ica_bytes_total:
            return 0.0
        return 1.0 - self.ica_bytes_sent_total / self.ica_bytes_total

    @property
    def known_ica_rate(self) -> float:
        """Share of encountered ICAs suppressed on the first flight."""
        if not self.icas_encountered:
            return 0.0
        return self.icas_suppressed_first / self.icas_encountered

    @property
    def false_positive_rate(self) -> float:
        if not self.handshakes:
            return 0.0
        return self.false_positives / self.handshakes

    @property
    def mean_rtt_s(self) -> float:
        return self.rtt_sum_s / self.handshakes if self.handshakes else 0.0


@dataclass(frozen=True)
class CohortResult:
    """A cohort run: per-user columns, the RTT column (one entry per
    handshake, user-major slot-major order) and the aggregate stats."""

    config: CohortConfig
    columns: CohortColumns
    rtt_s: np.ndarray
    stats: CohortStats

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CohortResult):
            return NotImplemented
        return (
            self.config == other.config
            and self.stats == other.stats
            and self.columns == other.columns
            and np.array_equal(self.rtt_s, other.rtt_s)
        )

    __hash__ = None  # type: ignore[assignment]


@dataclass(frozen=True)
class _BlockPart:
    """One user block's contribution (picklable; arrays concatenate in
    block order, which is user order)."""

    start: int
    columns: CohortColumns
    rtt_s: np.ndarray


@dataclass(frozen=True)
class _PathFacts:
    """Fact columns per ICA path ordinal (hierarchy path order), under
    the base (preload) client state."""

    depth: np.ndarray
    nbytes: np.ndarray
    nhits: np.ndarray
    supp_bytes: np.ndarray
    fp: np.ndarray


def _first_contact_mask(ranks: np.ndarray) -> np.ndarray:
    """True where a row (user) sees this rank for the first time.

    Stable row-wise argsort groups equal ranks while preserving slot
    order, so the first element of each sorted group is the earliest
    contact; scattering the group-head flags back yields the mask.
    """
    order = np.argsort(ranks, axis=1, kind="stable")
    sorted_ranks = np.take_along_axis(ranks, order, axis=1)
    first_sorted = np.ones(ranks.shape, dtype=bool)
    first_sorted[:, 1:] = sorted_ranks[:, 1:] != sorted_ranks[:, :-1]
    first = np.empty(ranks.shape, dtype=bool)
    np.put_along_axis(first, order, first_sorted, axis=1)
    return first


@dataclass(frozen=True)
class _UserReplay:
    """Exact per-user accounting produced by the object-replay slow path."""

    retries: int
    icas_sent_first: int
    icas_sent_total: int
    ica_bytes_sent_first: int
    ica_bytes_sent_total: int
    learned_icas: int


class CohortEngine:
    """Columnar cohort runner over a shared :class:`ICAPopulation`.

    A custom ``population`` instance not reconstructible from
    ``config.population`` must be run with ``jobs=1`` (workers rebuild
    from the config, mirroring ``BrowsingSessionSimulator.run_many``).
    """

    def __init__(
        self,
        config: CohortConfig = CohortConfig(),
        population: Optional[ICAPopulation] = None,
    ) -> None:
        self.config = config
        self.population = population or ICAPopulation(config.population)
        if config.max_rank > self.population.ranking.size:
            raise ConfigurationError(
                f"max_rank {config.max_rank} exceeds the ranking universe "
                f"({self.population.ranking.size})"
            )
        self._hot = self.population.hot_ica_certificates(config.hot_top_n)
        self._base = ClientSuppressor(
            preload=IntermediatePreload(self._hot),
            filter_kind=config.filter_kind,
            fpp=config.fpp,
            load_factor=config.load_factor,
            budget_bytes=None,
            seed=config.seed,
        )
        self._payload = self._base.extension_payload()
        #: The wire image as the server sees it — probed for facts, so a
        #: serialize/deserialize round-trip can never cause drift.
        self._probe = parse_extension_payload(self._payload)
        self._known = frozenset(self._base.cache.fingerprints())
        self._keys = cohort_stream_keys(config.seed)
        paths = self.population.hierarchy.paths
        self._path_index = {id(path): i for i, path in enumerate(paths)}
        self._path_certs: List[list] = [p.ica_certificates() for p in paths]
        self._path_fps: List[List[bytes]] = [
            [cert.fingerprint() for cert in certs] for certs in self._path_certs
        ]
        self._path_sizes: List[List[int]] = [
            [cert.size_bytes() for cert in certs] for certs in self._path_certs
        ]
        self._facts = self._build_path_facts()
        self._rank_ordinal: Dict[int, int] = {}

    # -- facts -----------------------------------------------------------------

    def _build_path_facts(self) -> _PathFacts:
        """Probe every path's fingerprints through the advertised wire
        image in one ``contains_batch`` call and reduce to per-path
        columns."""
        flat: List[bytes] = []
        offsets = [0]
        for fps in self._path_fps:
            flat.extend(fps)
            offsets.append(len(flat))
        hits = list(self._probe.contains_batch(flat)) if flat else []
        num = len(self._path_fps)
        depth = np.zeros(num, dtype=np.int64)
        nbytes = np.zeros(num, dtype=np.int64)
        nhits = np.zeros(num, dtype=np.int64)
        supp_bytes = np.zeros(num, dtype=np.int64)
        fp = np.zeros(num, dtype=bool)
        for p in range(num):
            fps = self._path_fps[p]
            sizes = self._path_sizes[p]
            path_hits = hits[offsets[p] : offsets[p + 1]]
            depth[p] = len(fps)
            nbytes[p] = sum(sizes)
            nhits[p] = sum(1 for h in path_hits if h)
            supp_bytes[p] = sum(s for s, h in zip(sizes, path_hits) if h)
            fp[p] = any(
                h and f not in self._known for f, h in zip(fps, path_hits)
            )
        return _PathFacts(
            depth=depth, nbytes=nbytes, nhits=nhits, supp_bytes=supp_bytes, fp=fp
        )

    def _ordinals_for_ranks(self, unique_ranks: np.ndarray) -> np.ndarray:
        """Path ordinal per unique rank (memoized; ``path_for_rank`` is a
        pure function of (population seed, rank))."""
        memo = self._rank_ordinal
        out = np.empty(len(unique_ranks), dtype=np.int64)
        for i, rank in enumerate(unique_ranks.tolist()):
            ordinal = memo.get(rank)
            if ordinal is None:
                ordinal = self._path_index[id(self.population.path_for_rank(rank))]
                memo[rank] = ordinal
            out[i] = ordinal
        return out

    # -- columnar fast path + replay slow path ---------------------------------

    def _run_block(self, block: Tuple[int, int]) -> _BlockPart:
        start, stop = block
        cfg = self.config
        slots = cfg.handshakes_per_user
        counters = cohortrng.block_counters(start, stop, slots)
        ranks = cohortrng.zipf_ranks(
            cohortrng.uniforms(self._keys[cohortrng.RANK_STREAM], counters),
            cfg.zipf_exponent,
            cfg.max_rank,
        )
        rtt = cohortrng.lognormal_rtt(
            cohortrng.uniforms(self._keys[cohortrng.RTT_A_STREAM], counters),
            cohortrng.uniforms(self._keys[cohortrng.RTT_B_STREAM], counters),
            cfg.rtt_median_s,
            cfg.rtt_sigma,
        )
        first = _first_contact_mask(ranks)
        unique_ranks = np.unique(ranks)
        unique_ordinals = self._ordinals_for_ranks(unique_ranks)
        ordinals = unique_ordinals[np.searchsorted(unique_ranks, ranks)]
        facts = self._facts
        depth = facts.depth[ordinals]
        nbytes = facts.nbytes[ordinals]
        nhits = facts.nhits[ordinals]
        supp_bytes = facts.supp_bytes[ordinals]
        fp_cell = first & facts.fp[ordinals]
        divergent = fp_cell.any(axis=1)

        # State-independent columns (valid for every user: dedup, chain
        # composition and protocol refresh points don't depend on filter
        # state).
        handshakes = first.sum(axis=1)
        encountered = np.where(first, depth, 0).sum(axis=1)
        bytes_total = np.where(first, nbytes, 0).sum(axis=1)
        if cfg.payload_refresh_every:
            refreshes = (handshakes - 1) // cfg.payload_refresh_every
        else:
            refreshes = np.zeros(stop - start, dtype=np.int64)

        # Base-state columns, valid only off the divergent rows.
        fast = first & ~divergent[:, None]
        sent_first_count = np.where(fast, depth - nhits, 0).sum(axis=1)
        sent_first_bytes = np.where(fast, nbytes - supp_bytes, 0).sum(axis=1)
        retries = np.zeros(stop - start, dtype=np.int64)
        learned = np.zeros(stop - start, dtype=np.int64)
        sent_total_count = sent_first_count.copy()
        sent_total_bytes = sent_first_bytes.copy()

        # Divergent rows: exact replay through the real object pipeline.
        for local in np.nonzero(divergent)[0]:
            replay = self._replay_user(ranks[local], first[local])
            retries[local] = replay.retries
            learned[local] = replay.learned_icas
            sent_first_count[local] = replay.icas_sent_first
            sent_total_count[local] = replay.icas_sent_total
            sent_first_bytes[local] = replay.ica_bytes_sent_first
            sent_total_bytes[local] = replay.ica_bytes_sent_total

        columns = CohortColumns(
            handshakes=handshakes,
            retries=retries,
            icas_encountered=encountered,
            icas_sent_first=sent_first_count,
            icas_sent_total=sent_total_count,
            ica_bytes_total=bytes_total,
            ica_bytes_sent_first=sent_first_bytes,
            ica_bytes_sent_total=sent_total_bytes,
            learned_icas=learned,
            payload_refreshes=refreshes,
            divergent=divergent,
        )
        record_cohort_counters(
            columns, destinations=(stop - start) * slots
        )
        return _BlockPart(start=start, columns=columns, rtt_s=rtt[first])

    def _replay_user(
        self, rank_row: np.ndarray, first_row: np.ndarray
    ) -> _UserReplay:
        """Replay one FP-affected user with real core objects, so filter
        evolution (insert order, full-table rebuilds, payload refreshes)
        matches the scalar reference byte-for-byte."""
        cfg = self.config
        suppressor = ClientSuppressor(
            preload=IntermediatePreload(self._hot),
            filter_kind=cfg.filter_kind,
            fpp=cfg.fpp,
            load_factor=cfg.load_factor,
            budget_bytes=None,
            seed=cfg.seed,
        )
        advertised = parse_extension_payload(suppressor.extension_payload())
        known = set(suppressor.cache.fingerprints())
        refresh_every = cfg.payload_refresh_every
        handshake_index = 0
        retries = learned = 0
        sent_first_count = sent_total_count = 0
        sent_first_bytes = sent_total_bytes = 0
        for slot in range(cfg.handshakes_per_user):
            if not first_row[slot]:
                continue
            if (
                refresh_every
                and handshake_index > 0
                and handshake_index % refresh_every == 0
            ):
                advertised = parse_extension_payload(
                    suppressor.extension_payload()
                )
            ordinal = self._rank_ordinal[int(rank_row[slot])]
            fps = self._path_fps[ordinal]
            sizes = self._path_sizes[ordinal]
            hits = list(advertised.contains_batch(fps)) if fps else []
            suppressed = [i for i, hit in enumerate(hits) if hit]
            total_bytes = sum(sizes)
            supp_bytes = sum(sizes[i] for i in suppressed)
            sent_count = len(fps) - len(suppressed)
            sent_bytes = total_bytes - supp_bytes
            sent_first_count += sent_count
            sent_total_count += sent_count
            sent_first_bytes += sent_bytes
            sent_total_bytes += sent_bytes
            if any(fps[i] not in known for i in suppressed):
                # False positive: the plain retry resends the full chain
                # and the client learns its ICAs.
                retries += 1
                sent_total_count += len(fps)
                sent_total_bytes += total_bytes
                learned += suppressor.cache.add_many(self._path_certs[ordinal])
                known.update(fps)
            handshake_index += 1
        return _UserReplay(
            retries=retries,
            icas_sent_first=sent_first_count,
            icas_sent_total=sent_total_count,
            ica_bytes_sent_first=sent_first_bytes,
            ica_bytes_sent_total=sent_total_bytes,
            learned_icas=learned,
        )

    # -- driving ---------------------------------------------------------------

    def run(self, jobs: Optional[int] = 1) -> CohortResult:
        """Run the cohort; ``jobs`` > 1 shards user blocks across worker
        processes (``None``/``0`` = all cores).  Blocks are independent
        and reductions are integer or whole-column, so every ``jobs`` and
        ``block_users`` value produces the identical result."""
        cfg = self.config
        jobs = resolve_jobs(jobs)
        blocks = [
            (start, min(start + cfg.block_users, cfg.num_users))
            for start in range(0, cfg.num_users, cfg.block_users)
        ]
        metered = obs.enabled()
        if jobs <= 1 or len(blocks) <= 1:
            if not metered:
                parts = [self._run_block(block) for block in blocks]
            else:
                parts = []
                for block in blocks:
                    part, snap = run_metered(self._run_block, block)
                    obs.merge(snap)
                    parts.append(part)
        else:
            payload = _CohortWorkerPayload(config=cfg)
            parts = parallel_map(
                _cohort_worker_block,
                blocks,
                jobs=jobs,
                initializer=_cohort_worker_init,
                initargs=(payload,),
                shipped_caches=artifacts.export_shippable(),
                metered=metered,
            )
        return finalize_cohort(cfg, parts, len(self._payload))


def run_cohort(
    config: CohortConfig = CohortConfig(),
    jobs: Optional[int] = 1,
    population: Optional[ICAPopulation] = None,
) -> CohortResult:
    """Convenience wrapper: build the engine and run the cohort."""
    return CohortEngine(config, population=population).run(jobs=jobs)


def record_cohort_counters(columns: CohortColumns, destinations: int) -> None:
    """Emit ``webmodel.cohort.*`` counters for one slice of users.

    Called once per block by the engine and once per run by the scalar
    reference; totals are sums of per-user ints, so any slicing (and any
    ``--jobs`` value, via the metered merge) yields identical counters.
    """
    reg = obs.registry()
    if reg is None:
        return
    handshakes = int(columns.handshakes.sum())
    retries = int(columns.retries.sum())
    reg.inc("webmodel.cohort.users", len(columns.handshakes))
    reg.inc("webmodel.cohort.handshakes", handshakes)
    reg.inc("webmodel.cohort.session_reuse", destinations - handshakes)
    reg.inc("webmodel.cohort.retries", retries, (("cause", "server-fp"),))
    reg.inc("webmodel.cohort.false_positives", retries)
    reg.inc(
        "webmodel.cohort.icas_encountered", int(columns.icas_encountered.sum())
    )
    reg.inc(
        "webmodel.cohort.icas_sent_total", int(columns.icas_sent_total.sum())
    )
    reg.inc(
        "webmodel.cohort.icas_suppressed_first",
        int((columns.icas_encountered - columns.icas_sent_first).sum()),
    )
    reg.inc(
        "webmodel.cohort.divergent_users", int(columns.divergent.sum())
    )
    reg.inc("webmodel.cohort.learned_icas", int(columns.learned_icas.sum()))
    reg.inc(
        "webmodel.cohort.payload_refreshes",
        int(columns.payload_refreshes.sum()),
    )


def finalize_cohort(
    config: CohortConfig,
    parts: Sequence[_BlockPart],
    filter_payload_bytes: int,
) -> CohortResult:
    """Concatenate block parts (block order == user order) and reduce.

    The RTT sum is one ``np.sum`` over the full concatenated column —
    the same array whatever the block size or jobs value, hence the same
    float.
    """
    columns = CohortColumns(
        **{
            name: np.concatenate(
                [getattr(part.columns, name) for part in parts]
            )
            for name in CohortColumns.__dataclass_fields__
        }
    )
    rtt = np.concatenate([part.rtt_s for part in parts])
    users = len(columns.handshakes)
    destinations = users * config.handshakes_per_user
    handshakes = int(columns.handshakes.sum())
    retries = int(columns.retries.sum())
    encountered = int(columns.icas_encountered.sum())
    sent_first = int(columns.icas_sent_first.sum())
    sent_total = int(columns.icas_sent_total.sum())
    bytes_total = int(columns.ica_bytes_total.sum())
    bytes_first = int(columns.ica_bytes_sent_first.sum())
    bytes_sent = int(columns.ica_bytes_sent_total.sum())
    stats = CohortStats(
        users=users,
        destinations=destinations,
        handshakes=handshakes,
        session_reuse=destinations - handshakes,
        attempts=handshakes + retries,
        completed=handshakes - retries,
        completed_after_retry=retries,
        retries=retries,
        false_positives=retries,
        icas_encountered=encountered,
        icas_sent_first=sent_first,
        icas_sent_total=sent_total,
        icas_suppressed_first=encountered - sent_first,
        ica_bytes_total=bytes_total,
        ica_bytes_sent_first=bytes_first,
        ica_bytes_sent_total=bytes_sent,
        ica_bytes_suppressed_first=bytes_total - bytes_first,
        learned_icas=int(columns.learned_icas.sum()),
        payload_refreshes=int(columns.payload_refreshes.sum()),
        divergent_users=int(columns.divergent.sum()),
        filter_payload_bytes=filter_payload_bytes,
        rtt_sum_s=float(np.sum(rtt)),
    )
    return CohortResult(config=config, columns=columns, rtt_s=rtt, stats=stats)


# -- worker plumbing -----------------------------------------------------------


@dataclass(frozen=True)
class _CohortWorkerPayload:
    """What a cohort worker needs to rebuild the engine bit-for-bit."""

    config: CohortConfig


_WORKER_ENGINE: Optional[CohortEngine] = None


def _cohort_worker_init(payload: _CohortWorkerPayload) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = CohortEngine(payload.config)


def _cohort_worker_block(block: Tuple[int, int]) -> _BlockPart:
    if _WORKER_ENGINE is None:
        raise SimulationError("cohort worker used before initialization")
    return _WORKER_ENGINE._run_block(block)


# -- reporting -----------------------------------------------------------------


def cohort_json_doc(result: CohortResult) -> dict:
    """Machine-readable cohort summary (``repro.cohort/v1``).

    Engine-agnostic by design: the columnar engine and the scalar
    reference produce byte-identical documents for the same config — the
    CI cohort-smoke job ``cmp``'s them.
    """
    config = result.config
    stats = result.stats
    per_algorithm = {}
    for algorithm in EXTRAPOLATED_ALGORITHMS:
        per_cert = get_signature_algorithm(algorithm).auth_bytes_per_certificate(
            DEFAULT_ATTRIBUTE_BYTES
        )
        plain = per_cert * stats.icas_encountered
        suppressed = per_cert * stats.icas_sent_total
        per_algorithm[algorithm] = {
            "ica_bytes_no_suppression": plain,
            "ica_bytes_with_suppression": suppressed,
            "savings_bytes": plain - suppressed,
        }
    return {
        "schema": COHORT_SCHEMA,
        "config": {
            "num_users": config.num_users,
            "handshakes_per_user": config.handshakes_per_user,
            "zipf_exponent": config.zipf_exponent,
            "max_rank": config.max_rank,
            "filter_kind": config.filter_kind,
            "fpp": config.fpp,
            "load_factor": config.load_factor,
            "payload_refresh_every": config.payload_refresh_every,
            "hot_top_n": config.hot_top_n,
            "rtt_median_s": config.rtt_median_s,
            "rtt_sigma": config.rtt_sigma,
            "at_time": config.at_time,
            "seed": config.seed,
            "population": {
                "algorithm": config.population.algorithm,
                "universe_icas": config.population.universe_icas,
                "num_roots": config.population.num_roots,
                "head_exponent": config.population.head_exponent,
                "tail_uniform_share": config.population.tail_uniform_share,
                "hot_rank_threshold": config.population.hot_rank_threshold,
                "month": config.population.month,
                "seed": config.population.seed,
            },
        },
        "stats": {
            "users": stats.users,
            "destinations": stats.destinations,
            "handshakes": stats.handshakes,
            "session_reuse": stats.session_reuse,
            "attempts": stats.attempts,
            "completed": stats.completed,
            "completed_after_retry": stats.completed_after_retry,
            "retries": stats.retries,
            "false_positives": stats.false_positives,
            "icas_encountered": stats.icas_encountered,
            "icas_sent_first": stats.icas_sent_first,
            "icas_sent_total": stats.icas_sent_total,
            "icas_suppressed_first": stats.icas_suppressed_first,
            "ica_bytes_total": stats.ica_bytes_total,
            "ica_bytes_sent_first": stats.ica_bytes_sent_first,
            "ica_bytes_sent_total": stats.ica_bytes_sent_total,
            "ica_bytes_suppressed_first": stats.ica_bytes_suppressed_first,
            "learned_icas": stats.learned_icas,
            "payload_refreshes": stats.payload_refreshes,
            "divergent_users": stats.divergent_users,
            "filter_payload_bytes": stats.filter_payload_bytes,
            "rtt_sum_s": stats.rtt_sum_s,
        },
        "derived": {
            "ica_reduction_ratio": stats.ica_reduction_ratio,
            "known_ica_rate": stats.known_ica_rate,
            "false_positive_rate": stats.false_positive_rate,
            "mean_rtt_s": stats.mean_rtt_s,
        },
        "per_algorithm": per_algorithm,
    }


def format_cohort(result: CohortResult) -> str:
    """Human-readable cohort summary for the CLI."""
    stats = result.stats
    lines = [
        f"cohort: {stats.users} users x "
        f"{result.config.handshakes_per_user} destination draws "
        f"({result.config.filter_kind}, fpp={result.config.fpp:g}, "
        f"month {result.config.population.month})",
        f"  handshakes          {stats.handshakes:>12}"
        f"   (session reuse {stats.session_reuse})",
        f"  completed           {stats.completed:>12}"
        f"   after retry {stats.completed_after_retry}",
        f"  false positives     {stats.false_positives:>12}"
        f"   rate {stats.false_positive_rate:.5f}"
        f"   divergent users {stats.divergent_users}",
        f"  ICAs encountered    {stats.icas_encountered:>12}"
        f"   suppressed first-flight {stats.icas_suppressed_first}"
        f"   (known-ICA rate {stats.known_ica_rate:.3f})",
        f"  ICA bytes           {stats.ica_bytes_total:>12}"
        f"   sent {stats.ica_bytes_sent_total}"
        f"   reduction {stats.ica_reduction_ratio:.3f}",
        f"  learned ICAs        {stats.learned_icas:>12}"
        f"   payload refreshes {stats.payload_refreshes}",
        f"  filter payload      {stats.filter_payload_bytes:>12} bytes"
        f"   mean RTT {stats.mean_rtt_s * 1e3:.2f} ms",
    ]
    return "\n".join(lines)
