"""Counter-based RNG streams for the cohort engine (and its reference).

The columnar cohort engine and the scalar reference runner must consume
*byte-identical* per-user randomness, whatever order they evaluate users
in and however the cohort is sharded across worker processes.  A stateful
generator (``random.Random``, ``numpy.random.Generator``) cannot give
that: the stream position would depend on evaluation order.  This module
instead derives every draw from a pure function of

    (stream key, counter)        with   counter = user * slots + slot

so draw ``(u, t)`` has one value, computable scalar-by-scalar or as a
whole ndarray, in any process, in any order.

Seed-derivation scheme (the documented contract the property tests pin):

* ``stream key`` = :func:`repro.runtime.parallel.derive_seed`
  ``(namespace, cohort seed, bits=64)`` — a SHA-256 content hash, so
  distinct namespaces ("cohort.rank", "cohort.rtt.a", "cohort.rtt.b")
  and distinct cohort seeds never collide or correlate;
* ``counter`` = ``user * slots_per_user + slot`` — distinct per (user,
  slot) within a cohort by construction;
* the draw is a splitmix64 finalizer over ``key + (counter+1) * GOLDEN``.
  splitmix64's finalizer is a bijection on 64-bit integers, so two
  distinct counters under one key can never yield the same 64-bit draw —
  the "no stream collisions across users" property is structural, not
  statistical.

Uniforms take the top 53 bits (``u64 >> 11`` times 2^-53), the standard
IEEE-double construction, giving values in [0, 1).

Distribution shapes are chosen to be *rejection-free* so one (or two)
uniforms map to one variate — a rejection loop would consume a
data-dependent number of draws and break the fixed counter layout:

* bounded Zipf ranks via the truncated continuous-Pareto inverse CDF;
* log-normal RTT via the Box-Muller transform (two uniforms per draw).

Both engines call *these* functions on the same (key, counter) inputs,
so equality of every draw holds by construction; the differential suite
then checks the far stronger claim that the two *session machines* agree.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.parallel import derive_seed

#: splitmix64 increment (the golden-ratio constant), as an unsigned word.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)
_SHIFT_11 = np.uint64(11)
#: 2^-53: top-53-bits-to-double scale factor.
_U53_SCALE = 1.0 / float(1 << 53)

#: Stream namespaces used by the cohort model (one key per stream).
RANK_STREAM = "cohort.rank"
RTT_A_STREAM = "cohort.rtt.a"
RTT_B_STREAM = "cohort.rtt.b"


def stream_key(namespace: str, seed: int) -> int:
    """The 64-bit stream key for ``namespace`` under a cohort seed."""
    return derive_seed(namespace, seed, bits=64)


def counter_hash(key: int, counters: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over ``key + (counter+1) * GOLDEN``.

    ``counters`` must be a uint64 ndarray; the result is uint64 of the
    same shape.  For a fixed key this is a bijection in the counter, so
    distinct counters give distinct words.
    """
    z = np.uint64(key) + (counters + np.uint64(1)) * _GOLDEN
    z = (z ^ (z >> _SHIFT_30)) * _MIX1
    z = (z ^ (z >> _SHIFT_27)) * _MIX2
    return z ^ (z >> _SHIFT_31)


def uniforms(key: int, counters: np.ndarray) -> np.ndarray:
    """IEEE-double uniforms in [0, 1) from the (key, counter) stream."""
    return (counter_hash(key, counters) >> _SHIFT_11).astype(np.float64) * (
        _U53_SCALE
    )


def user_counters(user: int, slots_per_user: int) -> np.ndarray:
    """The counter row of one user: ``user * slots + [0..slots)``."""
    base = np.uint64(user) * np.uint64(slots_per_user)
    return base + np.arange(slots_per_user, dtype=np.uint64)


def block_counters(start_user: int, stop_user: int, slots_per_user: int) -> np.ndarray:
    """Counters of a contiguous user block as a (users, slots) matrix."""
    users = np.arange(start_user, stop_user, dtype=np.uint64)
    slots = np.arange(slots_per_user, dtype=np.uint64)
    return users[:, None] * np.uint64(slots_per_user) + slots[None, :]


def zipf_ranks(u: np.ndarray, exponent: float, size: int) -> np.ndarray:
    """Bounded Zipf-like ranks in [1, size] via the inverse CDF of a
    continuous Pareto truncated at ``size + 1`` (rejection-free, hence
    exactly one uniform per rank).

    For exponent a > 1 the continuous density ~ r^-a on [1, size+1]
    has CDF F(r) = (1 - r^(1-a)) / (1 - (size+1)^(1-a)); inverting and
    flooring yields integer ranks whose mass closely tracks the discrete
    zeta weights the scalar browsing model uses — close enough for the
    cohort model, and identical between the two cohort paths, which is
    the property that matters here.
    """
    if size < 1:
        raise ValueError(f"rank universe must be >= 1, got {size}")
    if exponent <= 1.0:
        raise ValueError(f"zipf exponent must exceed 1, got {exponent}")
    one_minus_a = 1.0 - exponent
    lo = float(size + 1) ** one_minus_a
    r = (1.0 - u * (1.0 - lo)) ** (1.0 / one_minus_a)
    ranks = r.astype(np.int64)
    np.clip(ranks, 1, size, out=ranks)
    return ranks


def lognormal_rtt(
    u1: np.ndarray,
    u2: np.ndarray,
    median_s: float,
    sigma: float,
    floor_s: float = 0.002,
) -> np.ndarray:
    """Log-normal RTT draws from two uniform streams via Box-Muller.

    ``median * exp(sigma * z)`` with ``z`` standard normal — the same
    distribution :class:`repro.netsim.latency.LogNormalRTT` samples, but
    from counter-based uniforms (Mersenne-Twister streams cannot be
    reproduced columnarly).  Floored at ``floor_s`` like the scalar
    sampler's 2 ms physical minimum.
    """
    radius = np.sqrt(-2.0 * np.log1p(-u1))
    z = radius * np.cos(2.0 * np.pi * u2)
    return np.maximum(floor_s, median_s * np.exp(sigma * z))
