"""Scalar reference for the cohort engine: N independent session machines.

The differential anchor of :mod:`repro.webmodel.cohort`, in the same
spirit as ``tests/amq/_reference.py`` pinning the bucket engine: every
user is simulated one handshake at a time through the **untouched** TLS
substrate — :func:`repro.tls.session.run_handshake` with a real
:class:`~repro.core.suppression.ClientSuppressor`,
:class:`~repro.core.suppression.ServerSuppressor` and per-destination
:class:`~repro.tls.server.ServerConfig` — while consuming exactly the
per-user counter-based RNG streams of :mod:`repro.webmodel.cohortrng`.
Because every draw is a pure function of ``(stream key, user, slot)``,
this runner and the columnar engine see identical destination sequences
and RTTs, and :func:`repro.webmodel.cohort.finalize_cohort` reduces both
to byte-identical :class:`~repro.webmodel.cohort.CohortResult` objects —
which ``tests/webmodel/test_cohort_vs_scalar.py`` asserts.

Protocol notes (must mirror the cohort session protocol exactly):

* the advertised extension payload is a *snapshot* — the ClientConfig is
  built with the captured bytes, not the suppressor's live
  ``extension_payload()`` memo — re-captured only at the
  ``payload_refresh_every`` protocol points (the churn engine's
  live-cache / stale-payload idiom);
* the client learns a chain's ICAs only after a false-positive retry
  (``trace.false_positive``), keeping cache divergence from the preload
  state exactly as rare as the engine assumes;
* repeat destinations within a user reuse the session: no handshake, no
  draw consumed (draws are per-slot, not per-event, so skipping consumes
  nothing either way).

This path runs real crypto per handshake, so keep cohorts small — it
exists to pin correctness, not to scale.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.suppression import ClientSuppressor, ServerSuppressor
from repro.errors import SimulationError
from repro.pki.store import IntermediatePreload
from repro.runtime.parallel import derive_seed
from repro.tls.client import ClientConfig
from repro.tls.server import ServerConfig
from repro.tls.session import HandshakeOutcome, RetryCause, run_handshake
from repro.webmodel import cohortrng
from repro.webmodel.cohort import (
    CohortColumns,
    CohortConfig,
    CohortResult,
    _BlockPart,
    cohort_stream_keys,
    finalize_cohort,
    record_cohort_counters,
)
from repro.webmodel.population import ICAPopulation


def run_cohort_reference(
    config: CohortConfig = CohortConfig(),
    population: Optional[ICAPopulation] = None,
) -> CohortResult:
    """Run the cohort as N independent scalar session machines."""
    population = population or ICAPopulation(config.population)
    if config.max_rank > population.ranking.size:
        raise SimulationError(
            f"max_rank {config.max_rank} exceeds the ranking universe "
            f"({population.ranking.size})"
        )
    hot = population.hot_ica_certificates(config.hot_top_n)
    trust_store = population.hierarchy.trust_store()
    server_suppressor = ServerSuppressor(max_cached_filters=8)
    keys = cohort_stream_keys(config.seed)
    slots = config.handshakes_per_user
    users = config.num_users

    handshakes = np.zeros(users, dtype=np.int64)
    retries = np.zeros(users, dtype=np.int64)
    encountered = np.zeros(users, dtype=np.int64)
    sent_first_count = np.zeros(users, dtype=np.int64)
    sent_total_count = np.zeros(users, dtype=np.int64)
    bytes_total = np.zeros(users, dtype=np.int64)
    sent_first_bytes = np.zeros(users, dtype=np.int64)
    sent_total_bytes = np.zeros(users, dtype=np.int64)
    learned = np.zeros(users, dtype=np.int64)
    refreshes = np.zeros(users, dtype=np.int64)
    divergent = np.zeros(users, dtype=bool)
    rtt_column: List[float] = []
    payload_bytes: Optional[int] = None

    for user in range(users):
        counters = cohortrng.user_counters(user, slots)
        ranks = cohortrng.zipf_ranks(
            cohortrng.uniforms(keys[cohortrng.RANK_STREAM], counters),
            config.zipf_exponent,
            config.max_rank,
        )
        rtts = cohortrng.lognormal_rtt(
            cohortrng.uniforms(keys[cohortrng.RTT_A_STREAM], counters),
            cohortrng.uniforms(keys[cohortrng.RTT_B_STREAM], counters),
            config.rtt_median_s,
            config.rtt_sigma,
        )
        suppressor = ClientSuppressor(
            preload=IntermediatePreload(hot),
            filter_kind=config.filter_kind,
            fpp=config.fpp,
            load_factor=config.load_factor,
            budget_bytes=None,
            seed=config.seed,
        )
        advertised = suppressor.extension_payload()
        if payload_bytes is None:
            payload_bytes = len(advertised)
        seen = set()
        handshake_index = 0
        for slot in range(slots):
            rank = int(ranks[slot])
            if rank in seen:
                continue  # session reuse
            seen.add(rank)
            if (
                config.payload_refresh_every
                and handshake_index > 0
                and handshake_index % config.payload_refresh_every == 0
            ):
                advertised = suppressor.extension_payload()
                refreshes[user] += 1
            credential = population.credential_for_rank(rank)
            chain = credential.chain
            server_config = ServerConfig(
                credential=credential,
                suppression_handler=server_suppressor,
                seed=derive_seed("cohort.server", config.seed, user, slot),
            )
            client_config = ClientConfig(
                trust_store=trust_store,
                hostname=chain.leaf.subject,
                at_time=config.at_time,
                ica_filter_payload=advertised,
                issuer_lookup=suppressor.cache.lookup_issuer,
                seed=derive_seed("cohort.client", config.seed, user, slot),
            )
            trace = run_handshake(client_config, server_config)
            if trace.outcome not in (
                HandshakeOutcome.COMPLETED,
                HandshakeOutcome.COMPLETED_AFTER_RETRY,
            ):
                raise SimulationError(
                    f"cohort reference: user {user} rank {rank} ended "
                    f"{trace.outcome.value}: "
                    f"{trace.final_attempt.failure_reason}"
                )
            first = trace.attempts[0]
            handshakes[user] += 1
            encountered[user] += chain.num_icas
            bytes_total[user] += chain.ica_bytes()
            sent_first_count[user] += chain.num_icas - first.suppressed_ica_count
            sent_first_bytes[user] += first.ica_bytes_sent
            sent_total_count[user] += sum(
                chain.num_icas - attempt.suppressed_ica_count
                for attempt in trace.attempts
            )
            sent_total_bytes[user] += trace.ica_bytes_sent
            rtt_column.append(float(rtts[slot]))
            if trace.false_positive:
                if first.retry_cause is not RetryCause.SERVER_SUPPRESSION_FP:
                    raise SimulationError(
                        f"cohort reference: unexpected retry cause "
                        f"{first.retry_cause!r}"
                    )
                retries[user] += 1
                divergent[user] = True
                learned[user] += suppressor.learn_from(chain)
            handshake_index += 1

    if payload_bytes is None:  # pragma: no cover - users >= 1 by config
        payload_bytes = 0
    columns = CohortColumns(
        handshakes=handshakes,
        retries=retries,
        icas_encountered=encountered,
        icas_sent_first=sent_first_count,
        icas_sent_total=sent_total_count,
        ica_bytes_total=bytes_total,
        ica_bytes_sent_first=sent_first_bytes,
        ica_bytes_sent_total=sent_total_bytes,
        learned_icas=learned,
        payload_refreshes=refreshes,
        divergent=divergent,
    )
    record_cohort_counters(columns, destinations=users * slots)
    part = _BlockPart(
        start=0, columns=columns, rtt_s=np.array(rtt_column, dtype=np.float64)
    )
    return finalize_cohort(config, [part], payload_bytes)
