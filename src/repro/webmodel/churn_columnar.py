"""Columnar time-stepped churn engine: staleness sweeps on the column machine.

:mod:`repro.webmodel.churn` advances a handful of clients through the
scalar TLS machine one handshake at a time — faithful, but the slowest
path left in the repo once the cohort engine (PR 6) vectorized Fig. 5.
This module ports the churn sweep onto the same column machine: N clients
advance as numpy columns across churn *epochs* (the world's steps), and
the per-epoch handshake work collapses from ``N × slots`` scalar TLS
sessions to one bulk membership probe per payload *generation* plus one
representative handshake per distinct ``(generation, site)`` context.

**The churn cohort protocol.** Both this engine and the scalar reference
(:mod:`repro.webmodel.churn_reference`) implement the exact same model,
which deliberately simplifies the fleet engine's per-client caches into a
cohort-wide canonical trajectory so that it vectorizes:

* One :class:`~repro.webmodel.churn.ChurnWorld` supplies the lifecycle
  event stream (issuance / cross-sign / revoke / rotate), byte-identical
  to the fleet engine's because the world is shared code and RNG streams.
* One canonical :class:`~repro.core.cache.ICACache` stands for every
  client's cache: per epoch it sweeps expiries, applies the CRL, takes
  the periodic preload refresh, and at epoch end learns the ICAs of every
  site that completed at least one handshake (ascending site order,
  deduplicated) — the pooled analogue of the fleet engine's per-client
  learn-on-success.
* Clients split into ``k = payload_refresh_every`` payload *generations*
  by ``client % k``.  At epoch ``t`` generation ``(-t) mod k`` re-captures
  its advertised wire image from the canonical cache (the same cadence as
  the fleet engine's ``(step + index) % k == 0``); the other generations
  keep serving their stale capture.  Staleness is therefore a *generation*
  property, which is what lets a whole bucket share one filter image and
  one bulk probe.
* Per epoch, each client draws ``handshakes_per_client`` target sites
  from the counter-based ``churn.site`` stream
  (:mod:`repro.webmodel.cohortrng`), so the draw for ``(epoch, client,
  slot)`` is a pure function computable columnarly here and scalar-wise
  in the reference, in any process and any sharding.

**Vectorization strategy.**  Within an epoch the TLS trace of a handshake
is a pure function of its ``(generation, site)`` context: the advertised
payload, the canonical cache, and the site's chain fully determine
outcome, suppression and wire bytes (every length in the trace is fixed
by algorithm parameters, not by the per-handshake seed — the property the
differential suite pins).  So the engine probes each generation's filter
image against the epoch's unique chain set with a single
``contains_batch`` call, runs *one* representative handshake per context
through the untouched :func:`~repro.tls.session.run_handshake`, and
broadcasts its trace arithmetic over the context's population count.
Contexts flagged as FP candidates (filter hit for a fingerprint the
canonical cache no longer holds) or whose representative did anything but
complete cleanly are replayed cell by cell through the real machine, the
same escape hatch :mod:`repro.webmodel.cohort` uses for divergent users.

Wire images and bulk probes are memoized in content-keyed artifact caches
(:data:`repro.runtime.artifacts.CHURN_IMAGES` /
:data:`~repro.runtime.artifacts.CHURN_PROBES`): the key is the cache
*content* (ordered fingerprints) plus filter parameters, so repeated
trials, staleness levels sharing a trajectory prefix, and ``--jobs``
workers all rehydrate one build.  Both caches store the obs-counter
deltas of the work they skip and replay them on every hit, preserving the
serial == parallel determinism contract for ``amq.*``/``tls.*`` counters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.amq.delta import (
    DeltaApplier,
    DeltaPublisher,
    FilterSnapshot,
    delta_overhead_bytes,
    deserialize_delta,
)
from repro.core.cache import ICACache
from repro.core.extension import build_extension_payload, parse_extension_payload
from repro.core.filter_config import memoized_build, plan_filter
from repro.errors import SimulationError
from repro.runtime import artifacts
from repro.runtime.parallel import derive_seed
from repro.tls.client import ClientConfig
from repro.tls.server import ServerConfig
from repro.tls.session import HandshakeOutcome, HandshakeTrace, run_handshake
from repro.webmodel.churn import (
    ChurnConfig,
    ChurnResult,
    ChurnWorld,
    StepMetrics,
    record_churn_step,
)
from repro.webmodel.cohortrng import block_counters, stream_key, uniforms

#: Stream namespace of the per-(epoch, client, slot) site draw.
SITE_STREAM = "churn.site"


@dataclass(frozen=True)
class ChurnCohortConfig:
    """A churn cohort: a lifecycle world plus a column of clients.

    ``world`` carries every ecosystem knob (steps become the cohort's
    epochs; ``payload_refresh_every`` becomes the generation count); the
    world's own ``num_clients``/``handshakes_per_step`` fleet knobs are
    ignored here — the cohort's population is ``num_clients`` columns
    drawing ``handshakes_per_client`` sites per epoch.
    """

    world: ChurnConfig = field(default_factory=ChurnConfig)
    num_clients: int = 64
    handshakes_per_client: int = 2

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise SimulationError(
                f"num_clients must be >= 1, got {self.num_clients}"
            )
        if self.handshakes_per_client < 1:
            raise SimulationError(
                f"handshakes_per_client must be >= 1, got "
                f"{self.handshakes_per_client}"
            )
        if self.world.payload_refresh_every < 1:
            raise SimulationError(
                f"payload_refresh_every must be >= 1, got "
                f"{self.world.payload_refresh_every}"
            )
        if self.world.distribution not in ("full", "delta"):
            raise SimulationError(
                f"distribution must be 'full' or 'delta', got "
                f"{self.world.distribution!r}"
            )


@dataclass
class ChurnCohortResult(ChurnResult):
    """Same shape as :class:`~repro.webmodel.churn.ChurnResult` (the
    experiment layer is engine-agnostic); ``config`` holds the cohort
    config.  Dataclass equality over (config, steps, events) is the
    differential suite's full-result contract."""


def churn_stream_keys(seed: int) -> Dict[str, int]:
    """Stream keys of the churn cohort under ``seed`` (memoized in the
    shippable stream cache so every worker derives one key set)."""
    key = ("churn-streams", seed)
    cached = artifacts.COHORT_STREAMS.get(key)
    if cached is None:
        cached = {SITE_STREAM: stream_key(SITE_STREAM, seed)}
        artifacts.COHORT_STREAMS.put(key, cached)
    return cached


def epoch_site_counters(
    step: int, num_clients: int, slots: int
) -> np.ndarray:
    """Counter matrix of one epoch's site draws: client ``u`` of epoch
    ``t`` occupies the virtual user ``t * num_clients + u``, so counters
    never collide across epochs and any contiguous client sub-range
    yields the same values as the full block (sharding invariance)."""
    start = step * num_clients
    return block_counters(start, start + num_clients, slots)


def epoch_site_column(
    site_key: int, step: int, num_clients: int, slots: int, num_sites: int
) -> np.ndarray:
    """The (clients, slots) matrix of target-site indices for one epoch."""
    u = uniforms(site_key, epoch_site_counters(step, num_clients, slots))
    sites = (u * num_sites).astype(np.int64)
    # u < 1.0 strictly, but float rounding at the boundary must not
    # produce an out-of-range index.
    np.clip(sites, 0, num_sites - 1, out=sites)
    return sites


def _fingerprint_digest(fingerprints: Sequence[bytes]) -> bytes:
    digest = hashlib.sha256()
    for fp in fingerprints:
        digest.update(len(fp).to_bytes(4, "big"))
        digest.update(fp)
    return digest.digest()


def capture_wire_image(
    world_config: ChurnConfig, fingerprints: Sequence[bytes]
) -> bytes:
    """Serialize the advertised payload of a cache state (the generation
    capture), memoized by content in :data:`artifacts.CHURN_IMAGES`.

    Capacity is re-planned per capture as a pure function of the current
    fingerprint count (2x headroom, like the fleet engine's client
    construction): the canonical cache grows across a long run, and a
    capacity frozen at step 0 would overflow.  Cache hits replay the
    build's obs-counter deltas so ``amq.*`` counters stay a pure function
    of the capture sequence, not of which process built the image first.
    """
    fingerprints = [bytes(fp) for fp in fingerprints]
    key = (
        "image",
        world_config.filter_kind,
        world_config.fpp,
        world_config.load_factor,
        world_config.seed,
        _fingerprint_digest(fingerprints),
    )
    cached = artifacts.CHURN_IMAGES.get(key)
    if cached is None:
        with obs.scoped() as scope:
            plan = plan_filter(
                num_icas=max(1, len(fingerprints)),
                filter_kind=world_config.filter_kind,
                fpp=world_config.fpp,
                load_factor=world_config.load_factor,
                budget_bytes=None,
                seed=world_config.seed,
                headroom=2.0,
            )
            payload = build_extension_payload(plan.build(fingerprints))
        cached = (payload, scope.snapshot())
        artifacts.CHURN_IMAGES.put(key, cached)
    payload, build_metrics = cached
    obs.merge(build_metrics)
    return payload


def probe_image(payload: bytes, fingerprints: Sequence[bytes]) -> Tuple[bool, ...]:
    """Bulk-probe an advertised image for a fingerprint sequence (the
    per-(generation, epoch) membership resolution), memoized by content
    in :data:`artifacts.CHURN_PROBES` with obs-snapshot replay."""
    fingerprints = [bytes(fp) for fp in fingerprints]
    key = (
        "probe",
        hashlib.sha256(payload).digest(),
        _fingerprint_digest(fingerprints),
    )
    cached = artifacts.CHURN_PROBES.get(key)
    if cached is None:
        with obs.scoped() as scope:
            filt = parse_extension_payload(payload)
            hits = tuple(bool(h) for h in filt.contains_batch(fingerprints))
        cached = (hits, scope.snapshot())
        artifacts.CHURN_PROBES.put(key, cached)
    hits, probe_metrics = cached
    obs.merge(probe_metrics)
    return hits


@dataclass(frozen=True)
class EpochCounts:
    """Lifecycle + client-maintenance tallies of one epoch (everything in
    :class:`StepMetrics` that is not handshake accounting)."""

    icas_issued: int
    icas_cross_signed: int
    icas_revoked: int
    icas_expired_swept: int
    preload_added: int
    payload_refreshes: int
    site_rotations: int
    #: Bytes the update channel shipped to the refreshing generation
    #: (framed full image or ``repro.delta/v1`` update, per client).
    distribution_bytes: int = 0


def generation_of(client: int, generations: int) -> int:
    """Payload generation of a client (``client mod k``)."""
    return client % generations


def generation_size(generation: int, num_clients: int, generations: int) -> int:
    """Population of one generation bucket."""
    return num_clients // generations + (
        1 if num_clients % generations > generation else 0
    )


class ChurnCohortState:
    """The engine-independent half of the churn cohort protocol: world,
    canonical cache, generation captures, and the epoch maintenance /
    learning phases.  Both the columnar engine and the scalar reference
    drive exactly this object, so any divergence between them is in the
    handshake resolution alone — the property the differential suite
    leans on."""

    def __init__(self, config: ChurnCohortConfig) -> None:
        self.config = config
        self.world = ChurnWorld(config.world)
        self.cache = ICACache()
        self.cache.add_many(self.world.initial_certificates())
        self.generations = config.world.payload_refresh_every
        self.distribution = config.world.distribution
        cfg = config.world
        if self.distribution == "delta":
            # Versioned distribution: one publisher tracks the canonical
            # trajectory, one applier per generation replays its updates
            # at that generation's refresh cadence.  Version 0 is a local
            # bootstrap (the preload set every client already holds), so
            # it costs no wire bytes — exactly like full mode's initial
            # capture.  Builds route through the memoized FILTER_BUILDS
            # cache so repeated versions across generations, trials and
            # workers rehydrate one image.
            fingerprints = self.cache.fingerprints()
            self._publisher = DeltaPublisher(
                cfg.filter_kind,
                fingerprints,
                fpp=cfg.fpp,
                load_factor=cfg.load_factor,
                seed=cfg.seed,
                headroom=2.0,
                builder=memoized_build,
            )
            self._appliers = [
                DeltaApplier(
                    cfg.filter_kind,
                    fingerprints,
                    capacity=self._publisher.capacity_at(0),
                    fpp=cfg.fpp,
                    load_factor=cfg.load_factor,
                    seed=cfg.seed,
                    builder=memoized_build,
                )
                for _ in range(self.generations)
            ]
            initial = (
                self._appliers[0].image(),
                frozenset(self._appliers[0].items),
            )
        else:
            self._publisher = None
            self._appliers = []
            initial = self._capture()
        #: Per-generation (advertised payload, captured fingerprint set).
        self.captures: List[Tuple[bytes, FrozenSet[bytes]]] = [
            initial for _ in range(self.generations)
        ]

    def _capture(self) -> Tuple[bytes, FrozenSet[bytes]]:
        fingerprints = self.cache.fingerprints()
        payload = capture_wire_image(self.config.world, fingerprints)
        return payload, frozenset(fingerprints)

    def _refresh_generation(self, due: int) -> int:
        """Refresh one generation's capture through the configured
        distribution channel; returns the bytes shipped *per client* of
        that generation.

        Full mode re-ships the whole framed image (AMQ payload plus the
        update-message framing, so both arms meter the same channel).
        Delta mode publishes the current canonical state and sends the
        cheapest ``repro.delta/v1`` update from the generation's applied
        version — by construction never costlier than the framed
        snapshot, and usually a small patch.
        """
        if self.distribution != "delta":
            self.captures[due] = self._capture()
            return len(self.captures[due][0]) + delta_overhead_bytes()
        version = self._publisher.publish(self.cache.fingerprints())
        applier = self._appliers[due]
        update = self._publisher.update_since(applier.version)
        message = deserialize_delta(update)
        if isinstance(message, FilterSnapshot):
            # Resync: the ordered item list rides the local cache model
            # (clients rebuild their list from their own cache, which the
            # publisher's canonical trajectory stands for).
            applier.apply(
                message,
                snapshot_items=self._publisher.items_at(message.version),
            )
        else:
            applier.apply(message)
        assert applier.version == version
        self.captures[due] = (applier.image(), frozenset(applier.items))
        return len(update)

    def begin_epoch(self, step: int) -> EpochCounts:
        """Advance the world and run the epoch's client maintenance:
        expiry sweep, CRL application, periodic preload refresh, and the
        due generation's payload re-capture.  Per-client tallies scale
        the canonical trajectory by the cohort size — every client runs
        the same maintenance, so counting it N times is exact, not an
        estimate."""
        cfg = self.config.world
        n = self.config.num_clients
        issued, cross_signed, revoked, rotations = self.world.advance(step)
        at_time = step * cfg.step_seconds
        expired = self.cache.sweep_expired(at_time)
        self.cache.apply_revocations(self.world.crl)
        preload_added = 0
        if step and step % cfg.preload_refresh_every == 0:
            live = self.world.live_certificates(step)
            preload_added = self.cache.add_many(
                [cert for cert in live if cert not in self.cache]
            )
            self.world.events.append(
                (step, "preload-refresh", f"added={preload_added * n}")
            )
        due = (-step) % self.generations
        per_client_bytes = self._refresh_generation(due)
        refreshed = generation_size(due, n, self.generations)
        return EpochCounts(
            icas_issued=issued,
            icas_cross_signed=cross_signed,
            icas_revoked=revoked,
            icas_expired_swept=expired * n,
            preload_added=preload_added * n,
            payload_refreshes=refreshed,
            site_rotations=rotations,
            distribution_bytes=per_client_bytes * refreshed,
        )

    def stale_generations(self) -> List[bool]:
        """Which generations' captured fingerprint sets no longer match
        the canonical cache (the per-handshake ``payload_is_stale`` of
        the fleet engine, hoisted to generation granularity)."""
        live = frozenset(self.cache.fingerprints())
        return [captured != live for _, captured in self.captures]

    def site_chain_fingerprints(self) -> List[Tuple[bytes, ...]]:
        """Per-site ICA fingerprints of the currently served chains."""
        return [
            tuple(c.fingerprint() for c in s.credential.chain.intermediates)
            for s in self.world.sites
        ]

    def finish_epoch(self, succeeded_sites: Set[int]) -> None:
        """Epoch-end pooled learning: the canonical cache absorbs every
        fresh, unrevoked ICA served by a site that completed at least one
        handshake this epoch (ascending site order, deduplicated) — the
        cohort analogue of the fleet engine's per-success ``_learn``."""
        fresh = []
        seen: Set[bytes] = set()
        for index in sorted(succeeded_sites):
            chain = self.world.sites[index].credential.chain
            for cert in chain.intermediates:
                fp = cert.fingerprint()
                if (
                    fp not in seen
                    and not self.world.crl.is_revoked(cert)
                    and cert not in self.cache
                ):
                    seen.add(fp)
                    fresh.append(cert)
        if fresh:
            self.cache.add_many(fresh)

    def run_representative(
        self, step: int, client: int, slot: int, site_index: int, payload: bytes
    ) -> HandshakeTrace:
        """One real handshake through the untouched TLS machine, seeded
        exactly as the scalar reference seeds this cell."""
        cfg = self.config.world
        site = self.world.sites[site_index]
        client_config = ClientConfig(
            trust_store=self.world.trust_store,
            kem_name=cfg.kem_name,
            hostname=site.hostname,
            at_time=step * cfg.step_seconds,
            ica_filter_payload=payload,
            issuer_lookup=self.cache.lookup_issuer,
            seed=derive_seed("churn.cohort.client", cfg.seed, step, client, slot),
        )
        server_config = ServerConfig(
            credential=site.credential,
            suppression_handler=self.world.server_suppressor,
            seed=derive_seed("churn.cohort.server", cfg.seed, step, client, slot),
        )
        return run_handshake(client_config, server_config)


def _trace_stats(trace: HandshakeTrace) -> Tuple[int, int, int, int, int, int]:
    """(completed, fp_retries, fallbacks, failures, suppressed, wire_bytes)
    of one trace — the per-cell accounting of the fleet engine."""
    fp_retry = int(trace.outcome is HandshakeOutcome.COMPLETED_AFTER_RETRY)
    fallback = int(trace.outcome is HandshakeOutcome.COMPLETED_AFTER_FALLBACK)
    return (
        int(trace.succeeded),
        fp_retry,
        fallback,
        int(not trace.succeeded),
        trace.attempts[0].suppressed_ica_count,
        trace.total_wire_bytes,
    )


class ChurnCohortEngine:
    """The columnar engine: one representative trace per (generation,
    site) context, broadcast over the context's population, with flagged
    contexts replayed cell by cell through the real machine."""

    def __init__(self, config: ChurnCohortConfig = ChurnCohortConfig()) -> None:
        self.config = config
        self.state = ChurnCohortState(config)
        self._site_key = churn_stream_keys(config.world.seed)[SITE_STREAM]

    def run_epoch(self, step: int) -> StepMetrics:
        cfg = self.config.world
        state = self.state
        n = self.config.num_clients
        slots = self.config.handshakes_per_client
        num_sites = cfg.num_sites
        k = state.generations

        counts_epoch = state.begin_epoch(step)
        stale = np.asarray(state.stale_generations(), dtype=bool)
        chain_fps = state.site_chain_fingerprints()
        # Every site serves a single-ICA chain (the world's invariant);
        # the flat per-site fingerprint list is the epoch's unique chain
        # set each generation resolves with one bulk probe.
        site_fps = [fps[0] for fps in chain_fps]
        live = set(state.cache.fingerprints())

        sites = epoch_site_column(self._site_key, step, n, slots, num_sites)
        gens = (np.arange(n, dtype=np.int64) % k)[:, None]
        ctx = gens * num_sites + sites  # (clients, slots)
        flat = ctx.ravel()
        counts = np.bincount(flat, minlength=k * num_sites)
        # First flat cell of each occurring context = its representative.
        present, first = np.unique(flat, return_index=True)

        # One bulk membership probe per generation that actually occurs.
        gen_hits: Dict[int, Tuple[bool, ...]] = {}
        for context in present:
            g = int(context) // num_sites
            if g not in gen_hits:
                gen_hits[g] = probe_image(state.captures[g][0], site_fps)

        completed = fp_retries = fallbacks = failures = 0
        suppressed = wire_bytes = encountered = 0
        succeeded_sites: Set[int] = set()
        replay_contexts: Set[int] = set()

        for context, first_cell in zip(present, first):
            g, site_index = divmod(int(context), num_sites)
            count = int(counts[context])
            payload = state.captures[g][0]
            hit = gen_hits[g][site_index]
            # A filter hit for a fingerprint the canonical cache no longer
            # holds is an FP *candidate*: path completion may still succeed
            # through a cached cross-sign variant of the same subject, so
            # the representative trace — not the probe — is the classifier.
            candidate_fp = hit and site_fps[site_index] not in live
            client, slot = divmod(int(first_cell), slots)
            trace = state.run_representative(step, client, slot, site_index, payload)
            stats = _trace_stats(trace)
            clean = (
                not candidate_fp
                and trace.outcome is HandshakeOutcome.COMPLETED
                and stats[4] == int(hit)
            )
            encountered += count * len(chain_fps[site_index])
            if clean:
                completed += count * stats[0]
                suppressed += count * stats[4]
                wire_bytes += count * stats[5]
                if trace.succeeded:
                    succeeded_sites.add(site_index)
            else:
                replay_contexts.add(int(context))

        # Flagged contexts (FP candidates, retries, fallbacks, failures)
        # replay exactly through the real machine, every cell with its own
        # seeds — the cohort engine's divergent-user escape hatch.
        if replay_contexts:
            cells = np.flatnonzero(np.isin(flat, list(replay_contexts)))
            for cell in cells:
                client, slot = divmod(int(cell), slots)
                g = generation_of(client, k)
                site_index = int(sites[client, slot])
                trace = state.run_representative(
                    step, client, slot, site_index, state.captures[g][0]
                )
                c, r, fb, fail, sup, wire = _trace_stats(trace)
                completed += c
                fp_retries += r
                fallbacks += fb
                failures += fail
                suppressed += sup
                wire_bytes += wire
                if trace.succeeded:
                    succeeded_sites.add(site_index)

        state.finish_epoch(succeeded_sites)
        handshakes = n * slots
        stale_advertised = int(stale[np.arange(n) % k].sum()) * slots
        metrics = StepMetrics(
            step=step,
            icas_issued=counts_epoch.icas_issued,
            icas_cross_signed=counts_epoch.icas_cross_signed,
            icas_revoked=counts_epoch.icas_revoked,
            icas_expired_swept=counts_epoch.icas_expired_swept,
            preload_added=counts_epoch.preload_added,
            payload_refreshes=counts_epoch.payload_refreshes,
            site_rotations=counts_epoch.site_rotations,
            handshakes=handshakes,
            completed=completed,
            fp_retries=fp_retries,
            fallbacks=fallbacks,
            failures=failures,
            stale_advertised=stale_advertised,
            icas_encountered=encountered,
            icas_suppressed=suppressed,
            wire_bytes=wire_bytes,
            distribution_bytes=counts_epoch.distribution_bytes,
        )
        record_churn_step(metrics)
        return metrics

    def run(self) -> ChurnCohortResult:
        steps = []
        with obs.span(
            "webmodel.churn.run", (("filter", self.config.world.filter_kind),)
        ):
            for step in range(self.config.world.steps):
                steps.append(self.run_epoch(step))
        return ChurnCohortResult(
            config=self.config, steps=steps, events=self.state.world.events
        )


def run_churn_cohort(
    config: ChurnCohortConfig = ChurnCohortConfig(),
) -> ChurnCohortResult:
    """Run the churn cohort protocol on the columnar engine (one call =
    one pure function of ``config``)."""
    return ChurnCohortEngine(config).run()
