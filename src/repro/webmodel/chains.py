"""Chain-size mixes — Table 2 of the paper.

The table reports, for each monthly Tranco Top-10K crawl, the share of
servers whose chains carried 0, 1, 2, 3 or more than 3 ICAs, plus the
distinct-ICA count. These observed rows are both the calibration target
of :mod:`repro.webmodel.population` and the ground truth the Table-2
benchmark compares against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChainMix:
    """Probabilities of a server chain carrying 0..4+ ICAs."""

    p0: float
    p1: float
    p2: float
    p3: float
    p4_plus: float
    unique_icas: int

    def __post_init__(self) -> None:
        total = self.p0 + self.p1 + self.p2 + self.p3 + self.p4_plus
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"chain mix must sum to 1, got {total:.6f}"
            )

    def probabilities(self) -> Tuple[float, float, float, float, float]:
        return (self.p0, self.p1, self.p2, self.p3, self.p4_plus)

    def sample_depth(self, rng: random.Random) -> int:
        """Draw a chain's ICA count (4 stands for '>3')."""
        u = rng.random()
        acc = 0.0
        for depth, p in enumerate(self.probabilities()):
            acc += p
            if u < acc:
                return depth
        return 4

    def mean_icas(self) -> float:
        return self.p1 + 2 * self.p2 + 3 * self.p3 + 4 * self.p4_plus


def _mix(p0, p1, p2, p3, p4, unique) -> ChainMix:
    return ChainMix(p0 / 100, p1 / 100, p2 / 100, p3 / 100, p4 / 100, unique)


#: Table 2 as printed (percentages; Top-10K entries, Jan-Jun 2022).
TABLE2_MONTHS: Dict[str, ChainMix] = {
    "Jan. '22": _mix(30.8, 35.6, 24.1, 9.4, 0.1, 220),
    "Feb. '22": _mix(14.4, 43.5, 30.2, 11.8, 0.1, 236),
    "Mar. '22": _mix(13.3, 44.8, 30.2, 11.6, 0.1, 228),
    "Apr. '22": _mix(13.7, 44.7, 30.0, 11.5, 0.1, 231),
    "May '22": _mix(19.7, 41.6, 27.5, 11.0, 0.2, 224),
    "Jun. '22": _mix(24.1, 39.1, 26.5, 10.1, 0.2, 245),
}


def table2_mix(month: str) -> ChainMix:
    try:
        return TABLE2_MONTHS[month]
    except KeyError:
        raise ConfigurationError(
            f"unknown Table-2 month {month!r}; known: {list(TABLE2_MONTHS)}"
        ) from None


#: The paper's headline month: the filter experiments use the June 2022
#: population (245 ICAs).
PAPER_MONTH = "Jun. '22"
