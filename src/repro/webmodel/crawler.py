"""Monthly Top-10K crawl simulation — reproduces Table 2.

For each monthly snapshot the crawler walks the (jittered) top ranks,
asks the population for each server's chain, and tallies exactly what the
paper's table reports: the chain-size shares and the distinct-ICA count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.webmodel.chains import TABLE2_MONTHS, table2_mix
from repro.webmodel.population import ICAPopulation


@dataclass(frozen=True)
class CrawlStats:
    """One Table-2 row, as measured by the crawl."""

    month: str
    total_servers: int
    unique_icas: int
    share_by_depth: Dict[int, float]  # keys 0..3 and 4 meaning '>3'

    def share(self, depth: int) -> float:
        return self.share_by_depth.get(depth, 0.0)

    def as_row(self) -> List[str]:
        return [
            self.month,
            str(self.unique_icas),
            f"{self.total_servers // 1000}K",
            *(f"{100 * self.share(d):.1f}" for d in range(5)),
        ]


def crawl_top_domains(
    population: ICAPopulation,
    month: str,
    month_index: int = 0,
    num_domains: int = 10_000,
) -> CrawlStats:
    """Crawl the month's top ``num_domains`` and tally chain statistics.

    The month enters twice, as in reality: the rank list itself churns a
    little (``DomainRanking.monthly_rank``), and the population's chain
    mix follows the month's observed distribution.
    """
    mix = table2_mix(month)
    population = _with_month(population, month)
    depth_counts: Dict[int, int] = {}
    distinct: Set[bytes] = set()
    for rank in range(1, num_domains + 1):
        actual = population.ranking.monthly_rank(rank, month_index)
        depth = population.depth_for_rank(actual)
        path = population.path_for_rank(actual)
        depth_counts[min(depth, 4)] = depth_counts.get(min(depth, 4), 0) + 1
        for cert in path.ica_certificates():
            distinct.add(cert.fingerprint())
    shares = {d: c / num_domains for d, c in depth_counts.items()}
    return CrawlStats(
        month=month,
        total_servers=num_domains,
        unique_icas=len(distinct),
        share_by_depth=shares,
    )


def crawl_all_months(
    population: ICAPopulation, num_domains: int = 10_000
) -> List[CrawlStats]:
    return [
        crawl_top_domains(population, month, month_index=i, num_domains=num_domains)
        for i, month in enumerate(TABLE2_MONTHS)
    ]


def _with_month(population: ICAPopulation, month: str) -> ICAPopulation:
    """A view of the population under another month's chain mix (same
    hierarchy, same path popularity — only the depth mix changes)."""
    if population.config.month == month:
        return population
    clone = object.__new__(ICAPopulation)
    clone.__dict__.update(population.__dict__)
    clone._mix = table2_mix(month)
    return clone
