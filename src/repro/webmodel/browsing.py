"""User browsing model (Burklen et al., cited as [9] in the paper).

§5.3: "the simulated user visits Tranco domains following a Zipf-like
distribution (exponent=1.9), views pages with a Pareto distribution
(exp=2.5)" — using the lower bound of the model parameters. Each viewed
page additionally pulls embedded HTTPS content from third-party origins,
which is what drives the session's ~1950 unique destinations for 200
visited domains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.webmodel.tranco import DomainRanking


@dataclass(frozen=True)
class BrowsingConfig:
    """Browsing-behaviour parameters (paper defaults)."""

    domain_zipf_exponent: float = 1.9
    pages_pareto_exponent: float = 2.5
    #: Mean third-party origins embedded per page (calibrated so a
    #: 200-domain session touches ~1950 unique destinations).
    third_party_mean: float = 15.0
    #: Popularity skew of third-party origins; close to 1 = diverse
    #: (trackers and CDNs are popular, but long-tail widgets abound).
    third_party_zipf_exponent: float = 1.08
    seed: int = 0


@dataclass(frozen=True)
class Visit:
    """One TLS destination contacted during the session."""

    rank: int
    domain: str
    is_third_party: bool
    page_index: int


class BrowsingModel:
    """Generates browsing sessions over a :class:`DomainRanking`."""

    def __init__(
        self,
        config: BrowsingConfig = BrowsingConfig(),
        ranking: Optional[DomainRanking] = None,
    ) -> None:
        if config.third_party_mean < 0:
            raise ConfigurationError(
                f"third_party_mean must be >= 0, got {config.third_party_mean}"
            )
        self.config = config
        self.ranking = ranking or DomainRanking(seed=config.seed)
        self._rng = random.Random(config.seed ^ 0xB0B0)

    def _pages_for_domain(self) -> int:
        """Pareto(exp) page count, lower bound 1."""
        return max(1, int(self._rng.paretovariate(self.config.pages_pareto_exponent)))

    def _third_party_count(self) -> int:
        """Per-page third-party origin count (geometric with the
        configured mean — heavy enough for busy pages, allows zero)."""
        mean = self.config.third_party_mean
        if mean <= 0:
            return 0
        p = 1.0 / (1.0 + mean)
        count = 0
        while self._rng.random() > p:
            count += 1
        return count

    def session(self, num_domains: int = 200) -> List[Visit]:
        """One browsing session: every TLS destination contacted, in
        order, duplicates included (the simulator dedupes per §5.3's
        'unique destinations' accounting)."""
        visits: List[Visit] = []
        page_index = 0
        for _ in range(num_domains):
            rank = self.ranking.sample_rank(
                self._rng, self.config.domain_zipf_exponent
            )
            for _ in range(self._pages_for_domain()):
                visits.append(
                    Visit(rank, self.ranking.domain(rank), False, page_index)
                )
                for _ in range(self._third_party_count()):
                    tp_rank = self.ranking.sample_rank(
                        self._rng, self.config.third_party_zipf_exponent
                    )
                    visits.append(
                        Visit(
                            tp_rank,
                            self.ranking.domain(tp_rank),
                            True,
                            page_index,
                        )
                    )
                page_index += 1
        return visits

    def unique_destination_ranks(self, visits: List[Visit]) -> List[int]:
        """First-contact order of unique destinations (one handshake
        each; repeat contacts reuse the session)."""
        seen = set()
        ordered = []
        for visit in visits:
            if visit.rank not in seen:
                seen.add(visit.rank)
                ordered.append(visit.rank)
        return ordered
