"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import ConfigurationError


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def relative_error(measured: float, reference: float) -> float:
    """(measured - reference) / reference; reference must be non-zero."""
    if reference == 0:
        raise ConfigurationError("relative error against zero reference")
    return (measured - reference) / reference


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI of the mean (fine for the >=10-run
    experiment repetitions used here)."""
    if len(values) < 2:
        raise ConfigurationError("confidence interval needs >= 2 samples")
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    half = 1.96 * math.sqrt(var / len(values))
    return m - half, m + half
