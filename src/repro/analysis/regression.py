"""Least-squares linear regression.

Fig. 5-center fits "a latency model based on the line of best-fit (linear
regression)" of PQ-induced extra latency against RTT; this module is that
fit (closed-form simple least squares plus R^2), with a predict method so
the TTFB extrapolation uses the same object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinearFit:
    """y = slope * x + intercept."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def describe(self, x_unit: str = "s", y_unit: str = "s") -> str:
        return (
            f"y = {self.slope:.3f}*x + {self.intercept * 1000:.2f}ms "
            f"(R^2={self.r_squared:.4f}, n={self.n}, x in {x_unit}, y in {y_unit})"
        )


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares over paired samples."""
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"x and y lengths differ: {len(xs)} vs {len(ys)}"
        )
    n = len(xs)
    if n < 2:
        raise ConfigurationError(f"need at least 2 points, got {n}")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ConfigurationError("x values are all identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared, n=n)
