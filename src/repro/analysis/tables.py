"""Fixed-width table rendering for benchmark output.

Every benchmark prints the rows/series the corresponding paper artifact
reports; this renderer keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(pairs: Sequence[Sequence[object]], title: str = "") -> str:
    """Render key/value summary lines."""
    lines = [title] if title else []
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines.extend(f"{str(k).ljust(width)} : {v}" for k, v in pairs)
    return "\n".join(lines)
