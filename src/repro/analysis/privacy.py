"""Client-fingerprinting exposure of the IC-filter extension (§6).

The ClientHello travels in cleartext, so a passive observer sees each
client's advertised filter. The paper acknowledges this "creates
unencrypted signals that could be used to identify which ICA certs are
known, increasing the effectiveness of client fingerprinting", and points
at three mitigations: ECH, advertising only to known peers, and curated
universal filters. This module quantifies the exposure so those options
can be compared:

* ``distinguishable_fraction`` — how many client pairs an observer can
  tell apart from payload bytes alone;
* ``payload_entropy_bits`` — entropy of the payload distribution across a
  client population (0 bits = perfectly uniform herd, the universal-filter
  ideal);
* ``membership_leak`` — how reliably an observer can test "does this
  client know ICA X?" against an advertised filter (bounded below by the
  filter's FPP — the filter's own noise is the only cover).
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Dict, List, Sequence

from repro.amq import AMQFilter, deserialize_filter
from repro.errors import ConfigurationError


def distinguishable_fraction(payloads: Sequence[bytes]) -> float:
    """Fraction of client pairs with distinct payloads (0 = herd
    anonymity, 1 = everyone unique)."""
    n = len(payloads)
    if n < 2:
        raise ConfigurationError("need at least two clients to compare")
    counts = Counter(payloads)
    same_pairs = sum(c * (c - 1) // 2 for c in counts.values())
    total_pairs = n * (n - 1) // 2
    return 1.0 - same_pairs / total_pairs


def payload_entropy_bits(payloads: Sequence[bytes]) -> float:
    """Shannon entropy of the payload distribution (bits). An observer
    learns at most this many bits of identity from one ClientHello."""
    if not payloads:
        raise ConfigurationError("need at least one payload")
    counts = Counter(hashlib.sha256(p).digest() for p in payloads)
    n = len(payloads)
    entropy = -sum((c / n) * math.log2(c / n) for c in counts.values())
    return max(0.0, entropy)  # avoid IEEE negative zero for the herd case


def anonymity_set_sizes(payloads: Sequence[bytes]) -> List[int]:
    """Size of each client's anonymity set (clients sharing its exact
    payload), in client order."""
    counts = Counter(payloads)
    return [counts[p] for p in payloads]


def membership_leak(
    payload: bytes,
    known_fingerprints: Sequence[bytes],
    unknown_fingerprints: Sequence[bytes],
) -> Dict[str, float]:
    """Simulate the §6 attack: query an observed filter for candidate
    ICAs. Returns the attacker's true-positive rate (always ~1: filters
    have no false negatives) and false-positive rate (the filter's own
    FPP — the only uncertainty the attacker faces)."""
    filt: AMQFilter = deserialize_filter(payload)
    tp = sum(filt.contains(fp) for fp in known_fingerprints)
    fp = sum(filt.contains(fp) for fp in unknown_fingerprints)
    return {
        "true_positive_rate": tp / len(known_fingerprints) if known_fingerprints else 0.0,
        "false_positive_rate": fp / len(unknown_fingerprints) if unknown_fingerprints else 0.0,
        "advertised_items": float(len(filt)),
    }
