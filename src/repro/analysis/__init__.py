"""Analysis utilities: regression, statistics, table rendering."""

from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.stats import (
    confidence_interval_95,
    mean,
    relative_error,
)
from repro.analysis.tables import format_table, render_kv
from repro.analysis.privacy import (
    anonymity_set_sizes,
    distinguishable_fraction,
    membership_leak,
    payload_entropy_bits,
)

__all__ = [
    "LinearFit",
    "linear_fit",
    "mean",
    "relative_error",
    "confidence_interval_95",
    "format_table",
    "render_kv",
    "anonymity_set_sizes",
    "distinguishable_fraction",
    "membership_leak",
    "payload_entropy_bits",
]
