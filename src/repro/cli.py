"""Command-line runner: regenerate any paper artifact without pytest.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table1               # one artifact
    python -m repro fig5-left --runs 3 --domains 100
    python -m repro all                  # everything (reduced scale)

Each artifact prints the same rows/series the corresponding benchmark
prints; the benchmarks remain the canonical, asserted versions.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro._version import __version__
from repro.errors import ConfigurationError


def _run_table1(args) -> None:
    from repro.experiments import table1

    cells = table1.compute_table1()
    print(table1.format_table1(cells))


def _run_table2(args) -> None:
    from repro.experiments import table2

    print(table2.format_table2(table2.compute_table2(num_domains=args.crawl)))


def _run_fig1(args) -> None:
    from repro.experiments import fig1

    flows = fig1.compute_flows()
    print(fig1.format_flow_summary(flows))
    for flow in flows:
        print()
        print(fig1.format_flow(flow))


def _run_fig3(args) -> None:
    from repro.experiments import fig3

    print(fig3.format_load_factor_sweep(fig3.load_factor_sweep()))
    print()
    print(fig3.format_throughput(fig3.throughput(num_items=args.ops)))
    print()
    print(
        fig3.format_batch_throughput(
            fig3.batch_throughput(num_items=max(args.ops, 10_000))
        )
    )
    print()
    print(
        fig3.format_capacity_sweep(
            fig3.capacity_sweep(), fig3.budget_capacities()
        )
    )


def _run_fig4(args) -> None:
    from repro.experiments import fig4

    print(fig4.format_fpp_sweep(fig4.fpp_sweep()))


def _sessions(args):
    from repro.webmodel.session_sim import BrowsingSessionSimulator, SessionConfig

    sim = BrowsingSessionSimulator(
        SessionConfig(seed=1, num_domains=args.domains)
    )
    return sim.run_many(args.runs, jobs=args.jobs)


def _run_fig5_left(args) -> None:
    from repro.experiments import fig5

    print(fig5.format_data_volume(fig5.data_volume(_sessions(args))))


def _run_fig5_center(args) -> None:
    from repro.experiments import fig5

    models = fig5.latency_models()
    print(fig5.format_latency_models(models))
    for model in models:
        print(f"{model.algorithm}: {model.fit.describe(x_unit='s RTT')}")


def _run_fig5_right(args) -> None:
    from repro.experiments import fig5

    print(fig5.format_ttfb(fig5.ttfb_scenarios(_sessions(args))))


def _run_fig5(args) -> None:
    """Composite Fig. 5 artifact; ``--cohort`` switches to the columnar
    cohort engine (or its scalar reference via ``--engine scalar``)."""
    if not args.cohort:
        _run_fig5_left(args)
        print()
        _run_fig5_center(args)
        print()
        _run_fig5_right(args)
        return
    try:
        from repro.webmodel.cohort import (
            CohortConfig,
            cohort_json_doc,
            format_cohort,
            run_cohort,
        )
    except ImportError as exc:
        raise ConfigurationError(
            "'fig5 --cohort' needs numpy (the columnar engine has no "
            "scalar fallback); run the per-session fig5 panels instead"
        ) from exc

    config = CohortConfig(
        num_users=args.users,
        handshakes_per_user=args.handshakes_per_user,
        payload_refresh_every=args.payload_refresh_every,
        seed=args.cohort_seed,
        **({"block_users": args.block_users} if args.block_users else {}),
    )
    if args.engine == "scalar":
        from repro.webmodel.cohort_reference import run_cohort_reference

        result = run_cohort_reference(config)
    else:
        result = run_cohort(config, jobs=args.jobs)
    print(format_cohort(result))
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(cohort_json_doc(result), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[cohort: JSON written to {args.json_out}]", file=sys.stderr)


def _run_ablation_initcwnd(args) -> None:
    from repro.experiments import ablations

    print(ablations.format_initcwnd(ablations.initcwnd_sweep()))


def _run_ablation_filters(args) -> None:
    from repro.experiments import ablations

    rows = ablations.filter_choice(
        num_domains=max(20, args.domains // 2), runs=1, jobs=args.jobs
    )
    print(ablations.format_filter_choice(rows))


def _run_baselines(args) -> None:
    from repro.experiments.baselines import compare_designs, format_baselines

    print(format_baselines(compare_designs(num_domains=args.domains)))


def _run_compression(args) -> None:
    from repro.experiments.compression import (
        compression_comparison,
        format_compression,
    )

    print(format_compression(compression_comparison()))


def _run_mixed_chains(args) -> None:
    from repro.experiments.mixed_chains import (
        format_mixed_chains,
        mixed_chain_comparison,
    )

    print(format_mixed_chains(mixed_chain_comparison(jobs=args.jobs)))


def _run_nonweb(args) -> None:
    from repro.webmodel.nonweb import compare_environments, format_environments

    print(format_environments(compare_environments(sample_handshakes=30)))


def _run_quic(args) -> None:
    from repro.experiments.quic import (
        format_transport_comparison,
        transport_comparison,
    )

    print(format_transport_comparison(transport_comparison()))


def _run_warmup(args) -> None:
    from repro.experiments.warmup import format_warmup, warmup_curves

    print(
        format_warmup(
            warmup_curves(
                num_destinations=5 * args.domains,
                checkpoint_every=args.domains,
            )
        )
    )


def _run_report(args) -> None:
    from repro.experiments.report import ReportScale, generate_report

    print(
        generate_report(
            ReportScale(runs=args.runs, domains=args.domains,
                        crawl_domains=min(args.crawl, 10_000),
                        throughput_items=args.ops)
        )
    )


def _run_churn(args) -> None:
    from repro.experiments.churn import (
        ChurnConfig,
        ChurnExperimentConfig,
        churn_cache_stats,
        churn_json_doc,
        format_churn,
        run_churn_experiment,
    )

    config = ChurnExperimentConfig(
        trials=args.runs,
        base=ChurnConfig(steps=args.steps, distribution=args.distribution),
        clients=args.clients,
        handshakes_per_client=args.handshakes_per_client,
        engine=args.engine,
    )
    results = run_churn_experiment(config, jobs=args.jobs)
    print(format_churn(results))
    cache_stats = churn_cache_stats() if args.cache_stats else None
    if cache_stats is not None:
        for name, snap in sorted(cache_stats.items()):
            lookups = snap["hits"] + snap["misses"]
            rate = snap["hits"] / lookups if lookups else 0.0
            print(
                f"[churn cache {name}: {snap['hits']}/{lookups} hits "
                f"({100.0 * rate:.1f}%), {snap.get('size', 0)} entries]",
                file=sys.stderr,
            )
    if args.json_out:
        import json

        doc = churn_json_doc(config, results, cache_stats=cache_stats)
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[churn: JSON written to {args.json_out}]", file=sys.stderr)


def _run_estimator(args) -> None:
    from repro.experiments.estimator_model import (
        expected_duration_table,
        format_expected_durations,
    )

    print(format_expected_durations(expected_duration_table()))


ARTIFACTS: Dict[str, Callable] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig1": _run_fig1,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig5-left": _run_fig5_left,
    "fig5-center": _run_fig5_center,
    "fig5-right": _run_fig5_right,
    "ablation-initcwnd": _run_ablation_initcwnd,
    "ablation-filters": _run_ablation_filters,
    "baselines": _run_baselines,
    "churn": _run_churn,
    "compression": _run_compression,
    "mixed-chains": _run_mixed_chains,
    "nonweb": _run_nonweb,
    "quic": _run_quic,
    "report": _run_report,
    "warmup": _run_warmup,
    "estimator": _run_estimator,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Intermediate Certificate "
            "Suppression in Post-Quantum TLS' (CoNEXT '22)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "list"],
        help="artifact to regenerate ('list' to enumerate, 'all' for everything)",
    )
    parser.add_argument(
        "--runs", type=int, default=3,
        help="browsing-session repetitions (paper: 10)",
    )
    parser.add_argument(
        "--domains", type=int, default=100,
        help="domains per browsing session (paper: 200)",
    )
    parser.add_argument(
        "--crawl", type=int, default=10_000,
        help="domains per Table-2 crawl (paper: 10000)",
    )
    parser.add_argument(
        "--ops", type=int, default=5_000,
        help="items for the throughput measurement",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help=(
            "worker processes for the session-driven artifacts "
            "(0 = all cores, 1 = serial; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--cohort", action="store_true",
        help="fig5: run the columnar cohort engine instead of the panels",
    )
    parser.add_argument(
        "--users", type=int, default=10_000,
        help="cohort size (simulated users) for 'fig5 --cohort'",
    )
    parser.add_argument(
        "--handshakes-per-user", type=int, default=10,
        help="destination draws per cohort user (repeats reuse the session)",
    )
    parser.add_argument(
        "--payload-refresh-every", type=int, default=0,
        help=(
            "re-capture the advertised filter payload every K handshakes "
            "(0 = never; only matters once a user has learned new ICAs)"
        ),
    )
    parser.add_argument(
        "--cohort-seed", type=int, default=0,
        help="seed of the cohort's counter-based RNG streams",
    )
    parser.add_argument(
        "--block-users", type=int, default=0,
        help=(
            "cohort block size for --jobs sharding (0 = default; any "
            "value produces the identical result)"
        ),
    )
    parser.add_argument(
        "--engine", choices=("columnar", "scalar"), default="columnar",
        help=(
            "cohort/churn implementation: the columnar engine or the "
            "scalar per-handshake reference (identical results, wildly "
            "different speed)"
        ),
    )
    parser.add_argument(
        "--steps", type=int, default=12,
        help="time steps (epochs) for the churn experiment's lifecycle engine",
    )
    parser.add_argument(
        "--clients", type=int, default=64,
        help="churn cohort size (client columns per sweep cell)",
    )
    parser.add_argument(
        "--handshakes-per-client", type=int, default=2,
        help="site draws per churn client per epoch",
    )
    parser.add_argument(
        "--distribution", choices=("full", "delta"), default="full",
        help=(
            "churn: how refreshed filter payloads reach clients — 'full' "
            "re-ships the framed image every refresh, 'delta' ships "
            "versioned repro.delta/v1 patches (CRLite-style updates); "
            "cumulative bytes land in the doc's distribution_bytes"
        ),
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help=(
            "churn: report artifact-cache hit rates (stderr + JSON doc; "
            "per-process numbers, so the doc is no longer comparable "
            "across engines or --jobs values)"
        ),
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help=(
            "write the artifact's machine-readable summary to PATH "
            "(churn: repro.churn/v1; fig5 --cohort: repro.cohort/v1)"
        ),
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help=(
            "enable the observability registry and write its final state "
            "to PATH (.prom/.txt: Prometheus text; anything else: "
            "repro.obs/v1 JSON)"
        ),
    )
    return parser


def _export_metrics(path: str) -> None:
    from repro.obs.export import write_metrics
    from repro.runtime import artifacts

    from repro import obs

    reg = obs.registry()
    if reg is None:  # pragma: no cover - guarded by the caller
        return
    # Publish end-of-run artifact-cache totals as gauges (per-process
    # state; excluded from the serial-vs-parallel determinism contract
    # like the runtime.artifacts.* counters).
    for name, stats in artifacts.stats().items():
        labels = (("cache", name),)
        reg.set_gauge("runtime.artifacts.cache_hits", stats["hits"], labels)
        reg.set_gauge("runtime.artifacts.cache_misses", stats["misses"], labels)
        if "size" in stats:
            reg.set_gauge("runtime.artifacts.cache_size", stats["size"], labels)
    fmt = write_metrics(path, obs.snapshot())
    print(f"[metrics: {fmt} export written to {path}]", file=sys.stderr)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(name)
        return 0
    if args.artifact == "all":
        # 'report' regenerates everything itself and 'fig5' composes the
        # three fig5-* panels; running them inside 'all' would duplicate
        # every simulation.
        names = sorted(n for n in ARTIFACTS if n not in ("report", "fig5"))
    else:
        names = [args.artifact]
    metrics_out = getattr(args, "metrics_out", None)
    was_enabled = False
    if metrics_out:
        from repro import obs

        was_enabled = obs.enabled()
        obs.enable()
    try:
        for i, name in enumerate(names):
            if i:
                print("\n" + "=" * 78 + "\n")
            start = time.perf_counter()
            ARTIFACTS[name](args)
            if args.artifact == "all":
                print(f"\n[{name} done in {time.perf_counter() - start:.1f}s]")
        if metrics_out:
            _export_metrics(metrics_out)
    finally:
        if metrics_out and not was_enabled:
            from repro import obs

            obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
