"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch one base class. Subsystem bases (``FilterError``,
``PKIError``, ``TLSError``, ``SimulationError``) group the more specific
conditions raised by each subpackage.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """A component was configured with invalid or inconsistent parameters."""


# --------------------------------------------------------------------------
# AMQ filters
# --------------------------------------------------------------------------


class FilterError(ReproError):
    """Base class for approximate-membership-query filter errors."""


class FilterFullError(FilterError):
    """An insertion failed because the filter cannot accept more items.

    For cuckoo-style filters this corresponds to exceeding the maximum
    number of evictions; for quotient/bloom filters, to exceeding the
    configured capacity.

    When raised by ``insert_batch``, :attr:`inserted_count` records how
    many items of the batch were fully inserted before the failure (the
    batch prefix-insert contract; see ``AMQFilter.insert_batch``).
    """

    def __init__(self, message: str = "", inserted_count: "int | None" = None):
        super().__init__(message)
        self.inserted_count = inserted_count


class FilterSerializationError(FilterError):
    """A filter wire image could not be parsed or round-tripped."""


class FilterDeleteError(FilterError):
    """A strict batch deletion failed because an item was not stored.

    Raised by ``delete_batch_strict`` after the already-deleted prefix has
    been restored, so the table is byte-identical to its pre-call state
    (the deletion mirror of the ``FilterFullError`` swap-unwind contract).
    :attr:`missing_index` records the position of the offending item in
    the batch.
    """

    def __init__(self, message: str = "", missing_index: "int | None" = None):
        super().__init__(message)
        self.missing_index = missing_index


class DeletionUnsupportedError(FilterError):
    """Deletion was requested on a filter type that cannot delete."""


# --------------------------------------------------------------------------
# PKI
# --------------------------------------------------------------------------


class PKIError(ReproError):
    """Base class for PKI substrate errors."""


class ASN1Error(PKIError):
    """Malformed DER data or an unencodable value."""


class CertificateError(PKIError):
    """A certificate is malformed, expired or otherwise unusable."""


class ChainValidationError(PKIError):
    """A certificate chain failed path validation."""


class RevocationError(PKIError):
    """A certificate in the path is revoked."""


class UnknownAlgorithmError(PKIError, KeyError):
    """An algorithm name is not present in the catalogue."""


# --------------------------------------------------------------------------
# TLS
# --------------------------------------------------------------------------


class TLSError(ReproError):
    """Base class for TLS substrate errors."""


class DecodeError(TLSError):
    """A TLS message or extension could not be decoded."""


class HandshakeError(TLSError):
    """The handshake state machine hit a fatal condition."""


class UnexpectedMessageError(HandshakeError):
    """A handshake message arrived in the wrong state."""


# --------------------------------------------------------------------------
# Simulation
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for network/workload simulator errors."""
