"""repro — Intermediate certificate suppression in post-quantum TLS.

A faithful, pure-Python reproduction of the CoNEXT '22 paper
"Intermediate Certificate Suppression in Post-Quantum TLS: An Approximate
Membership Querying Approach" (Sikeridis, Huntley, Ott, Devetsikiotis).

The package is organized as one subpackage per subsystem:

``repro.amq``
    Approximate-membership-query filters (Bloom, Cuckoo, Vacuum, Quotient)
    with dynamic insert/delete and a wire serialization format.
``repro.pki``
    Synthetic Web-PKI substrate: DER encoder, algorithm catalogue with the
    exact post-quantum key/signature sizes, certificate chains, OCSP, SCTs.
``repro.tls``
    Byte-accurate TLS 1.3 handshake message layer and client/server state
    machines implementing the IC-filter extension and false-positive retry.
``repro.netsim``
    Discrete-event network simulator with a TCP initcwnd flight model.
``repro.webmodel``
    Tranco-style web workload: domain rankings, browsing behaviour, ICA
    population models, crawl and browsing-session simulators.
``repro.core``
    The paper's contribution: client/server ICA-suppression pipelines,
    filter capacity planning, the IC-filter TLS extension payload, and the
    expected-handshake-time estimator.
``repro.analysis``
    Regression, summary statistics and table rendering used by the
    experiment drivers.
``repro.experiments``
    One driver per paper table/figure; the benchmark harness calls these.
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    FilterError,
    FilterFullError,
    FilterSerializationError,
    PKIError,
    CertificateError,
    ChainValidationError,
    TLSError,
    HandshakeError,
    SimulationError,
    ConfigurationError,
)

__all__ = [
    "__version__",
    "ReproError",
    "FilterError",
    "FilterFullError",
    "FilterSerializationError",
    "PKIError",
    "CertificateError",
    "ChainValidationError",
    "TLSError",
    "HandshakeError",
    "SimulationError",
    "ConfigurationError",
]
